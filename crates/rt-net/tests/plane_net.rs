//! The secure plane at the transport level, pinned on **both** I/O
//! engines: the PSK handshake gates every accepted link, a silent or
//! misbehaving connector dies at the handshake deadline instead of
//! leaking its reader slot, and no adversarial handshake fragment —
//! truncated, corrupted, or replayed — ever leaves a link
//! half-authenticated.
//!
//! The adversaries here speak raw TCP against a live node, reusing the
//! production frame codec and the sans-io `dgc_plane::Authenticator`
//! for the honest side of each exchange.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

use dgc_core::config::DgcConfig;
use dgc_core::id::AoId;
use dgc_core::units::Dur;
use dgc_plane::{AuthKey, AuthMsg, Authenticator, Step};
use dgc_rt_net::frame::{
    encode_batch_frame, encode_frame, Frame, FrameDecoder, Item, PROTOCOL_VERSION,
};
use dgc_rt_net::{IoEngine, NetConfig, NetNode};

const ENGINES: [IoEngine; 2] = [IoEngine::Threaded, IoEngine::Reactor];

fn key() -> AuthKey {
    AuthKey::from_secret("plane-net suite")
}

fn cfg(engine: IoEngine) -> NetConfig {
    NetConfig::new(
        DgcConfig::builder()
            .ttb(Dur::from_millis(25))
            .tta(Dur::from_millis(80))
            .max_comm(Dur::from_millis(20))
            .build(),
    )
    .engine(engine)
    .auth(key())
    .handshake_timeout(Duration::from_millis(300))
}

fn poll_until(deadline: Duration, check: impl Fn() -> bool) -> bool {
    let start = Instant::now();
    while start.elapsed() < deadline {
        if check() {
            return true;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    check()
}

fn auth_to_frame(msg: &AuthMsg) -> Frame {
    match *msg {
        AuthMsg::Init { nonce } => Frame::AuthInit { nonce },
        AuthMsg::Challenge { nonce, mac } => Frame::AuthChallenge { nonce, mac },
        AuthMsg::Proof { mac } => Frame::AuthProof { mac },
    }
}

fn frame_to_auth(frame: &Frame) -> Option<AuthMsg> {
    match *frame {
        Frame::AuthInit { nonce } => Some(AuthMsg::Init { nonce }),
        Frame::AuthChallenge { nonce, mac } => Some(AuthMsg::Challenge { nonce, mac }),
        Frame::AuthProof { mac } => Some(AuthMsg::Proof { mac }),
        _ => None,
    }
}

/// Reads one frame off `stream`, waiting up to 2 s.
fn read_frame(stream: &mut TcpStream, decoder: &mut FrameDecoder) -> Option<Frame> {
    stream
        .set_read_timeout(Some(Duration::from_millis(100)))
        .unwrap();
    let deadline = Instant::now() + Duration::from_secs(2);
    let mut buf = [0u8; 4096];
    loop {
        if let Ok(Some(frame)) = decoder.next_frame() {
            return Some(frame);
        }
        if Instant::now() >= deadline {
            return None;
        }
        match stream.read(&mut buf) {
            Ok(0) => return None,
            Ok(n) => decoder.push(&buf[..n]),
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) => {}
            Err(_) => return None,
        }
    }
}

/// True once the peer closed the connection (reads EOF or reset).
fn wait_closed(stream: &mut TcpStream) -> bool {
    stream
        .set_read_timeout(Some(Duration::from_millis(100)))
        .unwrap();
    let deadline = Instant::now() + Duration::from_secs(5);
    let mut buf = [0u8; 256];
    while Instant::now() < deadline {
        match stream.read(&mut buf) {
            Ok(0) => return true,
            Ok(_) => {}
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) => {}
            Err(_) => return true,
        }
    }
    false
}

/// Introduces `node_id` and runs the honest client handshake with `k`.
/// Returns the authenticated stream, or `None` if the node refused.
fn connect_and_auth(node: &NetNode, node_id: u32, k: AuthKey) -> Option<TcpStream> {
    let mut stream = TcpStream::connect(node.addr()).unwrap();
    stream.set_nodelay(true).unwrap();
    let hello = encode_frame(&Frame::Hello {
        node: node_id,
        version: PROTOCOL_VERSION,
    });
    stream.write_all(&hello).unwrap();
    let (mut machine, init) = Authenticator::initiator(k, [0xA5; dgc_plane::NONCE_LEN]);
    stream
        .write_all(&encode_frame(&auth_to_frame(&init)))
        .unwrap();
    let mut decoder = FrameDecoder::new();
    let challenge = frame_to_auth(&read_frame(&mut stream, &mut decoder)?)?;
    match machine.on_msg(&challenge) {
        Ok(Step::SendAndDone(proof)) => {
            stream
                .write_all(&encode_frame(&auth_to_frame(&proof)))
                .unwrap();
            stream.set_read_timeout(None).unwrap();
            Some(stream)
        }
        _ => None,
    }
}

fn app_batch(from_node: u32, to: AoId, payload: &[u8]) -> Vec<u8> {
    encode_batch_frame(&[Item::App {
        from: AoId::new(from_node, 0),
        to,
        reply: false,
        tenant: 0,
        payload: payload.to_vec().into(),
    }])
}

#[test]
fn full_handshake_admits_batches_on_both_engines() {
    for engine in ENGINES {
        let node = NetNode::bind(0, cfg(engine)).unwrap();
        let target = node.add_activity();
        let mut client = connect_and_auth(&node, 9, key()).expect("genuine key must authenticate");
        client
            .write_all(&app_batch(9, target, b"post-auth"))
            .unwrap();
        client.flush().unwrap();
        assert!(
            poll_until(Duration::from_secs(5), || !node.app_received().is_empty()),
            "[{engine:?}] the authenticated batch never arrived"
        );
        assert_eq!(node.app_received()[0].payload, b"post-auth");
        assert!(node.stats().auth_ok >= 1, "[{engine:?}]");
        assert_eq!(node.stats().auth_rejects, 0, "[{engine:?}]");
        drop(client);
        node.shutdown();
    }
}

#[test]
fn silent_connector_dies_at_the_handshake_deadline_and_frees_its_slot() {
    for engine in ENGINES {
        let node = NetNode::bind(0, cfg(engine)).unwrap();
        let target = node.add_activity();
        // Connects, introduces itself, then stalls mid-handshake.
        let mut stalled = TcpStream::connect(node.addr()).unwrap();
        stalled
            .write_all(&encode_frame(&Frame::Hello {
                node: 7,
                version: PROTOCOL_VERSION,
            }))
            .unwrap();
        assert!(
            poll_until(Duration::from_secs(5), || {
                node.stats().handshake_timeouts >= 1
            }),
            "[{engine:?}] the stalled handshake never timed out: {:?}",
            node.stats()
        );
        assert!(
            wait_closed(&mut stalled),
            "[{engine:?}] the node kept the dead link open"
        );
        // The regression half: the slot is reclaimed, not leaked — a
        // well-behaved peer connects and delivers right afterwards.
        let mut honest = connect_and_auth(&node, 9, key())
            .unwrap_or_else(|| panic!("[{engine:?}] node stopped accepting after a timeout"));
        honest.write_all(&app_batch(9, target, b"alive")).unwrap();
        assert!(
            poll_until(Duration::from_secs(5), || !node.app_received().is_empty()),
            "[{engine:?}] post-timeout delivery failed"
        );
        drop(honest);
        node.shutdown();
    }
}

#[test]
fn silent_connector_times_out_even_without_auth_configured() {
    // The handshake deadline is the reader-slot leak fix, so it guards
    // every accepted connection — auth on or off.
    for engine in ENGINES {
        let config = NetConfig::new(
            DgcConfig::builder()
                .ttb(Dur::from_millis(25))
                .tta(Dur::from_millis(80))
                .max_comm(Dur::from_millis(20))
                .build(),
        )
        .engine(engine)
        .handshake_timeout(Duration::from_millis(300));
        let node = NetNode::bind(0, config).unwrap();
        let mut mute = TcpStream::connect(node.addr()).unwrap();
        assert!(
            poll_until(Duration::from_secs(5), || {
                node.stats().handshake_timeouts >= 1
            }),
            "[{engine:?}] a mute connection held its slot forever: {:?}",
            node.stats()
        );
        assert!(wait_closed(&mut mute), "[{engine:?}]");
        node.shutdown();
    }
}

#[test]
fn batch_before_auth_is_rejected_on_both_engines() {
    for engine in ENGINES {
        let node = NetNode::bind(0, cfg(engine)).unwrap();
        let target = node.add_activity();
        let mut eager = TcpStream::connect(node.addr()).unwrap();
        eager
            .write_all(&encode_frame(&Frame::Hello {
                node: 7,
                version: PROTOCOL_VERSION,
            }))
            .unwrap();
        eager.write_all(&app_batch(7, target, b"too soon")).unwrap();
        eager.flush().unwrap();
        assert!(
            poll_until(Duration::from_secs(5), || node.stats().auth_rejects >= 1),
            "[{engine:?}] the pre-auth batch was not rejected: {:?}",
            node.stats()
        );
        assert!(
            node.app_received().is_empty(),
            "[{engine:?}] a pre-auth item reached the app plane"
        );
        assert!(wait_closed(&mut eager), "[{engine:?}]");
        node.shutdown();
    }
}

#[test]
fn chaos_handshakes_never_half_authenticate() {
    // Three adversaries per engine — truncator, corruptor, replayer —
    // each followed by a batch injection attempt. None may deliver an
    // item; the node must stay healthy for an honest peer afterwards.
    for engine in ENGINES {
        let node = NetNode::bind(0, cfg(engine)).unwrap();
        let target = node.add_activity();

        // 1. Truncation: half an AuthInit, then the batch. The decoder
        // holds the torso forever, so the deadline reaps the link.
        {
            let mut adversary = TcpStream::connect(node.addr()).unwrap();
            adversary
                .write_all(&encode_frame(&Frame::Hello {
                    node: 21,
                    version: PROTOCOL_VERSION,
                }))
                .unwrap();
            let init = encode_frame(&Frame::AuthInit {
                nonce: [0x5C; dgc_plane::NONCE_LEN],
            });
            adversary.write_all(&init[..init.len() / 2]).unwrap();
            adversary.flush().unwrap();
            assert!(
                poll_until(Duration::from_secs(5), || {
                    node.stats().handshake_timeouts >= 1
                }),
                "[{engine:?}] truncated handshake never reaped: {:?}",
                node.stats()
            );
            assert!(wait_closed(&mut adversary), "[{engine:?}] truncator");
        }

        // 2. Corruption: a genuine exchange whose proof MAC is flipped.
        {
            let mut adversary = TcpStream::connect(node.addr()).unwrap();
            adversary
                .write_all(&encode_frame(&Frame::Hello {
                    node: 22,
                    version: PROTOCOL_VERSION,
                }))
                .unwrap();
            let (mut machine, init) = Authenticator::initiator(key(), [0x33; dgc_plane::NONCE_LEN]);
            adversary
                .write_all(&encode_frame(&auth_to_frame(&init)))
                .unwrap();
            let mut decoder = FrameDecoder::new();
            let challenge =
                frame_to_auth(&read_frame(&mut adversary, &mut decoder).expect("challenge"))
                    .expect("auth frame");
            let Ok(Step::SendAndDone(AuthMsg::Proof { mut mac })) = machine.on_msg(&challenge)
            else {
                panic!("[{engine:?}] initiator machine refused a genuine challenge");
            };
            mac[0] ^= 0x80;
            adversary
                .write_all(&encode_frame(&Frame::AuthProof { mac }))
                .unwrap();
            adversary
                .write_all(&app_batch(22, target, b"corrupt"))
                .unwrap();
            assert!(
                poll_until(Duration::from_secs(5), || node.stats().auth_rejects >= 1),
                "[{engine:?}] corrupted proof not rejected: {:?}",
                node.stats()
            );
            assert!(wait_closed(&mut adversary), "[{engine:?}] corruptor");
        }

        // 3. Replay: a full genuine handshake is recorded, then its
        // Init + Proof are replayed verbatim on a fresh connection.
        // The node's fresh nonce is not covered by the stale proof.
        let recorded_init;
        let recorded_proof;
        {
            let mut genuine = TcpStream::connect(node.addr()).unwrap();
            genuine
                .write_all(&encode_frame(&Frame::Hello {
                    node: 23,
                    version: PROTOCOL_VERSION,
                }))
                .unwrap();
            let (mut machine, init) = Authenticator::initiator(key(), [0x44; dgc_plane::NONCE_LEN]);
            recorded_init = encode_frame(&auth_to_frame(&init));
            genuine.write_all(&recorded_init).unwrap();
            let mut decoder = FrameDecoder::new();
            let challenge =
                frame_to_auth(&read_frame(&mut genuine, &mut decoder).expect("challenge"))
                    .expect("auth frame");
            let Ok(Step::SendAndDone(proof)) = machine.on_msg(&challenge) else {
                panic!("[{engine:?}] genuine handshake failed");
            };
            recorded_proof = encode_frame(&auth_to_frame(&proof));
            genuine.write_all(&recorded_proof).unwrap();
            // The recording session is authentic; drop it cleanly.
            drop(genuine);
        }
        {
            let rejects_before = node.stats().auth_rejects;
            let mut adversary = TcpStream::connect(node.addr()).unwrap();
            adversary
                .write_all(&encode_frame(&Frame::Hello {
                    node: 24,
                    version: PROTOCOL_VERSION,
                }))
                .unwrap();
            adversary.write_all(&recorded_init).unwrap();
            // Skip reading the fresh challenge; fire the stale proof
            // and an injection attempt straight away.
            adversary.write_all(&recorded_proof).unwrap();
            adversary
                .write_all(&app_batch(24, target, b"replayed"))
                .unwrap();
            assert!(
                poll_until(Duration::from_secs(5), || {
                    node.stats().auth_rejects > rejects_before
                }),
                "[{engine:?}] replayed proof not rejected: {:?}",
                node.stats()
            );
            assert!(wait_closed(&mut adversary), "[{engine:?}] replayer");
        }

        // Never half-authenticated: across all three attacks, not one
        // item crossed into the app plane…
        assert!(
            node.app_received().is_empty(),
            "[{engine:?}] an adversary injected an item"
        );
        // …and the node still serves an honest peer.
        let mut honest = connect_and_auth(&node, 9, key())
            .unwrap_or_else(|| panic!("[{engine:?}] node unhealthy after the chaos"));
        honest.write_all(&app_batch(9, target, b"healthy")).unwrap();
        assert!(
            poll_until(Duration::from_secs(5), || !node.app_received().is_empty()),
            "[{engine:?}] post-chaos delivery failed"
        );
        assert_eq!(node.app_received()[0].payload, b"healthy");
        drop(honest);
        node.shutdown();
    }
}

#[test]
fn wrong_key_client_is_rejected_and_cannot_inject() {
    for engine in ENGINES {
        let node = NetNode::bind(0, cfg(engine)).unwrap();
        let target = node.add_activity();
        let mut rogue = TcpStream::connect(node.addr()).unwrap();
        rogue
            .write_all(&encode_frame(&Frame::Hello {
                node: 66,
                version: PROTOCOL_VERSION,
            }))
            .unwrap();
        let (mut machine, init) =
            Authenticator::initiator(AuthKey::from_secret("guessed wrong"), [0x66; 16]);
        rogue
            .write_all(&encode_frame(&auth_to_frame(&init)))
            .unwrap();
        let mut decoder = FrameDecoder::new();
        let challenge =
            frame_to_auth(&read_frame(&mut rogue, &mut decoder).expect("challenge")).unwrap();
        // The mutual half: the rogue's own machine already refuses the
        // challenge MAC (it cannot tell a genuine server from a fake
        // one without the key)…
        assert!(machine.on_msg(&challenge).is_err(), "[{engine:?}]");
        // …but a determined rogue fires a fabricated proof anyway.
        rogue
            .write_all(&encode_frame(&Frame::AuthProof { mac: [0xEE; 32] }))
            .unwrap();
        rogue.write_all(&app_batch(66, target, b"forged")).unwrap();
        assert!(
            poll_until(Duration::from_secs(5), || node.stats().auth_rejects >= 1),
            "[{engine:?}] fabricated proof not rejected: {:?}",
            node.stats()
        );
        assert!(
            node.app_received().is_empty(),
            "[{engine:?}] the rogue injected an item"
        );
        assert!(wait_closed(&mut rogue), "[{engine:?}]");
        node.shutdown();
    }
}
