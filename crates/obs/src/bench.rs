//! Bench report encoding: the `BENCH_<name>.json` files the repo
//! records its perf trajectory in.
//!
//! The schema is deliberately tiny — a name, a unix timestamp, and a
//! flat metric map — so a future re-anchor can diff two commits'
//! reports with `jq`. The bench crate owns path resolution and file
//! writing; this module only encodes.

use std::fmt::Write as _;

use crate::export::json_escape;

/// Encodes one bench report. `metrics` are `(name, value)` pairs,
/// emitted in the given order; `unix_secs` is when the run happened.
pub fn report_json(name: &str, unix_secs: u64, metrics: &[(&str, f64)]) -> String {
    let mut out = String::new();
    let _ = write!(
        out,
        "{{\n  \"bench\": \"{}\",\n  \"recorded_at_unix\": {unix_secs},\n  \"metrics\": {{",
        json_escape(name)
    );
    let mut first = true;
    for (k, v) in metrics {
        if !first {
            out.push(',');
        }
        first = false;
        if v.is_finite() {
            let _ = write!(out, "\n    \"{}\": {v}", json_escape(k));
        } else {
            let _ = write!(out, "\n    \"{}\": null", json_escape(k));
        }
    }
    out.push_str("\n  }\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_shape() {
        let j = report_json("gossip_bandwidth", 1_700_000_000, &[("saving_pct", 34.5)]);
        assert!(j.contains("\"bench\": \"gossip_bandwidth\""));
        assert!(j.contains("\"recorded_at_unix\": 1700000000"));
        assert!(j.contains("\"saving_pct\": 34.5"));
        assert_eq!(j.matches('{').count(), j.matches('}').count());
    }

    #[test]
    fn non_finite_becomes_null() {
        let j = report_json("x", 0, &[("bad", f64::NAN)]);
        assert!(j.contains("\"bad\": null"));
    }
}
