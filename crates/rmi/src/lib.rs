//! # dgc-rmi — the Java/RMI-style baseline collector
//!
//! The paper positions its complete DGC against the collector of Java
//! RMI: a **lease-based reference-listing** scheme (Birrell et al.). Each
//! holder of a remote reference registers itself with the target via a
//! `dirty` call carrying a lease duration, renews the lease at half its
//! duration, and sends a `clean` call when its stub is collected. The
//! target keeps the list of lease holders; when the list empties (cleans
//! received or leases expired) and no local root remains, the object is
//! collectable.
//!
//! This scheme collects acyclic garbage with the same heartbeat-like cost
//! profile as the paper's algorithm, but **cannot collect cycles**: the
//! members of a distributed cycle hold leases on one another forever.
//! `benches/baseline_rmi.rs` demonstrates both properties.
//!
//! The implementation is sans-io, mirroring `dgc_core::DgcState`, so the
//! same runtimes can drive either collector.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod driver;
pub mod endpoint;
pub mod wire;

pub use driver::{LeaseDriver, LeasePacket, LeaseStats};
pub use endpoint::{RmiAction, RmiConfig, RmiEndpoint, RmiMessage};
pub use wire::{LeaseCall, LeaseReply};
