//! virtual-path: crates/core/src/fixture.rs
// Golden fixture: the wall-clock rule. Lines below are *meant* to
// violate it; the expected findings live in expected.txt.

fn naked_instant() -> Instant {
    Instant::now()
}

fn naked_system_time() -> Duration {
    SystemTime::now().duration_since(UNIX_EPOCH).unwrap_or_default()
}

fn annotated() -> Instant {
    // dgc-analysis: allow(wall-clock): golden fixture proves the escape hatch works
    Instant::now()
}

fn in_a_string() -> &'static str {
    "Instant::now() inside a string is data, not code"
}

// Instant::now() in a comment is prose, not code.

#[cfg(test)]
mod tests {
    fn timing_in_tests_is_fine() {
        let _ = Instant::now();
    }
}
