//! Uniform wrapper over the collectors a grid can run: the paper's
//! complete DGC, the RMI-style baseline, or none (the control runs of
//! the evaluation tables).

use dgc_core::config::DgcConfig;
use dgc_core::id::AoId;
use dgc_core::protocol::DgcState;
use dgc_core::units::{Dur, Time};
use dgc_rmi::endpoint::{RmiConfig, RmiEndpoint};

use dgc_simnet::time::{SimDuration, SimTime};

/// Which collector a grid runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum CollectorKind {
    /// No distributed collector at all (the "No DGC" columns).
    None,
    /// The paper's complete DGC.
    Complete(DgcConfig),
    /// The lease-based reference-listing baseline.
    Rmi(RmiConfig),
}

/// Per-activity collector endpoint.
pub enum Collector {
    /// No collector: the activity lives until explicitly destroyed.
    None,
    /// Complete DGC endpoint.
    Complete(Box<DgcState>),
    /// RMI baseline endpoint.
    Rmi(Box<RmiEndpoint>),
}

/// Converts simulator time to protocol time (both are nanoseconds).
pub fn proto_time(t: SimTime) -> Time {
    Time::from_nanos(t.as_nanos())
}

/// Converts a protocol duration to a simulator duration.
pub fn sim_dur(d: Dur) -> SimDuration {
    SimDuration::from_nanos(d.as_nanos())
}

impl Collector {
    /// Creates the endpoint for `id` according to `kind`.
    pub fn new(kind: &CollectorKind, id: AoId, now: SimTime) -> Self {
        match kind {
            CollectorKind::None => Collector::None,
            CollectorKind::Complete(cfg) => {
                Collector::Complete(Box::new(DgcState::new(id, proto_time(now), *cfg)))
            }
            CollectorKind::Rmi(cfg) => {
                Collector::Rmi(Box::new(RmiEndpoint::new(id, proto_time(now), *cfg)))
            }
        }
    }

    /// Heartbeat period for tick scheduling (`None` when no collector).
    pub fn tick_period(&self) -> Option<SimDuration> {
        match self {
            Collector::None => None,
            Collector::Complete(s) => Some(sim_dur(s.current_ttb())),
            // Renewals are due at lease/2; ticking at lease/4 bounds the
            // renewal lag at lease/4, keeping leases safe.
            Collector::Rmi(e) => Some(sim_dur(e.config().lease.div(4))),
        }
    }

    /// Access the complete-DGC endpoint, if that is what runs.
    pub fn as_complete(&self) -> Option<&DgcState> {
        match self {
            Collector::Complete(s) => Some(s),
            _ => None,
        }
    }

    /// Mutable access to the complete-DGC endpoint.
    pub fn as_complete_mut(&mut self) -> Option<&mut DgcState> {
        match self {
            Collector::Complete(s) => Some(s),
            _ => None,
        }
    }

    /// Access the RMI endpoint, if that is what runs.
    pub fn as_rmi(&self) -> Option<&RmiEndpoint> {
        match self {
            Collector::Rmi(e) => Some(e),
            _ => None,
        }
    }

    /// Mutable access to the RMI endpoint.
    pub fn as_rmi_mut(&mut self) -> Option<&mut RmiEndpoint> {
        match self {
            Collector::Rmi(e) => Some(e),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_has_no_tick() {
        let c = Collector::new(&CollectorKind::None, AoId::new(0, 0), SimTime::ZERO);
        assert!(c.tick_period().is_none());
        assert!(c.as_complete().is_none());
        assert!(c.as_rmi().is_none());
    }

    #[test]
    fn complete_ticks_at_ttb() {
        let cfg = DgcConfig::builder().ttb(Dur::from_secs(30)).build();
        let c = Collector::new(
            &CollectorKind::Complete(cfg),
            AoId::new(0, 0),
            SimTime::ZERO,
        );
        assert_eq!(c.tick_period(), Some(SimDuration::from_secs(30)));
        assert!(c.as_complete().is_some());
    }

    #[test]
    fn rmi_ticks_at_quarter_lease() {
        let c = Collector::new(
            &CollectorKind::Rmi(RmiConfig::default()),
            AoId::new(0, 0),
            SimTime::ZERO,
        );
        assert_eq!(c.tick_period(), Some(SimDuration::from_secs(15)));
        assert!(c.as_rmi().is_some());
    }

    #[test]
    fn time_conversions_are_exact() {
        let t = SimTime::from_millis(1234);
        assert_eq!(proto_time(t).as_nanos(), t.as_nanos());
        let d = Dur::from_millis(56);
        assert_eq!(sim_dur(d).as_nanos(), d.as_nanos());
    }
}
