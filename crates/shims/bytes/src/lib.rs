//! Offline stand-in for the [`bytes`](https://crates.io/crates/bytes)
//! crate.
//!
//! The build environment for this repository has no access to crates.io,
//! so the handful of external dependencies the workspace relies on are
//! vendored as minimal, API-compatible subsets under `crates/shims/`.
//! This one covers exactly the surface the wire codecs use: big-endian
//! integer puts/gets, `freeze`, `slice`/`split_to`, and
//! `From<Vec<u8>>`. Swapping in the real crate is a one-line change in
//! the workspace manifest.
//!
//! Like the real crate, [`Bytes`] is **refcounted zero-copy storage**:
//! the buffer lives behind an `Arc`, so `clone`, `slice` and
//! `split_to` share it instead of copying — `dgc-rt-net`'s frame
//! decoder hands out application payloads as windows into the receive
//! buffer, and equality/hashing follow the visible byte content, not
//! the backing allocation.

#![warn(missing_docs)]

use std::ops::Range;
use std::sync::Arc;

/// Read access to a byte cursor (subset of `bytes::Buf`).
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;
    /// Copies `dst.len()` bytes out, advancing the cursor.
    ///
    /// # Panics
    ///
    /// Panics if fewer than `dst.len()` bytes remain.
    fn copy_to_slice(&mut self, dst: &mut [u8]);

    /// Reads one byte.
    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    /// Reads a big-endian `u16`.
    fn get_u16(&mut self) -> u16 {
        let mut b = [0u8; 2];
        self.copy_to_slice(&mut b);
        u16::from_be_bytes(b)
    }

    /// Reads a big-endian `u32`.
    fn get_u32(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_be_bytes(b)
    }

    /// Reads a big-endian `u64`.
    fn get_u64(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_be_bytes(b)
    }
}

/// Write access to a growable byte buffer (subset of `bytes::BufMut`).
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a big-endian `u16`.
    fn put_u16(&mut self, v: u16) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian `u32`.
    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian `u64`.
    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }
}

/// A refcounted, zero-copy byte window with a read cursor.
///
/// `[start, end)` delimits the *unread* window into the shared backing
/// buffer; `get_*` consumes from the front by advancing `start`, and
/// `clone`/`slice`/`split_to` share the `Arc` without touching the
/// bytes.
#[derive(Debug, Clone, Default)]
pub struct Bytes {
    data: Arc<Vec<u8>>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// The empty buffer.
    pub fn new() -> Self {
        Bytes::default()
    }

    /// Length of the *unread* remainder, matching the real crate (where
    /// `get_*` consumes the front of the buffer).
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// True if fully consumed or empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The sub-range `range` of the unread remainder, sharing the
    /// backing buffer (no copy).
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds.
    pub fn slice(&self, range: Range<usize>) -> Bytes {
        assert!(
            range.start <= range.end && range.end <= self.len(),
            "slice out of bounds"
        );
        Bytes {
            data: Arc::clone(&self.data),
            start: self.start + range.start,
            end: self.start + range.end,
        }
    }

    /// Splits off and returns the first `n` unread bytes, sharing the
    /// backing buffer (no copy); `self` keeps the remainder.
    ///
    /// # Panics
    ///
    /// Panics if fewer than `n` bytes remain.
    pub fn split_to(&mut self, n: usize) -> Bytes {
        assert!(n <= self.len(), "split_to out of bounds");
        let head = Bytes {
            data: Arc::clone(&self.data),
            start: self.start,
            end: self.start + n,
        };
        self.start += n;
        head
    }

    /// The unread remainder as a slice.
    pub fn as_slice(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }

    /// Consumes the window, returning its bytes as a `Vec` — without
    /// copying when this is the only handle to the whole buffer.
    pub fn into_vec(self) -> Vec<u8> {
        match Arc::try_unwrap(self.data) {
            Ok(v) if self.start == 0 && self.end == v.len() => v,
            Ok(v) => v[self.start..self.end].to_vec(),
            Err(shared) => shared[self.start..self.end].to_vec(),
        }
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

/// Content equality over the unread window — two windows over
/// different backing buffers are equal iff they show the same bytes,
/// as in the real crate.
impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl std::hash::Hash for Bytes {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

impl From<Vec<u8>> for Bytes {
    /// Takes ownership without copying the contents.
    fn from(data: Vec<u8>) -> Self {
        let end = data.len();
        Bytes {
            data: Arc::new(data),
            start: 0,
            end,
        }
    }
}

impl From<&[u8]> for Bytes {
    fn from(data: &[u8]) -> Self {
        Bytes::from(data.to_vec())
    }
}

impl std::ops::Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(dst.len() <= self.remaining(), "buffer underflow");
        dst.copy_from_slice(&self.data[self.start..self.start + dst.len()]);
        self.start += dst.len();
    }
}

/// A growable byte buffer for encoding.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// Empty buffer.
    pub const fn new() -> Self {
        BytesMut { data: Vec::new() }
    }

    /// Empty buffer with reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            data: Vec::with_capacity(cap),
        }
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True if nothing was written.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Converts into an immutable [`Bytes`] without copying.
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.data)
    }

    /// The written bytes as a slice.
    pub fn as_slice(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_all_widths() {
        let mut b = BytesMut::with_capacity(15);
        b.put_u8(0xAB);
        b.put_u16(0x1234);
        b.put_u32(0xDEAD_BEEF);
        b.put_u64(0x0102_0304_0506_0708);
        let mut r = b.freeze();
        assert_eq!(r.len(), 15);
        assert_eq!(r.get_u8(), 0xAB);
        assert_eq!(r.get_u16(), 0x1234);
        assert_eq!(r.get_u32(), 0xDEAD_BEEF);
        assert_eq!(r.get_u64(), 0x0102_0304_0506_0708);
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn len_tracks_unread_remainder() {
        let mut b = Bytes::from(vec![1, 2, 3, 4]);
        assert_eq!(b.len(), 4);
        b.get_u8();
        assert_eq!(b.len(), 3);
        assert_eq!(b.slice(0..2).as_slice(), &[2, 3]);
    }

    #[test]
    fn slice_and_split_share_the_backing_buffer() {
        let b = Bytes::from(vec![1, 2, 3, 4, 5]);
        let base = b.as_slice().as_ptr();
        let s = b.slice(1..4);
        assert_eq!(s.as_slice(), &[2, 3, 4]);
        assert_eq!(s.as_slice().as_ptr(), unsafe { base.add(1) }, "zero-copy");
        let mut rest = b.clone();
        let head = rest.split_to(2);
        assert_eq!(head.as_slice(), &[1, 2]);
        assert_eq!(rest.as_slice(), &[3, 4, 5]);
        assert_eq!(head.as_slice().as_ptr(), base, "zero-copy");
        assert_eq!(
            rest.as_slice().as_ptr(),
            unsafe { base.add(2) },
            "zero-copy"
        );
    }

    #[test]
    fn equality_and_hash_follow_content_not_backing() {
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        let a = Bytes::from(vec![9, 1, 2, 9]).slice(1..3);
        let b = Bytes::from(vec![1, 2]);
        assert_eq!(a, b);
        let hash = |x: &Bytes| {
            let mut h = DefaultHasher::new();
            x.hash(&mut h);
            h.finish()
        };
        assert_eq!(hash(&a), hash(&b));
        assert_eq!(a, vec![1, 2]);
        assert_eq!(a, *[1u8, 2].as_slice());
    }

    #[test]
    fn freeze_does_not_copy() {
        let mut b = BytesMut::with_capacity(3);
        b.put_slice(&[1, 2, 3]);
        let ptr = b.as_slice().as_ptr();
        let f = b.freeze();
        assert_eq!(f.as_slice().as_ptr(), ptr);
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn underflow_panics() {
        let mut b = Bytes::from(vec![1]);
        b.get_u32();
    }
}
