//! The workload-driven conformance scenario: the same CG-style
//! request/reply rounds on the simulator and on a real TCP cluster,
//! judged by the same oracle — the verdicts (and the genuinely
//! executed kernel checksums) must agree under every seed.

use dgc_conformance::workload::{run_workload_rtnet, run_workload_simnet};
use dgc_conformance::{seeds, Verdict};

#[test]
fn workload_verdicts_agree_across_runtimes_and_seeds() {
    for seed in seeds() {
        let sim = run_workload_simnet(seed);
        let net = run_workload_rtnet(seed).expect("socket run");
        assert_eq!(
            sim.verdict, net.verdict,
            "seed {seed}: runtimes disagree (sim {sim:?}, net {net:?})"
        );
        assert_eq!(
            sim.verdict,
            Verdict::SAFE_AND_COMPLETE,
            "seed {seed}: the workload run must be safe and fully collected"
        );
        assert_eq!(
            sim.checksum.to_bits(),
            net.checksum.to_bits(),
            "seed {seed}: kernel math must agree bit-for-bit"
        );
    }
}
