//! Wire codec for RMI DGC calls.
//!
//! Java RMI's real `dirty`/`clean` calls marshal an `ObjID[]`, a
//! sequence number, a lease object with a `VMID` (dirty only), and the
//! RMI call envelope. We encode a compact binary equivalent and account
//! a calibrated envelope on top, mirroring how `dgc-core::wire` treats
//! the paper's DGC traffic.
//!
//! Two layers share this module:
//!
//! * [`encode`] / [`decode`] — the simulator-era codec for a bare
//!   [`RmiMessage`], kept for the metered `dgc-simnet` runs;
//! * [`LeaseCall`] / [`LeaseReply`] and their codecs — the **socket**
//!   payloads the [`crate::driver::LeaseDriver`] ships as opaque
//!   `Item::App` units over `dgc-rt-net`. A call distinguishes the
//!   first `dirty` from a `renew` (Java RMI's renewal is a dirty call
//!   with a fresh sequence number; keeping the distinction visible is
//!   what lets the §5 traffic figures count renewals), and every call
//!   has a reply — real `DGC.dirty` returns the granted `Lease` —
//!   which is exactly the request/reply round trip the egress plane's
//!   piggybacking is measured on.

use bytes::{Buf, BufMut, Bytes, BytesMut};

use dgc_core::id::AoId;
use dgc_core::units::Dur;
use dgc_core::wire::DecodeError;

use crate::endpoint::RmiMessage;

const TAG_DIRTY: u8 = 0xA1;
const TAG_CLEAN: u8 = 0xA2;
const TAG_RENEW: u8 = 0xA3;
const TAG_GRANTED: u8 = 0xB1;
const TAG_RELEASED: u8 = 0xB2;

/// Per-call envelope of an RMI DGC invocation (transport framing, ObjID,
/// operation number, serialization headers). Same calibration basis as
/// [`dgc_core::wire::RMI_CALL_ENVELOPE`].
pub const RMI_DGC_CALL_ENVELOPE: u64 = 240;

/// Encodes an RMI DGC call.
pub fn encode(message: &RmiMessage) -> Bytes {
    let mut buf = BytesMut::with_capacity(18);
    match *message {
        RmiMessage::Dirty { holder, lease } => {
            buf.put_u8(TAG_DIRTY);
            buf.put_u32(holder.node);
            buf.put_u32(holder.index);
            buf.put_u64(lease.as_nanos());
        }
        RmiMessage::Clean { holder } => {
            buf.put_u8(TAG_CLEAN);
            buf.put_u32(holder.node);
            buf.put_u32(holder.index);
        }
    }
    buf.freeze()
}

/// Decodes an RMI DGC call.
pub fn decode(mut buf: Bytes) -> Result<RmiMessage, DecodeError> {
    if buf.remaining() < 9 {
        return Err(DecodeError::Truncated);
    }
    let tag = buf.get_u8();
    let holder = AoId::new(buf.get_u32(), buf.get_u32());
    match tag {
        TAG_DIRTY => {
            if buf.remaining() < 8 {
                return Err(DecodeError::Truncated);
            }
            Ok(RmiMessage::Dirty {
                holder,
                lease: Dur::from_nanos(buf.get_u64()),
            })
        }
        TAG_CLEAN => Ok(RmiMessage::Clean { holder }),
        other => Err(DecodeError::BadTag(other)),
    }
}

/// Wire size of an encoded call (without envelope).
pub fn wire_size(message: &RmiMessage) -> u64 {
    match message {
        RmiMessage::Dirty { .. } => 17,
        RmiMessage::Clean { .. } => 9,
    }
}

/// A lease **call** payload: what a referencer ships to a referenced
/// object over the application plane. `Renew` is semantically a
/// `dirty` (the server treats both identically) but stays its own tag
/// so traffic accounting can tell first registrations from renewals.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LeaseCall {
    /// First registration: the holder announces itself.
    Dirty {
        /// The lease holder.
        holder: AoId,
        /// Requested lease duration.
        lease: Dur,
    },
    /// Renewal at half-lease, Java RMI style.
    Renew {
        /// The lease holder.
        holder: AoId,
        /// Requested lease duration.
        lease: Dur,
    },
    /// The holder's stub was collected; release the lease.
    Clean {
        /// The former lease holder.
        holder: AoId,
    },
}

impl LeaseCall {
    /// The server-side view: renewals are dirty calls.
    pub fn as_message(&self) -> RmiMessage {
        match *self {
            LeaseCall::Dirty { holder, lease } | LeaseCall::Renew { holder, lease } => {
                RmiMessage::Dirty { holder, lease }
            }
            LeaseCall::Clean { holder } => RmiMessage::Clean { holder },
        }
    }
}

/// A lease **reply** payload: what the referenced object sends back
/// (real `DGC.dirty` returns the granted `Lease`; `clean` returns
/// void, acknowledged here so the round trip is observable).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LeaseReply {
    /// The lease was granted (or renewed) until `lease` from receipt.
    Granted {
        /// The lease holder the grant is addressed to.
        holder: AoId,
        /// The granted duration.
        lease: Dur,
    },
    /// The clean call was processed; the holder is forgotten.
    Released {
        /// The former lease holder.
        holder: AoId,
    },
}

fn put_aoid(buf: &mut BytesMut, id: AoId) {
    buf.put_u32(id.node);
    buf.put_u32(id.index);
}

fn get_aoid(buf: &mut Bytes) -> Result<AoId, DecodeError> {
    if buf.remaining() < 8 {
        return Err(DecodeError::Truncated);
    }
    Ok(AoId::new(buf.get_u32(), buf.get_u32()))
}

/// Encodes a lease call for the application plane.
pub fn encode_call(call: &LeaseCall) -> Vec<u8> {
    let mut buf = BytesMut::with_capacity(18);
    match *call {
        LeaseCall::Dirty { holder, lease } => {
            buf.put_u8(TAG_DIRTY);
            put_aoid(&mut buf, holder);
            buf.put_u64(lease.as_nanos());
        }
        LeaseCall::Renew { holder, lease } => {
            buf.put_u8(TAG_RENEW);
            put_aoid(&mut buf, holder);
            buf.put_u64(lease.as_nanos());
        }
        LeaseCall::Clean { holder } => {
            buf.put_u8(TAG_CLEAN);
            put_aoid(&mut buf, holder);
        }
    }
    buf.as_slice().to_vec()
}

/// Decodes a lease call.
pub fn decode_call(bytes: &[u8]) -> Result<LeaseCall, DecodeError> {
    let mut buf = Bytes::from(bytes);
    if buf.remaining() < 1 {
        return Err(DecodeError::Truncated);
    }
    let tag = buf.get_u8();
    let holder = get_aoid(&mut buf)?;
    let call = match tag {
        TAG_DIRTY | TAG_RENEW => {
            if buf.remaining() < 8 {
                return Err(DecodeError::Truncated);
            }
            let lease = Dur::from_nanos(buf.get_u64());
            if tag == TAG_DIRTY {
                LeaseCall::Dirty { holder, lease }
            } else {
                LeaseCall::Renew { holder, lease }
            }
        }
        TAG_CLEAN => LeaseCall::Clean { holder },
        other => return Err(DecodeError::BadTag(other)),
    };
    if buf.remaining() != 0 {
        return Err(DecodeError::BadTag(0));
    }
    Ok(call)
}

/// Encodes a lease reply for the application plane.
pub fn encode_reply(reply: &LeaseReply) -> Vec<u8> {
    let mut buf = BytesMut::with_capacity(18);
    match *reply {
        LeaseReply::Granted { holder, lease } => {
            buf.put_u8(TAG_GRANTED);
            put_aoid(&mut buf, holder);
            buf.put_u64(lease.as_nanos());
        }
        LeaseReply::Released { holder } => {
            buf.put_u8(TAG_RELEASED);
            put_aoid(&mut buf, holder);
        }
    }
    buf.as_slice().to_vec()
}

/// Decodes a lease reply.
pub fn decode_reply(bytes: &[u8]) -> Result<LeaseReply, DecodeError> {
    let mut buf = Bytes::from(bytes);
    if buf.remaining() < 1 {
        return Err(DecodeError::Truncated);
    }
    let tag = buf.get_u8();
    let holder = get_aoid(&mut buf)?;
    let reply = match tag {
        TAG_GRANTED => {
            if buf.remaining() < 8 {
                return Err(DecodeError::Truncated);
            }
            LeaseReply::Granted {
                holder,
                lease: Dur::from_nanos(buf.get_u64()),
            }
        }
        TAG_RELEASED => LeaseReply::Released { holder },
        other => return Err(DecodeError::BadTag(other)),
    };
    if buf.remaining() != 0 {
        return Err(DecodeError::BadTag(0));
    }
    Ok(reply)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dirty_round_trip() {
        let m = RmiMessage::Dirty {
            holder: AoId::new(3, 4),
            lease: Dur::from_secs(60),
        };
        let e = encode(&m);
        assert_eq!(e.len() as u64, wire_size(&m));
        assert_eq!(decode(e).unwrap(), m);
    }

    #[test]
    fn clean_round_trip() {
        let m = RmiMessage::Clean {
            holder: AoId::new(7, 0),
        };
        let e = encode(&m);
        assert_eq!(e.len() as u64, wire_size(&m));
        assert_eq!(decode(e).unwrap(), m);
    }

    #[test]
    fn truncated_buffers_rejected() {
        let m = RmiMessage::Dirty {
            holder: AoId::new(1, 1),
            lease: Dur::from_secs(1),
        };
        let e = encode(&m);
        for len in 0..e.len() {
            assert!(decode(e.slice(0..len)).is_err());
        }
    }

    #[test]
    fn bad_tag_rejected() {
        let mut buf = BytesMut::new();
        buf.put_u8(0x00);
        buf.put_u32(0);
        buf.put_u32(0);
        assert!(matches!(decode(buf.freeze()), Err(DecodeError::BadTag(0))));
    }

    #[test]
    fn lease_calls_round_trip() {
        let calls = [
            LeaseCall::Dirty {
                holder: AoId::new(3, 4),
                lease: Dur::from_secs(60),
            },
            LeaseCall::Renew {
                holder: AoId::new(3, 4),
                lease: Dur::from_secs(60),
            },
            LeaseCall::Clean {
                holder: AoId::new(7, 0),
            },
        ];
        for call in calls {
            let e = encode_call(&call);
            assert_eq!(decode_call(&e).unwrap(), call);
            // Every strict prefix is rejected.
            for len in 0..e.len() {
                assert!(decode_call(&e[..len]).is_err(), "prefix {len} decoded");
            }
            // Trailing garbage too.
            let mut long = e.clone();
            long.push(0xEE);
            assert!(decode_call(&long).is_err());
        }
    }

    #[test]
    fn lease_replies_round_trip() {
        let replies = [
            LeaseReply::Granted {
                holder: AoId::new(1, 2),
                lease: Dur::from_secs(60),
            },
            LeaseReply::Released {
                holder: AoId::new(1, 2),
            },
        ];
        for reply in replies {
            let e = encode_reply(&reply);
            assert_eq!(decode_reply(&e).unwrap(), reply);
            for len in 0..e.len() {
                assert!(decode_reply(&e[..len]).is_err(), "prefix {len} decoded");
            }
        }
    }

    #[test]
    fn renew_is_a_dirty_to_the_server() {
        let holder = AoId::new(0, 1);
        let lease = Dur::from_secs(30);
        assert_eq!(
            LeaseCall::Renew { holder, lease }.as_message(),
            RmiMessage::Dirty { holder, lease }
        );
        assert_eq!(
            LeaseCall::Clean { holder }.as_message(),
            RmiMessage::Clean { holder }
        );
    }

    #[test]
    fn call_and_reply_tags_are_disjoint() {
        // A reply payload must never decode as a call (the transport's
        // reply flag is belt; this is suspenders).
        let reply = encode_reply(&LeaseReply::Granted {
            holder: AoId::new(1, 2),
            lease: Dur::from_secs(60),
        });
        assert!(decode_call(&reply).is_err());
        let call = encode_call(&LeaseCall::Dirty {
            holder: AoId::new(1, 2),
            lease: Dur::from_secs(60),
        });
        assert!(decode_reply(&call).is_err());
    }
}
