//! Chaos/conformance cost profile: what fault injection costs each
//! runtime, and how faults move the collection latency itself.
//!
//! Three measurements:
//!
//! 1. **Simulator throughput** — wall time to replay each canonical
//!    conformance scenario on `dgc-simnet` (they are the regression
//!    suite every transport PR reruns; they must stay cheap);
//! 2. **Proxy overhead** — wall-clock collection latency of the
//!    cross-node cycle on a plain localhost cluster vs the same cluster
//!    with *clean* chaos proxies interposed (the interposition tax);
//! 3. **Fault impact** — the same cycle under a 20 ms delay profile,
//!    showing that in-slack faults cost latency but not correctness.
//!
//! Run: `cargo bench -p dgc-bench --bench chaos_conformance`

use std::time::{Duration, Instant};

use dgc_conformance::{run_simnet, scenarios};
use dgc_core::config::DgcConfig;
use dgc_core::faults::{FaultProfile, Window};
use dgc_core::units::Dur;
use dgc_rt_net::{Cluster, NetConfig};

fn net_cfg() -> NetConfig {
    NetConfig::new(
        DgcConfig::builder()
            .ttb(Dur::from_millis(25))
            .tta(Dur::from_millis(80))
            .max_comm(Dur::from_millis(20))
            .build(),
    )
}

/// Wall time until a 2-node a ⇄ b cycle is fully collected.
fn cycle_latency(cluster: Cluster) -> Duration {
    let a = cluster.add_activity(0);
    let b = cluster.add_activity(1);
    cluster.add_ref(a, b);
    cluster.add_ref(b, a);
    cluster.set_idle(a, true);
    cluster.set_idle(b, true);
    let start = Instant::now();
    assert!(
        cluster.wait_until(Duration::from_secs(30), |t| t.len() == 2),
        "cycle not collected"
    );
    let elapsed = start.elapsed();
    cluster.shutdown();
    elapsed
}

/// Returns total simulator wall time across all scenarios, in ms.
fn simnet_scenarios() -> f64 {
    println!("simulator replay cost per canonical conformance scenario (seed 42):");
    let mut total_ms = 0.0;
    for s in scenarios::all() {
        let start = Instant::now();
        let verdict = run_simnet(&s, 42);
        let ms = start.elapsed().as_secs_f64() * 1e3;
        total_ms += ms;
        println!(
            "  {:<24} {:>8.1} ms wall   verdict {{wrongful: {}, leftover: {}}}",
            s.name, ms, verdict.wrongful_collection, verdict.leftover_garbage
        );
        assert_eq!(verdict, s.expect, "bench must not mask a regression");
    }
    total_ms
}

/// Returns `(direct, proxied, delayed)` median cycle latencies in ms.
fn socket_latency() -> (f64, f64, f64) {
    println!("\nsocket cycle collection latency (2 nodes, TTB 25 ms / TTA 80 ms), median of 3:");
    let median = |mut xs: Vec<Duration>| {
        xs.sort_unstable();
        xs[xs.len() / 2]
    };
    let runs = |mk: &dyn Fn() -> Cluster| median((0..3).map(|_| cycle_latency(mk())).collect());

    let plain = runs(&|| Cluster::listen_local(2, net_cfg()).expect("bind"));
    let proxied =
        runs(&|| Cluster::listen_local_chaos(2, net_cfg(), FaultProfile::none()).expect("bind"));
    let delayed = runs(&|| {
        let profile = FaultProfile::none().delay(
            None,
            None,
            Window::from_millis(0, 60_000),
            Dur::from_millis(20),
        );
        Cluster::listen_local_chaos(2, net_cfg(), profile).expect("bind")
    });
    println!(
        "  direct TCP            {:>8.1} ms",
        plain.as_secs_f64() * 1e3
    );
    println!(
        "  clean chaos proxies   {:>8.1} ms  (interposition tax)",
        proxied.as_secs_f64() * 1e3
    );
    println!(
        "  +20 ms delay profile  {:>8.1} ms  (in-slack fault: slower, still safe)",
        delayed.as_secs_f64() * 1e3
    );
    (
        plain.as_secs_f64() * 1e3,
        proxied.as_secs_f64() * 1e3,
        delayed.as_secs_f64() * 1e3,
    )
}

fn main() {
    let simnet_total_ms = simnet_scenarios();
    let (direct_ms, proxied_ms, delayed_ms) = socket_latency();
    dgc_bench::record(
        "chaos_conformance",
        &[
            ("simnet_all_scenarios_ms", simnet_total_ms),
            ("socket_cycle_direct_ms", direct_ms),
            ("socket_cycle_proxied_ms", proxied_ms),
            ("socket_cycle_delayed_ms", delayed_ms),
        ],
    );
}
