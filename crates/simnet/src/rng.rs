//! Seeded, forkable randomness.
//!
//! All randomness in a simulation flows from a single root seed so runs
//! are reproducible. Components fork independent streams (`fork`) so that
//! adding randomness in one module does not perturb another.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::time::SimDuration;

/// A deterministic random stream.
pub struct SimRng {
    inner: StdRng,
}

impl SimRng {
    /// Creates a stream from a 64-bit seed.
    pub fn from_seed(seed: u64) -> Self {
        SimRng {
            inner: StdRng::seed_from_u64(seed),
        }
    }

    /// Forks an independent stream labelled by `stream`. Two forks with
    /// different labels from the same parent produce unrelated sequences;
    /// forking never advances the parent in a way that depends on how the
    /// child is used.
    pub fn fork(&mut self, stream: u64) -> SimRng {
        let base: u64 = self.inner.random();
        // SplitMix-style mix of the label into the forked seed.
        let mut z = base ^ stream.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        SimRng::from_seed(z ^ (z >> 31))
    }

    /// Uniform integer in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "below(0) is meaningless");
        self.inner.random_range(0..bound)
    }

    /// Uniform integer in `[lo, hi)`.
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range");
        self.inner.random_range(lo..hi)
    }

    /// Bernoulli trial with probability `p`.
    pub fn chance(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        self.inner.random_bool(p)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit(&mut self) -> f64 {
        self.inner.random_range(0.0..1.0)
    }

    /// Random duration in `[0, d)`, used e.g. to desynchronise broadcast
    /// phases ("broadcasts are fortuitously synchronized" would bias the
    /// tree heights, §7.2).
    pub fn jitter(&mut self, d: SimDuration) -> SimDuration {
        if d.is_zero() {
            return SimDuration::ZERO;
        }
        SimDuration::from_nanos(self.below(d.as_nanos()))
    }

    /// Picks a uniformly random element of a non-empty slice.
    pub fn pick<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        assert!(!items.is_empty(), "pick from empty slice");
        &items[self.below(items.len() as u64) as usize]
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.below(i as u64 + 1) as usize;
            items.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_sequence() {
        let mut a = SimRng::from_seed(42);
        let mut b = SimRng::from_seed(42);
        for _ in 0..100 {
            assert_eq!(a.below(1000), b.below(1000));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SimRng::from_seed(1);
        let mut b = SimRng::from_seed(2);
        let xs: Vec<u64> = (0..32).map(|_| a.below(u64::MAX)).collect();
        let ys: Vec<u64> = (0..32).map(|_| b.below(u64::MAX)).collect();
        assert_ne!(xs, ys);
    }

    #[test]
    fn forks_are_deterministic_and_independent() {
        let mut root1 = SimRng::from_seed(7);
        let mut root2 = SimRng::from_seed(7);
        let mut f1 = root1.fork(3);
        let mut f2 = root2.fork(3);
        for _ in 0..10 {
            assert_eq!(f1.below(100), f2.below(100));
        }
        // Forks with different labels diverge.
        let mut root3 = SimRng::from_seed(7);
        let mut g = root3.fork(4);
        let a: Vec<u64> = (0..16).map(|_| f1.below(u64::MAX)).collect();
        let b: Vec<u64> = (0..16).map(|_| g.below(u64::MAX)).collect();
        assert_ne!(a, b);
    }

    #[test]
    fn range_respects_bounds() {
        let mut r = SimRng::from_seed(9);
        for _ in 0..1000 {
            let x = r.range(10, 20);
            assert!((10..20).contains(&x));
        }
    }

    #[test]
    fn jitter_below_bound() {
        let mut r = SimRng::from_seed(11);
        let d = SimDuration::from_secs(30);
        for _ in 0..100 {
            assert!(r.jitter(d) < d);
        }
        assert_eq!(r.jitter(SimDuration::ZERO), SimDuration::ZERO);
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = SimRng::from_seed(13);
        let mut v: Vec<u32> = (0..50).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn chance_extremes() {
        let mut r = SimRng::from_seed(17);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
    }

    #[test]
    fn pick_returns_member() {
        let mut r = SimRng::from_seed(19);
        let items = [1, 2, 3];
        for _ in 0..20 {
            assert!(items.contains(r.pick(&items)));
        }
    }
}
