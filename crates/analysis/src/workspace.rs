//! Deterministic workspace file walking.

use std::fs;
use std::path::{Path, PathBuf};

/// Directories never worth lexing.
const SKIP_DIRS: &[&str] = &["target", ".git", ".github", "node_modules"];

/// Paths (repo-relative prefixes) excluded from the workspace pass:
/// the golden fixtures are *supposed* to violate the rules.
const SKIP_PREFIXES: &[&str] = &["crates/analysis/tests/golden"];

/// The repository root, resolved from this crate's manifest dir so the
/// pass works from any CWD (cargo test sets CWD to the crate).
pub fn repo_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .unwrap_or_else(|_| Path::new(env!("CARGO_MANIFEST_DIR")).join("../.."))
}

/// Collects every `.rs` file under `root` as `(repo-relative path,
/// contents)`, sorted by path so findings are stable run to run.
pub fn collect_sources(root: &Path) -> Vec<(String, String)> {
    let mut files = Vec::new();
    walk(root, root, &mut files);
    files.sort_by(|a, b| a.0.cmp(&b.0));
    files
}

fn walk(root: &Path, dir: &Path, out: &mut Vec<(String, String)>) {
    let Ok(entries) = fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if SKIP_DIRS.contains(&name.as_ref()) || name.starts_with('.') {
                continue;
            }
            let rel = rel_path(root, &path);
            if SKIP_PREFIXES.iter().any(|p| rel.starts_with(p)) {
                continue;
            }
            walk(root, &path, out);
        } else if name.ends_with(".rs") {
            let rel = rel_path(root, &path);
            if SKIP_PREFIXES.iter().any(|p| rel.starts_with(p)) {
                continue;
            }
            if let Ok(contents) = fs::read_to_string(&path) {
                out.push((rel, contents));
            }
        }
    }
}

fn rel_path(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .components()
        .map(|c| c.as_os_str().to_string_lossy().into_owned())
        .collect::<Vec<_>>()
        .join("/")
}
