//! Criterion micro-benchmarks of the protocol hot paths: named-clock
//! operations, wire codec round trips, message handling throughput of a
//! `DgcState`, and end-to-end harness event throughput on a clique.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use dgc_core::clock::NamedClock;
use dgc_core::config::DgcConfig;
use dgc_core::harness::Harness;
use dgc_core::id::AoId;
use dgc_core::message::{DgcMessage, DgcResponse};
use dgc_core::protocol::DgcState;
use dgc_core::units::{Dur, Time};
use dgc_core::wire;

fn cfg() -> DgcConfig {
    DgcConfig::builder()
        .ttb(Dur::from_secs(30))
        .tta(Dur::from_secs(61))
        .max_comm(Dur::from_millis(500))
        .build()
}

fn bench_clock(c: &mut Criterion) {
    let a = NamedClock {
        value: 41,
        owner: AoId::new(3, 7),
    };
    let b = NamedClock {
        value: 41,
        owner: AoId::new(3, 8),
    };
    c.bench_function("clock/merge+bump", |bench| {
        bench.iter(|| black_box(a.merged_with(black_box(b)).bumped_by(AoId::new(1, 1))))
    });
}

fn bench_codec(c: &mut Criterion) {
    let msg = DgcMessage {
        sender: AoId::new(9, 9),
        clock: NamedClock {
            value: 123,
            owner: AoId::new(4, 4),
        },
        consensus: true,
        sender_ttb: Dur::from_secs(30),
    };
    c.bench_function("wire/message-roundtrip", |bench| {
        bench.iter(|| {
            let enc = wire::encode_message(black_box(&msg));
            black_box(wire::decode_message(enc).expect("valid"))
        })
    });
    let resp = DgcResponse {
        responder: AoId::new(2, 2),
        clock: NamedClock {
            value: 9,
            owner: AoId::new(2, 2),
        },
        has_parent: true,
        consensus_reached: false,
        depth: Some(4),
    };
    c.bench_function("wire/response-roundtrip", |bench| {
        bench.iter(|| {
            let enc = wire::encode_response(black_box(&resp));
            black_box(wire::decode_response(enc).expect("valid"))
        })
    });
}

fn bench_on_message(c: &mut Criterion) {
    c.bench_function("protocol/on_message", |bench| {
        let mut state = DgcState::new(AoId::new(0, 0), Time::ZERO, cfg());
        let msg = DgcMessage {
            sender: AoId::new(1, 0),
            clock: NamedClock {
                value: 5,
                owner: AoId::new(1, 0),
            },
            consensus: false,
            sender_ttb: Dur::from_secs(30),
        };
        let mut t = 0u64;
        bench.iter(|| {
            t += 1;
            black_box(state.on_message(Time::from_nanos(t), black_box(&msg)))
        })
    });
}

fn bench_tick_fanout(c: &mut Criterion) {
    c.bench_function("protocol/on_tick-64-referenced", |bench| {
        let mut state = DgcState::new(AoId::new(0, 0), Time::ZERO, cfg());
        for i in 1..=64 {
            state.on_stub_deserialized(AoId::new(i, 0));
        }
        let mut t = 0u64;
        bench.iter(|| {
            t += 30;
            black_box(state.on_tick(Time::from_secs(t), false))
        })
    });
}

fn bench_harness_clique(c: &mut Criterion) {
    c.bench_function("harness/clique-16-until-collected", |bench| {
        bench.iter(|| {
            let mut h = Harness::new(Dur::from_millis(1));
            let ids = h.add_many(16, cfg());
            for i in 0..16 {
                for j in 0..16 {
                    if i != j {
                        h.add_ref(ids[i], ids[j]);
                    }
                }
            }
            for id in &ids {
                h.set_idle(*id, true);
            }
            h.run_for(Dur::from_secs(600));
            assert_eq!(h.alive_count(), 0);
        })
    });
}

criterion_group!(
    benches,
    bench_clock,
    bench_codec,
    bench_on_message,
    bench_tick_fanout,
    bench_harness_clique
);
criterion_main!(benches);
