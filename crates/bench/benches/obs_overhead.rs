//! Telemetry-plane overhead — the acceptance floor the tentpole set:
//! instrumentation with **tracing disabled** must cost ≤ 3% on the hot
//! path it instruments.
//!
//! The measured path is the egress plane's enqueue/poll loop — the
//! single busiest instrumented code in either runtime: every protocol
//! unit of every node crosses an [`Outbox`]. With obs attached each
//! flush buffers two histogram samples locally and delta-syncs the
//! counter mirrors on the outbox's sparse cadence, while each enqueue
//! passes a disabled trace-guard (one relaxed load — the same pattern
//! `rt-net`'s worker and the grid's event loop use). The traffic shape
//! is the shipped batching deployment: background heartbeats/gossip
//! dominate, an app send every ~29 units, frames of dozens of units —
//! the regime §4.2's bandwidth argument lives in.
//!
//! Methodology: interleaved trials, minimum-of-N per mode (the minimum
//! is the noise-robust statistic for a throughput microbench), with
//! warmup. Both modes run identical inputs and are checksummed against
//! each other so the comparison cannot drift.
//!
//! Run: `cargo bench -p dgc-bench --bench obs_overhead`

use std::time::Instant;

use dgc_core::egress::{EgressClass, EgressObs, FlushPolicy, Outbox};
use dgc_core::units::{Dur, Time};
use dgc_obs::{Registry, TimeSource, TraceLevel};

/// Enqueues per trial: large enough that one trial runs for
/// milliseconds (amortizing timer noise), small enough for a quick
/// default run. `DGC_BENCH_RUNS` does not apply here; trials are fixed.
const OPS: u64 = 200_000;
const TRIALS: usize = 9;
const DESTS: u64 = 8;

fn policy() -> FlushPolicy {
    FlushPolicy {
        flush_on_app: true,
        max_delay: Dur::from_millis(2),
        max_bytes: 64 * 1024,
        max_items: 64,
    }
}

/// One trial: drives the outbox through `OPS` enqueues (mixed classes,
/// several destinations, periodic polls) and returns `(seconds, items
/// flushed)`. `registry` attaches the telemetry mirrors and the
/// disabled trace-guard the instrumented runtimes execute per unit.
fn trial(registry: Option<&Registry>) -> (f64, u64) {
    let mut outbox: Outbox<u64> = Outbox::new(policy());
    if let Some(reg) = registry {
        outbox.set_obs(EgressObs::new(reg));
    }
    let mut flushed = 0u64;
    let mut t = Time::ZERO;
    let start = Instant::now();
    for i in 0..OPS {
        if let Some(reg) = registry {
            // The allocation-free disabled-tracing path every
            // instrumented call site pays: one relaxed load, no string.
            if reg.tracer().enabled(TraceLevel::Debug) {
                reg.trace(TraceLevel::Debug, "enqueue", format!("unit {i}"));
            }
        }
        let class = if i % 29 == 0 {
            EgressClass::AppRequest
        } else if i % 2 == 1 {
            EgressClass::DgcMessage
        } else {
            EgressClass::Gossip
        };
        if let Some(f) = outbox.enqueue(t, (i % DESTS) as u32, class, 24 + (i % 64), i) {
            flushed += f.items.len() as u64;
        }
        if i % 16 == 15 {
            t = t + Dur::from_nanos(100_000);
            for f in outbox.poll(t) {
                flushed += f.items.len() as u64;
            }
        }
    }
    for f in outbox.flush_all() {
        flushed += f.items.len() as u64;
    }
    (start.elapsed().as_secs_f64(), flushed)
}

fn main() {
    // Tracing *off* (the default deployment): the floor under test.
    let registry = Registry::new(TimeSource::wall());
    assert!(!registry.tracer().enabled(TraceLevel::Info));

    // Warmup both paths (allocator, branch predictors, lazy handles).
    let (_, base_items) = trial(None);
    let (_, obs_items) = trial(Some(&registry));
    assert_eq!(base_items, obs_items, "modes must do identical work");

    let mut base = f64::INFINITY;
    let mut with_obs = f64::INFINITY;
    for _ in 0..TRIALS {
        base = base.min(trial(None).0);
        with_obs = with_obs.min(trial(Some(&registry)).0);
    }
    let overhead = dgc_bench::overhead_pct(base, with_obs);
    let ns_per_op = |secs: f64| secs * 1e9 / OPS as f64;
    println!("egress hot loop, {OPS} enqueues, min of {TRIALS} interleaved trials:");
    println!("  plain outbox:        {:>7.1} ns/op", ns_per_op(base));
    println!(
        "  obs attached (trace off): {:>7.1} ns/op  ({overhead:+.2}%)",
        ns_per_op(with_obs)
    );

    // The mirrors did run: every flush recorded its size sample.
    let snap = registry.snapshot();
    assert!(
        snap.histogram("egress.flush_items").count > 0,
        "instrumented mode recorded nothing"
    );

    assert!(
        overhead <= 3.0,
        "acceptance: telemetry with tracing disabled must cost <=3% on the egress \
         hot loop, measured {overhead:.2}%"
    );
    println!("  acceptance floor met: {overhead:.2}% <= 3%");

    dgc_bench::record(
        "obs_overhead",
        &[
            ("plain_ns_per_op", ns_per_op(base)),
            ("obs_ns_per_op", ns_per_op(with_obs)),
            ("overhead_pct", overhead),
        ],
    );
}
