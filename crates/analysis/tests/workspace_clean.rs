//! The workspace gate: the full lint pass over the repository source
//! must report **zero** unannotated findings. A new violation either
//! gets fixed or gets an inline
//! `// dgc-analysis: allow(<rule>): <reason>` — there is no third
//! state, and reason-less or unknown-rule directives fail here too
//! (`bad-allow`).

#[test]
fn workspace_has_zero_unannotated_findings() {
    let report = dgc_analysis::analyze_workspace();
    assert!(
        report.is_clean(),
        "the lint pass found unannotated violations — fix them or annotate \
         with `// dgc-analysis: allow(<rule>): <reason>`:\n{report}"
    );
}
