//! Lightweight structured trace log — now a thin adapter over the
//! workspace-wide tracing plane ([`dgc_obs::Tracer`]).
//!
//! The simulator and the middleware record notable events (terminations,
//! consensus steps, clock bumps…) through this historical API; since the
//! telemetry refactor the events land in a bounded `dgc-obs` ring with
//! virtual-nanosecond timestamps, so one vocabulary (and one exporter
//! set) covers the grid and the socket runtime alike. Tracing is off by
//! default and filtered by level to keep large benchmarks
//! allocation-free.

use std::fmt;

pub use dgc_obs::TraceLevel;
use dgc_obs::Tracer;

use crate::time::SimTime;

/// One recorded event, viewed with simulated timestamps.
#[derive(Debug, Clone)]
pub struct TraceRecord {
    /// When the event happened (simulated time).
    pub at: SimTime,
    /// Level it was recorded at.
    pub level: TraceLevel,
    /// Short category tag, e.g. `"terminate"`, `"clock-bump"`.
    pub tag: &'static str,
    /// Free-form details.
    pub detail: String,
}

impl fmt::Display for TraceRecord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] {:<14} {}", self.at, self.tag, self.detail)
    }
}

fn to_record(ev: dgc_obs::TraceEvent) -> TraceRecord {
    TraceRecord {
        at: SimTime::from_nanos(ev.at_nanos),
        level: ev.level,
        tag: ev.tag,
        detail: ev.detail,
    }
}

/// Ring capacity backing a [`TraceLog`]: generous enough that the
/// historical "append-only log" reading of small scenarios still holds,
/// bounded so soak runs cannot grow without limit.
pub const TRACELOG_CAPACITY: usize = 65_536;

/// An append-only trace log with level filtering (adapter over
/// [`dgc_obs::Tracer`]; see the module docs).
#[derive(Debug, Clone)]
pub struct TraceLog {
    tracer: Tracer,
}

impl TraceLog {
    /// Creates a log that records events at or below `level`.
    pub fn new(level: TraceLevel) -> Self {
        TraceLog {
            tracer: Tracer::new(level, TRACELOG_CAPACITY),
        }
    }

    /// A disabled log.
    pub fn off() -> Self {
        TraceLog::new(TraceLevel::Off)
    }

    /// Wraps an existing tracer, sharing its ring and level — this is
    /// how the grid's log and its per-proc registries speak through one
    /// event stream.
    pub fn with_tracer(tracer: Tracer) -> Self {
        TraceLog { tracer }
    }

    /// The shared tracer (for exporters and registry wiring).
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// Current filter level.
    pub fn level(&self) -> TraceLevel {
        self.tracer.level()
    }

    /// True if records at `level` would be kept (callers can skip building
    /// the detail string otherwise).
    pub fn enabled(&self, level: TraceLevel) -> bool {
        self.tracer.enabled(level)
    }

    /// Records an event if the level passes the filter.
    pub fn record(&self, at: SimTime, level: TraceLevel, tag: &'static str, detail: String) {
        self.tracer.event(at.as_nanos(), level, tag, detail);
    }

    /// Convenience for `Info` records.
    pub fn info(&self, at: SimTime, tag: &'static str, detail: String) {
        self.record(at, TraceLevel::Info, tag, detail);
    }

    /// Convenience for `Debug` records.
    pub fn debug(&self, at: SimTime, tag: &'static str, detail: String) {
        self.record(at, TraceLevel::Debug, tag, detail);
    }

    /// All retained records so far, in order.
    pub fn records(&self) -> Vec<TraceRecord> {
        self.tracer.events().into_iter().map(to_record).collect()
    }

    /// Records whose tag equals `tag`.
    pub fn with_tag(&self, tag: &str) -> impl Iterator<Item = TraceRecord> {
        let tag = tag.to_string();
        self.records().into_iter().filter(move |r| r.tag == tag)
    }

    /// Discards all records (the filter level is kept).
    pub fn clear(&self) {
        self.tracer.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn off_records_nothing() {
        let log = TraceLog::off();
        log.info(SimTime::ZERO, "x", "y".into());
        log.debug(SimTime::ZERO, "x", "y".into());
        assert!(log.records().is_empty());
        assert!(!log.enabled(TraceLevel::Info));
    }

    #[test]
    fn info_filters_debug() {
        let log = TraceLog::new(TraceLevel::Info);
        log.info(SimTime::ZERO, "a", "1".into());
        log.debug(SimTime::ZERO, "b", "2".into());
        assert_eq!(log.records().len(), 1);
        assert_eq!(log.records()[0].tag, "a");
    }

    #[test]
    fn debug_records_everything() {
        let log = TraceLog::new(TraceLevel::Debug);
        log.info(SimTime::from_secs(1), "a", "1".into());
        log.debug(SimTime::from_secs(2), "b", "2".into());
        assert_eq!(log.records().len(), 2);
    }

    #[test]
    fn with_tag_filters() {
        let log = TraceLog::new(TraceLevel::Info);
        log.info(SimTime::ZERO, "terminate", "ao1".into());
        log.info(SimTime::ZERO, "clock-bump", "ao2".into());
        log.info(SimTime::ZERO, "terminate", "ao3".into());
        assert_eq!(log.with_tag("terminate").count(), 2);
    }

    #[test]
    fn clear_keeps_level() {
        let log = TraceLog::new(TraceLevel::Debug);
        log.info(SimTime::ZERO, "a", String::new());
        log.clear();
        assert!(log.records().is_empty());
        assert_eq!(log.level(), TraceLevel::Debug);
    }

    #[test]
    fn display_contains_tag_and_detail() {
        let r = TraceRecord {
            at: SimTime::from_secs(2),
            level: TraceLevel::Info,
            tag: "terminate",
            detail: "ao 7 (cyclic)".into(),
        };
        let s = r.to_string();
        assert!(s.contains("terminate"));
        assert!(s.contains("ao 7 (cyclic)"));
    }

    #[test]
    fn shares_ring_with_wrapped_tracer() {
        let tracer = Tracer::new(TraceLevel::Info, 8);
        let log = TraceLog::with_tracer(tracer.clone());
        log.info(SimTime::from_secs(3), "spawn", "ao 1".into());
        assert_eq!(tracer.events().len(), 1);
        assert_eq!(tracer.events()[0].at_nanos, 3_000_000_000);
        assert_eq!(log.records()[0].at, SimTime::from_secs(3));
    }
}
