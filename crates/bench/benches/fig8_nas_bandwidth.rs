//! Fig. 8 — NAS bandwidth overhead table.
//!
//! Regenerates the paper's bandwidth table: per kernel (CG, EP, FT), the
//! total cross-process traffic without and with the DGC, averaged over
//! `DGC_BENCH_RUNS` seeds, plus the overhead percentage. Expected shape:
//! heavily communicating kernels (CG, FT) amortize the collector to a
//! few percent, while EP — almost silent on the wire — shows an overhead
//! of several hundred percent.

use dgc_bench::{mean, mib, nas_series, overhead_pct, std_dev, Scale, Table};

fn main() {
    let scale = Scale::from_env();
    println!("=== Fig. 8: NAS bandwidth overhead (scale: {scale:?}) ===\n");
    let series = nas_series(scale);

    let mut table = Table::new(vec![
        "Kernel",
        "No DGC avg",
        "No DGC std",
        "DGC avg",
        "DGC std",
        "Overhead",
    ]);
    for s in &series {
        let base: Vec<f64> = s.control.iter().map(|o| mib(o.total_bytes)).collect();
        let with: Vec<f64> = s.dgc.iter().map(|o| mib(o.total_bytes)).collect();
        table.row(vec![
            format!("{:?}", s.kernel).to_uppercase(),
            format!("{:.2} MB", mean(&base)),
            format!("{:.2} MB", std_dev(&base)),
            format!("{:.2} MB", mean(&with)),
            format!("{:.2} MB", std_dev(&with)),
            format!("{:.2} %", overhead_pct(mean(&base), mean(&with))),
        ]);
        let violations: usize = s.dgc.iter().map(|o| o.violations).sum();
        assert_eq!(violations, 0, "oracle violations in {:?}", s.kernel);
    }
    table.print();

    println!("\nPaper (Fig. 8, class C on 256 AOs over 128 Grid'5000 nodes):");
    let mut paper = Table::new(vec!["Kernel", "No DGC avg", "DGC avg", "Overhead"]);
    paper.row(vec!["CG", "194351.81 MB", "223639.83 MB", "15.07 %"]);
    paper.row(vec!["EP", "69.75 MB", "717.92 MB", "929.28 %"]);
    paper.row(vec!["FT", "41999.48 MB", "48187.78 MB", "14.73 %"]);
    paper.print();
    println!(
        "\nShape check: EP overhead must dwarf CG/FT overhead (the DGC cost is\n\
         independent of the communication pattern; see EXPERIMENTS.md for the\n\
         envelope calibration notes)."
    );
}
