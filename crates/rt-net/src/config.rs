//! Transport-level knobs for a [`crate::node::NetNode`].

use std::time::Duration;

use dgc_core::config::DgcConfig;
use dgc_membership::MembershipConfig;

/// Configuration of one network node: the DGC parameters its activities
/// run with plus the link behaviour of the transport.
#[derive(Debug, Clone, Copy)]
pub struct NetConfig {
    /// Protocol parameters handed to every hosted [`dgc_core::DgcState`].
    pub dgc: DgcConfig,
    /// How long an outbound link lingers after its first queued item to
    /// let co-scheduled heartbeats pile into the same frame. Zero still
    /// coalesces whatever is already queued (opportunistic batching);
    /// the default 1 ms comfortably covers one event-loop tick sweep at
    /// millisecond TTBs without adding measurable latency at the paper's
    /// 30 s TTB.
    pub batch_window: Duration,
    /// When false, every protocol unit ships in its own frame — the
    /// one-RMI-call-per-message behaviour the paper measured; kept as a
    /// switch so the `net_batching` bench can quantify the difference.
    pub batching: bool,
    /// First reconnect delay after a link drops; doubles per failure.
    pub reconnect_base: Duration,
    /// Reconnect delay cap.
    pub reconnect_max: Duration,
    /// Consecutive connection failures after which queued items for the
    /// peer are reported to the local protocol as send failures and the
    /// link goes **terminal** — a `PeerUnreachable` verdict instead of
    /// an endless retry (referencers then drop the unreachable edges,
    /// as the paper's collector does when an RMI call fails
    /// permanently). Reached only after the full backoff ladder, so
    /// chaos-length partitions reconnect long before it fires.
    pub fail_after_attempts: u32,
    /// When set, the node runs a `dgc-membership` engine: gossip
    /// digests piggyback on frames, peers are discovered through
    /// [`crate::NetNode::join`] seeds, and dead verdicts feed the
    /// collectors' send-failure path. `None` keeps the static
    /// registration behaviour.
    pub membership: Option<MembershipConfig>,
}

impl NetConfig {
    /// Defaults around a given DGC configuration.
    pub fn new(dgc: DgcConfig) -> Self {
        NetConfig {
            dgc,
            batch_window: Duration::from_millis(1),
            batching: true,
            reconnect_base: Duration::from_millis(10),
            reconnect_max: Duration::from_secs(1),
            fail_after_attempts: 20,
            membership: None,
        }
    }

    /// Enables the membership layer with `m` timings.
    pub fn membership(mut self, m: MembershipConfig) -> Self {
        self.membership = Some(m);
        self
    }

    /// Sets the batching window.
    pub fn batch_window(mut self, w: Duration) -> Self {
        self.batch_window = w;
        self
    }

    /// Enables or disables frame batching.
    pub fn batching(mut self, on: bool) -> Self {
        self.batching = on;
        self
    }
}

impl Default for NetConfig {
    fn default() -> Self {
        NetConfig::new(DgcConfig::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_batch() {
        let c = NetConfig::default();
        assert!(c.batching);
        assert!(c.batch_window >= Duration::from_micros(100));
        assert!(c.fail_after_attempts > 0);
    }
}
