//! virtual-path: crates/membership/src/fixture.rs
// Golden fixture: the unordered-iter rule.

struct Directory {
    members: HashMap<u32, MemberInfo>,
    tombstones: HashSet<u32>,
}

fn broadcast_order_leak(d: &Directory) {
    for (id, info) in d.members.iter() {
        emit(id, info);
    }
}

fn values_leak(d: &Directory) -> Vec<u32> {
    d.tombstones.iter().copied().collect()
}

fn point_lookup_is_fine(d: &Directory, id: u32) -> Option<&MemberInfo> {
    d.members.get(&id)
}

fn annotated(d: &Directory) -> usize {
    // dgc-analysis: allow(unordered-iter): count is order-insensitive
    d.members.iter().count()
}

fn btree_is_fine(m: &BTreeMap<u32, u64>) {
    for (k, v) in m.iter() {
        emit(k, v);
    }
}
