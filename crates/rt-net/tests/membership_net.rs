//! Membership over real sockets: seed bootstrap, failure detection,
//! crash-rejoin incarnations, and the rejoined node's participation in
//! the DGC — the acceptance path of the seed-node gossip directory.

use std::time::Duration;

use dgc_core::config::DgcConfig;
use dgc_core::units::Dur;
use dgc_membership::{MembershipConfig, NodeStatus, Transition};
use dgc_rt_net::{Cluster, NetConfig};

fn cfg() -> NetConfig {
    NetConfig::new(
        DgcConfig::builder()
            .ttb(Dur::from_millis(25))
            .tta(Dur::from_millis(80))
            .max_comm(Dur::from_millis(20))
            .build(),
    )
    .membership(MembershipConfig {
        gossip_interval: Dur::from_millis(50),
        suspect_after: Dur::from_millis(250),
        dead_after: Dur::from_millis(750),
        full_sync_every: 10,
    })
}

/// All `n` nodes alive in `records`.
fn full_alive(records: &[dgc_membership::NodeRecord], n: u32) -> bool {
    records.len() == n as usize && records.iter().all(|r| r.status == NodeStatus::Alive)
}

#[test]
fn three_nodes_converge_from_one_seed_address() {
    // Nodes 1 and 2 are handed ONLY node 0's address. Node 2 must still
    // learn node 1 exists — and where it listens — through gossip.
    let cluster = Cluster::join_local(3, cfg()).expect("bind cluster");
    for node in 0..3 {
        assert!(
            cluster.wait_membership_until(node, Duration::from_secs(10), |r| full_alive(r, 3)),
            "node {node} never converged: {:?}",
            cluster.member_records(node)
        );
    }
    // The discovered address is the real one, not hearsay.
    let records = cluster.member_records(2).expect("up");
    let of_1 = records.iter().find(|r| r.node == 1).expect("learned 1");
    assert_eq!(of_1.addr, Some(cluster.addr(1)));
    assert_eq!(of_1.incarnation, 1, "first lives run as incarnation 1");
    cluster.shutdown();
}

#[test]
fn crash_is_buried_and_a_higher_incarnation_rejoin_recovers() {
    let cluster = Cluster::join_local(3, cfg()).expect("bind cluster");
    for node in 0..3 {
        assert!(cluster.wait_membership_until(node, Duration::from_secs(10), |r| full_alive(r, 3)));
    }
    cluster.crash_node(2);
    assert!(cluster.is_down(2));
    for node in 0..2 {
        assert!(
            cluster.wait_membership_until(node, Duration::from_secs(10), |r| {
                r.iter()
                    .any(|x| x.node == 2 && x.status == NodeStatus::Dead)
            }),
            "node {node} never buried node 2: {:?}",
            cluster.member_records(node)
        );
    }
    // Restart under incarnation 2 — a fresh port, rejoined through the
    // seed; its record must supersede the corpse everywhere.
    cluster.restart_node(2, 2).expect("restart");
    for node in 0..3 {
        assert!(
            cluster.wait_membership_until(node, Duration::from_secs(10), |r| {
                r.iter()
                    .any(|x| x.node == 2 && x.status == NodeStatus::Alive && x.incarnation == 2)
                    && full_alive(r, 3)
            }),
            "node {node} never saw the rejoin: {:?}",
            cluster.member_records(node)
        );
    }
    // The survivor observed the full lifecycle as an event stream.
    let events = cluster.membership_events(0);
    let about_2: Vec<Transition> = events
        .iter()
        .filter(|e| e.node == 2)
        .map(|e| e.transition)
        .collect();
    assert!(
        about_2.contains(&Transition::Dead) && about_2.ends_with(&[Transition::Alive]),
        "node 0 lifecycle view of node 2: {about_2:?}"
    );
    cluster.shutdown();
}

#[test]
fn rejoined_node_runs_the_full_collection_cycle() {
    // The end-to-end acceptance: after a crash + rejoin (new
    // incarnation, new port, gossiped address), a cross-node garbage
    // cycle through the REJOINED node must still be collected — the
    // TTB/TTA machinery resumes over links dialed from gossip, in both
    // directions.
    let cluster = Cluster::join_local(3, cfg()).expect("bind cluster");
    for node in 0..3 {
        assert!(cluster.wait_membership_until(node, Duration::from_secs(10), |r| full_alive(r, 3)));
    }
    cluster.crash_node(2);
    assert!(
        cluster.wait_membership_until(0, Duration::from_secs(10), |r| {
            r.iter()
                .any(|x| x.node == 2 && x.status == NodeStatus::Dead)
        })
    );
    cluster.restart_node(2, 2).expect("restart");
    for node in 0..3 {
        assert!(
            cluster.wait_membership_until(node, Duration::from_secs(15), |r| full_alive(r, 3)),
            "node {node} never reconverged: {:?}",
            cluster.member_records(node)
        );
    }
    let a = cluster.add_activity(0);
    let c = cluster.add_activity(2);
    cluster.add_ref(a, c);
    cluster.add_ref(c, a);
    cluster.set_idle(a, true);
    cluster.set_idle(c, true);
    assert!(
        cluster.wait_until(Duration::from_secs(20), |t| {
            t.iter().any(|x| x.ao == a) && t.iter().any(|x| x.ao == c)
        }),
        "cycle through the rejoined node must fall: {:?}",
        cluster.terminated()
    );
    assert!(
        cluster.terminated().iter().any(|t| t.reason.is_cyclic()),
        "it is a cycle: consensus must have fired"
    );
    cluster.shutdown();
}

#[test]
fn a_crashed_seed_no_longer_strands_rejoins() {
    // 4 nodes, 2 seeds (0 and 1). Seed 0 — the node every pre-multi-seed
    // join went through — crashes for good; node 3 then crashes and
    // must still rejoin, bootstrapping through surviving seed 1.
    let cluster = Cluster::join_local_seeded(4, 2, cfg()).expect("bind cluster");
    for node in 0..4 {
        assert!(
            cluster.wait_membership_until(node, Duration::from_secs(10), |r| full_alive(r, 4)),
            "node {node} never converged: {:?}",
            cluster.member_records(node)
        );
    }
    cluster.crash_node(0);
    cluster.crash_node(3);
    assert!(
        cluster.wait_membership_until(1, Duration::from_secs(10), |r| {
            r.iter()
                .any(|x| x.node == 3 && x.status == NodeStatus::Dead)
        }),
        "seed 1 never buried node 3: {:?}",
        cluster.member_records(1)
    );
    cluster.restart_node(3, 2).expect("restart through seed 1");
    for node in [1, 2, 3] {
        assert!(
            cluster.wait_membership_until(node, Duration::from_secs(15), |r| {
                r.iter()
                    .any(|x| x.node == 3 && x.status == NodeStatus::Alive && x.incarnation == 2)
            }),
            "node {node} never saw the rejoin: {:?}",
            cluster.member_records(node)
        );
    }
    cluster.shutdown();
}

#[test]
fn a_restarted_seed_rejoins_through_the_other_seed_and_refreshes_its_address() {
    // The seed itself dies and comes back (fresh port, incarnation 2):
    // with a second seed alive this must converge, and later rejoins
    // must dial the seed's *new* address, not the corpse's.
    let cluster = Cluster::join_local_seeded(3, 2, cfg()).expect("bind cluster");
    for node in 0..3 {
        assert!(cluster.wait_membership_until(node, Duration::from_secs(10), |r| full_alive(r, 3)));
    }
    let old_seed_addrs = cluster.seed_addrs();
    cluster.crash_node(0);
    assert!(
        cluster.wait_membership_until(1, Duration::from_secs(10), |r| {
            r.iter()
                .any(|x| x.node == 0 && x.status == NodeStatus::Dead)
        })
    );
    cluster
        .restart_node(0, 2)
        .expect("seed restarts via seed 1");
    for node in 0..3 {
        assert!(
            cluster.wait_membership_until(node, Duration::from_secs(15), |r| {
                r.iter()
                    .any(|x| x.node == 0 && x.status == NodeStatus::Alive && x.incarnation == 2)
            }),
            "node {node} never adopted the seed's rejoin: {:?}",
            cluster.member_records(node)
        );
    }
    let new_seed_addrs = cluster.seed_addrs();
    assert_ne!(
        old_seed_addrs[0], new_seed_addrs[0],
        "the restarted seed listens on a fresh port"
    );
    assert_eq!(new_seed_addrs[0], cluster.addr(0));
    // And the refreshed directory actually bootstraps: crash node 2 and
    // rejoin it through the *new* seed set.
    cluster.crash_node(2);
    cluster
        .restart_node(2, 2)
        .expect("rejoin via refreshed seeds");
    assert!(
        cluster.wait_membership_until(0, Duration::from_secs(15), |r| {
            r.iter()
                .any(|x| x.node == 2 && x.status == NodeStatus::Alive && x.incarnation == 2)
        }),
        "rejoin through the refreshed seed set failed: {:?}",
        cluster.member_records(0)
    );
    cluster.shutdown();
}

#[test]
fn graceful_leave_is_announced_and_buries_without_suspicion_delay() {
    let cluster = Cluster::join_local(3, cfg()).expect("bind cluster");
    for node in 0..3 {
        assert!(cluster.wait_membership_until(node, Duration::from_secs(10), |r| full_alive(r, 3)));
    }
    // An activity on the leaver holds one on node 1: the Left verdict
    // must cut that edge (on_node_dead) so the orphan falls.
    let w = cluster.add_activity(2);
    let u = cluster.add_activity(1);
    cluster.add_ref(w, u);
    cluster.set_idle(u, true);
    std::thread::sleep(Duration::from_millis(200));
    assert!(!cluster.is_terminated(u), "held by busy w before the leave");
    cluster.leave_node(2);
    assert!(cluster.is_down(2));
    for node in 0..2 {
        assert!(
            cluster.wait_membership_until(node, Duration::from_secs(5), |r| {
                r.iter()
                    .any(|x| x.node == 2 && x.status == NodeStatus::Left)
            }),
            "node {node} never heard the farewell: {:?}",
            cluster.member_records(node)
        );
        assert!(cluster
            .membership_events(node)
            .iter()
            .any(|e| e.node == 2 && e.transition == Transition::Left));
    }
    assert!(
        cluster.wait_until(Duration::from_secs(10), |t| t.iter().any(|x| x.ao == u)),
        "orphaned by the leave: must fall as correct collection: {:?}",
        cluster.terminated()
    );
    cluster.shutdown();
}

#[test]
fn crash_without_membership_goes_terminal_not_retry_forever() {
    // Satellite regression: with membership disabled, a permanently
    // unreachable peer must surface a *terminal* verdict (send failures
    // + on_node_dead) after fail_after_attempts — the link thread exits
    // instead of spinning on backoff.
    let config = NetConfig {
        fail_after_attempts: 3,
        membership: None,
        ..cfg()
    };
    let cluster = Cluster::listen_local(2, config).expect("bind cluster");
    let holder = cluster.add_activity(0);
    let target = cluster.add_activity(1);
    cluster.add_ref(holder, target);
    cluster.crash_node(1);
    // The holder stays busy (never collectable) but must shed the edge:
    // queued heartbeats surface as send failures once the link goes
    // terminal.
    assert!(
        cluster.wait_stats_until(Duration::from_secs(15), |s| s[0].send_failures > 0),
        "terminal link must surface send failures: {:?}",
        cluster.stats()
    );
    cluster.shutdown();
}
