//! # dgc-simnet — deterministic discrete-event grid simulator
//!
//! This crate is the hardware substrate of the reproduction of *"Garbage
//! Collecting the Grid: A Complete DGC for Activities"* (Caromel,
//! Chazarain, Henrio — Middleware 2007). The paper evaluates its
//! distributed garbage collector on a 128-node, three-site slice of
//! Grid'5000; this crate replaces that physical testbed with a
//! deterministic simulator:
//!
//! * [`time`] — virtual nanosecond clock ([`SimTime`], [`SimDuration`]);
//! * [`queue`] — deterministic event queue with stable tie-breaking;
//! * [`topology`] — sites and processes, including the exact Grid'5000
//!   preset of the paper (§5.1) via [`Topology::grid5000`];
//! * [`network`] — reliable FIFO per-pair links with realistic latencies
//!   and per-class byte metering (the paper's instrumented SOCKS proxy);
//! * [`traffic`] — the meters themselves;
//! * [`fault`] — link-delay and process-pause injection for the hard
//!   real-time discussion of §4.2;
//! * [`rng`] — seeded, forkable randomness so every run is reproducible;
//! * [`trace`] — an in-memory structured trace log.
//!
//! Higher layers (`dgc-activeobj`) build the active-object middleware and
//! the DGC driver on top of these pieces.
//!
//! ## Example
//!
//! ```
//! use dgc_simnet::{Network, ProcId, SimTime, Topology, TrafficClass};
//!
//! let mut net = Network::new(Topology::grid5000());
//! // A 1 KiB application request from Bordeaux to Sophia:
//! let delivered = net.send(
//!     SimTime::ZERO,
//!     ProcId(0),
//!     ProcId(49),
//!     TrafficClass::AppRequest,
//!     1024,
//! );
//! assert!(delivered > SimTime::ZERO);
//! assert_eq!(net.meter().total_bytes(), 1024);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod fault;
pub mod network;
pub mod queue;
pub mod rng;
pub mod time;
pub mod topology;
pub mod trace;
pub mod traffic;

pub use fault::{FaultPlan, LinkDrop, LinkFault, LinkPartition, ProcessPause};
pub use network::{Delivery, Network};
pub use queue::{EventId, EventQueue};
pub use rng::SimRng;
pub use time::{SimDuration, SimTime};
pub use topology::{ProcId, Site, SiteId, Topology};
pub use trace::{TraceLevel, TraceLog, TraceRecord};
pub use traffic::{format_mib, TrafficClass, TrafficMeter};
