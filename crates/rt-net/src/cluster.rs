//! Multi-node test/demo driver: a whole DGC deployment on localhost.
//!
//! Spawns N [`NetNode`]s on ephemeral `127.0.0.1` ports, cross-registers
//! their listen addresses, and exposes the same driver surface as
//! `dgc_rt_thread::ThreadGrid` — create activities, flip idleness, wire
//! reference edges, watch terminations — except every DGC message and
//! response now crosses a real TCP socket in a length-prefixed batched
//! frame.

use std::net::SocketAddr;
use std::sync::Arc;
use std::time::{Duration, Instant};

use dgc_core::faults::FaultProfile;
use dgc_core::id::AoId;

use crate::chaos::{ChaosProxy, ChaosStatsSnapshot};
use crate::config::NetConfig;
use crate::node::{Event, NetNode, Terminated};
use crate::stats::NetStatsSnapshot;

/// A running localhost cluster of DGC nodes.
pub struct Cluster {
    nodes: Vec<NetNode>,
    proxies: Vec<ChaosProxy>,
    /// Scenario clock origin, when the cluster was built with chaos.
    epoch: Instant,
}

impl Cluster {
    /// Starts `n` nodes, each with `config`, fully peered.
    pub fn listen_local(n: u32, config: NetConfig) -> std::io::Result<Cluster> {
        let mut nodes = Vec::with_capacity(n as usize);
        for id in 0..n {
            nodes.push(NetNode::bind(id, config)?);
        }
        let addrs: Vec<(u32, SocketAddr)> =
            nodes.iter().map(|nd| (nd.node_id(), nd.addr())).collect();
        for node in &nodes {
            for (id, addr) in &addrs {
                if *id != node.node_id() {
                    node.add_peer(*id, *addr);
                }
            }
        }
        Ok(Cluster {
            nodes,
            proxies: Vec::new(),
            epoch: Instant::now(),
        })
    }

    /// Starts `n` nodes fully peered **through chaos proxies**: every
    /// directed pair's traffic crosses a [`ChaosProxy`] replaying
    /// `profile`, and the profile's node pauses are scheduled against
    /// the node event loops. The scenario clock (the profile's
    /// [`dgc_core::units::Time`] axis) starts when this returns.
    pub fn listen_local_chaos(
        n: u32,
        config: NetConfig,
        profile: FaultProfile,
    ) -> std::io::Result<Cluster> {
        let mut nodes = Vec::with_capacity(n as usize);
        for id in 0..n {
            nodes.push(NetNode::bind(id, config)?);
        }
        let epoch = Instant::now();
        let profile = Arc::new(profile);
        let mut proxies = Vec::with_capacity((n as usize) * (n as usize).saturating_sub(1));
        for node in &nodes {
            for peer in &nodes {
                if node.node_id() == peer.node_id() {
                    continue;
                }
                let proxy = ChaosProxy::spawn(
                    node.node_id(),
                    peer.node_id(),
                    peer.addr(),
                    Arc::clone(&profile),
                    epoch,
                )?;
                node.add_peer(peer.node_id(), proxy.addr());
                proxies.push(proxy);
            }
        }
        // Schedule stop-the-world pauses: one detached timer thread per
        // pause window sends the pause into the node's event loop at the
        // window start. A cluster that shuts down earlier just leaves
        // the send to fail against a closed loop.
        for pause in profile.node_pauses() {
            let Some(node) = nodes.iter().find(|nd| nd.node_id() == pause.node) else {
                continue;
            };
            let tx = node.event_sender();
            let start = Duration::from_nanos(pause.window.start.as_nanos());
            // Absolute deadline on the scenario clock: overlapping
            // windows extend one stall to the latest end (the
            // covering-union `FaultPlan`/`pause_end` realizes) rather
            // than sleeping their widths back to back.
            let until = epoch + Duration::from_nanos(pause.window.end.as_nanos());
            let _ = std::thread::Builder::new()
                .name(format!("dgc-chaos-pause-{}", pause.node))
                .spawn(move || {
                    std::thread::sleep(start.saturating_sub(epoch.elapsed()));
                    let _ = tx.send(Event::Pause { until });
                });
        }
        Ok(Cluster {
            nodes,
            proxies,
            epoch,
        })
    }

    /// The scenario clock origin (chaos clusters: when proxies started).
    pub fn epoch(&self) -> Instant {
        self.epoch
    }

    /// Aggregated chaos-proxy counters (all zero for a plain cluster).
    pub fn chaos_stats(&self) -> ChaosStatsSnapshot {
        let mut total = ChaosStatsSnapshot::default();
        for p in &self.proxies {
            let s = p.stats();
            total.forwarded += s.forwarded;
            total.dropped += s.dropped;
            total.delayed += s.delayed;
            total.reordered += s.reordered;
            total.severed += s.severed;
            total.corrupted += s.corrupted;
        }
        total
    }

    /// Stops this node's world for `d` (see [`NetNode::pause_for`]).
    pub fn pause_node(&self, node: u32, d: Duration) {
        self.nodes[node as usize].pause_for(d);
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True if the cluster has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The node hosting id-namespace `node`.
    pub fn node(&self, node: u32) -> &NetNode {
        &self.nodes[node as usize]
    }

    /// Creates an activity on `node` (initially busy); returns its id.
    pub fn add_activity(&self, node: u32) -> AoId {
        self.nodes[node as usize].add_activity()
    }

    /// Declares `ao` idle or busy.
    pub fn set_idle(&self, ao: AoId, idle: bool) {
        self.nodes[ao.node as usize].set_idle(ao, idle);
    }

    /// Adds the reference edge `from → to` (any pair of nodes).
    pub fn add_ref(&self, from: AoId, to: AoId) {
        self.nodes[from.node as usize].add_ref(from, to);
    }

    /// Drops the reference edge `from → to`.
    pub fn drop_ref(&self, from: AoId, to: AoId) {
        self.nodes[from.node as usize].drop_ref(from, to);
    }

    /// All terminations recorded so far, across nodes.
    pub fn terminated(&self) -> Vec<Terminated> {
        let mut all: Vec<Terminated> = self.nodes.iter().flat_map(|n| n.terminated()).collect();
        all.sort_by_key(|t| t.ao);
        all
    }

    /// True if `ao` has terminated.
    pub fn is_terminated(&self, ao: AoId) -> bool {
        self.nodes[ao.node as usize]
            .terminated()
            .iter()
            .any(|t| t.ao == ao)
    }

    /// Blocks until `predicate` holds over the merged termination log or
    /// the deadline passes; returns whether it held.
    pub fn wait_until(
        &self,
        deadline: Duration,
        predicate: impl Fn(&[Terminated]) -> bool,
    ) -> bool {
        crate::node::poll_until(deadline, || predicate(&self.terminated()))
    }

    /// Blocks until `predicate` holds over the per-node transport
    /// counters or the deadline passes; returns whether it held. The
    /// polling twin of [`Cluster::wait_until`] for tests that assert on
    /// traffic instead of terminations — no fixed sleeps required.
    pub fn wait_stats_until(
        &self,
        deadline: Duration,
        predicate: impl Fn(&[NetStatsSnapshot]) -> bool,
    ) -> bool {
        crate::node::poll_until(deadline, || predicate(&self.stats()))
    }

    /// Per-node transport counters.
    pub fn stats(&self) -> Vec<NetStatsSnapshot> {
        self.nodes.iter().map(|n| n.stats()).collect()
    }

    /// Transport counters summed over all nodes.
    pub fn total_stats(&self) -> NetStatsSnapshot {
        let mut total = NetStatsSnapshot::default();
        for s in self.stats() {
            total.frames_sent += s.frames_sent;
            total.bytes_sent += s.bytes_sent;
            total.items_sent += s.items_sent;
            total.frames_received += s.frames_received;
            total.bytes_received += s.bytes_received;
            total.items_received += s.items_received;
            total.reconnects += s.reconnects;
            total.send_failures += s.send_failures;
            total.decode_errors += s.decode_errors;
        }
        total
    }

    /// Stops every node and proxy and joins their threads. Safe to call
    /// (or to skip — dropping the cluster does the same work) after a
    /// failed assertion: dead links and half-closed proxies are already
    /// tolerated by every join path.
    pub fn shutdown(self) {
        drop(self);
    }
}

impl Drop for Cluster {
    fn drop(&mut self) {
        // Nodes first: their link threads are the proxies' clients, so
        // closing them lets proxy pumps drain out on EOF instead of
        // being killed mid-frame.
        for node in self.nodes.drain(..) {
            node.shutdown();
        }
        for proxy in self.proxies.drain(..) {
            proxy.shutdown();
        }
    }
}
