//! Node-level framing: the envelope DGC protocol units travel in when
//! they cross a real socket.
//!
//! The sans-io codec in [`dgc_core::wire`] knows how to lay out one
//! message or response; a *node* link needs more: who is connecting
//! (hello), which activity a unit is addressed to, notification that a
//! destination activity no longer exists, and — the paper's fig. 8 cost
//! lever — **batching**: every unit the egress plane flushes toward one
//! remote node (DGC heartbeats, membership digests, application
//! payloads) shares a single frame and its overhead.
//!
//! Layout (big-endian), length-prefixed for TCP:
//!
//! ```text
//! frame    := len(4) payload            len = payload size in bytes
//! payload  := 0xF0 version(1) node(4)                      -- Hello
//!           | 0xF1 count(4) item*                          -- Batch
//!           | 0xF2 nonce(16)                               -- AuthInit
//!           | 0xF3 nonce(16) mac(32)                       -- AuthChallenge
//!           | 0xF4 mac(32)                                 -- AuthProof
//! item     := 0x01 from(8) to(8) message                   -- Dgc
//!           | 0x02 from(8) to(8) response                  -- Resp
//!           | 0x03 holder(8) target(8)                     -- SendFailure
//!           | 0x04 from(4) to(4) digest                    -- Gossip
//!           | 0x05 from(8) to(8) flags(1) tenant(4)
//!                  len(4) bytes                            -- App
//! ```
//!
//! The `Auth*` frames carry the `dgc-plane` pre-shared-key handshake
//! (HMAC-SHA256 challenge/response) that follows `Hello` on links with
//! authentication configured; they are handshake-only and never appear
//! inside a batch.
//!
//! `message` / `response` / `digest` reuse the self-delimiting
//! encodings of [`dgc_core::wire`] and [`dgc_membership::wire`] byte
//! for byte, so the bandwidth accounting of the simulator and of the
//! socket transport agree on the cost of a protocol unit.

use bytes::{Buf, BufMut, Bytes, BytesMut};

use dgc_core::egress::EgressClass;
use dgc_core::id::AoId;
use dgc_core::message::{DgcMessage, DgcResponse};
use dgc_core::wire::{self, DecodeError};
use dgc_membership::wire as membership_wire;
use dgc_membership::Digest;

/// Protocol version carried by [`Frame::Hello`]; bumped on any layout
/// change so mismatched nodes fail the handshake instead of
/// misinterpreting frames. Version 3: link-authentication handshake
/// frames and a tenant tag on application items.
pub const PROTOCOL_VERSION: u8 = 3;

/// Frame tag bytes (disjoint from `dgc_core::wire`'s unit tags).
const TAG_HELLO: u8 = 0xF0;
const TAG_BATCH: u8 = 0xF1;
const TAG_AUTH_INIT: u8 = 0xF2;
const TAG_AUTH_CHALLENGE: u8 = 0xF3;
const TAG_AUTH_PROOF: u8 = 0xF4;

/// Length of an auth handshake nonce (`dgc_plane::auth::NONCE_LEN`).
pub const AUTH_NONCE_LEN: usize = 16;

/// Length of an auth handshake MAC (`dgc_plane::auth::MAC_LEN`).
pub const AUTH_MAC_LEN: usize = 32;

const ITEM_DGC: u8 = 0x01;
const ITEM_RESP: u8 = 0x02;
const ITEM_FAIL: u8 = 0x03;
const ITEM_GOSSIP: u8 = 0x04;
const ITEM_APP: u8 = 0x05;

const APP_FLAG_REPLY: u8 = 0b0000_0001;

/// Hard cap on one application payload inside a frame (anything larger
/// should stream on its own connection, not ride the shared frames).
pub const MAX_APP_PAYLOAD: usize = 1 << 20;

/// Wildcard destination for the gossip item a **join probe** sends: a
/// joining node dials a seed *address* before it knows the seed's node
/// id, so its introduction is addressed "to whoever answers here". The
/// receiving node accepts anycast gossip as its own; everything else
/// misaddressed is still rejected (see `node::Worker::handle_item`).
pub const GOSSIP_ANYCAST: u32 = u32::MAX;

/// Frames larger than this are rejected as corrupt rather than buffered
/// (a batch of 64 Ki heartbeats is already ~3 MiB; nothing legitimate
/// comes close).
pub const MAX_FRAME_LEN: usize = 8 << 20;

/// Hard cap on items per batch, mirrored by the encoder.
pub const MAX_BATCH_ITEMS: u32 = 1 << 20;

/// One protocol unit inside a [`Frame::Batch`]: activity-addressed DGC
/// traffic, or a node-addressed membership digest piggybacking on the
/// same frames.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Item {
    /// A DGC message (TTB heartbeat) from `from` to `to`.
    Dgc {
        /// Sending activity.
        from: AoId,
        /// Destination activity, hosted on the receiving node.
        to: AoId,
        /// The protocol unit.
        message: DgcMessage,
    },
    /// A DGC response travelling back to a referencer.
    Resp {
        /// Responding activity.
        from: AoId,
        /// Destination activity (the referencer).
        to: AoId,
        /// The protocol unit.
        response: DgcResponse,
    },
    /// The destination activity of an earlier message no longer exists;
    /// `holder` should drop its reference to `target` (the transport
    /// analogue of an RMI call failing with `NoSuchObjectException`).
    SendFailure {
        /// Referencer holding the now-dangling reference.
        holder: AoId,
        /// The activity that is gone.
        target: AoId,
    },
    /// A membership gossip digest (`dgc-membership` delta anti-entropy),
    /// batched into the same frames as the DGC units it rides with.
    Gossip {
        /// Sending node.
        from: u32,
        /// Destination node, or [`GOSSIP_ANYCAST`] on a join probe.
        to: u32,
        /// The versioned delta (or full-sync) digest.
        digest: Digest,
    },
    /// An opaque application unit (request or reply payload) sharing
    /// the egress frames — the traffic everything else piggybacks on.
    App {
        /// Sending activity.
        from: AoId,
        /// Destination activity, hosted on the receiving node.
        to: AoId,
        /// True for a reply (travels back over the socket the
        /// requester's node opened, like DGC responses).
        reply: bool,
        /// Tenant the payload travels under (`dgc_plane::TenantId`;
        /// `0` is the default tenant). Stamped by the sender's
        /// pipeline and re-checked by the receiver's.
        tenant: u32,
        /// The serialized call/value, opaque to the transport. Decoded
        /// items hold a refcounted window into the receive buffer (no
        /// per-payload copy on the read path).
        payload: Bytes,
    },
}

impl Item {
    /// The node the item must be routed to.
    pub fn destination_node(&self) -> u32 {
        match self {
            Item::Dgc { to, .. } | Item::Resp { to, .. } | Item::App { to, .. } => to.node,
            Item::SendFailure { holder, .. } => holder.node,
            Item::Gossip { to, .. } => *to,
        }
    }

    /// The egress class the item is metered and flushed under.
    pub fn class(&self) -> EgressClass {
        match self {
            Item::Dgc { .. } => EgressClass::DgcMessage,
            Item::Resp { .. } => EgressClass::DgcResponse,
            Item::SendFailure { .. } => EgressClass::Control,
            Item::Gossip { .. } => EgressClass::Gossip,
            Item::App { reply: false, .. } => EgressClass::AppRequest,
            Item::App { reply: true, .. } => EgressClass::AppReply,
        }
    }

    /// Encoded size of the item inside a batch, in bytes (tag and all
    /// fields) — what the egress plane charges against its byte bound.
    pub fn wire_size(&self) -> u64 {
        match self {
            Item::Dgc { .. } => 1 + 8 + 8 + wire::message_wire_size(),
            Item::Resp { response, .. } => {
                1 + 8 + 8 + wire::response_wire_size(response.depth.is_some())
            }
            Item::SendFailure { .. } => 1 + 8 + 8,
            Item::Gossip { digest, .. } => 1 + 4 + 4 + membership_wire::digest_wire_size(digest),
            Item::App { payload, .. } => 1 + 8 + 8 + 1 + 4 + 4 + payload.len() as u64,
        }
    }
}

/// A node-level envelope.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Frame {
    /// Link handshake: the connecting node identifies itself.
    Hello {
        /// Sender's node id (the `AoId::node` namespace it hosts).
        node: u32,
        /// Frame-layout version; see [`PROTOCOL_VERSION`].
        version: u8,
    },
    /// One or more protocol units for activities on the receiving node.
    Batch(Vec<Item>),
    /// Auth handshake, step 1: the connecting side's fresh nonce
    /// (follows its `Hello` when the link requires authentication).
    AuthInit {
        /// Initiator nonce.
        nonce: [u8; AUTH_NONCE_LEN],
    },
    /// Auth handshake, step 2: the accepting side's nonce plus its
    /// proof of key possession over both nonces.
    AuthChallenge {
        /// Responder nonce.
        nonce: [u8; AUTH_NONCE_LEN],
        /// `HMAC(key, "dgc-auth-s2c" ‖ nonce_c ‖ nonce_s)`.
        mac: [u8; AUTH_MAC_LEN],
    },
    /// Auth handshake, step 3: the connecting side's proof; on
    /// verification the link is authenticated and batches may flow.
    AuthProof {
        /// `HMAC(key, "dgc-auth-c2s" ‖ nonce_c ‖ nonce_s)`.
        mac: [u8; AUTH_MAC_LEN],
    },
}

fn put_item(buf: &mut impl BufMut, item: &Item) {
    match item {
        Item::Dgc { from, to, message } => {
            buf.put_u8(ITEM_DGC);
            wire::put_aoid(buf, *from);
            wire::put_aoid(buf, *to);
            wire::put_message(buf, message);
        }
        Item::Resp { from, to, response } => {
            buf.put_u8(ITEM_RESP);
            wire::put_aoid(buf, *from);
            wire::put_aoid(buf, *to);
            wire::put_response(buf, response);
        }
        Item::SendFailure { holder, target } => {
            buf.put_u8(ITEM_FAIL);
            wire::put_aoid(buf, *holder);
            wire::put_aoid(buf, *target);
        }
        Item::Gossip { from, to, digest } => {
            buf.put_u8(ITEM_GOSSIP);
            buf.put_u32(*from);
            buf.put_u32(*to);
            membership_wire::put_digest(buf, digest);
        }
        Item::App {
            from,
            to,
            reply,
            tenant,
            payload,
        } => {
            // dgc-analysis: allow(hot-path-panic): encode-side contract: a wire-limit breach is a local bug, not remote input
            assert!(
                payload.len() <= MAX_APP_PAYLOAD,
                "app payload of {} bytes exceeds MAX_APP_PAYLOAD",
                payload.len()
            );
            buf.put_u8(ITEM_APP);
            wire::put_aoid(buf, *from);
            wire::put_aoid(buf, *to);
            buf.put_u8(if *reply { APP_FLAG_REPLY } else { 0 });
            buf.put_u32(*tenant);
            buf.put_u32(payload.len() as u32);
            buf.put_slice(payload);
        }
    }
}

fn get_item(buf: &mut Bytes) -> Result<Item, DecodeError> {
    if buf.remaining() < 1 {
        return Err(DecodeError::Truncated);
    }
    match buf.get_u8() {
        ITEM_DGC => {
            let from = wire::get_aoid(buf)?;
            let to = wire::get_aoid(buf)?;
            let message = wire::get_message(buf)?;
            Ok(Item::Dgc { from, to, message })
        }
        ITEM_RESP => {
            let from = wire::get_aoid(buf)?;
            let to = wire::get_aoid(buf)?;
            let response = wire::get_response(buf)?;
            Ok(Item::Resp { from, to, response })
        }
        ITEM_FAIL => {
            let holder = wire::get_aoid(buf)?;
            let target = wire::get_aoid(buf)?;
            Ok(Item::SendFailure { holder, target })
        }
        ITEM_GOSSIP => {
            if buf.remaining() < 8 {
                return Err(DecodeError::Truncated);
            }
            let from = buf.get_u32();
            let to = buf.get_u32();
            let digest = membership_wire::get_digest(buf)?;
            Ok(Item::Gossip { from, to, digest })
        }
        ITEM_APP => {
            let from = wire::get_aoid(buf)?;
            let to = wire::get_aoid(buf)?;
            if buf.remaining() < 1 + 4 + 4 {
                return Err(DecodeError::Truncated);
            }
            let flags = buf.get_u8();
            if flags & !APP_FLAG_REPLY != 0 {
                return Err(DecodeError::BadTag(flags));
            }
            let tenant = buf.get_u32();
            let len = buf.get_u32() as usize;
            if len > MAX_APP_PAYLOAD {
                return Err(DecodeError::BadTag(ITEM_APP));
            }
            if buf.remaining() < len {
                return Err(DecodeError::Truncated);
            }
            let payload = buf.split_to(len);
            Ok(Item::App {
                from,
                to,
                reply: flags & APP_FLAG_REPLY != 0,
                tenant,
                payload,
            })
        }
        other => Err(DecodeError::BadTag(other)),
    }
}

/// Encodes `frame` *without* the length prefix (the payload).
pub fn encode_payload(frame: &Frame) -> Bytes {
    let mut buf = BytesMut::with_capacity(64);
    match frame {
        Frame::Hello { node, version } => {
            buf.put_u8(TAG_HELLO);
            buf.put_u8(*version);
            buf.put_u32(*node);
        }
        Frame::Batch(items) => put_batch(&mut buf, items),
        Frame::AuthInit { nonce } => {
            buf.put_u8(TAG_AUTH_INIT);
            buf.put_slice(nonce);
        }
        Frame::AuthChallenge { nonce, mac } => {
            buf.put_u8(TAG_AUTH_CHALLENGE);
            buf.put_slice(nonce);
            buf.put_slice(mac);
        }
        Frame::AuthProof { mac } => {
            buf.put_u8(TAG_AUTH_PROOF);
            buf.put_slice(mac);
        }
    }
    buf.freeze()
}

fn get_array<const N: usize>(buf: &mut Bytes) -> Result<[u8; N], DecodeError> {
    if buf.remaining() < N {
        return Err(DecodeError::Truncated);
    }
    let mut out = [0u8; N];
    buf.copy_to_slice(&mut out);
    Ok(out)
}

/// Single source of truth for the batch payload layout, shared by
/// [`encode_payload`] and [`encode_batch_frame`].
fn put_batch(buf: &mut impl BufMut, items: &[Item]) {
    // dgc-analysis: allow(hot-path-panic): encode-side contract: a wire-limit breach is a local bug, not remote input
    assert!(
        items.len() <= MAX_BATCH_ITEMS as usize,
        "batch of {} items exceeds MAX_BATCH_ITEMS",
        items.len()
    );
    buf.put_u8(TAG_BATCH);
    buf.put_u32(items.len() as u32);
    for item in items {
        put_item(buf, item);
    }
}

/// Decodes a payload produced by [`encode_payload`]. Trailing garbage
/// after a structurally complete frame is an error (`BadTag`), since a
/// length-prefixed link never legitimately concatenates payloads.
pub fn decode_payload(mut buf: Bytes) -> Result<Frame, DecodeError> {
    if buf.remaining() < 1 {
        return Err(DecodeError::Truncated);
    }
    let frame = match buf.get_u8() {
        TAG_HELLO => {
            if buf.remaining() < 5 {
                return Err(DecodeError::Truncated);
            }
            let version = buf.get_u8();
            let node = buf.get_u32();
            Frame::Hello { node, version }
        }
        TAG_BATCH => {
            if buf.remaining() < 4 {
                return Err(DecodeError::Truncated);
            }
            let count = buf.get_u32();
            if count > MAX_BATCH_ITEMS {
                return Err(DecodeError::BadTag(TAG_BATCH));
            }
            let mut items = Vec::with_capacity(count.min(4096) as usize);
            for _ in 0..count {
                items.push(get_item(&mut buf)?);
            }
            Frame::Batch(items)
        }
        TAG_AUTH_INIT => Frame::AuthInit {
            nonce: get_array(&mut buf)?,
        },
        TAG_AUTH_CHALLENGE => Frame::AuthChallenge {
            nonce: get_array(&mut buf)?,
            mac: get_array(&mut buf)?,
        },
        TAG_AUTH_PROOF => Frame::AuthProof {
            mac: get_array(&mut buf)?,
        },
        other => return Err(DecodeError::BadTag(other)),
    };
    if buf.remaining() != 0 {
        return Err(DecodeError::BadTag(0));
    }
    Ok(frame)
}

/// Encodes `frame` with its 4-byte length prefix — exactly the bytes a
/// link writes to the socket. The payload is encoded in place after a
/// placeholder prefix that is backfilled, so no intermediate buffer is
/// copied.
pub fn encode_frame(frame: &Frame) -> Vec<u8> {
    let mut out = vec![0u8; 4];
    match frame {
        Frame::Hello { node, version } => {
            out.put_u8(TAG_HELLO);
            out.put_u8(*version);
            out.put_u32(*node);
        }
        Frame::Batch(items) => put_batch(&mut out, items),
        Frame::AuthInit { nonce } => {
            out.put_u8(TAG_AUTH_INIT);
            out.put_slice(nonce);
        }
        Frame::AuthChallenge { nonce, mac } => {
            out.put_u8(TAG_AUTH_CHALLENGE);
            out.put_slice(nonce);
            out.put_slice(mac);
        }
        Frame::AuthProof { mac } => {
            out.put_u8(TAG_AUTH_PROOF);
            out.put_slice(mac);
        }
    }
    let len = (out.len() - 4) as u32;
    // dgc-analysis: allow(hot-path-panic): the 4-byte length placeholder is written before any payload
    out[..4].copy_from_slice(&len.to_be_bytes());
    out
}

/// Exact encoded length of [`encode_batch_frame`]`(items)` — length
/// prefix, batch header and every item — computed from the
/// [`Item::wire_size`] model without encoding anything. Lets writers
/// size buffers (and benches predict bandwidth) without a sizing pass
/// over a cloned frame.
pub fn batch_frame_len(items: &[Item]) -> usize {
    FRAME_OVERHEAD as usize + items.iter().map(|i| i.wire_size() as usize).sum::<usize>()
}

/// Encodes a batch frame (length prefix included) straight from a
/// borrowed slice, so link writers can frame their queues without
/// cloning items into a `Frame`. Allocates exactly
/// [`batch_frame_len`]`(items)` bytes up front.
pub fn encode_batch_frame(items: &[Item]) -> Vec<u8> {
    let total = batch_frame_len(items);
    let mut out = Vec::with_capacity(total);
    out.put_u32((total - 4) as u32);
    put_batch(&mut out, items);
    debug_assert_eq!(out.len(), total, "wire_size model drifted");
    out
}

/// Length-prefix framing overhead plus batch header, in bytes: what one
/// extra frame costs over adding an item to an existing batch. Used by
/// the `net_batching` bench to predict fig. 8-style savings.
pub const FRAME_OVERHEAD: u64 = 4 + 1 + 4;

/// Items per written frame, kept orders of magnitude under both
/// [`MAX_BATCH_ITEMS`] and [`MAX_FRAME_LEN`]. Oversized flushes are
/// split across frames at this boundary.
pub const MAX_ITEMS_PER_FRAME: usize = 4096;

/// Payload bytes per written frame (item encodings, headers excluded):
/// half of [`MAX_FRAME_LEN`], so no flush — whatever the egress
/// policy's `max_bytes` allows — can produce a frame the receiver's
/// decoder rejects as oversized. A single item always fits
/// ([`MAX_APP_PAYLOAD`] is far smaller).
pub const MAX_BYTES_PER_FRAME: u64 = (MAX_FRAME_LEN as u64) / 2;

/// How many leading items of `items` fit in one wire frame: up to
/// [`MAX_ITEMS_PER_FRAME`] items or [`MAX_BYTES_PER_FRAME`] encoded
/// payload bytes, whichever bound bites first. Always at least 1 for a
/// non-empty slice (a single item can never exceed the byte bound, so
/// oversized queues always make progress). Both I/O engines split
/// their write queues at exactly this boundary, and `frame_props`
/// fuzzes it directly.
pub fn split_len(items: &[Item]) -> usize {
    let mut end = 0;
    let mut bytes = 0u64;
    while end < items.len().min(MAX_ITEMS_PER_FRAME) {
        // dgc-analysis: allow(hot-path-panic): end < items.len() is the loop bound
        bytes += items[end].wire_size();
        if end > 0 && bytes > MAX_BYTES_PER_FRAME {
            break;
        }
        end += 1;
    }
    end
}

/// Incremental frame extractor: feed arbitrary byte chunks as they
/// arrive from a stream, take complete frames out. This is the exact
/// decode path the node's socket readers use, so the property tests that
/// split encodings at arbitrary boundaries exercise production code.
///
/// The decode path is **zero-copy**: once enough bytes have
/// accumulated, the whole accumulation buffer is frozen into a
/// refcounted [`Bytes`] and every frame — including each `App` payload
/// inside it — is carved out as a window into that one allocation.
/// Only a partial trailing frame is ever copied (back into the
/// accumulator when more bytes arrive), so cost scales with fragment
/// remainders, not with payload volume.
#[derive(Debug, Default)]
pub struct FrameDecoder {
    /// Bytes still accumulating toward a complete frame. At most one of
    /// `acc`/`carry` is non-empty.
    acc: Vec<u8>,
    /// Unconsumed remainder of a frozen accumulation buffer; frames are
    /// split off its front without copying.
    carry: Bytes,
}

impl FrameDecoder {
    /// Empty decoder.
    pub fn new() -> Self {
        FrameDecoder::default()
    }

    /// Appends raw bytes from the stream.
    pub fn push(&mut self, chunk: &[u8]) {
        if !self.carry.is_empty() {
            debug_assert!(self.acc.is_empty());
            self.acc.extend_from_slice(self.carry.as_slice());
            self.carry = Bytes::new();
        }
        self.acc.extend_from_slice(chunk);
    }

    /// Extracts the next complete frame, if any.
    ///
    /// `Ok(None)` means "need more bytes"; an `Err` means the stream is
    /// corrupt and the connection should be dropped.
    pub fn next_frame(&mut self) -> Result<Option<Frame>, DecodeError> {
        if self.carry.is_empty() {
            if self.acc.len() < 4 {
                return Ok(None);
            }
            let len =
                // dgc-analysis: allow(hot-path-panic): acc.len() >= 4 is checked just above
                u32::from_be_bytes([self.acc[0], self.acc[1], self.acc[2], self.acc[3]]) as usize;
            if len > MAX_FRAME_LEN {
                return Err(DecodeError::BadTag(0));
            }
            if self.acc.len() < 4 + len {
                return Ok(None);
            }
            // A complete frame is in: freeze the accumulator and decode
            // out of the shared buffer from here on.
            self.carry = Bytes::from(std::mem::take(&mut self.acc));
        }
        let head = self.carry.as_slice();
        if head.len() < 4 {
            return Ok(None);
        }
        // dgc-analysis: allow(hot-path-panic): head.len() >= 4 is checked just above
        let len = u32::from_be_bytes([head[0], head[1], head[2], head[3]]) as usize;
        if len > MAX_FRAME_LEN {
            return Err(DecodeError::BadTag(0));
        }
        if head.len() < 4 + len {
            return Ok(None);
        }
        self.carry.split_to(4);
        let payload = self.carry.split_to(len);
        decode_payload(payload).map(Some)
    }

    /// Bytes buffered but not yet consumed as frames.
    pub fn pending_bytes(&self) -> usize {
        self.acc.len() + self.carry.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dgc_core::clock::NamedClock;
    use dgc_core::units::Dur;

    fn msg(n: u32) -> DgcMessage {
        DgcMessage {
            sender: AoId::new(n, 1),
            clock: NamedClock {
                value: 9,
                owner: AoId::new(n, 1),
            },
            consensus: false,
            sender_ttb: Dur::from_millis(25),
        }
    }

    fn resp(n: u32) -> DgcResponse {
        DgcResponse {
            responder: AoId::new(n, 0),
            clock: NamedClock::initial(AoId::new(n, 0)),
            has_parent: true,
            consensus_reached: false,
            depth: Some(2),
        }
    }

    fn sample_batch() -> Frame {
        Frame::Batch(vec![
            Item::Dgc {
                from: AoId::new(0, 1),
                to: AoId::new(1, 0),
                message: msg(0),
            },
            Item::Resp {
                from: AoId::new(1, 0),
                to: AoId::new(0, 1),
                response: resp(1),
            },
            Item::SendFailure {
                holder: AoId::new(0, 1),
                target: AoId::new(1, 9),
            },
            Item::Gossip {
                from: 0,
                to: 1,
                digest: Digest {
                    version: 7,
                    ack: 3,
                    full: false,
                    records: vec![
                        dgc_membership::NodeRecord {
                            node: 0,
                            incarnation: 2,
                            status: dgc_membership::NodeStatus::Alive,
                            addr: Some("127.0.0.1:40100".parse().unwrap()),
                        },
                        dgc_membership::NodeRecord {
                            node: 2,
                            incarnation: 1,
                            status: dgc_membership::NodeStatus::Dead,
                            addr: None,
                        },
                    ],
                },
            },
            Item::App {
                from: AoId::new(0, 1),
                to: AoId::new(1, 0),
                reply: false,
                tenant: 4,
                payload: vec![0xAB; 48].into(),
            },
            Item::App {
                from: AoId::new(1, 0),
                to: AoId::new(0, 1),
                reply: true,
                tenant: 0,
                payload: Bytes::new(),
            },
        ])
    }

    #[test]
    fn hello_round_trips() {
        let f = Frame::Hello {
            node: 7,
            version: PROTOCOL_VERSION,
        };
        assert_eq!(decode_payload(encode_payload(&f)).unwrap(), f);
    }

    #[test]
    fn batch_round_trips() {
        let f = sample_batch();
        assert_eq!(decode_payload(encode_payload(&f)).unwrap(), f);
    }

    #[test]
    fn auth_frames_round_trip() {
        let frames = [
            Frame::AuthInit { nonce: [0x11; 16] },
            Frame::AuthChallenge {
                nonce: [0x22; 16],
                mac: [0x33; 32],
            },
            Frame::AuthProof { mac: [0x44; 32] },
        ];
        for f in frames {
            assert_eq!(decode_payload(encode_payload(&f)).unwrap(), f);
        }
    }

    #[test]
    fn truncated_auth_frames_are_detected() {
        let payload = encode_payload(&Frame::AuthChallenge {
            nonce: [7; 16],
            mac: [9; 32],
        });
        for len in 0..payload.len() {
            assert!(
                decode_payload(payload.slice(0..len)).is_err(),
                "auth payload truncated to {len} must not decode"
            );
        }
    }

    #[test]
    fn empty_batch_round_trips() {
        let f = Frame::Batch(Vec::new());
        assert_eq!(decode_payload(encode_payload(&f)).unwrap(), f);
    }

    #[test]
    fn truncation_is_detected() {
        let payload = encode_payload(&sample_batch());
        for len in 0..payload.len() {
            assert!(
                decode_payload(payload.slice(0..len)).is_err(),
                "payload truncated to {len} must not decode"
            );
        }
    }

    #[test]
    fn trailing_garbage_is_rejected() {
        let payload = encode_payload(&sample_batch());
        let mut raw = BytesMut::with_capacity(payload.len() + 1);
        raw.put_slice(payload.as_slice());
        raw.put_u8(0xEE);
        assert!(decode_payload(raw.freeze()).is_err());
    }

    #[test]
    fn decoder_reassembles_across_arbitrary_splits() {
        let frames = vec![
            Frame::Hello {
                node: 3,
                version: PROTOCOL_VERSION,
            },
            sample_batch(),
            Frame::Batch(Vec::new()),
        ];
        let mut stream = Vec::new();
        for f in &frames {
            stream.extend_from_slice(&encode_frame(f));
        }
        // Feed one byte at a time: the worst possible fragmentation.
        let mut dec = FrameDecoder::new();
        let mut got = Vec::new();
        for b in stream {
            dec.push(&[b]);
            while let Some(f) = dec.next_frame().unwrap() {
                got.push(f);
            }
        }
        assert_eq!(got, frames);
        assert_eq!(dec.pending_bytes(), 0);
    }

    #[test]
    fn slice_encoder_matches_frame_encoder() {
        let Frame::Batch(items) = sample_batch() else {
            unreachable!()
        };
        assert_eq!(
            encode_batch_frame(&items),
            encode_frame(&Frame::Batch(items.clone()))
        );
        assert_eq!(encode_batch_frame(&[]), encode_frame(&Frame::Batch(vec![])));
    }

    #[test]
    fn item_wire_size_matches_the_encoder() {
        let Frame::Batch(items) = sample_batch() else {
            unreachable!()
        };
        for item in items {
            let mut buf = BytesMut::new();
            put_item(&mut buf, &item);
            assert_eq!(
                buf.len() as u64,
                item.wire_size(),
                "size model drifted for {item:?}"
            );
        }
    }

    #[test]
    fn item_classes_cover_every_plane() {
        use dgc_core::egress::EgressClass;
        let Frame::Batch(items) = sample_batch() else {
            unreachable!()
        };
        let classes: Vec<EgressClass> = items.iter().map(|i| i.class()).collect();
        assert_eq!(
            classes,
            vec![
                EgressClass::DgcMessage,
                EgressClass::DgcResponse,
                EgressClass::Control,
                EgressClass::Gossip,
                EgressClass::AppRequest,
                EgressClass::AppReply,
            ]
        );
    }

    #[test]
    fn oversized_length_prefix_is_corrupt() {
        let mut dec = FrameDecoder::new();
        dec.push(&u32::MAX.to_be_bytes());
        assert!(dec.next_frame().is_err());
    }

    #[test]
    fn batched_frame_is_smaller_than_split_frames() {
        let items: Vec<Item> = (0..16)
            .map(|i| Item::Dgc {
                from: AoId::new(0, i),
                to: AoId::new(1, i),
                message: msg(0),
            })
            .collect();
        let batched = batch_frame_len(&items);
        let unbatched: usize = items
            .iter()
            .map(|i| batch_frame_len(std::slice::from_ref(i)))
            .sum();
        assert_eq!(batched, encode_batch_frame(&items).len());
        assert!(batched < unbatched);
        assert_eq!(unbatched - batched, 15 * FRAME_OVERHEAD as usize);
    }

    #[test]
    fn decoded_app_payload_is_a_window_into_the_receive_buffer() {
        let f = sample_batch();
        let mut dec = FrameDecoder::new();
        dec.push(&encode_frame(&f));
        // Pin the accumulated buffer's address range before decoding.
        let base = dec.acc.as_ptr() as usize;
        let len = dec.acc.len();
        let got = dec.next_frame().unwrap().unwrap();
        let Frame::Batch(items) = got else {
            unreachable!()
        };
        let Some(Item::App { payload, .. }) = items
            .iter()
            .find(|i| matches!(i, Item::App { payload, .. } if !payload.is_empty()))
        else {
            unreachable!()
        };
        let p = payload.as_slice().as_ptr() as usize;
        assert!(
            p >= base && p + payload.len() <= base + len,
            "App payload must alias the receive buffer, not a copy"
        );
    }
}
