//! Offline stand-in for the
//! [`parking_lot`](https://crates.io/crates/parking_lot) crate.
//!
//! The build environment has no crates.io access; this shim wraps
//! `std::sync::Mutex` with parking_lot's non-poisoning API (`lock()`
//! returns the guard directly). A panicked holder's data stays
//! accessible, matching parking_lot semantics.

#![warn(missing_docs)]

use std::sync::{self, PoisonError};

/// A mutual-exclusion lock whose `lock` never fails.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

/// RAII guard; the lock is released on drop.
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Wraps `value`.
    pub const fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available. Ignores poisoning.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Tries to acquire without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn basic_exclusion() {
        let m = Arc::new(Mutex::new(0u32));
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let m = Arc::clone(&m);
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        *m.lock() += 1;
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*m.lock(), 8000);
    }

    #[test]
    fn lock_survives_holder_panic() {
        let m = Arc::new(Mutex::new(5u32));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        assert_eq!(*m.lock(), 5);
    }

    #[test]
    fn try_lock_contended() {
        let m = Mutex::new(1);
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert!(m.try_lock().is_some());
    }
}
