//! Arena tables vs the legacy `BTreeMap` tables: observational
//! equivalence under arbitrary operation interleavings.
//!
//! The arena rewrite of `referencers`/`referenced` (flat sorted vecs,
//! scratch-buffer sweep APIs) must be a pure representation change —
//! every return value, every expiry/broadcast set, and the id-ordered
//! iteration the conformance determinism hangs off must match the
//! pre-arena implementation (kept verbatim in `dgc_core::legacy`).
//! These properties drive both side by side through random op streams,
//! and additionally pin `on_tick` ≡ `on_tick_into` across reused
//! scratch buffers — the batched sweep emits exactly the action stream
//! of the per-activity path.

use proptest::prelude::*;

use dgc_core::clock::NamedClock;
use dgc_core::config::DgcConfig;
use dgc_core::id::AoId;
use dgc_core::message::{DgcMessage, DgcResponse};
use dgc_core::protocol::DgcState;
use dgc_core::sweep::{SweepScratch, SweepUnit};
use dgc_core::units::{Dur, Time};
use dgc_core::{legacy, referenced, referencers};

fn ao(n: u32) -> AoId {
    AoId::new(n % 5, n % 7)
}

fn clk(v: u64, o: u32) -> NamedClock {
    NamedClock {
        value: v % 4,
        owner: ao(o),
    }
}

fn resp(n: u32) -> DgcResponse {
    DgcResponse {
        responder: ao(n),
        clock: NamedClock::initial(ao(n)),
        has_parent: n.is_multiple_of(2),
        consensus_reached: false,
        depth: None,
    }
}

/// One operation on a referencer-table pair.
#[derive(Debug, Clone)]
enum RefOp {
    Record {
        sender: u32,
        clock_v: u64,
        clock_o: u32,
        consensus: bool,
        at_ms: u64,
        ttb_ms: u64,
    },
    ExpireSilent {
        now_ms: u64,
        tta_ms: u64,
        comm_ms: u64,
    },
    Remove {
        id: u32,
    },
    Agree {
        clock_v: u64,
        clock_o: u32,
    },
    MaxExpiry {
        tta_ms: u64,
        comm_ms: u64,
    },
}

fn arb_ref_op() -> impl Strategy<Value = RefOp> {
    (
        0u8..5,
        any::<u32>(),
        any::<u64>(),
        any::<u32>(),
        any::<bool>(),
        0u64..20_000,
        0u64..5_000,
        0u64..500,
    )
        .prop_map(
            |(kind, id, clock_v, clock_o, consensus, t_ms, tta_ms, comm_ms)| match kind {
                0 => RefOp::Record {
                    sender: id,
                    clock_v,
                    clock_o,
                    consensus,
                    at_ms: t_ms % 10_000,
                    ttb_ms: tta_ms % 2_000,
                },
                1 => RefOp::ExpireSilent {
                    now_ms: t_ms,
                    tta_ms,
                    comm_ms,
                },
                2 => RefOp::Remove { id },
                3 => RefOp::Agree { clock_v, clock_o },
                _ => RefOp::MaxExpiry { tta_ms, comm_ms },
            },
        )
}

/// One operation on a referenced-table pair.
#[derive(Debug, Clone)]
enum RfdOp {
    StubDeserialized { target: u32 },
    StubsCollected { target: u32 },
    RecordResponse { target: u32, r: u32 },
    Remove { target: u32 },
    Broadcast,
}

fn arb_rfd_op() -> impl Strategy<Value = RfdOp> {
    (0u8..5, any::<u32>(), any::<u32>()).prop_map(|(kind, target, r)| match kind {
        0 => RfdOp::StubDeserialized { target },
        1 => RfdOp::StubsCollected { target },
        2 => RfdOp::RecordResponse { target, r },
        3 => RfdOp::Remove { target },
        _ => RfdOp::Broadcast,
    })
}

fn assert_ref_tables_equal(arena: &referencers::ReferencerTable, model: &legacy::ReferencerTable) {
    assert_eq!(arena.len(), model.len());
    assert_eq!(arena.is_empty(), model.is_empty());
    let a: Vec<_> = arena.iter().map(|(id, info)| (id, *info)).collect();
    let m: Vec<_> = model.iter().map(|(id, info)| (id, *info)).collect();
    assert_eq!(a, m, "same entries in the same (id) order");
}

fn assert_rfd_tables_equal(arena: &referenced::ReferencedTable, model: &legacy::ReferencedTable) {
    assert_eq!(arena.len(), model.len());
    let a: Vec<_> = arena.iter().map(|(id, info)| (id, info.clone())).collect();
    let m: Vec<_> = model.iter().map(|(id, info)| (id, info.clone())).collect();
    assert_eq!(a, m, "same entries in the same (id) order");
}

proptest! {
    /// Referencer table: every op returns the same value on both
    /// implementations and leaves identical id-ordered contents.
    #[test]
    fn referencer_arena_matches_legacy(ops in proptest::collection::vec(arb_ref_op(), 0..60)) {
        let mut arena = referencers::ReferencerTable::new();
        let mut model = legacy::ReferencerTable::new();
        for op in ops {
            match op {
                RefOp::Record { sender, clock_v, clock_o, consensus, at_ms, ttb_ms } => {
                    let c = clk(clock_v, clock_o);
                    let now = Time::from_nanos(at_ms * 1_000_000);
                    let ttb = Dur::from_millis(ttb_ms);
                    prop_assert_eq!(
                        arena.record_message(ao(sender), c, consensus, now, ttb),
                        model.record_message(ao(sender), c, consensus, now, ttb)
                    );
                }
                RefOp::ExpireSilent { now_ms, tta_ms, comm_ms } => {
                    let now = Time::from_nanos(now_ms * 1_000_000);
                    let tta = Dur::from_millis(tta_ms);
                    let comm = Dur::from_millis(comm_ms);
                    prop_assert_eq!(
                        arena.expire_silent(now, tta, comm),
                        model.expire_silent(now, tta, comm),
                        "same expiry set in the same order"
                    );
                }
                RefOp::Remove { id } => {
                    prop_assert_eq!(arena.remove(ao(id)), model.remove(ao(id)));
                }
                RefOp::Agree { clock_v, clock_o } => {
                    let c = clk(clock_v, clock_o);
                    prop_assert_eq!(arena.agree(c), model.agree(c));
                }
                RefOp::MaxExpiry { tta_ms, comm_ms } => {
                    let tta = Dur::from_millis(tta_ms);
                    let comm = Dur::from_millis(comm_ms);
                    prop_assert_eq!(arena.max_expiry(tta, comm), model.max_expiry(tta, comm));
                }
            }
            assert_ref_tables_equal(&arena, &model);
        }
    }

    /// Referenced table: same returns, same broadcast/drop sets, same
    /// id-ordered contents under any interleaving.
    #[test]
    fn referenced_arena_matches_legacy(ops in proptest::collection::vec(arb_rfd_op(), 0..60)) {
        let mut arena = referenced::ReferencedTable::new();
        let mut model = legacy::ReferencedTable::new();
        for op in ops {
            match op {
                RfdOp::StubDeserialized { target } => {
                    prop_assert_eq!(
                        arena.on_stub_deserialized(ao(target)),
                        model.on_stub_deserialized(ao(target))
                    );
                }
                RfdOp::StubsCollected { target } => {
                    prop_assert_eq!(
                        arena.on_stubs_collected(ao(target)),
                        model.on_stubs_collected(ao(target))
                    );
                }
                RfdOp::RecordResponse { target, r } => {
                    prop_assert_eq!(
                        arena.record_response(ao(target), resp(r)),
                        model.record_response(ao(target), resp(r))
                    );
                }
                RfdOp::Remove { target } => {
                    prop_assert_eq!(arena.remove(ao(target)), model.remove(ao(target)));
                }
                RfdOp::Broadcast => {
                    prop_assert_eq!(
                        arena.broadcast_targets(),
                        model.broadcast_targets(),
                        "same (targets, dropped) in the same order"
                    );
                }
            }
            assert_rfd_tables_equal(&arena, &model);
        }
    }
}

/// One protocol-level event for the `on_tick` ≡ `on_tick_into` stream
/// equivalence below.
#[derive(Debug, Clone)]
enum ProtoOp {
    Message {
        sender: u32,
        clock_v: u64,
        clock_o: u32,
        consensus: bool,
    },
    StubDeserialized {
        target: u32,
    },
    StubsCollected {
        target: u32,
    },
    Idle(bool),
    Tick {
        advance_ms: u64,
    },
}

fn arb_proto_op() -> impl Strategy<Value = ProtoOp> {
    (
        0u8..5,
        any::<u32>(),
        any::<u64>(),
        any::<u32>(),
        any::<bool>(),
        0u64..90_000,
    )
        .prop_map(
            |(kind, id, clock_v, clock_o, flag, advance_ms)| match kind {
                0 => ProtoOp::Message {
                    sender: id,
                    clock_v,
                    clock_o,
                    consensus: flag,
                },
                1 => ProtoOp::StubDeserialized { target: id },
                2 => ProtoOp::StubsCollected { target: id },
                3 => ProtoOp::Idle(flag),
                _ => ProtoOp::Tick { advance_ms },
            },
        )
}

proptest! {
    /// The batched sweep path (`on_tick_into` with scratch buffers
    /// reused across every tick) emits exactly the action stream of the
    /// allocating `on_tick` path, over arbitrary protocol histories.
    #[test]
    fn batched_sweep_emits_the_per_activity_action_stream(
        ops in proptest::collection::vec(arb_proto_op(), 0..40)
    ) {
        let cfg = DgcConfig::builder()
            .ttb(Dur::from_secs(30))
            .tta(Dur::from_secs(61))
            .build();
        let me = AoId::new(9, 9);
        let mut vec_state = DgcState::new(me, Time::ZERO, cfg);
        let mut sink_state = DgcState::new(me, Time::ZERO, cfg);
        let mut scratch = SweepScratch::new();
        let mut units: Vec<SweepUnit> = Vec::new();
        let mut now = Time::ZERO;
        let mut idle = false;
        for op in ops {
            match op {
                ProtoOp::Message { sender, clock_v, clock_o, consensus } => {
                    let m = DgcMessage {
                        sender: ao(sender),
                        clock: clk(clock_v, clock_o),
                        consensus,
                        sender_ttb: Dur::from_secs(30),
                    };
                    prop_assert_eq!(
                        vec_state.on_message(now, &m),
                        {
                            let before = units.len();
                            sink_state.on_message_into(now, &m, &mut units);
                            units.drain(before..).map(|u| u.action).collect::<Vec<_>>()
                        }
                    );
                }
                ProtoOp::StubDeserialized { target } => {
                    vec_state.on_stub_deserialized(ao(target));
                    sink_state.on_stub_deserialized(ao(target));
                }
                ProtoOp::StubsCollected { target } => {
                    vec_state.on_stubs_collected(ao(target));
                    sink_state.on_stubs_collected(ao(target));
                }
                ProtoOp::Idle(i) => {
                    if i && !idle {
                        vec_state.on_became_idle(now);
                        sink_state.on_became_idle(now);
                    }
                    idle = i;
                }
                ProtoOp::Tick { advance_ms } => {
                    now = now + Dur::from_millis(advance_ms);
                    let via_vec = vec_state.on_tick(now, idle);
                    sink_state.on_tick_into(now, idle, &mut scratch, &mut units);
                    let via_sink: Vec<_> = units.drain(..).map(|u| u.action).collect();
                    prop_assert_eq!(via_vec, via_sink);
                }
            }
            prop_assert_eq!(vec_state.phase(), sink_state.phase());
        }
    }
}
