//! Fig. 10 — the DGC torture test.
//!
//! Regenerates both subfigures: the evolution of idle and collected
//! active-object counts over time for (a) TTB 30 s / TTA 150 s and
//! (b) TTB 300 s / TTA 1500 s, on 6401 activities over the 128-node
//! Grid'5000 topology, plus the §5.3 total-bandwidth numbers including
//! the no-DGC control (paper: 1699 MB / 2063 MB / 228 MB).

use dgc_activeobj::collector::CollectorKind;
use dgc_bench::{mib, Scale, Table};
use dgc_core::config::DgcConfig;
use dgc_core::units::Dur;
use dgc_simnet::time::SimTime;
use dgc_workloads::torture::{run_torture, TortureParams};

fn main() {
    let scale = Scale::from_env();
    println!("=== Fig. 10: torture test (scale: {scale:?}) ===\n");
    let (params, topology) = match scale {
        Scale::Full => (TortureParams::paper(), Scale::Full.topology()),
        Scale::Quick => (TortureParams::small(), Scale::Quick.topology()),
    };

    let mut totals = Table::new(vec![
        "Configuration",
        "Total traffic",
        "All collected at",
        "Leaked",
    ]);

    for (label, ttb, tta, deadline, stride) in [
        ("(a) TTB 30s TTA 150s", 30u64, 150u64, 30_000u64, 120u64),
        ("(b) TTB 300s TTA 1500s", 300, 1500, 60_000, 900),
    ] {
        let cfg = CollectorKind::Complete(
            DgcConfig::builder()
                .ttb(Dur::from_secs(ttb))
                .tta(Dur::from_secs(tta))
                .max_comm(Dur::from_millis(500))
                .build(),
        );
        eprintln!("[torture] running {label}…");
        let out = run_torture(
            &params,
            topology.clone(),
            cfg,
            0xF16,
            SimTime::from_secs(deadline),
        );
        assert_eq!(out.violations, 0, "oracle violations in torture {label}");

        println!("--- Fig. 10{label}: idle / collected over time ---");
        println!("time_s,idle,collected,alive");
        let mut last_printed = u64::MAX;
        for s in &out.samples {
            let t = s.at.as_secs();
            if last_printed != u64::MAX && t < last_printed + stride && s.alive != 0 {
                continue;
            }
            println!("{},{},{},{}", t, s.idle, s.collected, s.alive);
            last_printed = t;
            if s.alive == 0 {
                break;
            }
        }
        println!();
        totals.row(vec![
            label.to_string(),
            format!("{:.0} MB", mib(out.total_bytes)),
            out.all_collected_at
                .map(|t| format!("{} s", t.as_secs()))
                .unwrap_or_else(|| "NOT COLLECTED".into()),
            format!("{}", out.leaked),
        ]);
    }

    // No-DGC control for the §5.3 bandwidth comparison.
    eprintln!("[torture] running no-DGC control…");
    let out = run_torture(
        &params,
        topology,
        CollectorKind::None,
        0xF16,
        SimTime::from_secs(3_000),
    );
    totals.row(vec![
        "no DGC (control)".to_string(),
        format!("{:.0} MB", mib(out.total_bytes)),
        "n/a (leaks)".to_string(),
        format!("{}", out.leaked),
    ]);

    println!("--- Totals ---");
    totals.print();
    println!(
        "\nPaper §5.3: 1699 MB (TTB 30 s), 2063 MB (TTB 300 s), 228 MB without\n\
         DGC; last activity finishes at 1718 s without DGC; Fig. 10a completes\n\
         around t≈2400 s, Fig. 10b around t≈18000 s."
    );
}
