//! The runtime-neutral workload driver seam.
//!
//! §5 of the paper measures its collector on *application* traffic —
//! NAS kernels, the RMI lease baseline — but until this module the
//! workload code could only drive the simulated grid. [`AppTransport`]
//! is the surface a workload script actually needs (host activities,
//! wire references, flip idleness, ship opaque payloads, watch the
//! collector), realized by:
//!
//! * [`GridTransport`] — the deterministic simulator
//!   ([`dgc_activeobj::runtime::Grid`]): payloads cross the metered
//!   virtual network via `Grid::send_app`, time is virtual;
//! * [`ClusterTransport`] — a localhost TCP cluster
//!   ([`dgc_rt_net::Cluster`]): payloads ship as `Item::App` units in
//!   the egress plane's shared frames, delivered through registered
//!   app handlers (not the test inbox), time is the wall clock.
//!
//! The same workload run over both transports is what lets the
//! conformance harness compare verdicts — and what turns the bench
//! numbers from "synthetic bytes" into "the paper's traffic".

use std::sync::Arc;

use parking_lot::Mutex;
use std::time::{Duration, Instant};

use dgc_activeobj::runtime::Grid;
use dgc_core::id::AoId;
use dgc_core::units::Time;
use dgc_rt_net::Cluster;
use dgc_simnet::time::SimDuration;
use dgc_simnet::topology::ProcId;

/// One opaque application unit: exactly the arguments of
/// `NetNode::send_app` / `Grid::send_app`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AppPacket {
    /// Sending activity.
    pub from: AoId,
    /// Destination activity.
    pub to: AoId,
    /// True for a reply payload.
    pub reply: bool,
    /// The serialized call/value.
    pub payload: Vec<u8>,
}

/// A driver-level operation, recorded with its scenario time by the
/// generic runners so a conformance harness can rebuild the run's
/// ground-truth script after the fact.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TracedOp {
    /// An activity was hosted.
    Spawn {
        /// Its id.
        ao: AoId,
        /// Initially busy?
        busy: bool,
    },
    /// Idleness flipped.
    SetIdle {
        /// The activity.
        ao: AoId,
        /// New idleness.
        idle: bool,
    },
    /// Reference edge added.
    AddRef {
        /// Referencer.
        from: AoId,
        /// Referenced.
        to: AoId,
    },
    /// Reference edge dropped.
    DropRef {
        /// Referencer.
        from: AoId,
        /// Referenced.
        to: AoId,
    },
}

/// A [`TracedOp`] with the scenario time it was applied at.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Traced {
    /// When (transport scenario clock).
    pub at: Time,
    /// What.
    pub op: TracedOp,
}

/// What a §5 workload needs from a runtime. Scenario time is
/// nanoseconds since transport start: virtual on the grid, wall-clock
/// on sockets — the same convention as the conformance harness.
pub trait AppTransport {
    /// Number of nodes (processes) available.
    fn nodes(&self) -> u32;
    /// Hosts a new activity on `node`, initially **busy**.
    fn spawn(&mut self, node: u32) -> AoId;
    /// Declares `ao` idle or busy.
    fn set_idle(&mut self, ao: AoId, idle: bool);
    /// Adds the reference edge `from → to` (drives the collector).
    fn add_ref(&mut self, from: AoId, to: AoId);
    /// Drops the reference edge `from → to`.
    fn drop_ref(&mut self, from: AoId, to: AoId);
    /// Ships one opaque application unit.
    fn send(&mut self, pkt: AppPacket);
    /// Drains the units delivered since the last call, arrival order.
    fn poll(&mut self) -> Vec<AppPacket>;
    /// Advances the scenario a small quantum (runs the simulator /
    /// sleeps the wall clock).
    fn step(&mut self);
    /// The scenario clock.
    fn now(&self) -> Time;
    /// Activities the **collector** has terminated so far.
    fn terminated(&self) -> Vec<AoId>;
}

// ---------------------------------------------------------------------
// Simulator realization
// ---------------------------------------------------------------------

/// [`AppTransport`] over the deterministic simulated grid.
pub struct GridTransport {
    grid: Grid,
    quantum: SimDuration,
}

impl GridTransport {
    /// Wraps `grid`, stepping it `quantum` of virtual time per
    /// [`AppTransport::step`].
    pub fn new(grid: Grid, quantum: SimDuration) -> GridTransport {
        GridTransport { grid, quantum }
    }

    /// The wrapped grid (oracle checks, traffic meters).
    pub fn grid(&self) -> &Grid {
        &self.grid
    }

    /// Unwraps the grid.
    pub fn into_grid(self) -> Grid {
        self.grid
    }
}

impl AppTransport for GridTransport {
    fn nodes(&self) -> u32 {
        self.grid.topology().procs()
    }

    fn spawn(&mut self, node: u32) -> AoId {
        let id = self
            .grid
            .spawn(ProcId(node), Box::new(dgc_activeobj::activity::Inert));
        // Same contract as `NetNode::add_activity`: born busy.
        self.grid.set_busy(id, true);
        id
    }

    fn set_idle(&mut self, ao: AoId, idle: bool) {
        self.grid.set_busy(ao, !idle);
    }

    fn add_ref(&mut self, from: AoId, to: AoId) {
        self.grid.make_ref(from, to);
    }

    fn drop_ref(&mut self, from: AoId, to: AoId) {
        self.grid.drop_ref(from, to);
    }

    fn send(&mut self, pkt: AppPacket) {
        self.grid.send_app(pkt.from, pkt.to, pkt.reply, pkt.payload);
    }

    fn poll(&mut self) -> Vec<AppPacket> {
        self.grid
            .drain_app_received()
            .into_iter()
            .map(|d| AppPacket {
                from: d.from,
                to: d.to,
                reply: d.reply,
                payload: d.payload,
            })
            .collect()
    }

    fn step(&mut self) {
        self.grid.run_for(self.quantum);
    }

    fn now(&self) -> Time {
        Time::from_nanos(self.grid.now().as_nanos())
    }

    fn terminated(&self) -> Vec<AoId> {
        self.grid
            .collected()
            .iter()
            .filter(|c| c.reason.is_some())
            .map(|c| c.ao)
            .collect()
    }
}

// ---------------------------------------------------------------------
// Socket realization
// ---------------------------------------------------------------------

/// [`AppTransport`] over a localhost TCP cluster: payloads ride the
/// egress plane's shared frames and arrive through per-node registered
/// app handlers (dispatch, not the test inbox).
pub struct ClusterTransport {
    cluster: Cluster,
    inbox: Arc<Mutex<Vec<AppPacket>>>,
    quantum: Duration,
    epoch: Instant,
}

impl ClusterTransport {
    /// Wraps `cluster`, registering an app handler on every node that
    /// funnels deliveries into one polled queue. `quantum` is the
    /// wall-clock step size.
    pub fn new(cluster: Cluster, quantum: Duration) -> ClusterTransport {
        let inbox: Arc<Mutex<Vec<AppPacket>>> = Arc::new(Mutex::new(Vec::new()));
        for node in 0..cluster.len() as u32 {
            let sink = Arc::clone(&inbox);
            cluster.set_app_handler(node, move |received| {
                sink.lock().push(AppPacket {
                    from: received.from,
                    to: received.to,
                    reply: received.reply,
                    payload: received.payload.clone(),
                });
                Vec::new()
            });
        }
        ClusterTransport {
            epoch: cluster.epoch(),
            cluster,
            inbox,
            quantum,
        }
    }

    /// The wrapped cluster (stats, membership records).
    pub fn cluster(&self) -> &Cluster {
        &self.cluster
    }

    /// Unwraps the cluster (e.g. to shut it down).
    pub fn into_cluster(self) -> Cluster {
        self.cluster
    }
}

impl AppTransport for ClusterTransport {
    fn nodes(&self) -> u32 {
        self.cluster.len() as u32
    }

    fn spawn(&mut self, node: u32) -> AoId {
        self.cluster.add_activity(node)
    }

    fn set_idle(&mut self, ao: AoId, idle: bool) {
        self.cluster.set_idle(ao, idle);
    }

    fn add_ref(&mut self, from: AoId, to: AoId) {
        self.cluster.add_ref(from, to);
    }

    fn drop_ref(&mut self, from: AoId, to: AoId) {
        self.cluster.drop_ref(from, to);
    }

    fn send(&mut self, pkt: AppPacket) {
        self.cluster
            .send_app(pkt.from, pkt.to, pkt.reply, pkt.payload);
    }

    fn poll(&mut self) -> Vec<AppPacket> {
        std::mem::take(&mut *self.inbox.lock())
    }

    fn step(&mut self) {
        std::thread::sleep(self.quantum);
    }

    fn now(&self) -> Time {
        Time::from_nanos(self.epoch.elapsed().as_nanos() as u64)
    }

    fn terminated(&self) -> Vec<AoId> {
        self.cluster.terminated().iter().map(|t| t.ao).collect()
    }
}

/// Polls the transport until every id in `ids` has terminated or the
/// scenario clock passes `deadline`; returns the observation time when
/// the last one was first seen gone, `None` on timeout.
pub fn wait_all_terminated<T: AppTransport>(
    t: &mut T,
    ids: &[AoId],
    deadline: Time,
) -> Option<Time> {
    loop {
        let gone = t.terminated();
        if ids.iter().all(|id| gone.contains(id)) {
            return Some(t.now());
        }
        if t.now() >= deadline {
            return None;
        }
        t.step();
    }
}
