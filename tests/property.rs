//! Property-based tests of the collector's two defining properties.
//!
//! * **Safety** — no execution may terminate a live activity (oracle
//!   violations stay empty, and nothing a root reaches ever dies);
//! * **Liveness / completeness** — once the application quiesces, every
//!   garbage activity is reclaimed within a bounded number of rounds
//!   (`O(h·TTB) + TTA` with generous slack).
//!
//! Inputs are random reference graphs, random root attachments, random
//! busy/idle schedules and random edge churn, all replayed through the
//! full middleware (deterministic per seed, so failures shrink cleanly).

use proptest::prelude::*;

use grid_dgc::activeobj::activity::Inert;
use grid_dgc::activeobj::collector::CollectorKind;
use grid_dgc::activeobj::runtime::{Grid, GridConfig};
use grid_dgc::dgc::config::DgcConfig;
use grid_dgc::dgc::units::Dur;
use grid_dgc::dgc::AoId;
use grid_dgc::simnet::time::SimDuration;
use grid_dgc::simnet::topology::{ProcId, Topology};

const PROCS: u32 = 4;

fn dgc() -> DgcConfig {
    DgcConfig::builder()
        .ttb(Dur::from_secs(30))
        .tta(Dur::from_secs(61))
        .max_comm(Dur::from_millis(500))
        .build()
}

fn grid(seed: u64) -> Grid {
    Grid::new(
        GridConfig::new(Topology::single_site(PROCS, SimDuration::from_millis(1)))
            .collector(CollectorKind::Complete(dgc()))
            .seed(seed),
    )
}

#[derive(Debug, Clone)]
struct Scenario {
    n: usize,
    edges: Vec<(usize, usize)>,
    rooted: Vec<usize>,
    dropped_edges: Vec<usize>,
    dropped_roots: Vec<usize>,
}

fn scenario() -> impl Strategy<Value = Scenario> {
    (3usize..14)
        .prop_flat_map(|n| {
            let edges = proptest::collection::vec((0..n, 0..n), 0..n * 3);
            let rooted = proptest::collection::vec(0..n, 0..3);
            let dropped_edges = proptest::collection::vec(0usize..64, 0..6);
            let dropped_roots = proptest::collection::vec(0usize..4, 0..3);
            (Just(n), edges, rooted, dropped_edges, dropped_roots)
        })
        .prop_map(
            |(n, edges, rooted, dropped_edges, dropped_roots)| Scenario {
                n,
                edges: edges.into_iter().filter(|(a, b)| a != b).collect(),
                rooted,
                dropped_edges,
                dropped_roots,
            },
        )
}

struct Built {
    grid: Grid,
    ids: Vec<AoId>,
    root: AoId,
    root_held: Vec<AoId>,
}

fn build(sc: &Scenario, seed: u64) -> Built {
    let mut grid = grid(seed);
    let ids: Vec<AoId> = (0..sc.n)
        .map(|i| grid.spawn(ProcId(i as u32 % PROCS), Box::new(Inert)))
        .collect();
    for (a, b) in &sc.edges {
        grid.make_ref(ids[*a], ids[*b]);
    }
    let root = grid.spawn_root(ProcId(0), Box::new(Inert));
    let mut root_held = Vec::new();
    for r in &sc.rooted {
        grid.make_ref(root, ids[*r]);
        root_held.push(ids[*r]);
    }
    Built {
        grid,
        ids,
        root,
        root_held,
    }
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 24,
        .. ProptestConfig::default()
    })]

    /// Static graphs: after enough time, exactly the oracle-live
    /// activities survive — nothing more (completeness), nothing less
    /// (safety).
    #[test]
    fn static_graphs_converge_to_the_live_set(sc in scenario(), seed in 0u64..1000) {
        let Built { mut grid, ids, .. } = build(&sc, seed);
        // Bound: h ≤ n, detection O(h·TTB); triple it plus two TTAs.
        let bound = 30 * 3 * (sc.n as u64 + 4) + 2 * 61 + 120;
        grid.run_for(SimDuration::from_secs(bound));

        prop_assert!(grid.violations().is_empty(),
            "wrongful collections: {:?}", grid.violations());
        let leftover = grid.garbage_remaining();
        prop_assert!(leftover.is_empty(),
            "garbage still alive after {bound}s: {leftover:?}");
        // Cross-check with the oracle's live set: every live id is alive.
        let live = grid_dgc::activeobj::oracle::live_set(&grid.snapshot());
        for id in &ids {
            if live.contains(id) {
                prop_assert!(grid.is_alive(*id), "{id} live but collected");
            }
        }
    }

    /// Dynamic graphs: edges and root attachments are dropped mid-run;
    /// safety must hold throughout and the final garbage must vanish.
    #[test]
    fn churned_graphs_stay_safe_and_converge(sc in scenario(), seed in 0u64..1000) {
        let Built { mut grid, ids, root, root_held } = build(&sc, seed);
        // Let the collector get going, then churn.
        grid.run_for(SimDuration::from_secs(95));
        let mut edges = sc.edges.clone();
        for k in &sc.dropped_edges {
            if edges.is_empty() { break; }
            let (a, b) = edges.swap_remove(k % edges.len());
            if grid.is_alive(ids[a]) {
                grid.drop_ref(ids[a], ids[b]);
            }
            grid.run_for(SimDuration::from_secs(40));
        }
        let mut held = root_held.clone();
        for k in &sc.dropped_roots {
            if held.is_empty() { break; }
            let victim = held.swap_remove(k % held.len());
            grid.drop_ref(root, victim);
            grid.run_for(SimDuration::from_secs(40));
        }
        let bound = 30 * 3 * (sc.n as u64 + 4) + 2 * 61 + 120;
        grid.run_for(SimDuration::from_secs(bound));

        prop_assert!(grid.violations().is_empty(),
            "wrongful collections: {:?}", grid.violations());
        prop_assert!(grid.garbage_remaining().is_empty(),
            "garbage left: {:?}", grid.garbage_remaining());
    }

    /// Determinism: a scenario replays bit-identically for a fixed seed.
    #[test]
    fn scenarios_replay_identically(sc in scenario(), seed in 0u64..1000) {
        let run = |sc: &Scenario| {
            let Built { mut grid, .. } = build(sc, seed);
            grid.run_for(SimDuration::from_secs(700));
            (
                grid.collected().len(),
                grid.traffic().total_bytes(),
                grid.dgc_stats().messages_sent,
            )
        };
        prop_assert_eq!(run(&sc), run(&sc));
    }
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 12,
        .. ProptestConfig::default()
    })]

    /// The protocol-level harness (no middleware): random graphs with
    /// random idleness flags converge to exactly the live set too.
    #[test]
    fn harness_level_random_graphs(
        n in 2usize..12,
        edge_bits in proptest::collection::vec(any::<bool>(), 144),
        busy_bits in proptest::collection::vec(any::<bool>(), 12),
    ) {
        use grid_dgc::dgc::harness::Harness;
        let mut h = Harness::new(Dur::from_millis(5));
        let cfg = dgc();
        let ids = h.add_many(n, cfg);
        let mut edges = Vec::new();
        for i in 0..n {
            for j in 0..n {
                if i != j && edge_bits[i * 12 + j] {
                    h.add_ref(ids[i], ids[j]);
                    edges.push((i, j));
                }
            }
        }
        let mut busy = Vec::new();
        for (i, id) in ids.iter().enumerate() {
            if busy_bits[i] {
                busy.push(i);
            } else {
                h.set_idle(*id, true);
            }
        }
        h.run_for(Dur::from_secs(30 * 3 * (n as u64 + 4) + 2 * 61));

        // Ground truth: forward closure from busy nodes.
        let mut live = vec![false; n];
        let mut stack: Vec<usize> = busy.clone();
        for &b in &stack { live[b] = true; }
        while let Some(x) = stack.pop() {
            for &(a, b) in &edges {
                if a == x && !live[b] {
                    live[b] = true;
                    stack.push(b);
                }
            }
        }
        for i in 0..n {
            prop_assert_eq!(
                h.alive(ids[i]),
                live[i],
                "node {} (busy set {:?}): expected live={}",
                i, busy, live[i]
            );
        }
    }
}
