//! The §5 Java-RMI baseline as real traffic: Birrell-style lease
//! renewal (`dirty` / `renew` / `clean` and their replies) shipped as
//! opaque application payloads over any [`AppTransport`].
//!
//! The simulator hosts `dgc-rmi` endpoints natively; this runner is
//! the transport-neutral deployment of the same collector — one
//! [`LeaseDriver`] per node, packets crossing whatever wire the
//! transport provides. Over `dgc-rt-net` that means lease calls ride
//! the egress plane's shared frames exactly like the paper's RMI
//! traffic rode JVM sockets — and the DGC/membership planes piggyback
//! on *them*.

use std::collections::VecDeque;

use dgc_core::units::{Dur, Time};
use dgc_rmi::{LeaseDriver, LeasePacket, LeaseStats, RmiConfig};

use crate::driver::{AppPacket, AppTransport};

/// Outcome of one lease-baseline run.
#[derive(Debug, Clone)]
pub struct LeaseOutcome {
    /// The holder-side driver's counters (dirty/renew/clean sent).
    pub holder_stats: LeaseStats,
    /// The target-side driver's counters (grants answered).
    pub target_stats: LeaseStats,
    /// When the released target's endpoint collected (lease layer
    /// verdict), `None` if the deadline passed first.
    pub target_collected_at: Option<Time>,
    /// True if the target survived the whole hold phase (it must: the
    /// holder kept renewing).
    pub target_survived_hold: bool,
    /// Lease packets shipped (calls + replies).
    pub packets_sent: u64,
    /// Holder-observed round-trip of each lease call (dirty/renew/clean
    /// send → matching grant reply), in scenario nanoseconds — the
    /// app/RMI round-trip histogram of the telemetry plane.
    pub lease_rtt: dgc_obs::HistogramSnapshot,
}

/// Runs the lease baseline: a holder on node 0 keeps an object on the
/// last node alive by renewal for `hold_for`, then releases it; the
/// run ends when the lease layer collects the target (or `deadline`
/// passes). Both activities stay busy at the transport level — the
/// *lease* protocol, not the host collector, owns their lifecycle,
/// exactly like RMI's DGC owns exported objects.
pub fn run_lease<T: AppTransport>(
    transport: &mut T,
    lease: Dur,
    hold_for: Dur,
    deadline: Time,
) -> LeaseOutcome {
    let config = RmiConfig { lease };
    let last = transport.nodes() - 1;
    let holder = transport.spawn(0);
    let target = transport.spawn(last);
    let mut holder_side = LeaseDriver::new(config);
    let mut target_side = LeaseDriver::new(config);
    holder_side.add_endpoint(holder, transport.now());
    target_side.add_endpoint(target, transport.now());
    // The target is idle as far as the lease layer is concerned: only
    // the lease list keeps it.
    target_side.set_idle(target, true);

    let mut packets_sent = 0u64;
    // Call-send times, popped as the matching grant replies arrive
    // (per-class FIFO keeps calls and grants in lockstep): the
    // holder-observed lease round-trip.
    let rtt_hist = dgc_obs::Histogram::default();
    let mut call_sent_at: VecDeque<Time> = VecDeque::new();
    let ship = |transport: &mut T,
                packets_sent: &mut u64,
                calls: &mut VecDeque<Time>,
                pkts: Vec<LeasePacket>| {
        let now = transport.now();
        for p in pkts {
            *packets_sent += 1;
            if !p.reply {
                calls.push_back(now);
            }
            transport.send(AppPacket {
                from: p.from,
                to: p.to,
                reply: p.reply,
                payload: p.payload,
            });
        }
    };

    let start = transport.now();
    let pkts = holder_side.add_ref(start, holder, target);
    ship(transport, &mut packets_sent, &mut call_sent_at, pkts);

    let tick_every = Dur::from_nanos((lease.as_nanos() / 8).max(1_000_000));
    let mut next_tick = start + tick_every;
    let mut released = false;
    let mut target_survived_hold = false;
    let mut target_collected_at = None;
    loop {
        let now = transport.now();
        if now >= deadline {
            break;
        }
        // Route deliveries into the right side's driver.
        for pkt in transport.poll() {
            let to_target = pkt.to.node == last && pkt.to == target;
            if !to_target && pkt.reply {
                // A grant landing back at the holder closes the oldest
                // outstanding call.
                if let Some(sent_at) = call_sent_at.pop_front() {
                    rtt_hist.record(now.since(sent_at).as_nanos());
                }
            }
            let side = if to_target {
                &mut target_side
            } else {
                &mut holder_side
            };
            let replies = side.on_payload(now, pkt.from, pkt.to, pkt.reply, &pkt.payload);
            ship(transport, &mut packets_sent, &mut call_sent_at, replies);
        }
        if now >= next_tick {
            next_tick = now + tick_every;
            let pkts = holder_side.tick(now);
            ship(transport, &mut packets_sent, &mut call_sent_at, pkts);
            let pkts = target_side.tick(now);
            ship(transport, &mut packets_sent, &mut call_sent_at, pkts);
        }
        if !released && now.since(start) >= hold_for {
            released = true;
            target_survived_hold = !target_side.is_dead(target);
            let pkts = holder_side.drop_ref(holder, target);
            ship(transport, &mut packets_sent, &mut call_sent_at, pkts);
        }
        if released && target_side.is_dead(target) {
            target_collected_at = Some(now);
            break;
        }
        transport.step();
    }
    LeaseOutcome {
        holder_stats: holder_side.stats(),
        target_stats: target_side.stats(),
        target_collected_at,
        target_survived_hold,
        packets_sent,
        lease_rtt: rtt_hist.snapshot(),
    }
}
