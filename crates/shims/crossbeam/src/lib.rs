//! Offline stand-in for the
//! [`crossbeam`](https://crates.io/crates/crossbeam) crate.
//!
//! The build environment has no crates.io access; this shim provides the
//! `channel` subset the threaded runtime uses (`unbounded`, `Sender`,
//! `Receiver`, `recv_timeout`) implemented over `std::sync::mpsc`, which
//! since Rust 1.72 is itself a port of crossbeam's channel and shares
//! its performance profile for the unbounded case.

#![warn(missing_docs)]

/// Multi-producer channels (subset of `crossbeam::channel`).
pub mod channel {
    use std::sync::mpsc;
    use std::time::Duration;

    /// Error on [`Receiver::recv_timeout`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// Nothing arrived before the deadline.
        Timeout,
        /// All senders are gone and the queue is drained.
        Disconnected,
    }

    /// Error on [`Receiver::recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    /// Error on [`Sender::send`]; returns the rejected value.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Sending half; clone freely.
    pub struct Sender<T>(mpsc::Sender<T>);

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender(self.0.clone())
        }
    }

    impl<T> Sender<T> {
        /// Enqueues `value`; fails only if the receiver is gone.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.0
                .send(value)
                .map_err(|mpsc::SendError(v)| SendError(v))
        }
    }

    /// Receiving half.
    pub struct Receiver<T>(mpsc::Receiver<T>);

    impl<T> Receiver<T> {
        /// Blocks until a value arrives or all senders disconnect.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.0.recv().map_err(|_| RecvError)
        }

        /// Blocks up to `timeout` for a value.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            self.0.recv_timeout(timeout).map_err(|e| match e {
                mpsc::RecvTimeoutError::Timeout => RecvTimeoutError::Timeout,
                mpsc::RecvTimeoutError::Disconnected => RecvTimeoutError::Disconnected,
            })
        }

        /// Non-blocking receive; `None` when empty or disconnected.
        pub fn try_recv(&self) -> Option<T> {
            self.0.try_recv().ok()
        }
    }

    /// Creates an unbounded FIFO channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender(tx), Receiver(rx))
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn fifo_and_clone() {
            let (tx, rx) = unbounded();
            let tx2 = tx.clone();
            tx.send(1).unwrap();
            tx2.send(2).unwrap();
            assert_eq!(rx.recv(), Ok(1));
            assert_eq!(rx.recv(), Ok(2));
        }

        #[test]
        fn timeout_and_disconnect() {
            let (tx, rx) = unbounded::<u8>();
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(5)),
                Err(RecvTimeoutError::Timeout)
            );
            drop(tx);
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(5)),
                Err(RecvTimeoutError::Disconnected)
            );
        }

        #[test]
        fn send_after_receiver_drop_fails() {
            let (tx, rx) = unbounded();
            drop(rx);
            assert_eq!(tx.send(9), Err(SendError(9)));
        }
    }
}
