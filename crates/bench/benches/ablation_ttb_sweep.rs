//! Ablation — the TTB/TTA trade-off (§3.1).
//!
//! "Increasing TTB lowers the overhead of the DGC but makes it slower to
//! reclaim garbage." This sweep quantifies that sentence on a scaled
//! torture run: total collector traffic against the time to reclaim
//! everything, for TTB ∈ {5, 15, 30, 60, 120} with TTA = 5·TTB.

use dgc_activeobj::collector::CollectorKind;
use dgc_bench::{mib, Table};
use dgc_core::config::DgcConfig;
use dgc_core::units::Dur;
use dgc_simnet::time::SimTime;
use dgc_simnet::topology::Topology;
use dgc_workloads::torture::{run_torture, TortureParams};

fn main() {
    println!("=== Ablation: TTB sweep on a scaled torture run (TTA = 5*TTB) ===\n");
    let mut params = TortureParams::small();
    params.slaves_per_proc = 10;
    let topo = Topology::grid5000_scaled(4); // 12 processes
    let mut table = Table::new(vec![
        "TTB",
        "TTA",
        "Collected at",
        "Total traffic",
        "Violations",
    ]);
    let mut rows: Vec<(u64, f64, f64)> = Vec::new();
    for ttb in [5u64, 15, 30, 60, 120] {
        let tta = ttb * 5;
        let cfg = CollectorKind::Complete(
            DgcConfig::builder()
                .ttb(Dur::from_secs(ttb))
                .tta(Dur::from_secs(tta))
                .max_comm(Dur::from_millis(500))
                .build(),
        );
        let out = run_torture(
            &params,
            topo.clone(),
            cfg,
            0x77B,
            SimTime::from_secs(100_000),
        );
        assert_eq!(out.violations, 0);
        let at = out
            .all_collected_at
            .expect("sweep run must collect everything")
            .as_secs_f64();
        table.row(vec![
            format!("{ttb} s"),
            format!("{tta} s"),
            format!("{at:.0} s"),
            format!("{:.1} MB", mib(out.total_bytes)),
            format!("{}", out.violations),
        ]);
        rows.push((ttb, at, mib(out.total_bytes)));
    }
    table.print();
    let fastest = rows.first().expect("rows");
    let slowest = rows.last().expect("rows");
    assert!(
        slowest.1 > fastest.1,
        "larger TTB must reclaim later ({} vs {})",
        slowest.1,
        fastest.1
    );
    println!(
        "\nShape: reclaim time grows with TTB (right column of Fig. 10);\n\
         traffic during the fixed 120 s active phase shrinks with TTB."
    );
}
