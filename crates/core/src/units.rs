//! Minimal time units for the sans-io protocol core.
//!
//! The protocol only needs to *compare* instants and add durations; it
//! never reads a wall clock. Runtimes (simulated or threaded) convert
//! their own notion of time into these nanosecond counters when driving
//! the state machine, which keeps this crate free of any runtime
//! dependency.

use std::fmt;
use std::ops::{Add, Sub};

/// An instant, as nanoseconds since an arbitrary runtime-defined origin.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Time(u64);

/// A span of time in nanoseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Dur(u64);

impl Time {
    /// The origin instant.
    pub const ZERO: Time = Time(0);

    /// Builds an instant from raw nanoseconds.
    pub const fn from_nanos(n: u64) -> Self {
        Time(n)
    }

    /// Builds an instant from whole seconds (convenience for tests).
    pub const fn from_secs(s: u64) -> Self {
        Time(s * 1_000_000_000)
    }

    /// Raw nanoseconds.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Time elapsed since `earlier`, zero if `earlier` is in the future.
    pub fn since(self, earlier: Time) -> Dur {
        Dur(self.0.saturating_sub(earlier.0))
    }
}

impl Dur {
    /// Zero-length span.
    pub const ZERO: Dur = Dur(0);
    /// Effectively infinite span (disables a timeout).
    pub const MAX: Dur = Dur(u64::MAX);

    /// Builds a span from raw nanoseconds.
    pub const fn from_nanos(n: u64) -> Self {
        Dur(n)
    }

    /// Builds a span from whole milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        Dur(ms * 1_000_000)
    }

    /// Builds a span from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        Dur(s * 1_000_000_000)
    }

    /// Raw nanoseconds.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Fractional seconds, for reporting.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// True if zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Saturating multiplication by an integer factor.
    pub const fn saturating_mul(self, k: u64) -> Dur {
        Dur(self.0.saturating_mul(k))
    }

    /// Saturating addition.
    pub const fn saturating_add(self, o: Dur) -> Dur {
        Dur(self.0.saturating_add(o.0))
    }

    /// Integer division by a non-zero constant.
    pub const fn div(self, k: u64) -> Dur {
        Dur(self.0 / k)
    }
}

impl Add<Dur> for Time {
    type Output = Time;
    fn add(self, d: Dur) -> Time {
        Time(self.0.saturating_add(d.0))
    }
}

impl Sub<Time> for Time {
    type Output = Dur;
    fn sub(self, rhs: Time) -> Dur {
        Dur(self.0.saturating_sub(rhs.0))
    }
}

impl fmt::Display for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.0 as f64 / 1e9)
    }
}

impl fmt::Display for Dur {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.0 as f64 / 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_accessors() {
        assert_eq!(Time::from_secs(2).as_nanos(), 2_000_000_000);
        assert_eq!(Dur::from_millis(5).as_nanos(), 5_000_000);
        assert!(Dur::ZERO.is_zero());
    }

    #[test]
    fn since_saturates() {
        let a = Time::from_secs(1);
        let b = Time::from_secs(3);
        assert_eq!(b.since(a), Dur::from_secs(2));
        assert_eq!(a.since(b), Dur::ZERO);
    }

    #[test]
    fn add_saturates_at_max() {
        let t = Time::from_nanos(u64::MAX) + Dur::from_secs(1);
        assert_eq!(t.as_nanos(), u64::MAX);
    }

    #[test]
    fn dur_arithmetic() {
        assert_eq!(Dur::from_secs(3).saturating_mul(2), Dur::from_secs(6));
        assert_eq!(Dur::from_secs(4).div(2), Dur::from_secs(2));
        assert_eq!(Dur::MAX.saturating_add(Dur::from_secs(1)), Dur::MAX);
    }

    #[test]
    fn ordering() {
        assert!(Time::from_secs(1) < Time::from_secs(2));
        assert!(Dur::from_millis(1) < Dur::from_secs(1));
    }
}
