//! Local garbage collection of stubs, emulated.
//!
//! The paper's reference graph is built **without modifying the local
//! collector** (§2.2): every stub deserialized by an activity is tagged;
//! all stubs of the same activity for the same remote object share one
//! tag, and the DGC holds a *weak* reference to that tag. Only when the
//! local GC collects the last stub does the weak reference break and the
//! edge disappear.
//!
//! Our simulated equivalent is a per-activity [`StubTable`]: a strong
//! count per target (the live stubs), plus the set of targets whose count
//! reached zero since the last sweep. A periodic **sweep** (the simulated
//! local GC run) reports those — modelling the delay between
//! unreachability and its detection, which the paper's §4.2 discussion
//! of GC pauses cares about.

use std::collections::{BTreeMap, BTreeSet};

use dgc_core::id::AoId;

/// Per-activity table of held stubs (the no-sharing property guarantees
/// no other activity shares them, Fig. 1).
#[derive(Debug, Clone, Default)]
pub struct StubTable {
    counts: BTreeMap<AoId, u64>,
    /// Targets whose count hit zero and await the next sweep.
    zeroed: BTreeSet<AoId>,
}

impl StubTable {
    /// Empty table.
    pub fn new() -> Self {
        StubTable::default()
    }

    /// A stub for `target` was deserialized (one more strong reference).
    pub fn deserialize(&mut self, target: AoId) {
        *self.counts.entry(target).or_insert(0) += 1;
        // A new stub revives the tag even if a zero was pending.
        self.zeroed.remove(&target);
    }

    /// Drops one stub for `target`. Returns `true` if that was the last
    /// one (the tag became unreachable — pending sweep).
    pub fn release(&mut self, target: AoId) -> bool {
        match self.counts.get_mut(&target) {
            None => false,
            Some(c) => {
                *c = c.saturating_sub(1);
                if *c == 0 {
                    self.counts.remove(&target);
                    self.zeroed.insert(target);
                    true
                } else {
                    false
                }
            }
        }
    }

    /// Drops all stubs for `target` at once.
    pub fn release_all(&mut self, target: AoId) -> bool {
        if self.counts.remove(&target).is_some() {
            self.zeroed.insert(target);
            true
        } else {
            false
        }
    }

    /// The simulated local-GC run: returns (and forgets) every target
    /// whose last stub died since the previous sweep. The caller feeds
    /// these to `DgcState::on_stubs_collected`.
    pub fn sweep(&mut self) -> Vec<AoId> {
        let out: Vec<AoId> = self.zeroed.iter().copied().collect();
        self.zeroed.clear();
        out
    }

    /// Live stub count for `target`.
    pub fn count(&self, target: AoId) -> u64 {
        self.counts.get(&target).copied().unwrap_or(0)
    }

    /// Targets currently referenced by at least one live stub.
    pub fn held_targets(&self) -> impl Iterator<Item = AoId> + '_ {
        self.counts.keys().copied()
    }

    /// True if no stub is held and no zero is pending.
    pub fn is_empty(&self) -> bool {
        self.counts.is_empty() && self.zeroed.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ao(n: u32) -> AoId {
        AoId::new(n, 0)
    }

    #[test]
    fn counts_accumulate_per_target() {
        let mut t = StubTable::new();
        t.deserialize(ao(1));
        t.deserialize(ao(1));
        t.deserialize(ao(2));
        assert_eq!(t.count(ao(1)), 2);
        assert_eq!(t.count(ao(2)), 1);
        assert_eq!(t.held_targets().count(), 2);
    }

    #[test]
    fn releasing_last_stub_pends_a_zero() {
        let mut t = StubTable::new();
        t.deserialize(ao(1));
        t.deserialize(ao(1));
        assert!(!t.release(ao(1)), "one stub left");
        assert!(t.release(ao(1)), "last stub gone");
        assert_eq!(t.count(ao(1)), 0);
        assert_eq!(t.sweep(), vec![ao(1)]);
        assert_eq!(t.sweep(), Vec::<AoId>::new(), "sweep clears pending zeros");
    }

    #[test]
    fn redeserialization_before_sweep_revives_the_tag() {
        // The shared-tag trick: if a new stub appears before the local GC
        // runs, the edge never disappears.
        let mut t = StubTable::new();
        t.deserialize(ao(1));
        t.release(ao(1));
        t.deserialize(ao(1));
        assert!(t.sweep().is_empty(), "tag revived, no edge loss");
        assert_eq!(t.count(ao(1)), 1);
    }

    #[test]
    fn release_all_drops_every_stub() {
        let mut t = StubTable::new();
        t.deserialize(ao(1));
        t.deserialize(ao(1));
        t.deserialize(ao(1));
        assert!(t.release_all(ao(1)));
        assert!(!t.release_all(ao(1)));
        assert_eq!(t.sweep(), vec![ao(1)]);
    }

    #[test]
    fn release_of_unknown_target_is_noop() {
        let mut t = StubTable::new();
        assert!(!t.release(ao(9)));
        assert!(t.is_empty());
    }

    #[test]
    fn sweep_reports_each_target_once() {
        let mut t = StubTable::new();
        t.deserialize(ao(1));
        t.deserialize(ao(2));
        t.release(ao(1));
        t.release(ao(2));
        let mut swept = t.sweep();
        swept.sort();
        assert_eq!(swept, vec![ao(1), ao(2)]);
        assert!(t.is_empty());
    }
}
