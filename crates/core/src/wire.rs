//! Binary wire codec for DGC messages and responses.
//!
//! The paper measures its bandwidth overhead through an instrumented
//! SOCKS proxy, so every byte of the Java-RMI-serialized DGC calls
//! counts. To reproduce those measurements honestly we encode protocol
//! units into a concrete binary format (rather than inventing sizes), and
//! the simulator charges the encoded length — plus a configurable
//! per-call *envelope* modelling the RMI invocation overhead (operation
//! hash, object UID, serialization headers) — to the network meters.
//!
//! Layout (big-endian):
//!
//! ```text
//! message  := tag(1) sender(8) clock(16) flags(1) sender_ttb(8)
//! response := tag(1) responder(8) clock(16) flags(1) depth?(4)
//! clock    := value(8) owner(8)
//! aoid     := node(4) index(4)
//! ```

use bytes::{Buf, BufMut, Bytes, BytesMut};

use crate::clock::NamedClock;
use crate::id::AoId;
use crate::message::{DgcMessage, DgcResponse};
use crate::units::Dur;

const TAG_MESSAGE: u8 = 0xD1;
const TAG_RESPONSE: u8 = 0xD2;

const FLAG_CONSENSUS: u8 = 0b0000_0001;
const FLAG_HAS_PARENT: u8 = 0b0000_0010;
const FLAG_CONSENSUS_REACHED: u8 = 0b0000_0100;
const FLAG_HAS_DEPTH: u8 = 0b0000_1000;

/// Errors produced when decoding a wire buffer.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum DecodeError {
    /// The buffer ended before the fixed-size fields were read.
    Truncated,
    /// The leading tag byte did not match the expected unit.
    BadTag(u8),
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::Truncated => write!(f, "wire buffer truncated"),
            DecodeError::BadTag(t) => write!(f, "unexpected wire tag 0x{t:02X}"),
        }
    }
}

impl std::error::Error for DecodeError {}

/// Appends an [`AoId`] (8 bytes). Public so node-level transports can
/// compose frames out of the same primitives the simulator charges for.
pub fn put_aoid(buf: &mut impl BufMut, id: AoId) {
    buf.put_u32(id.node);
    buf.put_u32(id.index);
}

/// Reads an [`AoId`] back.
pub fn get_aoid(buf: &mut Bytes) -> Result<AoId, DecodeError> {
    if buf.remaining() < 8 {
        return Err(DecodeError::Truncated);
    }
    Ok(AoId::new(buf.get_u32(), buf.get_u32()))
}

/// Appends a [`NamedClock`] (16 bytes).
pub fn put_clock(buf: &mut impl BufMut, c: NamedClock) {
    buf.put_u64(c.value);
    put_aoid(buf, c.owner);
}

/// Reads a [`NamedClock`] back.
pub fn get_clock(buf: &mut Bytes) -> Result<NamedClock, DecodeError> {
    if buf.remaining() < 8 {
        return Err(DecodeError::Truncated);
    }
    let value = buf.get_u64();
    let owner = get_aoid(buf)?;
    Ok(NamedClock { value, owner })
}

/// Appends an encoded DGC message to `buf` (tag included), letting
/// transports embed messages inside larger frames without intermediate
/// allocations.
pub fn put_message(buf: &mut impl BufMut, m: &DgcMessage) {
    buf.put_u8(TAG_MESSAGE);
    put_aoid(buf, m.sender);
    put_clock(buf, m.clock);
    let mut flags = 0u8;
    if m.consensus {
        flags |= FLAG_CONSENSUS;
    }
    buf.put_u8(flags);
    buf.put_u64(m.sender_ttb.as_nanos());
}

/// Reads one DGC message from the front of `buf`, leaving any trailing
/// bytes unread (the encoding is self-delimiting).
pub fn get_message(buf: &mut Bytes) -> Result<DgcMessage, DecodeError> {
    if buf.remaining() < 1 {
        return Err(DecodeError::Truncated);
    }
    let tag = buf.get_u8();
    if tag != TAG_MESSAGE {
        return Err(DecodeError::BadTag(tag));
    }
    let sender = get_aoid(buf)?;
    let clock = get_clock(buf)?;
    if buf.remaining() < 9 {
        return Err(DecodeError::Truncated);
    }
    let flags = buf.get_u8();
    let sender_ttb = Dur::from_nanos(buf.get_u64());
    Ok(DgcMessage {
        sender,
        clock,
        consensus: flags & FLAG_CONSENSUS != 0,
        sender_ttb,
    })
}

/// Appends an encoded DGC response to `buf` (tag included).
pub fn put_response(buf: &mut impl BufMut, r: &DgcResponse) {
    buf.put_u8(TAG_RESPONSE);
    put_aoid(buf, r.responder);
    put_clock(buf, r.clock);
    let mut flags = 0u8;
    if r.has_parent {
        flags |= FLAG_HAS_PARENT;
    }
    if r.consensus_reached {
        flags |= FLAG_CONSENSUS_REACHED;
    }
    if r.depth.is_some() {
        flags |= FLAG_HAS_DEPTH;
    }
    buf.put_u8(flags);
    if let Some(d) = r.depth {
        buf.put_u32(d);
    }
}

/// Reads one DGC response from the front of `buf`, leaving any trailing
/// bytes unread.
pub fn get_response(buf: &mut Bytes) -> Result<DgcResponse, DecodeError> {
    if buf.remaining() < 1 {
        return Err(DecodeError::Truncated);
    }
    let tag = buf.get_u8();
    if tag != TAG_RESPONSE {
        return Err(DecodeError::BadTag(tag));
    }
    let responder = get_aoid(buf)?;
    let clock = get_clock(buf)?;
    if buf.remaining() < 1 {
        return Err(DecodeError::Truncated);
    }
    let flags = buf.get_u8();
    let depth = if flags & FLAG_HAS_DEPTH != 0 {
        if buf.remaining() < 4 {
            return Err(DecodeError::Truncated);
        }
        Some(buf.get_u32())
    } else {
        None
    };
    Ok(DgcResponse {
        responder,
        clock,
        has_parent: flags & FLAG_HAS_PARENT != 0,
        consensus_reached: flags & FLAG_CONSENSUS_REACHED != 0,
        depth,
    })
}

/// Encodes a DGC message.
pub fn encode_message(m: &DgcMessage) -> Bytes {
    let mut buf = BytesMut::with_capacity(34);
    put_message(&mut buf, m);
    buf.freeze()
}

/// Decodes a DGC message.
pub fn decode_message(mut buf: Bytes) -> Result<DgcMessage, DecodeError> {
    get_message(&mut buf)
}

/// Encodes a DGC response.
pub fn encode_response(r: &DgcResponse) -> Bytes {
    let mut buf = BytesMut::with_capacity(30);
    put_response(&mut buf, r);
    buf.freeze()
}

/// Decodes a DGC response.
pub fn decode_response(mut buf: Bytes) -> Result<DgcResponse, DecodeError> {
    get_response(&mut buf)
}

/// Wire size in bytes of an encoded DGC message (fixed).
pub fn message_wire_size() -> u64 {
    34
}

/// Wire size in bytes of an encoded DGC response.
pub fn response_wire_size(with_depth: bool) -> u64 {
    if with_depth {
        30
    } else {
        26
    }
}

/// Per-call envelope modelling the overhead of an RMI invocation
/// (transport framing, operation identifiers, serialization headers).
///
/// The paper's measured per-beat DGC cost on the NAS runs is far larger
/// than the raw fields of the message, because each DGC call travels as a
/// Java-RMI remote invocation. `RMI_CALL_ENVELOPE` is our calibrated
/// stand-in; EXPERIMENTS.md documents the calibration.
pub const RMI_CALL_ENVELOPE: u64 = 240;

#[cfg(test)]
mod tests {
    use super::*;

    fn ao(n: u32, i: u32) -> AoId {
        AoId::new(n, i)
    }

    fn sample_message() -> DgcMessage {
        DgcMessage {
            sender: ao(3, 7),
            clock: NamedClock {
                value: 42,
                owner: ao(1, 2),
            },
            consensus: true,
            sender_ttb: Dur::from_secs(30),
        }
    }

    fn sample_response(depth: Option<u32>) -> DgcResponse {
        DgcResponse {
            responder: ao(9, 1),
            clock: NamedClock {
                value: 7,
                owner: ao(9, 1),
            },
            has_parent: true,
            consensus_reached: false,
            depth,
        }
    }

    #[test]
    fn message_round_trip() {
        let m = sample_message();
        let encoded = encode_message(&m);
        assert_eq!(encoded.len() as u64, message_wire_size());
        assert_eq!(decode_message(encoded).unwrap(), m);
    }

    #[test]
    fn response_round_trip_without_depth() {
        let r = sample_response(None);
        let encoded = encode_response(&r);
        assert_eq!(encoded.len() as u64, response_wire_size(false));
        assert_eq!(decode_response(encoded).unwrap(), r);
    }

    #[test]
    fn response_round_trip_with_depth() {
        let r = sample_response(Some(12));
        let encoded = encode_response(&r);
        assert_eq!(encoded.len() as u64, response_wire_size(true));
        assert_eq!(decode_response(encoded).unwrap(), r);
    }

    #[test]
    fn flags_encode_independently() {
        for consensus in [false, true] {
            let m = DgcMessage {
                consensus,
                ..sample_message()
            };
            assert_eq!(
                decode_message(encode_message(&m)).unwrap().consensus,
                consensus
            );
        }
        for (hp, cr) in [(false, false), (true, false), (false, true), (true, true)] {
            let r = DgcResponse {
                has_parent: hp,
                consensus_reached: cr,
                ..sample_response(None)
            };
            let d = decode_response(encode_response(&r)).unwrap();
            assert_eq!(d.has_parent, hp);
            assert_eq!(d.consensus_reached, cr);
        }
    }

    #[test]
    fn wrong_tag_is_rejected() {
        let m = encode_message(&sample_message());
        assert!(matches!(decode_response(m), Err(DecodeError::BadTag(_))));
        let r = encode_response(&sample_response(None));
        assert!(matches!(decode_message(r), Err(DecodeError::BadTag(_))));
    }

    #[test]
    fn truncation_is_detected() {
        let m = encode_message(&sample_message());
        for len in 0..m.len() {
            let cut = m.slice(0..len);
            assert!(
                decode_message(cut).is_err(),
                "truncated at {len} must not decode"
            );
        }
        let r = encode_response(&sample_response(Some(3)));
        for len in 0..r.len() {
            let cut = r.slice(0..len);
            assert!(decode_response(cut).is_err());
        }
    }

    #[test]
    fn decode_error_display() {
        assert_eq!(DecodeError::Truncated.to_string(), "wire buffer truncated");
        assert!(DecodeError::BadTag(0xAB).to_string().contains("0xAB"));
    }
}
