//! Requests, replies and futures.
//!
//! Method calls between active objects are **asynchronous** (§4.1): the
//! caller enqueues a [`Request`] in the callee's request queue and
//! immediately obtains a [`FutureId`] — a placeholder for the result. The
//! callee later sends a [`Reply`] carrying the value. An activity that
//! *waits* on a future is **busy** ("waiting for a future can only be
//! done during the service of a request"), while the mere arrival of a
//! reply never wakes an idle activity — the property that justifies the
//! oriented reference edges of the DGC (Fig. 4).
//!
//! Payloads are modelled by their serialized size plus the list of
//! carried remote references, which is everything the garbage collector
//! and the bandwidth meters can observe.

use dgc_core::id::AoId;

/// Identifier of a future: the calling activity plus a per-caller
/// sequence number.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FutureId {
    /// The caller that holds the future.
    pub caller: AoId,
    /// Per-caller sequence number.
    pub seq: u64,
}

/// An application request (asynchronous method call).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Sending activity.
    pub sender: AoId,
    /// Application-defined method selector.
    pub method: u32,
    /// Serialized size of the arguments, excluding carried references.
    pub payload_bytes: u64,
    /// Remote references carried by the arguments; deserializing them on
    /// the callee side creates reference-graph edges (§2.2).
    pub refs: Vec<AoId>,
    /// Future to reply to, if the caller wants a result.
    pub future: Option<FutureId>,
}

/// An application reply (future value).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Reply {
    /// The future being resolved.
    pub future: FutureId,
    /// Serialized size of the result, excluding carried references.
    pub payload_bytes: u64,
    /// Remote references carried by the result.
    pub refs: Vec<AoId>,
}

/// Fixed per-request header bytes on the wire (sender, method, future id,
/// counts), before payload and references.
pub const REQUEST_HEADER_BYTES: u64 = 40;
/// Fixed per-reply header bytes.
pub const REPLY_HEADER_BYTES: u64 = 28;
/// Wire bytes per carried remote reference (an `AoId` plus routing hint —
/// ProActive serializes a full stub, we charge a compact 16 bytes).
pub const REF_BYTES: u64 = 16;

impl Request {
    /// Serialized size on the wire (before the per-call envelope).
    pub fn wire_size(&self) -> u64 {
        REQUEST_HEADER_BYTES + self.payload_bytes + self.refs.len() as u64 * REF_BYTES
    }
}

impl Reply {
    /// Serialized size on the wire (before the per-call envelope).
    pub fn wire_size(&self) -> u64 {
        REPLY_HEADER_BYTES + self.payload_bytes + self.refs.len() as u64 * REF_BYTES
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ao(n: u32) -> AoId {
        AoId::new(n, 0)
    }

    #[test]
    fn request_wire_size_counts_refs_and_payload() {
        let r = Request {
            sender: ao(1),
            method: 7,
            payload_bytes: 100,
            refs: vec![ao(2), ao(3)],
            future: None,
        };
        assert_eq!(r.wire_size(), REQUEST_HEADER_BYTES + 100 + 2 * REF_BYTES);
    }

    #[test]
    fn reply_wire_size_counts_refs_and_payload() {
        let r = Reply {
            future: FutureId {
                caller: ao(1),
                seq: 3,
            },
            payload_bytes: 64,
            refs: vec![ao(9)],
        };
        assert_eq!(r.wire_size(), REPLY_HEADER_BYTES + 64 + REF_BYTES);
    }

    #[test]
    fn future_ids_order_by_caller_then_seq() {
        let a = FutureId {
            caller: ao(1),
            seq: 9,
        };
        let b = FutureId {
            caller: ao(2),
            seq: 0,
        };
        assert!(a < b);
        assert!(
            FutureId {
                caller: ao(1),
                seq: 1
            } < a
        );
    }
}
