//! Property and trap tests for the lint lexer: arbitrary input never
//! panics, and the classic Rust lexical traps (raw strings, nested
//! block comments, lifetimes vs char literals) can't smuggle code past
//! the rules or hide real code from them.

use proptest::prelude::*;

use dgc_analysis::lexer::{lex, TokKind};

proptest! {
    #[test]
    fn arbitrary_bytes_never_panic(bytes in proptest::collection::vec(any::<u8>(), 0..512)) {
        let text = String::from_utf8_lossy(&bytes);
        let _ = lex(&text);
    }

    #[test]
    fn arbitrary_ascii_never_panics_and_lines_are_sane(
        text in proptest::collection::vec(any::<u8>(), 0..512)
    ) {
        let text: String = text
            .into_iter()
            .map(|b| (b % 96 + 32) as char) // printable ASCII
            .collect();
        let toks = lex(&text);
        for t in &toks {
            prop_assert!(t.line >= 1);
            prop_assert!(t.end_line >= t.line);
        }
    }

    #[test]
    fn quote_and_hash_soup_never_panics(
        picks in proptest::collection::vec(any::<u8>(), 0..128)
    ) {
        const ALPHABET: [char; 10] = ['r', '#', '"', '\'', '\\', 'b', '/', '*', 'a', '\n'];
        let text: String = picks
            .into_iter()
            .map(|b| ALPHABET[b as usize % ALPHABET.len()])
            .collect();
        let _ = lex(&text);
    }
}

#[test]
fn raw_string_with_fewer_hashes_stays_in_body() {
    // The `"#` inside the body doesn't close an `r##"…"##` string.
    let toks = lex(r####"let s = r##"inner "# still inside"##; after()"####);
    let s: Vec<_> = toks
        .iter()
        .filter(|t| t.kind == TokKind::Str)
        .map(|t| t.text.as_str())
        .collect();
    assert_eq!(s, [r##"inner "# still inside"##]);
    assert!(toks.iter().any(|t| t.is_ident("after")));
}

#[test]
fn nested_block_comments_fully_close() {
    let toks = lex("/* outer /* inner */ still comment */ code()");
    assert!(toks.iter().any(|t| t.is_ident("code")));
    assert!(!toks
        .iter()
        .any(|t| t.kind != TokKind::BlockComment && t.text.contains("inner")));
}

#[test]
fn lifetime_heavy_generics_do_not_eat_code() {
    let toks =
        lex("fn f<'a, 'b: 'a>(x: &'a str, c: char) -> &'a str { if c == 'x' { x } else { x } }");
    let lifetimes: Vec<_> = toks
        .iter()
        .filter(|t| t.kind == TokKind::Lifetime)
        .map(|t| t.text.as_str())
        .collect();
    assert_eq!(lifetimes, ["a", "b", "a", "a", "a"]);
    let chars: Vec<_> = toks
        .iter()
        .filter(|t| t.kind == TokKind::Char)
        .map(|t| t.text.as_str())
        .collect();
    assert_eq!(chars, ["x"]);
}

#[test]
fn unterminated_everything_terminates_the_lexer() {
    for src in [
        "\"never closed",
        "r#\"never closed",
        "/* never closed",
        "'\\",
        "b\"never closed",
        "r###",
    ] {
        let _ = lex(src); // must not hang or panic
    }
}
