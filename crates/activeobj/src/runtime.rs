//! The grid runtime: a deterministic driver executing activities over the
//! simulated network, with a pluggable distributed collector.
//!
//! This is the reproduction's equivalent of the ProActive middleware
//! deployed on Grid'5000: processes host activities, application calls
//! and collector traffic share reliable FIFO links, a per-process local
//! GC sweep detects dead stub tags, and every cross-process byte is
//! metered. All scheduling flows through one deterministic event queue,
//! so a `(seed, workload)` pair always replays identically.

use std::collections::{BTreeMap, BTreeSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use dgc_core::faults::FaultProfile;
use dgc_simnet::fault::FaultPlan;
use dgc_simnet::network::{Delivery, Network};
use dgc_simnet::queue::EventQueue;
use dgc_simnet::rng::SimRng;
use dgc_simnet::time::{SimDuration, SimTime};
use dgc_simnet::topology::{ProcId, Topology};
use dgc_simnet::trace::{TraceLevel, TraceLog};
use dgc_simnet::traffic::{TrafficClass, TrafficMeter};

use dgc_core::egress::{EgressClass, EgressObs, Flush, FlushPolicy, Outbox};
use dgc_core::id::AoId;
use dgc_core::message::{Action, DgcMessage, DgcResponse, TerminateReason};
use dgc_core::stats::DgcStats;
use dgc_core::sweep::{SweepScratch, SweepUnit};
use dgc_core::telemetry::DgcObs;
use dgc_core::wire as dgc_wire;
use dgc_membership::wire as membership_wire;
use dgc_membership::{
    Digest, GossipOut, Membership, MembershipConfig, MembershipEvent, MembershipObs, NodeRecord,
    Transition,
};
use dgc_obs::{Registry, TimeSource};
use dgc_plane::{
    AuthKey, Envelope, MiddlewareCtx, Pipeline, TenantCounters, TenantId, TenantLedger, TenantMap,
    Verdict,
};
use dgc_rmi::endpoint::{RmiAction, RmiMessage};
use dgc_rmi::wire as rmi_wire;

use crate::activity::{Activity, AoCtx, Behavior, Effect, SpawnAlloc};
use crate::collector::{proto_time, Collector, CollectorKind};
use crate::oracle::{garbage_set, live_set, InflightMessage, SafetyViolation, Snapshot};
use crate::request::{FutureId, Reply, Request};

/// Grid-level configuration.
#[derive(Clone)]
pub struct GridConfig {
    /// Sites, processes and latencies.
    pub topology: Topology,
    /// Root random seed; everything derives from it.
    pub seed: u64,
    /// Which distributed collector to run.
    pub collector: CollectorKind,
    /// Period of the simulated local-GC sweep per process.
    pub local_gc_period: SimDuration,
    /// Per-call envelope bytes added to every cross-process call
    /// (models the RMI invocation overhead; see `dgc_core::wire`).
    pub call_envelope: u64,
    /// Check every collector-driven termination against the oracle.
    pub check_safety: bool,
    /// Record `(idle, collected)` samples at this period (Fig. 10).
    pub sample_every: Option<SimDuration>,
    /// Trace verbosity.
    pub trace_level: TraceLevel,
    /// Randomize the phase of each activity's first collector tick, as
    /// unsynchronized broadcasts do in the real system.
    pub tick_jitter: bool,
    /// Deployment payload charged once per process when its first
    /// activity is created (models middleware bootstrap: class loading,
    /// runtime descriptors — the bulk of a lightly-communicating
    /// application's baseline traffic, cf. the paper's EP row).
    pub deployment_bytes: u64,
    /// Link faults and process pauses (§4.2 experiments).
    pub fault_plan: FaultPlan,
    /// When set, every process runs a `dgc-membership` engine driven by
    /// simulated gossip delivery: nodes discover each other from the
    /// `membership_seeds`, suspect and bury silent peers, and each
    /// **dead** verdict feeds the hosted collectors' send-failure path
    /// ([`dgc_core::protocol::DgcState::on_node_dead`]).
    pub membership: Option<MembershipConfig>,
    /// The processes every engine is seeded with (assumed-alive
    /// contacts); the usual deployment knows only process 0.
    pub membership_seeds: Vec<ProcId>,
    /// The egress plane's flush policy: when a process's queued
    /// cross-process units (DGC heartbeats, gossip digests, app
    /// requests/replies) become one metered frame sharing a single
    /// call envelope. The default is [`FlushPolicy::immediate`] — every
    /// unit its own frame, the paper's baseline accounting — so
    /// existing experiments are byte-identical; switch to
    /// [`FlushPolicy::default`] (or a custom policy) to measure the
    /// piggyback saving. `flush_on_app` must stay on: the application's
    /// synchronous rendezvous (§2) cannot wait out a linger.
    pub egress: FlushPolicy,
    /// The deployment's link key (`dgc-plane` PSK). On sockets the key
    /// drives a real HMAC handshake; the simulator *models* the
    /// outcome: a cross-process link counts as authenticated when both
    /// ends hold equal keys (or no key is configured anywhere). Procs
    /// default to this key; [`Grid::set_proc_key`] plants rogues.
    pub auth: Option<AuthKey>,
}

impl GridConfig {
    /// A sensible default configuration over `topology`.
    pub fn new(topology: Topology) -> Self {
        GridConfig {
            topology,
            seed: 0xD6C5_EED5,
            collector: CollectorKind::None,
            local_gc_period: SimDuration::from_secs(1),
            call_envelope: dgc_wire::RMI_CALL_ENVELOPE,
            check_safety: true,
            sample_every: None,
            trace_level: TraceLevel::Off,
            tick_jitter: true,
            deployment_bytes: 0,
            fault_plan: FaultPlan::none(),
            membership: None,
            membership_seeds: vec![ProcId(0)],
            egress: FlushPolicy::immediate(),
            auth: None,
        }
    }

    /// Sets the deployment link key (see [`GridConfig::auth`]).
    pub fn auth(mut self, key: AuthKey) -> Self {
        self.auth = Some(key);
        self
    }

    /// Enables the membership layer with `config` timings.
    pub fn membership(mut self, config: MembershipConfig) -> Self {
        self.membership = Some(config);
        self
    }

    /// Sets the egress flush policy (see [`GridConfig::egress`]).
    pub fn egress(mut self, policy: FlushPolicy) -> Self {
        self.egress = policy;
        self
    }

    /// Sets the collector.
    pub fn collector(mut self, collector: CollectorKind) -> Self {
        self.collector = collector;
        self
    }

    /// Sets the seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Enables time-series sampling.
    pub fn sample_every(mut self, period: SimDuration) -> Self {
        self.sample_every = Some(period);
        self
    }

    /// Sets the trace level.
    pub fn trace_level(mut self, level: TraceLevel) -> Self {
        self.trace_level = level;
        self
    }

    /// Enables or disables oracle safety checking (expensive on very
    /// large runs).
    pub fn check_safety(mut self, on: bool) -> Self {
        self.check_safety = on;
        self
    }

    /// Installs a fault plan.
    pub fn fault_plan(mut self, plan: FaultPlan) -> Self {
        self.fault_plan = plan;
        self
    }

    /// Installs the simulator realization of a runtime-neutral
    /// [`FaultProfile`] (the same description a `dgc-rt-net` chaos
    /// proxy replays over real sockets).
    pub fn fault_profile(self, profile: &FaultProfile) -> Self {
        self.fault_plan(FaultPlan::from_profile(profile))
    }

    /// Sets the per-process deployment payload.
    pub fn deployment_bytes(mut self, bytes: u64) -> Self {
        self.deployment_bytes = bytes;
        self
    }
}

/// A collected (terminated) activity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CollectedRecord {
    /// Who.
    pub ao: AoId,
    /// Collector reason; `None` for explicit `kill`.
    pub reason: Option<TerminateReason>,
    /// When.
    pub at: SimTime,
}

/// One driver-level application unit delivered by the simulated
/// network — the simulator twin of `dgc-rt-net`'s `AppReceived`, so a
/// runtime-neutral workload driver can poll either runtime the same
/// way. Also the shape of a *failed* outgoing unit in
/// [`Grid::app_send_failures`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AppDelivered {
    /// Delivery (or failure) time.
    pub at: SimTime,
    /// Sending activity.
    pub from: AoId,
    /// Destination activity.
    pub to: AoId,
    /// True for a reply payload.
    pub reply: bool,
    /// The opaque payload.
    pub payload: Vec<u8>,
}

/// One time-series sample (Fig. 10).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Sample {
    /// Sample time.
    pub at: SimTime,
    /// Alive idle activities.
    pub idle: usize,
    /// Collected activities so far.
    pub collected: usize,
    /// Alive activities.
    pub alive: usize,
}

enum Event {
    Request {
        key: u64,
        to: AoId,
        request: Request,
    },
    ReplyMsg {
        key: u64,
        to: AoId,
        reply: Reply,
    },
    DgcMsg {
        from: AoId,
        to: AoId,
        message: DgcMessage,
    },
    DgcResp {
        from: AoId,
        to: AoId,
        response: DgcResponse,
    },
    Rmi {
        from: AoId,
        to: AoId,
        message: RmiMessage,
    },
    Tick {
        ao: AoId,
    },
    ServeDone {
        ao: AoId,
    },
    LocalGc {
        proc: ProcId,
    },
    AppTimer {
        ao: AoId,
        token: u64,
    },
    /// Drives `proc`'s membership engine (failure detection + gossip).
    MembershipTick {
        proc: ProcId,
    },
    /// A gossip digest crossing the simulated network.
    Gossip {
        from: ProcId,
        to: ProcId,
        digest: Digest,
    },
    /// A driver-level opaque application unit arriving (the simulator
    /// twin of `dgc-rt-net`'s `Item::App` delivery).
    AppBytes {
        from: AoId,
        to: AoId,
        reply: bool,
        tenant: TenantId,
        payload: Vec<u8>,
    },
    /// `proc`'s egress outbox reached a max-delay deadline: flush the
    /// due destinations. (A paused process defers this like all its
    /// work — a stalled node sends nothing, faithfully.)
    EgressFlush {
        proc: ProcId,
    },
    /// `proc` crashes: every hosted activity dies, its membership
    /// engine stops. Scheduled from the fault plan's `NodeCrash`es.
    NodeCrash {
        proc: ProcId,
    },
    /// `proc` restarts empty under `incarnation` and re-bootstraps from
    /// the seeds.
    NodeRejoin {
        proc: ProcId,
        incarnation: u64,
    },
    Sample,
}

enum HandlerKind {
    Start,
    Request(Request),
    Reply(FutureId, Reply),
    Timer(u64),
}

/// One cross-process unit queued on a process's egress outbox. The
/// outbox coalesces these into frames; [`Grid::realize_flush`] turns a
/// flush back into scheduled delivery events (or per-unit loss
/// handling when the frame crosses a drop window).
enum OutUnit {
    Request {
        to: AoId,
        request: Request,
    },
    Reply {
        to: AoId,
        reply: Reply,
    },
    Dgc {
        from: AoId,
        to: AoId,
        message: DgcMessage,
    },
    Resp {
        from: AoId,
        to: AoId,
        response: DgcResponse,
    },
    Gossip {
        to: ProcId,
        digest: Digest,
    },
    /// A driver-level opaque app payload ([`Grid::send_app`]): metered
    /// and flushed like socket app traffic, delivered to the drainable
    /// inbox instead of a behavior.
    AppBytes {
        from: AoId,
        to: AoId,
        reply: bool,
        tenant: TenantId,
        payload: Vec<u8>,
    },
}

/// The meter class an egress class is charged under.
fn traffic_class(class: EgressClass) -> TrafficClass {
    match class {
        EgressClass::AppRequest => TrafficClass::AppRequest,
        EgressClass::AppReply => TrafficClass::AppReply,
        EgressClass::DgcMessage => TrafficClass::DgcMessage,
        EgressClass::DgcResponse => TrafficClass::DgcResponse,
        EgressClass::Gossip => TrafficClass::Gossip,
        // The grid never queues bare control units today; metered like
        // DGC traffic if it ever does.
        EgressClass::Control => TrafficClass::DgcMessage,
    }
}

/// The grid: processes, activities, network, collector, oracle.
pub struct Grid {
    config: GridConfig,
    now: SimTime,
    events: EventQueue<Event>,
    net: Network,
    procs: Vec<BTreeMap<u32, Activity>>,
    spawn_alloc: SpawnAlloc,
    rng: SimRng,
    trace: TraceLog,
    registry: BTreeMap<String, AoId>,
    collected: Vec<CollectedRecord>,
    violations: Vec<SafetyViolation>,
    samples: Vec<Sample>,
    idle_count: usize,
    alive_count: usize,
    app_sends_to_dead: u64,
    inflight_app: BTreeMap<u64, InflightMessage>,
    next_inflight_key: u64,
    dgc_stats_collected: DgcStats,
    /// Per-process membership engines (`None` while a process is down,
    /// or for every process when the layer is disabled).
    members: Vec<Option<Membership>>,
    /// Every membership transition each process observed, in order.
    member_events: Vec<Vec<MembershipEvent>>,
    /// Per-process egress outboxes (cross-process units only).
    outboxes: Vec<Outbox<OutUnit>>,
    /// The earliest scheduled [`Event::EgressFlush`] per process, to
    /// avoid flooding the queue with duplicate wake-ups.
    egress_wake: Vec<Option<SimTime>>,
    /// Driver-level app units delivered and not yet drained.
    app_inbox: Vec<AppDelivered>,
    /// Driver-level app units the network accepted but could not
    /// deliver (dropped frame, departed destination process).
    app_failures: Vec<AppDelivered>,
    /// Shared virtual clock the telemetry plane reads; kept equal to
    /// `now` as the event loop advances.
    obs_clock: Arc<AtomicU64>,
    /// Per-process telemetry registries, all reading `obs_clock` and
    /// sharing the grid trace ring.
    obs: Vec<Registry>,
    /// The app-plane middleware pipeline every [`Grid::send_app`]
    /// payload traverses (outgoing at the sender, incoming at
    /// delivery). Empty by default: single-tenant grids are untouched.
    pipeline: Pipeline,
    /// Activity → tenant assignments. The grid's one map plays the role
    /// of every node's broadcast-synchronized copy on sockets.
    tenants: TenantMap,
    /// Per-tenant app-plane conservation ledger
    /// (`enqueued = flushed + returned + pending`).
    ledger: TenantLedger,
    /// Each process's link key; initialized from [`GridConfig::auth`],
    /// overridden per proc by [`Grid::set_proc_key`] to model rogues.
    proc_keys: Vec<Option<AuthKey>>,
    /// Scratch and unit buffers every collector tick reuses
    /// ([`DgcState::on_tick_into`]): million-activity grids stop
    /// paying a `Vec<Action>` allocation per activity per TTB.
    dgc_scratch: SweepScratch,
    dgc_units: Vec<SweepUnit>,
}

impl Grid {
    /// Builds a grid from its configuration.
    ///
    /// # Panics
    ///
    /// Panics if `config.egress.flush_on_app` is off: the application's
    /// synchronous rendezvous cannot wait out an egress linger.
    pub fn new(config: GridConfig) -> Self {
        assert!(
            config.egress.flush_on_app,
            "GridConfig::egress must keep flush_on_app enabled"
        );
        let procs_n = config.topology.procs();
        let mut rng = SimRng::from_seed(config.seed);
        let mut net = Network::new(config.topology.clone());
        net.set_fault_plan(config.fault_plan.clone());
        let mut events = EventQueue::new();
        // Stagger local-GC sweeps so processes do not all sweep at once.
        let mut gc_rng = rng.fork(0x6C);
        for p in 0..procs_n {
            let phase = gc_rng.jitter(config.local_gc_period);
            events.schedule(SimTime::ZERO + phase, Event::LocalGc { proc: ProcId(p) });
        }
        if let Some(period) = config.sample_every {
            events.schedule(SimTime::ZERO + period, Event::Sample);
        }
        // Membership: one engine per process, seeded, ticked at half the
        // gossip interval so failure detection stays responsive.
        let members: Vec<Option<Membership>> = (0..procs_n)
            .map(|p| {
                config.membership.map(|m| {
                    let engine = new_member(&config, ProcId(p), 1, SimTime::ZERO, m);
                    events.schedule(SimTime::ZERO, Event::MembershipTick { proc: ProcId(p) });
                    engine
                })
            })
            .collect();
        // Crash-restarts come from the fault plan, like pauses — but as
        // explicit events, since they destroy state rather than defer it.
        for crash in config.fault_plan.crashes() {
            let proc = ProcId(crash.node);
            events.schedule(
                SimTime::from_nanos(crash.down.start.as_nanos()),
                Event::NodeCrash { proc },
            );
            if let Some(incarnation) = crash.rejoin_incarnation {
                events.schedule(
                    SimTime::from_nanos(crash.down.end.as_nanos()),
                    Event::NodeRejoin { proc, incarnation },
                );
            }
        }
        let trace = TraceLog::new(config.trace_level);
        let egress = config.egress;
        // One virtual clock for the whole grid: every per-proc registry
        // reads it, so cross-node telemetry timestamps are mutually
        // ordered — exactly like the wall clock on real sockets.
        let (obs_time, obs_clock) = TimeSource::simulated();
        let obs: Vec<Registry> = (0..procs_n)
            .map(|_| Registry::with_tracer(obs_time.clone(), trace.tracer().clone()))
            .collect();
        let outboxes: Vec<Outbox<OutUnit>> = obs
            .iter()
            .map(|r| {
                let mut ob = Outbox::new(egress);
                ob.set_obs(EgressObs::new(r));
                ob
            })
            .collect();
        let members: Vec<Option<Membership>> = members
            .into_iter()
            .zip(&obs)
            .map(|(m, r)| {
                m.map(|mut engine| {
                    engine.set_obs(MembershipObs::new(r));
                    engine
                })
            })
            .collect();
        // The tenant ledger mirrors into proc 0's registry: tenants are
        // a grid-wide namespace, and `obs_merged` folds every registry
        // anyway, so one mirror keeps the counters visible fleet-wide
        // without double counting.
        let mut ledger = TenantLedger::new();
        ledger.set_obs(obs[0].clone());
        let proc_keys = vec![config.auth; procs_n as usize];
        Grid {
            spawn_alloc: SpawnAlloc::new(procs_n),
            procs: (0..procs_n).map(|_| BTreeMap::new()).collect(),
            config,
            now: SimTime::ZERO,
            events,
            net,
            rng,
            trace,
            registry: BTreeMap::new(),
            collected: Vec::new(),
            violations: Vec::new(),
            samples: Vec::new(),
            idle_count: 0,
            alive_count: 0,
            app_sends_to_dead: 0,
            inflight_app: BTreeMap::new(),
            next_inflight_key: 0,
            dgc_stats_collected: DgcStats::default(),
            members,
            member_events: (0..procs_n).map(|_| Vec::new()).collect(),
            outboxes,
            egress_wake: vec![None; procs_n as usize],
            app_inbox: Vec::new(),
            app_failures: Vec::new(),
            obs_clock,
            obs,
            pipeline: Pipeline::new(),
            tenants: TenantMap::new(),
            ledger,
            proc_keys,
            dgc_scratch: SweepScratch::new(),
            dgc_units: Vec::new(),
        }
    }

    // ------------------------------------------------------------------
    // Deployment API (what a `main()` does)
    // ------------------------------------------------------------------

    /// Spawns an activity on `proc`. Nothing references it: under a
    /// running collector it will be collected after TTA unless a
    /// reference reaches it first — use [`Grid::spawn_root`] or
    /// [`Grid::make_ref`] for deployment wiring.
    pub fn spawn(&mut self, proc: ProcId, behavior: Box<dyn Behavior>) -> AoId {
        let id = self.spawn_alloc.allocate(proc);
        self.create_activity(id, behavior, false);
        id
    }

    /// Spawns a **root** activity (registered object or dummy
    /// referencer, §4.1): never idle, never collected.
    pub fn spawn_root(&mut self, proc: ProcId, behavior: Box<dyn Behavior>) -> AoId {
        let id = self.spawn_alloc.allocate(proc);
        self.create_activity(id, behavior, true);
        id
    }

    /// Registers `ao` under `name` (making it a root, like the paper's
    /// registry).
    pub fn register(&mut self, name: &str, ao: AoId) {
        self.registry.insert(name.to_owned(), ao);
        if let Some(act) = get_act(&mut self.procs, ao) {
            act.is_root = true;
        }
        self.refresh_idle(ao);
    }

    /// Removes the registration, allowing collection again.
    pub fn unregister(&mut self, name: &str) {
        if let Some(ao) = self.registry.remove(name) {
            if let Some(act) = get_act(&mut self.procs, ao) {
                act.is_root = false;
            }
            self.refresh_idle(ao);
        }
    }

    /// Looks up a registered activity.
    pub fn lookup(&self, name: &str) -> Option<AoId> {
        self.registry.get(name).copied()
    }

    /// Pins `ao` busy (`busy = true`) or releases the pin — the
    /// deterministic equivalent of the socket runtime's explicit
    /// `set_idle(ao, false)`, used by the conformance harness to script
    /// identical busy/idle timelines on both runtimes. The pin is its
    /// own flag, not `is_root`, so pinning and releasing never disturbs
    /// root status from [`Grid::register`] / [`Grid::spawn_root`].
    pub fn set_busy(&mut self, ao: AoId, busy: bool) {
        if let Some(act) = get_act(&mut self.procs, ao) {
            act.pinned_busy = busy;
        }
        self.refresh_idle(ao);
    }

    /// Hands `holder` a reference to `target` (deployment-time wiring:
    /// stub deserialization without a message). Refused when the two
    /// belong to different tenants: reference graphs — and therefore
    /// every TTB sweep and termination verdict walking them — never
    /// cross a tenant boundary (the socket runtime rejects the same
    /// way in its `AddRef` path).
    pub fn make_ref(&mut self, holder: AoId, target: AoId) {
        assert!(self.is_alive(holder), "make_ref: unknown holder {holder}");
        if self.tenants.of(holder) != self.tenants.of(target) {
            self.ledger.on_rejected_outgoing(self.tenants.of(holder));
            if self.trace.enabled(TraceLevel::Debug) {
                self.trace.debug(
                    self.now,
                    "ref-reject",
                    format!("{holder}→{target}: cross-tenant"),
                );
            }
            return;
        }
        self.register_deserialized(holder, std::slice::from_ref(&target));
    }

    /// Drops every stub `holder` has for `target` (detected at the next
    /// local-GC sweep).
    pub fn drop_ref(&mut self, holder: AoId, target: AoId) {
        if let Some(act) = get_act(&mut self.procs, holder) {
            act.stubs.release_all(target);
        }
    }

    /// Sends a request on behalf of `sender` (a deployment-held root or
    /// dummy). `refs` must be held by the sender (or be the sender).
    pub fn send_from(
        &mut self,
        sender: AoId,
        to: AoId,
        method: u32,
        payload_bytes: u64,
        refs: Vec<AoId>,
    ) {
        self.dispatch_request(sender, to, method, payload_bytes, refs, None);
    }

    /// Explicitly destroys an activity (the explicit-termination
    /// baseline used by the NAS implementation, §5.2).
    pub fn kill(&mut self, ao: AoId) {
        self.terminate_activity(ao, None);
    }

    /// Sends a driver-level opaque application unit — the simulator
    /// twin of `dgc_rt_net::NetNode::send_app`, so a runtime-neutral
    /// workload driver can ship the same payloads over either runtime.
    /// The unit crosses the egress plane (metered under its app class,
    /// coalescing and dropping with the frame it rides in) and lands in
    /// the inbox drained by [`Grid::drain_app_received`]; it never
    /// touches a behavior, so activity idleness is unaffected —
    /// exactly like the socket runtime's opaque app plane.
    pub fn send_app(&mut self, from: AoId, to: AoId, reply: bool, payload: Vec<u8>) {
        let mut env = Envelope {
            from,
            to,
            reply,
            tenant: self.tenants.of(from),
            payload,
        };
        // Outgoing side: the local sender is trusted (auth gates links,
        // not intent — the socket runtime behaves identically).
        let ctx = MiddlewareCtx {
            link_authenticated: true,
            tenants: &self.tenants,
        };
        if let Verdict::Reject(why) = self.pipeline.outgoing(&mut env, &ctx) {
            self.ledger.on_rejected_outgoing(self.tenants.of(env.from));
            if self.trace.enabled(TraceLevel::Debug) {
                self.trace
                    .debug(self.now, "app-reject", format!("{from}→{to}: {why}"));
            }
            return;
        }
        self.ledger.on_enqueued(env.tenant);
        let class = if env.reply {
            EgressClass::AppReply
        } else {
            EgressClass::AppRequest
        };
        let size = env.payload.len() as u64;
        let unit = OutUnit::AppBytes {
            from: env.from,
            to: env.to,
            reply: env.reply,
            tenant: env.tenant,
            payload: env.payload,
        };
        if from.node == to.node {
            self.schedule_unit(self.now, ProcId(from.node), unit);
        } else {
            self.enqueue_unit(ProcId(from.node), ProcId(to.node), class, size, unit);
        }
    }

    /// Installs the app-plane middleware pipeline (e.g.
    /// [`Pipeline::standard`] for the multi-tenant policy). Replaces
    /// the current one wholesale; the default is empty.
    pub fn set_pipeline(&mut self, pipeline: Pipeline) {
        self.pipeline = pipeline;
    }

    /// Assigns `ao` to `tenant` — the grid twin of
    /// `dgc_rt_net::Cluster::set_tenant` (one map here plays every
    /// node's copy). Isolation stages and the [`Grid::make_ref`] guard
    /// consult it for both endpoints.
    pub fn set_tenant(&mut self, ao: AoId, tenant: TenantId) {
        self.tenants.register(ao, tenant);
    }

    /// The tenant `ao` belongs to.
    pub fn tenant_of(&self, ao: AoId) -> TenantId {
        self.tenants.of(ao)
    }

    /// Overrides `proc`'s link key (see [`GridConfig::auth`]): `None`
    /// models a keyless process, a mismatching key models a rogue —
    /// either way its cross-process app units arrive on links that
    /// never authenticated, and a [`dgc_plane::RequireAuth`] stage
    /// refuses them at delivery.
    pub fn set_proc_key(&mut self, proc: ProcId, key: Option<AuthKey>) {
        self.proc_keys[proc.0 as usize] = key;
    }

    /// Every tenant that moved at least one app unit, with its
    /// conservation counters.
    pub fn tenant_snapshot(&self) -> Vec<(TenantId, TenantCounters)> {
        self.ledger.snapshot()
    }

    /// `tenant`'s app-plane counters (zeros if it never moved a unit).
    pub fn tenant_counters(&self, tenant: TenantId) -> TenantCounters {
        self.ledger.counters(tenant)
    }

    /// True when a `proc_a` ↔ `proc_b` link counts as authenticated:
    /// same process (loopback never leaves the node), both keyless, or
    /// both holding the same key — the modeled outcome of the socket
    /// runtime's HMAC handshake.
    fn link_authenticated(&self, proc_a: u32, proc_b: u32) -> bool {
        if proc_a == proc_b {
            return true;
        }
        let key = |p: u32| self.proc_keys.get(p as usize).copied().flatten();
        match (key(proc_a), key(proc_b)) {
            (None, None) => true,
            (Some(a), Some(b)) => a == b,
            _ => false,
        }
    }

    /// Drains the driver-level app units delivered since the last call,
    /// in delivery order.
    pub fn drain_app_received(&mut self) -> Vec<AppDelivered> {
        std::mem::take(&mut self.app_inbox)
    }

    /// Driver-level app units the network accepted but could not
    /// deliver (frame lost to a fault window, destination process
    /// departed), in failure order.
    pub fn app_send_failures(&self) -> &[AppDelivered] {
        &self.app_failures
    }

    // ------------------------------------------------------------------
    // Execution
    // ------------------------------------------------------------------

    /// Runs the simulation until `deadline` (inclusive).
    pub fn run_until(&mut self, deadline: SimTime) {
        while let Some(at) = self.events.peek_time() {
            if at > deadline {
                break;
            }
            let (at, event) = self.events.pop().expect("peeked event");
            self.now = at;
            self.obs_clock.store(at.as_nanos(), Ordering::Relaxed);
            // §4.2 process pauses: a paused process handles nothing; its
            // events are deferred to the end of the pause.
            if let Some(proc) = event_proc(&event) {
                if let Some(end) = self.config.fault_plan.pause_end(at, proc) {
                    self.events.schedule(end, event);
                    continue;
                }
            }
            self.handle(event);
        }
        self.now = self.now.max(deadline);
        self.obs_clock.store(self.now.as_nanos(), Ordering::Relaxed);
    }

    /// Runs for `d` of simulated time.
    pub fn run_for(&mut self, d: SimDuration) {
        self.run_until(self.now + d);
    }

    /// Runs until no garbage remains alive (checked every `check_every`)
    /// or until `deadline`; returns `true` on success.
    pub fn run_until_clean(&mut self, check_every: SimDuration, deadline: SimTime) -> bool {
        loop {
            if self.garbage_remaining().is_empty() {
                return true;
            }
            if self.now >= deadline {
                return false;
            }
            let step = deadline.min(self.now + check_every);
            self.run_until(step);
        }
    }

    fn handle(&mut self, event: Event) {
        match event {
            Event::Request { key, to, request } => {
                self.inflight_app.remove(&key);
                self.deliver_request(to, request);
            }
            Event::ReplyMsg { key, to, reply } => {
                self.inflight_app.remove(&key);
                self.deliver_reply(to, reply);
            }
            Event::DgcMsg { from, to, message } => self.deliver_dgc_msg(from, to, message),
            Event::DgcResp { from, to, response } => self.deliver_dgc_resp(from, to, response),
            Event::Rmi { from, to, message } => self.deliver_rmi(from, to, message),
            Event::Tick { ao } => self.handle_tick(ao),
            Event::ServeDone { ao } => self.handle_serve_done(ao),
            Event::LocalGc { proc } => self.handle_local_gc(proc),
            Event::AppTimer { ao, token } => self.handle_app_timer(ao, token),
            Event::MembershipTick { proc } => self.handle_membership_tick(proc),
            Event::Gossip { from, to, digest } => self.handle_gossip(from, to, digest),
            Event::AppBytes {
                from,
                to,
                reply,
                tenant,
                payload,
            } => {
                // A departed process hears nothing; its caller learns
                // through the failure log, like on sockets.
                let up =
                    self.config.membership.is_none() || self.members[to.node as usize].is_some();
                if !up {
                    self.app_failures.push(AppDelivered {
                        at: self.now,
                        from,
                        to,
                        reply,
                        payload,
                    });
                    return;
                }
                // Incoming side of the pipeline, with the modeled link
                // auth outcome: a rogue process's units die here.
                let mut env = Envelope {
                    from,
                    to,
                    reply,
                    tenant,
                    payload,
                };
                let ctx = MiddlewareCtx {
                    link_authenticated: self.link_authenticated(from.node, to.node),
                    tenants: &self.tenants,
                };
                if let Verdict::Reject(why) = self.pipeline.incoming(&mut env, &ctx) {
                    self.ledger.on_rejected_incoming(env.tenant);
                    if self.trace.enabled(TraceLevel::Debug) {
                        self.trace
                            .debug(self.now, "app-reject", format!("{from}→{to}: {why}"));
                    }
                    return;
                }
                self.app_inbox.push(AppDelivered {
                    at: self.now,
                    from: env.from,
                    to: env.to,
                    reply: env.reply,
                    payload: env.payload,
                });
            }
            Event::EgressFlush { proc } => self.handle_egress_flush(proc),
            Event::NodeCrash { proc } => self.handle_crash(proc),
            Event::NodeRejoin { proc, incarnation } => self.handle_rejoin(proc, incarnation),
            Event::Sample => {
                self.samples.push(Sample {
                    at: self.now,
                    idle: self.idle_count,
                    collected: self.collected.len(),
                    alive: self.alive_count,
                });
                if let Some(period) = self.config.sample_every {
                    self.events.schedule(self.now + period, Event::Sample);
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // Activity lifecycle
    // ------------------------------------------------------------------

    fn create_activity(&mut self, id: AoId, behavior: Box<dyn Behavior>, is_root: bool) {
        // Middleware bootstrap: the first activity on a remote process
        // pulls the runtime/classes over from the deployer (process 0).
        if self.config.deployment_bytes > 0
            && id.node != 0
            && self.procs[id.node as usize].is_empty()
        {
            self.net.send(
                self.now,
                ProcId(0),
                ProcId(id.node),
                TrafficClass::AppRequest,
                self.config.deployment_bytes,
            );
        }
        let rng = self.rng.fork(hash_id(id));
        let mut act = Activity::new(id, behavior, is_root, rng);
        act.collector = Collector::new(&self.config.collector, id, self.now);
        if let Collector::Complete(state) = &mut act.collector {
            state.set_obs(DgcObs::new(&self.obs[id.node as usize]));
        }
        if let Some(period) = act.collector.tick_period() {
            let phase = if self.config.tick_jitter {
                self.rng.jitter(period)
            } else {
                SimDuration::ZERO
            };
            self.events
                .schedule(self.now + period + phase, Event::Tick { ao: id });
        }
        self.procs[id.node as usize].insert(id.index, act);
        self.alive_count += 1;
        if self.trace.enabled(TraceLevel::Info) {
            self.trace
                .info(self.now, "spawn", format!("{id} root={is_root}"));
        }
        self.run_handler(id, HandlerKind::Start);
        self.refresh_idle(id);
    }

    fn terminate_activity(&mut self, ao: AoId, reason: Option<TerminateReason>) {
        // Oracle safety check: only collector-driven terminations.
        if let Some(r) = reason {
            if self.config.check_safety {
                let snap = self.snapshot();
                if live_set(&snap).contains(&ao) {
                    self.violations.push(SafetyViolation {
                        at: self.now,
                        ao,
                        reason: r,
                    });
                    if self.trace.enabled(TraceLevel::Info) {
                        self.trace
                            .info(self.now, "violation", format!("{ao} was live"));
                    }
                }
            }
        }
        let Some(act) = self.procs[ao.node as usize].remove(&ao.index) else {
            return;
        };
        self.alive_count -= 1;
        if act.was_idle {
            self.idle_count -= 1;
        }
        // RMI sends clean calls for still-held references on local
        // collection; the paper's DGC goes silent and lets TTA expire.
        match act.collector {
            Collector::Rmi(mut e) => {
                let held: Vec<AoId> = act.stubs.held_targets().collect();
                let mut actions = Vec::new();
                for t in held {
                    actions.extend(e.on_stubs_collected(t));
                }
                self.apply_rmi_actions(ao, actions);
            }
            Collector::Complete(s) => {
                self.dgc_stats_collected.merge(s.stats());
            }
            Collector::None => {}
        }
        self.collected.push(CollectedRecord {
            ao,
            reason,
            at: self.now,
        });
        if self.trace.enabled(TraceLevel::Info) {
            self.trace
                .info(self.now, "terminate", format!("{ao} reason={reason:?}"));
        }
    }

    fn refresh_idle(&mut self, ao: AoId) {
        let now = self.now;
        let Some(act) = get_act(&mut self.procs, ao) else {
            return;
        };
        let idle = act.is_idle();
        if idle == act.was_idle {
            return;
        }
        act.was_idle = idle;
        if idle {
            self.idle_count += 1;
            if let Collector::Complete(s) = &mut act.collector {
                s.on_became_idle(proto_time(now));
            }
            self.trace.debug(now, "idle", format!("{ao}"));
        } else {
            self.idle_count -= 1;
            self.trace.debug(now, "busy", format!("{ao}"));
        }
    }

    /// §2.2 deserialization hook: `ao` received stubs for `refs`.
    fn register_deserialized(&mut self, ao: AoId, refs: &[AoId]) {
        let now = self.now;
        let mut rmi_actions: Vec<RmiAction> = Vec::new();
        if let Some(act) = get_act(&mut self.procs, ao) {
            for r in refs {
                act.stubs.deserialize(*r);
                match &mut act.collector {
                    Collector::Complete(s) => s.on_stub_deserialized(*r),
                    Collector::Rmi(e) => {
                        rmi_actions.extend(e.on_stub_deserialized(proto_time(now), *r));
                    }
                    Collector::None => {}
                }
            }
        }
        self.apply_rmi_actions(ao, rmi_actions);
    }

    // ------------------------------------------------------------------
    // Application message handling
    // ------------------------------------------------------------------

    fn deliver_request(&mut self, to: AoId, request: Request) {
        if !self.is_alive(to) {
            self.app_sends_to_dead += 1;
            if self.trace.enabled(TraceLevel::Info) {
                self.trace
                    .info(self.now, "dead-call", format!("request to {to}"));
            }
            return;
        }
        self.register_deserialized(to, &request.refs);
        let act = get_act(&mut self.procs, to).expect("alive");
        act.queue.push_back(request);
        self.try_serve(to);
        self.refresh_idle(to);
    }

    fn deliver_reply(&mut self, to: AoId, reply: Reply) {
        if !self.is_alive(to) {
            // §4.1: a future update for a collected caller is dropped —
            // accepted behaviour, not a fault.
            self.trace.debug(self.now, "late-reply", format!("to {to}"));
            return;
        }
        self.register_deserialized(to, &reply.refs);
        let act = get_act(&mut self.procs, to).expect("alive");
        let seq = reply.future.seq;
        if act.waiting.remove(&seq) {
            // Wait-by-necessity resolved: the handler runs (busy).
            let fut = reply.future;
            self.run_handler(to, HandlerKind::Reply(fut, reply));
        } else {
            // Arrival of a future value cannot wake an idle activity.
            act.stored_replies.insert(seq, reply);
        }
        self.try_serve(to);
        self.refresh_idle(to);
    }

    fn handle_serve_done(&mut self, ao: AoId) {
        let Some(act) = get_act(&mut self.procs, ao) else {
            return;
        };
        act.pending_serves = act.pending_serves.saturating_sub(1);
        self.try_serve(ao);
        self.refresh_idle(ao);
    }

    fn handle_app_timer(&mut self, ao: AoId, token: u64) {
        if !self.is_alive(ao) {
            return;
        }
        self.run_handler(ao, HandlerKind::Timer(token));
        self.refresh_idle(ao);
    }

    fn try_serve(&mut self, ao: AoId) {
        loop {
            let Some(act) = get_act(&mut self.procs, ao) else {
                return;
            };
            if !act.can_serve_next() {
                return;
            }
            let request = act.queue.pop_front().expect("non-empty");
            self.run_handler(ao, HandlerKind::Request(request));
            // run_handler schedules a ServeDone (pending_serves > 0), so
            // the loop exits unless the handler completed synchronously.
        }
    }

    fn run_handler(&mut self, ao: AoId, kind: HandlerKind) {
        let now = self.now;
        let Some(act) = get_act(&mut self.procs, ao) else {
            return;
        };
        let mut behavior = std::mem::replace(&mut act.behavior, Box::new(crate::activity::Inert));
        let effects = {
            let mut ctx = AoCtx::new(
                ao,
                now,
                &mut act.next_future_seq,
                &mut self.spawn_alloc,
                &mut act.rng,
            );
            match &kind {
                HandlerKind::Start => behavior.on_start(&mut ctx),
                HandlerKind::Request(req) => behavior.on_request(&mut ctx, req),
                HandlerKind::Reply(fut, reply) => behavior.on_reply(&mut ctx, *fut, reply),
                HandlerKind::Timer(token) => behavior.on_timer(&mut ctx, *token),
            }
            ctx.effects
        };
        if let Some(act) = get_act(&mut self.procs, ao) {
            act.behavior = behavior;
        }
        let serve = !matches!(kind, HandlerKind::Start);
        self.apply_effects(ao, effects, serve);
    }

    fn apply_effects(&mut self, ao: AoId, effects: Vec<Effect>, serve: bool) {
        let mut compute_total = SimDuration::ZERO;
        let mut spawned: Vec<AoId> = Vec::new();
        for effect in effects {
            match effect {
                Effect::Compute(d) => compute_total = compute_total + d,
                Effect::Send {
                    to,
                    method,
                    payload_bytes,
                    refs,
                    future,
                    await_reply,
                } => {
                    #[cfg(debug_assertions)]
                    self.assert_holds_refs(ao, &refs, &spawned);
                    if let (Some(fut), true) = (future, await_reply) {
                        if let Some(act) = get_act(&mut self.procs, ao) {
                            act.waiting.insert(fut.seq);
                        }
                    }
                    self.dispatch_request(ao, to, method, payload_bytes, refs, future);
                }
                Effect::Reply {
                    future,
                    payload_bytes,
                    refs,
                } => {
                    #[cfg(debug_assertions)]
                    self.assert_holds_refs(ao, &refs, &spawned);
                    self.dispatch_reply(
                        ao,
                        Reply {
                            future,
                            payload_bytes,
                            refs,
                        },
                    );
                }
                Effect::Retain(target) => {
                    self.register_deserialized(ao, std::slice::from_ref(&target));
                }
                Effect::Release { target, all } => {
                    if let Some(act) = get_act(&mut self.procs, ao) {
                        if all {
                            act.stubs.release_all(target);
                        } else {
                            act.stubs.release(target);
                        }
                    }
                }
                Effect::Spawn { id, behavior } => {
                    spawned.push(id);
                    self.create_activity(id, behavior, false);
                    // The creator holds the first stub.
                    self.register_deserialized(ao, std::slice::from_ref(&id));
                }
                Effect::Timer { delay, token } => {
                    self.events
                        .schedule(self.now + delay, Event::AppTimer { ao, token });
                }
            }
        }
        if serve {
            if let Some(act) = get_act(&mut self.procs, ao) {
                act.pending_serves += 1;
                self.events
                    .schedule(self.now + compute_total, Event::ServeDone { ao });
            }
        }
    }

    #[cfg(debug_assertions)]
    fn assert_holds_refs(&mut self, ao: AoId, refs: &[AoId], spawned: &[AoId]) {
        if let Some(act) = get_act(&mut self.procs, ao) {
            for r in refs {
                assert!(
                    *r == ao || act.stubs.count(*r) > 0 || spawned.contains(r),
                    "{ao} sent a reference to {r} it does not hold"
                );
            }
        }
    }

    fn dispatch_request(
        &mut self,
        sender: AoId,
        to: AoId,
        method: u32,
        payload_bytes: u64,
        refs: Vec<AoId>,
        future: Option<FutureId>,
    ) {
        let request = Request {
            sender,
            method,
            payload_bytes,
            refs,
            future,
        };
        if sender.node == to.node {
            // Intra-process: free, instant, never lost.
            self.schedule_unit(
                self.now,
                ProcId(sender.node),
                OutUnit::Request { to, request },
            );
            return;
        }
        let size = request.wire_size();
        self.enqueue_unit(
            ProcId(sender.node),
            ProcId(to.node),
            EgressClass::AppRequest,
            size,
            OutUnit::Request { to, request },
        );
    }

    fn dispatch_reply(&mut self, sender: AoId, reply: Reply) {
        let to = reply.future.caller;
        if sender.node == to.node {
            self.schedule_unit(self.now, ProcId(sender.node), OutUnit::Reply { to, reply });
            return;
        }
        let size = reply.wire_size();
        self.enqueue_unit(
            ProcId(sender.node),
            ProcId(to.node),
            EgressClass::AppReply,
            size,
            OutUnit::Reply { to, reply },
        );
    }

    /// Per-call envelope for traffic that does not ride the egress
    /// plane (the RMI lease baseline keeps its one-invocation-per-unit
    /// accounting — it *is* the thing the egress plane is measured
    /// against).
    fn envelope(&self, from: AoId, to: AoId) -> u64 {
        if from.node == to.node {
            0
        } else {
            self.config.call_envelope
        }
    }

    // ------------------------------------------------------------------
    // Egress plane
    // ------------------------------------------------------------------

    /// Queues one **cross-process** unit on `from`'s egress outbox and
    /// realizes whatever the flush policy emits right now (always the
    /// unit itself under the default immediate policy; under a
    /// coalescing policy, background units linger for company and
    /// flush with the next app send or at `max_delay`). Same-process
    /// traffic never comes here — it is free, instant and unmetered.
    fn enqueue_unit(
        &mut self,
        from: ProcId,
        dest: ProcId,
        class: EgressClass,
        size: u64,
        unit: OutUnit,
    ) {
        debug_assert_ne!(from, dest, "same-process traffic bypasses egress");
        let now = crate::collector::proto_time(self.now);
        match self.outboxes[from.0 as usize].enqueue(now, dest.0, class, size, unit) {
            Some(flush) => self.realize_flush(from, flush),
            None => self.schedule_egress_wake(from),
        }
    }

    /// Schedules the [`Event::EgressFlush`] wake-up for `proc`'s next
    /// outbox deadline, unless an earlier one is already queued.
    fn schedule_egress_wake(&mut self, proc: ProcId) {
        let Some(deadline) = self.outboxes[proc.0 as usize].next_deadline() else {
            return;
        };
        let at = SimTime::from_nanos(deadline.as_nanos());
        match self.egress_wake[proc.0 as usize] {
            Some(t) if t <= at => {}
            _ => {
                self.egress_wake[proc.0 as usize] = Some(at);
                self.events.schedule(at, Event::EgressFlush { proc });
            }
        }
    }

    fn handle_egress_flush(&mut self, proc: ProcId) {
        self.egress_wake[proc.0 as usize] = None;
        let now = crate::collector::proto_time(self.now);
        let flushes = self.outboxes[proc.0 as usize].poll(now);
        for flush in flushes {
            self.realize_flush(proc, flush);
        }
        self.schedule_egress_wake(proc);
    }

    /// Turns one egress flush into a single network frame: each unit is
    /// metered under its own traffic class, the RMI call envelope is
    /// charged **once per frame** (and not at all for pure-gossip
    /// frames, which never paid one) — that shared envelope is the
    /// piggyback saving — and one drop decision covers the frame.
    /// Delivered units schedule their events at the frame's arrival;
    /// a dropped frame applies each unit's loss handling.
    fn realize_flush(&mut self, from: ProcId, flush: Flush<OutUnit>) {
        let to = ProcId(flush.dest);
        let units: Vec<(TrafficClass, u64)> = flush
            .items
            .iter()
            .map(|qi| (traffic_class(qi.class), qi.size))
            .collect();
        let envelope = if flush.items.iter().any(|qi| qi.class != EgressClass::Gossip) {
            self.config.call_envelope
        } else {
            0
        };
        match self.net.route_frame(self.now, from, to, &units, envelope) {
            Delivery::At(at) => {
                for qi in flush.items {
                    self.schedule_unit(at, from, qi.item);
                }
            }
            Delivery::Dropped => {
                for qi in flush.items {
                    self.drop_unit(qi.item, true);
                }
            }
        }
    }

    /// Schedules delivery of one unit at `at` (`from` is the sending
    /// process, needed by gossip events).
    fn schedule_unit(&mut self, at: SimTime, from: ProcId, unit: OutUnit) {
        match unit {
            OutUnit::Request { to, request } => {
                let key = self.next_inflight_key;
                self.next_inflight_key += 1;
                self.inflight_app.insert(
                    key,
                    InflightMessage {
                        to,
                        is_request: true,
                        refs: request.refs.clone(),
                    },
                );
                self.events
                    .schedule(at, Event::Request { key, to, request });
            }
            OutUnit::Reply { to, reply } => {
                let key = self.next_inflight_key;
                self.next_inflight_key += 1;
                self.inflight_app.insert(
                    key,
                    InflightMessage {
                        to,
                        is_request: false,
                        refs: reply.refs.clone(),
                    },
                );
                self.events.schedule(at, Event::ReplyMsg { key, to, reply });
            }
            OutUnit::Dgc { from, to, message } => {
                self.events
                    .schedule(at, Event::DgcMsg { from, to, message });
            }
            OutUnit::Resp { from, to, response } => {
                self.events
                    .schedule(at, Event::DgcResp { from, to, response });
            }
            OutUnit::Gossip { to, digest } => {
                self.events.schedule(at, Event::Gossip { from, to, digest });
            }
            OutUnit::AppBytes {
                from,
                to,
                reply,
                tenant,
                payload,
            } => {
                // The unit left the egress plane (or loopback-delivered
                // on the spot): flushed, for conservation purposes —
                // whatever happens to it now is in-flight semantics.
                self.ledger.on_flushed(tenant);
                self.events.schedule(
                    at,
                    Event::AppBytes {
                        from,
                        to,
                        reply,
                        tenant,
                        payload,
                    },
                );
            }
        }
    }

    /// The frame carrying `unit` was lost to a drop window (`flushed:
    /// true` — it had left the outbox) or the unit was reclaimed from
    /// an outbox queue before any flush (`flushed: false`): apply the
    /// unit's loss semantics. The flag only matters to the tenant
    /// ledger: a post-flush loss counts as flushed (the failure log is
    /// its record), a pre-flush reclaim is *returned* — exactly the
    /// socket runtime's split between send failures and
    /// `reclaim_egress`.
    fn drop_unit(&mut self, unit: OutUnit, flushed: bool) {
        match unit {
            OutUnit::Request { request, .. } => {
                // The call never arrives and no future will ever
                // resolve. The rendezvous phase is synchronous (§2), so
                // the caller observes the failed send rather than
                // waiting forever on a future that cannot be updated —
                // clear the wait registered by `apply_effects`. (The
                // oracle must not see the call as in flight either.)
                if let Some(fut) = request.future {
                    if let Some(act) = get_act(&mut self.procs, request.sender) {
                        act.waiting.remove(&fut.seq);
                    }
                }
            }
            OutUnit::Reply { to, reply } => {
                // Lost future update. §4.1 tolerates these for a
                // collected caller; a *live* caller must not wait
                // forever on an update that can no longer arrive.
                if let Some(act) = get_act(&mut self.procs, to) {
                    act.waiting.remove(&reply.future.seq);
                }
                self.refresh_idle(to);
            }
            OutUnit::AppBytes {
                from,
                to,
                reply,
                tenant,
                payload,
            } => {
                // Opaque payloads have no protocol to retry them: the
                // loss surfaces on the sender's failure log, never
                // silently.
                if flushed {
                    self.ledger.on_flushed(tenant);
                } else {
                    self.ledger.on_returned(tenant);
                }
                self.app_failures.push(AppDelivered {
                    at: self.now,
                    from,
                    to,
                    reply,
                    payload,
                });
            }
            // A dropped heartbeat/digest is what the fault profiles are
            // *for*: the next TTB/gossip round regenerates it.
            OutUnit::Dgc { .. } | OutUnit::Resp { .. } | OutUnit::Gossip { .. } => {}
        }
    }

    // ------------------------------------------------------------------
    // Collector plumbing
    // ------------------------------------------------------------------

    fn handle_tick(&mut self, ao: AoId) {
        enum Ticked {
            Dgc(SimDuration),
            Rmi(Vec<RmiAction>, SimDuration),
            None,
        }
        let now = self.now;
        let ticked = {
            let Some(act) = get_act(&mut self.procs, ao) else {
                return;
            };
            let idle = act.is_idle();
            match &mut act.collector {
                Collector::None => Ticked::None,
                Collector::Complete(s) => {
                    // The grid-held scratch/unit buffers make the tick
                    // allocation-free; the units drain right below.
                    s.on_tick_into(
                        proto_time(now),
                        idle,
                        &mut self.dgc_scratch,
                        &mut self.dgc_units,
                    );
                    let period = crate::collector::sim_dur(s.current_ttb());
                    Ticked::Dgc(period)
                }
                Collector::Rmi(e) => {
                    let actions = e.on_tick(proto_time(now), idle);
                    let period = crate::collector::sim_dur(e.config().lease.div(4));
                    Ticked::Rmi(actions, period)
                }
            }
        };
        match ticked {
            Ticked::None => {}
            Ticked::Dgc(period) => {
                let mut units = std::mem::take(&mut self.dgc_units);
                for unit in units.drain(..) {
                    self.apply_dgc_action(unit.from, unit.action);
                }
                self.dgc_units = units;
                if self.is_alive(ao) {
                    self.events.schedule(now + period, Event::Tick { ao });
                }
            }
            Ticked::Rmi(actions, period) => {
                self.apply_rmi_actions(ao, actions);
                if self.is_alive(ao) {
                    self.events.schedule(now + period, Event::Tick { ao });
                }
            }
        }
    }

    fn apply_dgc_actions(&mut self, ao: AoId, actions: Vec<Action>) {
        for action in actions {
            self.apply_dgc_action(ao, action);
        }
    }

    fn apply_dgc_action(&mut self, ao: AoId, action: Action) {
        match action {
            // Cross-process DGC traffic queues on the egress plane
            // (and is subject to loss there: a dropped heartbeat is
            // what the fault profiles are *for* — the next TTB
            // regenerates it; TTA decides whether that sufficed).
            // Intra-process units stay free, instant and lossless.
            Action::SendMessage { to, message } => {
                let unit = OutUnit::Dgc {
                    from: ao,
                    to,
                    message,
                };
                if ao.node == to.node {
                    self.schedule_unit(self.now, ProcId(ao.node), unit);
                } else {
                    self.enqueue_unit(
                        ProcId(ao.node),
                        ProcId(to.node),
                        EgressClass::DgcMessage,
                        dgc_wire::message_wire_size(),
                        unit,
                    );
                }
            }
            Action::SendResponse { to, response } => {
                let size = dgc_wire::response_wire_size(response.depth.is_some());
                let unit = OutUnit::Resp {
                    from: ao,
                    to,
                    response,
                };
                if ao.node == to.node {
                    self.schedule_unit(self.now, ProcId(ao.node), unit);
                } else {
                    self.enqueue_unit(
                        ProcId(ao.node),
                        ProcId(to.node),
                        EgressClass::DgcResponse,
                        size,
                        unit,
                    );
                }
            }
            Action::Terminate { reason } => {
                self.terminate_activity(ao, Some(reason));
            }
            _ => {}
        }
    }

    fn deliver_dgc_msg(&mut self, from: AoId, to: AoId, message: DgcMessage) {
        let now = self.now;
        let actions = {
            match get_act(&mut self.procs, to) {
                Some(act) => match &mut act.collector {
                    Collector::Complete(s) => Some(s.on_message(proto_time(now), &message)),
                    _ => None,
                },
                None => None,
            }
        };
        match actions {
            Some(actions) => self.apply_dgc_actions(to, actions),
            None => {
                // Target gone: the sender's connection fails.
                if let Some(sender) = get_act(&mut self.procs, from) {
                    if let Collector::Complete(s) = &mut sender.collector {
                        s.on_send_failure(to);
                    }
                }
            }
        }
    }

    fn deliver_dgc_resp(&mut self, from: AoId, to: AoId, response: DgcResponse) {
        let now = self.now;
        let actions = {
            match get_act(&mut self.procs, to) {
                Some(act) => {
                    let idle = act.is_idle();
                    match &mut act.collector {
                        Collector::Complete(s) => {
                            Some(s.on_response(proto_time(now), from, &response, idle))
                        }
                        _ => None,
                    }
                }
                None => None,
            }
        };
        if let Some(actions) = actions {
            self.apply_dgc_actions(to, actions);
        }
    }

    fn apply_rmi_actions(&mut self, ao: AoId, actions: Vec<RmiAction>) {
        for action in actions {
            match action {
                RmiAction::Send { to, message } => {
                    let size = rmi_wire::wire_size(&message) + self.envelope(ao, to);
                    if let Delivery::At(at) = self.net.route(
                        self.now,
                        ProcId(ao.node),
                        ProcId(to.node),
                        TrafficClass::RmiLease,
                        size,
                    ) {
                        self.events.schedule(
                            at,
                            Event::Rmi {
                                from: ao,
                                to,
                                message,
                            },
                        );
                    }
                }
                RmiAction::Terminate => {
                    self.terminate_activity(ao, Some(TerminateReason::Acyclic));
                }
            }
        }
    }

    fn deliver_rmi(&mut self, from: AoId, to: AoId, message: RmiMessage) {
        let now = self.now;
        let delivered = match get_act(&mut self.procs, to) {
            Some(act) => match &mut act.collector {
                Collector::Rmi(e) => {
                    e.on_message(proto_time(now), &message);
                    true
                }
                _ => false,
            },
            None => false,
        };
        if !delivered {
            if let Some(sender) = get_act(&mut self.procs, from) {
                if let Collector::Rmi(e) = &mut sender.collector {
                    e.on_send_failure(to);
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // Membership and churn
    // ------------------------------------------------------------------

    fn handle_membership_tick(&mut self, proc: ProcId) {
        let Some(m) = self.config.membership else {
            return;
        };
        let now = self.now;
        let outs = match &mut self.members[proc.0 as usize] {
            Some(engine) => engine.on_tick(proto_time(now)),
            // Crashed: this tick chain dies with the node; a rejoin
            // starts a fresh one.
            None => return,
        };
        self.flush_membership(proc, outs);
        // Half the gossip interval keeps failure detection responsive
        // without flooding the event queue.
        let half = SimDuration::from_nanos((m.gossip_interval.as_nanos() / 2).max(1));
        self.events
            .schedule(now + half, Event::MembershipTick { proc });
    }

    fn handle_gossip(&mut self, from: ProcId, to: ProcId, digest: Digest) {
        let now = self.now;
        let outs = match &mut self.members[to.0 as usize] {
            Some(engine) => engine.on_digest(proto_time(now), from.0, &digest),
            None => return, // down nodes hear nothing
        };
        self.flush_membership(to, outs);
    }

    /// Queues `proc`'s outgoing digests on its egress outbox (metered,
    /// droppable, delayed — and piggybacking — like any other traffic)
    /// and applies its freshly observed membership transitions: every
    /// **dead** verdict — and every announced graceful **leave**, the
    /// same departure without the suspicion delay — feeds the hosted
    /// collectors' send-failure path.
    fn flush_membership(&mut self, proc: ProcId, outs: Vec<GossipOut>) {
        for out in outs {
            let size = membership_wire::digest_wire_size(&out.digest);
            let dest = ProcId(out.to);
            self.enqueue_unit(
                proc,
                dest,
                EgressClass::Gossip,
                size,
                OutUnit::Gossip {
                    to: dest,
                    digest: out.digest,
                },
            );
        }
        let events = match &mut self.members[proc.0 as usize] {
            Some(engine) => engine.poll_events(),
            None => Vec::new(),
        };
        for ev in events {
            if matches!(ev.transition, Transition::Dead | Transition::Left) && ev.node != proc.0 {
                self.apply_node_dead(proc, ev.node);
                // Reclaim the departed node's egress queue — items,
                // bytes and flush deadline — and give every stranded
                // unit its loss semantics (a waiting caller is
                // released, a driver-level app payload surfaces on the
                // failure log) instead of letting the queue rot against
                // a corpse for the grid's lifetime.
                let stranded = self.outboxes[proc.0 as usize].drop_dest(ev.node);
                for qi in stranded {
                    self.drop_unit(qi.item, false);
                }
            }
            self.member_events[proc.0 as usize].push(ev);
        }
    }

    /// `observer`'s membership engine buried `dead`: every collector it
    /// hosts treats that node's referencers and referenced activities
    /// as departed (§4.1's send-failure path, in bulk).
    fn apply_node_dead(&mut self, observer: ProcId, dead: u32) {
        for act in self.procs[observer.0 as usize].values_mut() {
            if let Collector::Complete(s) = &mut act.collector {
                s.on_node_dead(dead);
            }
        }
        if self.trace.enabled(TraceLevel::Info) {
            self.trace.info(
                self.now,
                "node-dead",
                format!("proc {} buried node {}", observer.0, dead),
            );
        }
    }

    /// The fault plan's `NodeCrash` realization: every hosted activity
    /// dies **by crash** (`reason: None` in the collected log — the
    /// oracle must not judge the environment's kills as collector
    /// terminations), and the membership engine stops answering.
    fn handle_crash(&mut self, proc: ProcId) {
        let indices: Vec<u32> = self.procs[proc.0 as usize].keys().copied().collect();
        for idx in indices {
            self.terminate_activity(AoId::new(proc.0, idx), None);
        }
        self.members[proc.0 as usize] = None;
        // Whatever the crashed process had queued on its egress plane
        // dies with it (stale EgressFlush wake-ups find it empty) —
        // but the tenant ledger must still balance, so queued app
        // units are returned, not leaked into pending forever.
        let mut dead_outbox = std::mem::replace(
            &mut self.outboxes[proc.0 as usize],
            Outbox::new(self.config.egress),
        );
        for flush in dead_outbox.flush_all() {
            for qi in flush.items {
                if let OutUnit::AppBytes { tenant, .. } = qi.item {
                    self.ledger.on_returned(tenant);
                }
            }
        }
        self.egress_wake[proc.0 as usize] = None;
        if self.trace.enabled(TraceLevel::Info) {
            self.trace
                .info(self.now, "crash", format!("proc {} went down", proc.0));
        }
    }

    /// Graceful departure of one process — the clean-shutdown path the
    /// engine's `leave()` exists for: its membership engine announces
    /// [`dgc_membership::NodeStatus::Left`], the farewell digests flush
    /// through the egress plane *immediately* (a leaver does not wait
    /// out a linger), every hosted activity dies with the process
    /// (environment kills, `reason: None` — not collections), and the
    /// engine stops. Peers treat the announced departure like a dead
    /// verdict for collection purposes — the leaver's referencers are
    /// gone — but without the suspicion delay.
    pub fn leave_proc(&mut self, proc: ProcId) {
        let now = crate::collector::proto_time(self.now);
        let outs = match &mut self.members[proc.0 as usize] {
            Some(engine) => engine.leave(now),
            None => Vec::new(),
        };
        self.flush_membership(proc, outs);
        let flushes = self.outboxes[proc.0 as usize].flush_all();
        for flush in flushes {
            self.realize_flush(proc, flush);
        }
        self.egress_wake[proc.0 as usize] = None;
        let indices: Vec<u32> = self.procs[proc.0 as usize].keys().copied().collect();
        for idx in indices {
            self.terminate_activity(AoId::new(proc.0, idx), None);
        }
        self.members[proc.0 as usize] = None;
        if self.trace.enabled(TraceLevel::Info) {
            self.trace.info(
                self.now,
                "leave",
                format!("proc {} left gracefully", proc.0),
            );
        }
    }

    /// Graceful teardown of the whole deployment: every live process
    /// [leaves](Grid::leave_proc) in turn, then the grid runs `grace`
    /// longer so the last farewells deliver to whoever is still
    /// listening. After this the simulation is over — every activity
    /// is dead (as environment kills, not collections).
    pub fn shutdown(&mut self, grace: SimDuration) {
        // One farewell must *land* before the next process goes, or a
        // simultaneous mass departure gossips into the void — so the
        // inter-leave gap covers the topology's worst link latency.
        let procs_n = self.procs.len() as u32;
        let mut max_latency = SimDuration::ZERO;
        for from in 0..procs_n {
            for to in 0..procs_n {
                if from != to {
                    max_latency =
                        max_latency.max(self.config.topology.latency(ProcId(from), ProcId(to)));
                }
            }
        }
        let gap = max_latency + SimDuration::from_millis(1);
        for p in 0..procs_n {
            if self.members[p as usize].is_some() || !self.procs[p as usize].is_empty() {
                self.leave_proc(ProcId(p));
                self.run_for(gap);
            }
        }
        self.run_for(grace);
    }

    /// The restart half of a `NodeCrash`: the process comes back empty
    /// under a fresh incarnation and re-bootstraps from the seeds (its
    /// higher incarnation supersedes the death record peers hold).
    fn handle_rejoin(&mut self, proc: ProcId, incarnation: u64) {
        let Some(m) = self.config.membership else {
            return;
        };
        let mut engine = new_member(&self.config, proc, incarnation, self.now, m);
        engine.set_obs(MembershipObs::new(&self.obs[proc.0 as usize]));
        self.members[proc.0 as usize] = Some(engine);
        self.events
            .schedule(self.now, Event::MembershipTick { proc });
        if self.trace.enabled(TraceLevel::Info) {
            self.trace.info(
                self.now,
                "rejoin",
                format!("proc {} back as incarnation {}", proc.0, incarnation),
            );
        }
    }

    fn handle_local_gc(&mut self, proc: ProcId) {
        let indices: Vec<u32> = self.procs[proc.0 as usize].keys().copied().collect();
        for idx in indices {
            let ao = AoId::new(proc.0, idx);
            let rmi_actions = {
                let Some(act) = get_act(&mut self.procs, ao) else {
                    continue;
                };
                let zeroed = act.stubs.sweep();
                if zeroed.is_empty() {
                    continue;
                }
                match &mut act.collector {
                    Collector::None => Vec::new(),
                    Collector::Complete(s) => {
                        for z in &zeroed {
                            s.on_stubs_collected(*z);
                        }
                        Vec::new()
                    }
                    Collector::Rmi(e) => {
                        let mut actions = Vec::new();
                        for z in &zeroed {
                            actions.extend(e.on_stubs_collected(*z));
                        }
                        actions
                    }
                }
            };
            self.apply_rmi_actions(ao, rmi_actions);
        }
        self.events.schedule(
            self.now + self.config.local_gc_period,
            Event::LocalGc { proc },
        );
    }

    // ------------------------------------------------------------------
    // Introspection
    // ------------------------------------------------------------------

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The topology the grid runs over.
    pub fn topology(&self) -> &Topology {
        &self.config.topology
    }

    /// True if `ao` has not terminated.
    pub fn is_alive(&self, ao: AoId) -> bool {
        self.procs[ao.node as usize].contains_key(&ao.index)
    }

    /// Number of alive activities.
    pub fn alive_count(&self) -> usize {
        self.alive_count
    }

    /// Number of alive **idle** activities.
    pub fn idle_count(&self) -> usize {
        self.idle_count
    }

    /// All terminations so far.
    pub fn collected(&self) -> &[CollectedRecord] {
        &self.collected
    }

    /// Oracle violations (must stay empty under safe parameters).
    pub fn violations(&self) -> &[SafetyViolation] {
        &self.violations
    }

    /// Requests that arrived after their target terminated.
    pub fn app_sends_to_dead(&self) -> u64 {
        self.app_sends_to_dead
    }

    /// Messages lost to the fault plan's drop windows.
    pub fn dropped_messages(&self) -> u64 {
        self.net.dropped_messages()
    }

    /// Global traffic meter.
    pub fn traffic(&self) -> &TrafficMeter {
        self.net.meter()
    }

    /// Resets the traffic meters (e.g. after deployment).
    pub fn reset_traffic(&mut self) {
        self.net.reset_meters();
    }

    /// Time-series samples (when sampling is enabled).
    pub fn samples(&self) -> &[Sample] {
        &self.samples
    }

    /// Process `proc`'s telemetry registry (virtual-time clock, shared
    /// trace ring): where its DGC endpoints, outbox and membership
    /// engine record.
    pub fn obs(&self, proc: ProcId) -> &Registry {
        &self.obs[proc.0 as usize]
    }

    /// Fleet-wide metric totals: every process's snapshot merged.
    pub fn obs_merged(&self) -> dgc_obs::Snapshot {
        self.obs
            .iter()
            .map(|r| r.snapshot())
            .fold(dgc_obs::Snapshot::default(), |acc, s| acc.merge(&s))
    }

    /// The trace log.
    pub fn trace(&self) -> &TraceLog {
        &self.trace
    }

    /// Aggregated protocol counters: collected endpoints plus alive ones.
    pub fn dgc_stats(&self) -> DgcStats {
        let mut total = self.dgc_stats_collected;
        for proc in &self.procs {
            for act in proc.values() {
                if let Collector::Complete(s) = &act.collector {
                    total.merge(s.stats());
                }
            }
        }
        total
    }

    /// Immutable access to an activity (for tests).
    pub fn activity(&self, ao: AoId) -> Option<&Activity> {
        self.procs[ao.node as usize].get(&ao.index)
    }

    /// What `proc`'s egress outbox has flushed so far (frames, units,
    /// piggybacked counts).
    pub fn egress_stats(&self, proc: ProcId) -> dgc_core::egress::EgressStats {
        self.outboxes[proc.0 as usize].stats()
    }

    /// Membership transitions `proc` has observed so far (always empty
    /// when the layer is disabled).
    pub fn membership_events(&self, proc: ProcId) -> &[MembershipEvent] {
        &self.member_events[proc.0 as usize]
    }

    /// Snapshot of `proc`'s membership directory; `None` while the
    /// process is down or the layer is disabled.
    pub fn member_records(&self, proc: ProcId) -> Option<Vec<NodeRecord>> {
        self.members[proc.0 as usize].as_ref().map(|m| m.records())
    }

    /// True while `proc` is crashed (between a `NodeCrash`'s down start
    /// and its rejoin, if any).
    pub fn proc_is_down(&self, proc: ProcId) -> bool {
        self.config
            .fault_plan
            .profile()
            .crashed(proto_time(self.now), proc.0)
    }

    /// Builds an oracle snapshot of the current state.
    pub fn snapshot(&self) -> Snapshot {
        let mut snap = Snapshot::default();
        for proc in &self.procs {
            for act in proc.values() {
                if act.is_root {
                    snap.roots.push(act.id);
                } else if !act.is_idle() {
                    snap.busy.push(act.id);
                }
                for t in act.stubs.held_targets() {
                    snap.edges.push((act.id, t));
                }
            }
        }
        snap.inflight = self.inflight_app.values().cloned().collect();
        snap
    }

    /// Alive activities the oracle deems garbage right now.
    pub fn garbage_remaining(&self) -> BTreeSet<AoId> {
        let snap = self.snapshot();
        let alive: BTreeSet<AoId> = self
            .procs
            .iter()
            .flat_map(|p| p.values().map(|a| a.id))
            .collect();
        garbage_set(&snap, &alive)
    }
}

fn get_act(procs: &mut [BTreeMap<u32, Activity>], ao: AoId) -> Option<&mut Activity> {
    procs.get_mut(ao.node as usize)?.get_mut(&ao.index)
}

fn event_proc(event: &Event) -> Option<ProcId> {
    match event {
        Event::Request { to, .. }
        | Event::ReplyMsg { to, .. }
        | Event::DgcMsg { to, .. }
        | Event::DgcResp { to, .. }
        | Event::Rmi { to, .. } => Some(ProcId(to.node)),
        Event::Tick { ao } | Event::ServeDone { ao } | Event::AppTimer { ao, .. } => {
            Some(ProcId(ao.node))
        }
        Event::AppBytes { to, .. } => Some(ProcId(to.node)),
        Event::LocalGc { proc } => Some(*proc),
        // A paused process gossips late (and gets suspected — that is
        // the §4.2 hazard, faithfully): these defer like its other work.
        Event::MembershipTick { proc } => Some(*proc),
        Event::Gossip { to, .. } => Some(*to),
        // A paused process flushes late too: a stalled node sends
        // nothing until the world resumes.
        Event::EgressFlush { proc } => Some(*proc),
        // Crash and restart are the *environment's* doing: they happen
        // on schedule even to a paused process.
        Event::NodeCrash { .. } | Event::NodeRejoin { .. } => None,
        Event::Sample => None,
    }
}

/// A freshly bootstrapped membership engine for `proc`: announces
/// itself under `incarnation` and knows only the configured seeds.
fn new_member(
    config: &GridConfig,
    proc: ProcId,
    incarnation: u64,
    now: SimTime,
    m: MembershipConfig,
) -> Membership {
    let mut engine = Membership::new(proc.0, None, incarnation, proto_time(now), m);
    for seed in &config.membership_seeds {
        if *seed != proc {
            engine.on_contact(proto_time(now), seed.0, None);
        }
    }
    engine
}

fn hash_id(id: AoId) -> u64 {
    (id.node as u64) << 32 | id.index as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::activity::Inert;
    use dgc_core::config::DgcConfig;
    use dgc_core::units::Dur;

    const PING: u32 = 1;

    fn dgc_cfg() -> DgcConfig {
        DgcConfig::builder()
            .ttb(Dur::from_secs(30))
            .tta(Dur::from_secs(61))
            .max_comm(Dur::from_millis(500))
            .build()
    }

    fn grid(collector: CollectorKind) -> Grid {
        let topo = Topology::single_site(4, SimDuration::from_millis(1));
        Grid::new(GridConfig::new(topo).collector(collector).seed(7))
    }

    /// Echoes every request back as a reply.
    struct Echo;
    impl Behavior for Echo {
        fn on_request(&mut self, ctx: &mut AoCtx<'_>, req: &Request) {
            ctx.compute(SimDuration::from_millis(5));
            if let Some(fut) = req.future {
                ctx.reply(fut, 8, vec![]);
            }
        }
    }

    /// Calls a target once at start and waits for the reply.
    struct CallOnce {
        target: AoId,
        got_reply: bool,
    }
    impl Behavior for CallOnce {
        fn on_timer(&mut self, ctx: &mut AoCtx<'_>, _token: u64) {
            ctx.call_await(self.target, PING, 16, vec![]);
        }
        fn on_reply(&mut self, _ctx: &mut AoCtx<'_>, _f: FutureId, _r: &Reply) {
            self.got_reply = true;
        }
    }

    #[test]
    fn spawn_and_idle_accounting() {
        let mut g = grid(CollectorKind::None);
        let a = g.spawn(ProcId(0), Box::new(Inert));
        let r = g.spawn_root(ProcId(1), Box::new(Inert));
        assert!(g.is_alive(a) && g.is_alive(r));
        assert_eq!(g.alive_count(), 2);
        assert_eq!(g.idle_count(), 1, "roots are never idle");
    }

    #[test]
    fn request_reply_round_trip() {
        let mut g = grid(CollectorKind::None);
        let echo = g.spawn_root(ProcId(0), Box::new(Echo));
        let caller = g.spawn_root(
            ProcId(1),
            Box::new(CallOnce {
                target: echo,
                got_reply: false,
            }),
        );
        g.make_ref(caller, echo);
        // Kick the caller via a timer effect from outside: reuse send_from
        // with a request that the Inert behavior ignores? CallOnce acts on
        // timers; schedule one through its own behavior API instead.
        g.events.schedule(
            g.now + SimDuration::from_millis(1),
            Event::AppTimer {
                ao: caller,
                token: 0,
            },
        );
        g.run_for(SimDuration::from_secs(1));
        // Round trip happened: traffic in both classes.
        assert!(g.traffic().bytes(TrafficClass::AppRequest) > 0);
        assert!(g.traffic().bytes(TrafficClass::AppReply) > 0);
    }

    #[test]
    fn waiting_on_future_keeps_activity_busy() {
        let mut g = grid(CollectorKind::None);
        let echo = g.spawn_root(ProcId(0), Box::new(Echo));
        let caller = g.spawn(
            ProcId(1),
            Box::new(CallOnce {
                target: echo,
                got_reply: false,
            }),
        );
        g.make_ref(caller, echo);
        g.events.schedule(
            g.now + SimDuration::from_millis(1),
            Event::AppTimer {
                ao: caller,
                token: 0,
            },
        );
        // Run to just after the call is sent but before the reply lands
        // (request at t=1ms, delivered t=2ms, reply lands t=3ms).
        g.run_until(SimTime::from_millis(2));
        let act = g.activity(caller).expect("alive");
        assert!(!act.is_idle(), "wait-by-necessity is busy");
        g.run_for(SimDuration::from_secs(1));
        let act = g.activity(caller).expect("alive");
        assert!(act.is_idle(), "reply arrived, back to idle");
    }

    #[test]
    fn dropped_awaited_request_releases_the_caller() {
        // A drop window swallows the only app request: the synchronous
        // rendezvous fails, so the caller must not stay busy forever
        // waiting on a future nothing will ever update.
        let profile = dgc_core::faults::FaultProfile::none().drop_frames(
            Some(1),
            Some(0),
            dgc_core::faults::Window::from_millis(0, 100),
            1000,
        );
        let topo = Topology::single_site(4, SimDuration::from_millis(1));
        let mut g = Grid::new(
            GridConfig::new(topo)
                .collector(CollectorKind::None)
                .seed(7)
                .fault_profile(&profile),
        );
        let echo = g.spawn_root(ProcId(0), Box::new(Echo));
        let caller = g.spawn(
            ProcId(1),
            Box::new(CallOnce {
                target: echo,
                got_reply: false,
            }),
        );
        g.make_ref(caller, echo);
        g.events.schedule(
            g.now + SimDuration::from_millis(1),
            Event::AppTimer {
                ao: caller,
                token: 0,
            },
        );
        g.run_for(SimDuration::from_secs(1));
        assert!(g.dropped_messages() >= 1, "the request must be lost");
        let act = g.activity(caller).expect("alive");
        assert!(
            act.is_idle(),
            "a dropped request must not leave the caller waiting"
        );
    }

    #[test]
    fn dropped_awaited_reply_releases_the_caller() {
        // The mirror wedge: the request gets through, but the reply
        // crosses a drop window. The live caller must be released, not
        // left waiting forever on an update that can no longer arrive.
        let profile = dgc_core::faults::FaultProfile::none().drop_frames(
            Some(0),
            Some(1),
            dgc_core::faults::Window::from_millis(0, 100),
            1000,
        );
        let topo = Topology::single_site(4, SimDuration::from_millis(1));
        let mut g = Grid::new(
            GridConfig::new(topo)
                .collector(CollectorKind::None)
                .seed(7)
                .fault_profile(&profile),
        );
        let echo = g.spawn_root(ProcId(0), Box::new(Echo));
        let caller = g.spawn(
            ProcId(1),
            Box::new(CallOnce {
                target: echo,
                got_reply: false,
            }),
        );
        g.make_ref(caller, echo);
        g.events.schedule(
            g.now + SimDuration::from_millis(1),
            Event::AppTimer {
                ao: caller,
                token: 0,
            },
        );
        g.run_for(SimDuration::from_secs(1));
        assert!(g.dropped_messages() >= 1, "the reply must be lost");
        assert!(
            g.traffic().bytes(TrafficClass::AppRequest) > 0,
            "the request itself got through"
        );
        let act = g.activity(caller).expect("alive");
        assert!(
            act.is_idle(),
            "a dropped reply must not leave the caller waiting"
        );
    }

    #[test]
    fn unreferenced_activity_is_collected_by_dgc() {
        let mut g = grid(CollectorKind::Complete(dgc_cfg()));
        let a = g.spawn(ProcId(0), Box::new(Inert));
        g.run_for(SimDuration::from_secs(200));
        assert!(!g.is_alive(a), "nothing references it");
        assert!(g.violations().is_empty());
        assert_eq!(g.collected().len(), 1);
        assert_eq!(g.collected()[0].reason, Some(TerminateReason::Acyclic));
    }

    #[test]
    fn referenced_activity_survives() {
        let mut g = grid(CollectorKind::Complete(dgc_cfg()));
        let root = g.spawn_root(ProcId(0), Box::new(Inert));
        let a = g.spawn(ProcId(1), Box::new(Inert));
        g.make_ref(root, a);
        g.run_for(SimDuration::from_secs(400));
        assert!(g.is_alive(a), "root heartbeats keep it alive");
        assert!(g.violations().is_empty());
    }

    #[test]
    fn dropping_the_deployment_ref_collects() {
        let mut g = grid(CollectorKind::Complete(dgc_cfg()));
        let root = g.spawn_root(ProcId(0), Box::new(Inert));
        let a = g.spawn(ProcId(1), Box::new(Inert));
        g.make_ref(root, a);
        g.run_for(SimDuration::from_secs(120));
        assert!(g.is_alive(a));
        g.drop_ref(root, a);
        g.run_for(SimDuration::from_secs(200));
        assert!(!g.is_alive(a));
        assert!(g.violations().is_empty());
    }

    #[test]
    fn distributed_cycle_is_collected() {
        let mut g = grid(CollectorKind::Complete(dgc_cfg()));
        let a = g.spawn(ProcId(0), Box::new(Inert));
        let b = g.spawn(ProcId(1), Box::new(Inert));
        let c = g.spawn(ProcId(2), Box::new(Inert));
        g.make_ref(a, b);
        g.make_ref(b, c);
        g.make_ref(c, a);
        g.run_for(SimDuration::from_secs(600));
        assert_eq!(
            g.alive_count(),
            0,
            "idle 3-cycle across processes is garbage"
        );
        assert!(g.violations().is_empty());
        assert!(g
            .collected()
            .iter()
            .any(|c| matches!(c.reason, Some(r) if r.is_cyclic())));
    }

    #[test]
    fn cycle_referenced_by_root_survives() {
        let mut g = grid(CollectorKind::Complete(dgc_cfg()));
        let root = g.spawn_root(ProcId(0), Box::new(Inert));
        let a = g.spawn(ProcId(1), Box::new(Inert));
        let b = g.spawn(ProcId(2), Box::new(Inert));
        g.make_ref(a, b);
        g.make_ref(b, a);
        g.make_ref(root, a);
        g.run_for(SimDuration::from_secs(900));
        assert!(g.is_alive(a) && g.is_alive(b));
        assert!(g.violations().is_empty());
    }

    #[test]
    fn rmi_collects_acyclic_but_leaks_cycles() {
        let mut g = grid(CollectorKind::Rmi(dgc_rmi::endpoint::RmiConfig::default()));
        let lone = g.spawn(ProcId(0), Box::new(Inert));
        let a = g.spawn(ProcId(1), Box::new(Inert));
        let b = g.spawn(ProcId(2), Box::new(Inert));
        g.make_ref(a, b);
        g.make_ref(b, a);
        g.run_for(SimDuration::from_secs(600));
        assert!(!g.is_alive(lone), "acyclic garbage collected by leases");
        assert!(g.is_alive(a) && g.is_alive(b), "the cycle leaks under RMI");
        assert!(!g.garbage_remaining().is_empty());
    }

    #[test]
    fn no_collector_keeps_everything() {
        let mut g = grid(CollectorKind::None);
        let a = g.spawn(ProcId(0), Box::new(Inert));
        g.run_for(SimDuration::from_secs(600));
        assert!(g.is_alive(a));
        assert_eq!(
            g.traffic().total_bytes(),
            0,
            "no app, no collector: silence"
        );
    }

    #[test]
    fn kill_records_explicit_termination() {
        let mut g = grid(CollectorKind::None);
        let a = g.spawn(ProcId(0), Box::new(Inert));
        g.kill(a);
        assert!(!g.is_alive(a));
        assert_eq!(g.collected()[0].reason, None);
    }

    #[test]
    fn registry_roundtrip_and_unregister_collects() {
        let mut g = grid(CollectorKind::Complete(dgc_cfg()));
        let a = g.spawn(ProcId(0), Box::new(Inert));
        g.register("service", a);
        assert_eq!(g.lookup("service"), Some(a));
        g.run_for(SimDuration::from_secs(300));
        assert!(g.is_alive(a), "registered = root");
        g.unregister("service");
        g.run_for(SimDuration::from_secs(300));
        assert!(!g.is_alive(a), "unregistered and unreferenced");
        assert!(g.violations().is_empty());
    }

    #[test]
    fn deterministic_replay() {
        let run = |seed: u64| {
            let mut g = grid(CollectorKind::Complete(dgc_cfg()));
            let _ = seed;
            let a = g.spawn(ProcId(0), Box::new(Inert));
            let b = g.spawn(ProcId(1), Box::new(Inert));
            g.make_ref(a, b);
            g.make_ref(b, a);
            g.run_for(SimDuration::from_secs(500));
            (g.collected().len(), g.traffic().total_bytes(), g.now())
        };
        assert_eq!(run(7), run(7));
    }

    #[test]
    fn total_heartbeat_loss_defeats_tta_and_the_oracle_sees_it() {
        use dgc_core::faults::{FaultProfile, Window};
        // Every DGC message from 0 to 1 is lost for 200 s — far beyond
        // TTA(61 s) — so the referenced activity times out while its
        // busy root still holds it: the §4.2 wrongful collection,
        // triggered by drops instead of delays.
        let profile = FaultProfile::none().seeded(1).drop_frames(
            Some(0),
            Some(1),
            Window::from_millis(0, 200_000),
            1000,
        );
        let topo = Topology::single_site(2, SimDuration::from_millis(1));
        let mut g = Grid::new(
            GridConfig::new(topo)
                .collector(CollectorKind::Complete(dgc_cfg()))
                .seed(7)
                .fault_profile(&profile),
        );
        let root = g.spawn_root(ProcId(0), Box::new(Inert));
        let a = g.spawn(ProcId(1), Box::new(Inert));
        g.make_ref(root, a);
        g.run_for(SimDuration::from_secs(150));
        assert!(!g.is_alive(a), "silence beyond TTA must collect");
        assert!(g.dropped_messages() > 0);
        assert_eq!(
            g.violations().len(),
            1,
            "collecting a root-referenced activity is wrongful"
        );
    }

    #[test]
    fn set_busy_pins_and_releases() {
        let mut g = grid(CollectorKind::Complete(dgc_cfg()));
        let a = g.spawn(ProcId(0), Box::new(Inert));
        g.set_busy(a, true);
        g.run_for(SimDuration::from_secs(300));
        assert!(g.is_alive(a), "pinned busy: never garbage");
        g.set_busy(a, false);
        g.run_for(SimDuration::from_secs(300));
        assert!(!g.is_alive(a), "released and unreferenced: collected");
        assert!(g.violations().is_empty());
    }

    #[test]
    fn set_busy_does_not_disturb_root_status() {
        let mut g = grid(CollectorKind::Complete(dgc_cfg()));
        let a = g.spawn(ProcId(0), Box::new(Inert));
        g.register("svc", a);
        g.set_busy(a, true);
        g.set_busy(a, false); // releasing the pin must not unregister
        g.run_for(SimDuration::from_secs(300));
        assert!(g.is_alive(a), "registered activities are never collected");
        assert_eq!(g.lookup("svc"), Some(a));
        assert!(g.violations().is_empty());
    }

    #[test]
    fn membership_converges_from_seed_only_knowledge() {
        use dgc_membership::NodeStatus;
        let topo = Topology::single_site(3, SimDuration::from_millis(2));
        let mut g = Grid::new(
            GridConfig::new(topo)
                .seed(5)
                .membership(MembershipConfig::scaled(dgc_core::units::Dur::from_secs(1))),
        );
        g.run_for(SimDuration::from_secs(30));
        for p in 0..3 {
            let records = g.member_records(ProcId(p)).expect("engine up");
            assert_eq!(records.len(), 3, "proc {p} directory incomplete");
            assert!(
                records.iter().all(|r| r.status == NodeStatus::Alive),
                "proc {p} holds non-alive records: {records:?}"
            );
        }
        assert!(
            g.traffic().bytes(TrafficClass::Gossip) > 0,
            "gossip must be metered"
        );
        // Nodes 1 and 2 knew only the seed: each must have observed the
        // other *join* through it.
        assert!(g
            .membership_events(ProcId(2))
            .iter()
            .any(|e| e.node == 1 && e.transition == dgc_membership::Transition::Joined));
    }

    #[test]
    fn crashed_proc_is_buried_and_a_rejoin_incarnation_recovers() {
        use dgc_core::faults::{FaultProfile, Window};
        use dgc_membership::{NodeStatus, Transition};
        // Crash proc 2 at t=20 s, restart it at t=60 s as incarnation 2.
        let profile = FaultProfile::none().crash(2, Window::from_millis(20_000, 60_000), Some(2));
        let topo = Topology::single_site(3, SimDuration::from_millis(2));
        let mut g = Grid::new(
            GridConfig::new(topo)
                .seed(5)
                .membership(MembershipConfig::scaled(dgc_core::units::Dur::from_secs(1)))
                .fault_profile(&profile),
        );
        g.run_for(SimDuration::from_secs(45));
        assert!(g.proc_is_down(ProcId(2)));
        assert!(g.member_records(ProcId(2)).is_none(), "down engine gone");
        for p in 0..2 {
            let records = g.member_records(ProcId(p)).expect("engine up");
            let dead = records.iter().find(|r| r.node == 2).expect("known");
            assert_eq!(dead.status, NodeStatus::Dead, "proc {p} view: {records:?}");
            assert!(g
                .membership_events(ProcId(p))
                .iter()
                .any(|e| e.node == 2 && e.transition == Transition::Dead));
        }
        // After the rejoin, everyone converges back to alive, and the
        // survivors see the *new* incarnation supersede the corpse.
        g.run_for(SimDuration::from_secs(45));
        assert!(!g.proc_is_down(ProcId(2)));
        for p in 0..3 {
            let records = g.member_records(ProcId(p)).expect("engine up");
            let back = records.iter().find(|r| r.node == 2).expect("known");
            assert_eq!(back.status, NodeStatus::Alive, "proc {p} view: {records:?}");
            assert_eq!(back.incarnation, 2, "proc {p} must adopt the rejoin");
        }
        assert!(g
            .membership_events(ProcId(0))
            .iter()
            .any(|e| e.node == 2 && e.incarnation == 2 && e.transition == Transition::Alive));
    }

    #[test]
    fn crash_kills_activities_and_the_dgc_cleans_up_after_the_node() {
        use dgc_core::faults::{FaultProfile, Window};
        // w (proc 2, busy) holds u (proc 1, idle); proc 2 crashes for
        // good at t=50 s. u must then fall — but only as *correct*
        // collection (its ground-truth referencer died in the crash) —
        // while v, held by a live root, must survive the churn.
        let profile = FaultProfile::none().crash(2, Window::from_millis(50_000, 50_000), None);
        let topo = Topology::single_site(3, SimDuration::from_millis(2));
        let mut g = Grid::new(
            GridConfig::new(topo)
                .collector(CollectorKind::Complete(dgc_cfg()))
                .seed(7)
                .membership(MembershipConfig::scaled(dgc_core::units::Dur::from_secs(1)))
                .fault_profile(&profile),
        );
        let root = g.spawn_root(ProcId(0), Box::new(Inert));
        let v = g.spawn(ProcId(1), Box::new(Inert));
        let w = g.spawn(ProcId(2), Box::new(Inert));
        let u = g.spawn(ProcId(1), Box::new(Inert));
        g.make_ref(root, v);
        g.set_busy(w, true);
        g.make_ref(w, u);
        g.run_for(SimDuration::from_secs(300));
        assert!(g.is_alive(v), "root-held activity must survive the crash");
        assert!(!g.is_alive(u), "orphaned by the crash: must be collected");
        assert!(!g.is_alive(w), "died in the crash");
        assert!(
            g.collected()
                .iter()
                .any(|c| c.ao == w && c.reason.is_none()),
            "crash deaths are kills, not collections: {:?}",
            g.collected()
        );
        assert!(
            g.violations().is_empty(),
            "no wrongful collection under churn: {:?}",
            g.violations()
        );
    }

    /// Fires one `send` (no reply) at the target every period, forever.
    struct PeriodicSender {
        target: AoId,
        period: SimDuration,
    }
    impl Behavior for PeriodicSender {
        fn on_start(&mut self, ctx: &mut AoCtx<'_>) {
            ctx.set_timer(self.period, 0);
        }
        fn on_timer(&mut self, ctx: &mut AoCtx<'_>, _token: u64) {
            ctx.send(self.target, PING, 64, vec![]);
            ctx.set_timer(self.period, 0);
        }
    }

    /// Runs the same workload — steady app traffic p0 → p1 plus 8
    /// cross-process DGC referencers — under a given egress policy and
    /// returns (total bytes, dgc bytes, piggybacked units).
    fn egress_workload(policy: dgc_core::egress::FlushPolicy) -> (u64, u64, u64) {
        let topo = Topology::single_site(2, SimDuration::from_millis(1));
        let mut config = GridConfig::new(topo)
            .collector(CollectorKind::Complete(dgc_cfg()))
            .seed(11)
            .egress(policy);
        // Synchronized TTB sweeps, so co-due heartbeats can share a
        // frame (the socket runtime's event loop co-schedules them the
        // same way).
        config.tick_jitter = false;
        let mut g = Grid::new(config);
        let sink = g.spawn_root(ProcId(1), Box::new(Echo));
        let pinger = g.spawn_root(
            ProcId(0),
            Box::new(PeriodicSender {
                target: sink,
                period: SimDuration::from_millis(400),
            }),
        );
        g.make_ref(pinger, sink);
        // 8 referencers on p0 heartbeating activities on p1 forever.
        for _ in 0..8 {
            let holder = g.spawn_root(ProcId(0), Box::new(Inert));
            let target = g.spawn(ProcId(1), Box::new(Inert));
            g.make_ref(holder, target);
        }
        g.run_for(SimDuration::from_secs(600));
        (
            g.traffic().total_bytes(),
            g.traffic().dgc_bytes(),
            g.egress_stats(ProcId(0)).piggybacked,
        )
    }

    #[test]
    fn coalescing_egress_piggybacks_heartbeats_and_saves_envelopes() {
        let (imm_total, imm_dgc, imm_piggy) =
            egress_workload(dgc_core::egress::FlushPolicy::immediate());
        assert_eq!(imm_piggy, 0, "immediate policy never piggybacks");
        // Coalesce with a window wide enough that co-scheduled TTB
        // heartbeats to the same peer share one frame (and one
        // envelope) even without app traffic to ride on.
        let policy = dgc_core::egress::FlushPolicy {
            flush_on_app: true,
            max_delay: dgc_core::units::Dur::from_millis(5),
            max_bytes: 64 * 1024,
            max_items: 4096,
        };
        let (co_total, co_dgc, _) = egress_workload(policy);
        assert!(
            co_dgc < imm_dgc,
            "shared frames must shed per-heartbeat envelopes: {co_dgc} vs {imm_dgc}"
        );
        assert!(
            co_total < imm_total,
            "coalescing must reduce total bytes: {co_total} vs {imm_total}"
        );
        // The protocol outcome is identical either way: nothing was
        // collected (all roots / referenced), in both runs.
    }

    #[test]
    fn app_sends_flush_immediately_and_carry_queued_heartbeats() {
        // A policy with an *enormous* background linger: heartbeats
        // would wait 10 s — unless app traffic flushes them out. The
        // referenced activity on p1 survives on heartbeats alone, which
        // proves they rode the app frames well before their own
        // deadline.
        let policy = dgc_core::egress::FlushPolicy {
            flush_on_app: true,
            max_delay: dgc_core::units::Dur::from_secs(10),
            max_bytes: u64::MAX,
            max_items: usize::MAX,
        };
        let topo = Topology::single_site(2, SimDuration::from_millis(1));
        let mut g = Grid::new(
            GridConfig::new(topo)
                .collector(CollectorKind::Complete(dgc_cfg()))
                .seed(3)
                .egress(policy),
        );
        let sink = g.spawn_root(ProcId(1), Box::new(Echo));
        let pinger = g.spawn_root(
            ProcId(0),
            Box::new(PeriodicSender {
                target: sink,
                // Well under TTB = 30 s: every heartbeat finds a ride.
                period: SimDuration::from_secs(5),
            }),
        );
        g.make_ref(pinger, sink);
        let holder = g.spawn_root(ProcId(0), Box::new(Inert));
        let kept = g.spawn(ProcId(1), Box::new(Inert));
        g.make_ref(holder, kept);
        g.run_for(SimDuration::from_secs(300));
        assert!(
            g.is_alive(kept),
            "heartbeats must piggyback on app frames instead of rotting in the outbox"
        );
        assert!(g.violations().is_empty());
        assert!(
            g.egress_stats(ProcId(0)).piggybacked > 0,
            "the ride must be visible in the egress stats"
        );
    }

    #[test]
    fn driver_level_app_plane_delivers_in_order_and_is_metered() {
        use dgc_simnet::traffic::TrafficClass;
        let mut g = grid(CollectorKind::Complete(dgc_cfg()));
        let a = g.spawn_root(ProcId(0), Box::new(Inert));
        let b = g.spawn_root(ProcId(1), Box::new(Inert));
        for seq in 0u64..20 {
            g.send_app(a, b, false, seq.to_be_bytes().to_vec());
        }
        g.send_app(b, a, true, vec![0xFF; 8]);
        g.run_for(SimDuration::from_secs(1));
        let delivered = g.drain_app_received();
        assert_eq!(delivered.len(), 21);
        let seqs: Vec<u64> = delivered
            .iter()
            .filter(|d| !d.reply)
            .map(|d| u64::from_be_bytes(d.payload.as_slice().try_into().unwrap()))
            .collect();
        assert_eq!(seqs, (0u64..20).collect::<Vec<u64>>(), "FIFO per class");
        assert!(delivered.iter().any(|d| d.reply && d.to == a));
        assert!(g.traffic().bytes(TrafficClass::AppRequest) >= 20 * 8);
        assert!(g.traffic().bytes(TrafficClass::AppReply) >= 8);
        assert!(g.drain_app_received().is_empty(), "drained");
        // Idleness untouched: the app plane is opaque to the collector.
        assert!(g.violations().is_empty());
    }

    #[test]
    fn departed_peer_egress_queue_is_reclaimed_on_the_left_verdict() {
        // Heartbeats toward proc 1 linger under an hour-long background
        // delay; when proc 1 leaves, the observer's Left transition
        // must reclaim its queue (items, bytes, deadline) and the
        // stranded units must get their loss semantics — the simnet
        // twin of the rt-net leak regression.
        let policy = dgc_core::egress::FlushPolicy {
            flush_on_app: true,
            max_delay: dgc_core::units::Dur::from_secs(3600),
            max_bytes: u64::MAX,
            max_items: usize::MAX,
        };
        let topo = Topology::single_site(2, SimDuration::from_millis(2));
        // Suspicion timings far beyond the test horizon: with gossip
        // lingering behind the hour-long delay, silence is expected —
        // only the scripted *leave* may produce the departure verdict.
        let membership = MembershipConfig {
            gossip_interval: dgc_core::units::Dur::from_secs(1),
            suspect_after: dgc_core::units::Dur::from_secs(100_000),
            dead_after: dgc_core::units::Dur::from_secs(200_000),
            full_sync_every: 4,
        };
        let mut g = Grid::new(
            GridConfig::new(topo)
                .collector(CollectorKind::Complete(dgc_cfg()))
                .seed(9)
                .membership(membership)
                .egress(policy),
        );
        // Converge membership by riding app traffic (gossip alone would
        // wait out the hour): both directions pump for a while.
        let a = g.spawn_root(ProcId(0), Box::new(Inert));
        let b = g.spawn_root(ProcId(1), Box::new(Inert));
        for _ in 0..40 {
            g.send_app(a, b, false, vec![1]);
            g.send_app(b, a, false, vec![2]);
            g.run_for(SimDuration::from_millis(500));
        }
        assert!(
            g.member_records(ProcId(0)).is_some_and(|r| r.len() == 2),
            "app-carried gossip must converge the directories"
        );
        // Phase 2: no more rides; heartbeats toward proc 1 accumulate.
        // The target stays pinned busy: with its heartbeats starved
        // behind the hour linger it would otherwise (correctly) fall to
        // TTA expiry, which is not what this test is about.
        let holder = g.spawn_root(ProcId(0), Box::new(Inert));
        let kept = g.spawn(ProcId(1), Box::new(Inert));
        g.set_busy(kept, true);
        g.make_ref(holder, kept);
        g.run_for(SimDuration::from_secs(90)); // a few TTB rounds
        let before = g.egress_stats(ProcId(0));
        assert!(
            before.enqueued_items > before.items + before.dropped_items,
            "heartbeats should be lingering: {before:?}"
        );
        g.leave_proc(ProcId(1));
        g.run_for(SimDuration::from_secs(10));
        let after = g.egress_stats(ProcId(0));
        assert!(after.dropped_items > 0, "queue reclaimed: {after:?}");
        assert_eq!(
            after.enqueued_items,
            after.items + after.dropped_items,
            "nothing may stay queued for the departed peer: {after:?}"
        );
        assert!(g.violations().is_empty(), "{:?}", g.violations());
    }

    #[test]
    fn app_unit_to_a_departed_proc_surfaces_on_the_failure_log() {
        let topo = Topology::single_site(2, SimDuration::from_millis(2));
        let mut g = Grid::new(
            GridConfig::new(topo)
                .seed(4)
                .membership(MembershipConfig::scaled(dgc_core::units::Dur::from_secs(1))),
        );
        let a = g.spawn_root(ProcId(0), Box::new(Inert));
        let b = g.spawn_root(ProcId(1), Box::new(Inert));
        g.run_for(SimDuration::from_secs(20)); // converge
        g.leave_proc(ProcId(1));
        g.run_for(SimDuration::from_secs(5));
        g.send_app(a, b, false, b"too late".to_vec());
        g.run_for(SimDuration::from_secs(5));
        assert!(g.drain_app_received().is_empty(), "nobody home");
        assert!(
            g.app_send_failures()
                .iter()
                .any(|f| f.payload == b"too late"),
            "the undeliverable unit must surface, not vanish: {:?}",
            g.app_send_failures()
        );
    }

    #[test]
    fn graceful_leave_buries_the_leaver_and_orphans_fall_as_correct_collection() {
        use dgc_membership::NodeStatus;
        // w (proc 2, busy) holds u (proc 1, idle); proc 2 *leaves*
        // gracefully at t = 50 s. Unlike a crash, peers learn at once
        // through the Left verdict — no suspicion timeout — and u must
        // fall as correct collection while root-held v survives.
        let topo = Topology::single_site(3, SimDuration::from_millis(2));
        let mut g = Grid::new(
            GridConfig::new(topo)
                .collector(CollectorKind::Complete(dgc_cfg()))
                .seed(7)
                .membership(MembershipConfig::scaled(dgc_core::units::Dur::from_secs(1))),
        );
        let root = g.spawn_root(ProcId(0), Box::new(Inert));
        let v = g.spawn(ProcId(1), Box::new(Inert));
        let w = g.spawn(ProcId(2), Box::new(Inert));
        let u = g.spawn(ProcId(1), Box::new(Inert));
        g.make_ref(root, v);
        g.set_busy(w, true);
        g.make_ref(w, u);
        g.run_for(SimDuration::from_secs(50));
        assert!(g.is_alive(u), "held by busy w until the leave");
        g.leave_proc(ProcId(2));
        // The farewell delivers promptly; every survivor records Left.
        g.run_for(SimDuration::from_secs(5));
        for p in 0..2 {
            let records = g.member_records(ProcId(p)).expect("engine up");
            let gone = records.iter().find(|r| r.node == 2).expect("known");
            assert_eq!(gone.status, NodeStatus::Left, "proc {p}: {records:?}");
            assert!(g
                .membership_events(ProcId(p))
                .iter()
                .any(|e| e.node == 2 && e.transition == Transition::Left));
        }
        g.run_for(SimDuration::from_secs(245));
        assert!(g.is_alive(v), "root-held activity must survive the leave");
        assert!(!g.is_alive(u), "orphaned by the leave: must be collected");
        assert!(
            g.collected()
                .iter()
                .any(|c| c.ao == w && c.reason.is_none()),
            "leave deaths are kills, not collections: {:?}",
            g.collected()
        );
        assert!(g.violations().is_empty(), "{:?}", g.violations());
    }

    #[test]
    fn shutdown_drives_graceful_leave_everywhere() {
        let topo = Topology::single_site(3, SimDuration::from_millis(2));
        let mut g = Grid::new(
            GridConfig::new(topo)
                .seed(5)
                .membership(MembershipConfig::scaled(dgc_core::units::Dur::from_secs(1))),
        );
        let a = g.spawn(ProcId(0), Box::new(Inert));
        g.run_for(SimDuration::from_secs(20)); // converge membership
        g.shutdown(SimDuration::from_secs(2));
        assert!(!g.is_alive(a), "teardown kills every activity");
        assert_eq!(g.alive_count(), 0);
        assert!(
            g.collected().iter().all(|c| c.reason.is_none()),
            "teardown deaths are environment kills"
        );
        // Later leavers heard the earlier farewells before going.
        assert!(g
            .membership_events(ProcId(2))
            .iter()
            .any(|e| e.node == 0 && e.transition == Transition::Left));
    }

    #[test]
    fn run_until_clean_reports_success() {
        let mut g = grid(CollectorKind::Complete(dgc_cfg()));
        let a = g.spawn(ProcId(0), Box::new(Inert));
        let b = g.spawn(ProcId(1), Box::new(Inert));
        g.make_ref(a, b);
        g.make_ref(b, a);
        let clean = g.run_until_clean(SimDuration::from_secs(30), SimTime::from_secs(1_000));
        assert!(clean);
        assert_eq!(g.alive_count(), 0);
    }

    #[test]
    fn tenant_isolation_rejects_cross_tenant_app_and_refs() {
        let mut g = grid(CollectorKind::None);
        g.set_pipeline(Pipeline::standard());
        let a = g.spawn_root(ProcId(0), Box::new(Inert));
        let b = g.spawn_root(ProcId(1), Box::new(Inert));
        let c = g.spawn_root(ProcId(2), Box::new(Inert));
        g.set_tenant(a, TenantId(1));
        g.set_tenant(b, TenantId(1));
        g.set_tenant(c, TenantId(2));
        // Same tenant crosses; cross-tenant dies before the egress plane.
        g.send_app(a, b, false, b"in".to_vec());
        g.send_app(a, c, false, b"out".to_vec());
        g.run_for(SimDuration::from_secs(1));
        let inbox = g.drain_app_received();
        assert_eq!(inbox.len(), 1);
        assert_eq!(inbox[0].to, b);
        let t1 = g.tenant_counters(TenantId(1));
        assert_eq!(t1.enqueued, 1);
        assert_eq!(t1.flushed, 1);
        assert_eq!(t1.rejected_outgoing, 1);
        assert_eq!(t1.pending(), 0);
        // A cross-tenant reference is refused too: b never holds c, so
        // no TTB sweep can cross the boundary through this edge.
        g.make_ref(b, c);
        assert_eq!(g.tenant_counters(TenantId(1)).rejected_outgoing, 2);
        // The mirror surfaces the same ledger fleet-wide.
        let snap = g.obs_merged();
        assert_eq!(snap.counter("tenant.1.app_enqueued"), 1);
        assert_eq!(snap.counter("tenant.1.app_rejected_out"), 2);
    }

    #[test]
    fn rogue_proc_with_wrong_key_cannot_inject_app_units() {
        let key = AuthKey::from_secret("grid-secret");
        let topo = Topology::single_site(3, SimDuration::from_millis(1));
        let mut g = Grid::new(GridConfig::new(topo).seed(7).auth(key));
        g.set_pipeline(Pipeline::standard());
        let honest = g.spawn_root(ProcId(0), Box::new(Inert));
        let victim = g.spawn_root(ProcId(1), Box::new(Inert));
        let rogue = g.spawn_root(ProcId(2), Box::new(Inert));
        g.set_proc_key(ProcId(2), Some(AuthKey::from_secret("guessed-wrong")));
        g.send_app(honest, victim, false, b"trusted".to_vec());
        g.send_app(rogue, victim, false, b"forged".to_vec());
        g.run_for(SimDuration::from_secs(1));
        let inbox = g.drain_app_received();
        assert_eq!(inbox.len(), 1, "only the authenticated link delivers");
        assert_eq!(inbox[0].payload, b"trusted");
        let t0 = g.tenant_counters(TenantId::DEFAULT);
        assert_eq!(t0.rejected_incoming, 1, "the forgery died at delivery");
        assert_eq!(t0.enqueued, t0.flushed, "ledger still balances");
        // Loopback on the rogue proc itself still works: auth gates
        // links, and a process always trusts itself.
        g.send_app(rogue, rogue, false, b"local".to_vec());
        g.run_for(SimDuration::from_secs(1));
        assert_eq!(g.drain_app_received().len(), 1);
    }
}
