//! Baseline — the Java/RMI lease-based collector (§1, §6).
//!
//! Two claims to check against the reference-listing baseline:
//! (1) on *acyclic* garbage both collectors reclaim everything, with
//! comparable per-edge heartbeat traffic; (2) on *cyclic* garbage the
//! RMI collector leaks every cycle member forever, while the complete
//! DGC reclaims them — the paper's raison d'être.

use dgc_activeobj::collector::CollectorKind;
use dgc_activeobj::runtime::{Grid, GridConfig};
use dgc_bench::{mib, nas_dgc_config, Table};
use dgc_rmi::endpoint::RmiConfig;
use dgc_simnet::time::SimDuration;
use dgc_simnet::topology::Topology;
use dgc_workloads::scenarios::{chain, ring};

struct Outcome {
    collected: usize,
    total: usize,
    traffic_mb: f64,
}

fn run(collector: CollectorKind, cyclic: bool) -> Outcome {
    let mut grid = Grid::new(
        GridConfig::new(Topology::single_site(8, SimDuration::from_millis(1)))
            .collector(collector)
            .seed(31),
    );
    let ids = if cyclic {
        let mut ids = Vec::new();
        for _ in 0..4 {
            ids.extend(ring(&mut grid, 6, 8));
        }
        ids
    } else {
        let mut ids = Vec::new();
        for _ in 0..4 {
            ids.extend(chain(&mut grid, 6, 8));
        }
        ids
    };
    grid.run_for(SimDuration::from_secs(2_000));
    assert!(grid.violations().is_empty());
    Outcome {
        collected: ids.iter().filter(|id| !grid.is_alive(**id)).count(),
        total: ids.len(),
        traffic_mb: mib(grid.traffic().total_bytes()),
    }
}

fn main() {
    println!("=== Baseline: complete DGC vs RMI reference listing ===\n");
    let complete = CollectorKind::Complete(nas_dgc_config());
    let rmi = CollectorKind::Rmi(RmiConfig::default());

    let mut table = Table::new(vec!["Workload", "Collector", "Collected", "Traffic"]);
    for (wl, cyclic) in [("acyclic chains", false), ("cycles", true)] {
        for (name, c) in [("complete DGC", complete), ("RMI leases", rmi)] {
            let out = run(c, cyclic);
            table.row(vec![
                wl.to_string(),
                name.to_string(),
                format!("{}/{}", out.collected, out.total),
                format!("{:.2} MB", out.traffic_mb),
            ]);
            if cyclic && name == "RMI leases" {
                assert_eq!(out.collected, 0, "RMI must leak every cycle");
            } else {
                assert_eq!(out.collected, out.total, "{name} must reclaim {wl}");
            }
        }
    }
    table.print();
    println!(
        "\nAs the paper argues: reference listing matches the complete DGC on\n\
         acyclic garbage (both are heartbeat-shaped) but is structurally blind\n\
         to distributed cycles."
    );
}
