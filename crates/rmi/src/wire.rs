//! Wire codec for RMI DGC calls.
//!
//! Java RMI's real `dirty`/`clean` calls marshal an `ObjID[]`, a
//! sequence number, a lease object with a `VMID` (dirty only), and the
//! RMI call envelope. We encode a compact binary equivalent and account
//! a calibrated envelope on top, mirroring how `dgc-core::wire` treats
//! the paper's DGC traffic.

use bytes::{Buf, BufMut, Bytes, BytesMut};

use dgc_core::id::AoId;
use dgc_core::units::Dur;
use dgc_core::wire::DecodeError;

use crate::endpoint::RmiMessage;

const TAG_DIRTY: u8 = 0xA1;
const TAG_CLEAN: u8 = 0xA2;

/// Per-call envelope of an RMI DGC invocation (transport framing, ObjID,
/// operation number, serialization headers). Same calibration basis as
/// [`dgc_core::wire::RMI_CALL_ENVELOPE`].
pub const RMI_DGC_CALL_ENVELOPE: u64 = 240;

/// Encodes an RMI DGC call.
pub fn encode(message: &RmiMessage) -> Bytes {
    let mut buf = BytesMut::with_capacity(18);
    match *message {
        RmiMessage::Dirty { holder, lease } => {
            buf.put_u8(TAG_DIRTY);
            buf.put_u32(holder.node);
            buf.put_u32(holder.index);
            buf.put_u64(lease.as_nanos());
        }
        RmiMessage::Clean { holder } => {
            buf.put_u8(TAG_CLEAN);
            buf.put_u32(holder.node);
            buf.put_u32(holder.index);
        }
    }
    buf.freeze()
}

/// Decodes an RMI DGC call.
pub fn decode(mut buf: Bytes) -> Result<RmiMessage, DecodeError> {
    if buf.remaining() < 9 {
        return Err(DecodeError::Truncated);
    }
    let tag = buf.get_u8();
    let holder = AoId::new(buf.get_u32(), buf.get_u32());
    match tag {
        TAG_DIRTY => {
            if buf.remaining() < 8 {
                return Err(DecodeError::Truncated);
            }
            Ok(RmiMessage::Dirty {
                holder,
                lease: Dur::from_nanos(buf.get_u64()),
            })
        }
        TAG_CLEAN => Ok(RmiMessage::Clean { holder }),
        other => Err(DecodeError::BadTag(other)),
    }
}

/// Wire size of an encoded call (without envelope).
pub fn wire_size(message: &RmiMessage) -> u64 {
    match message {
        RmiMessage::Dirty { .. } => 17,
        RmiMessage::Clean { .. } => 9,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dirty_round_trip() {
        let m = RmiMessage::Dirty {
            holder: AoId::new(3, 4),
            lease: Dur::from_secs(60),
        };
        let e = encode(&m);
        assert_eq!(e.len() as u64, wire_size(&m));
        assert_eq!(decode(e).unwrap(), m);
    }

    #[test]
    fn clean_round_trip() {
        let m = RmiMessage::Clean {
            holder: AoId::new(7, 0),
        };
        let e = encode(&m);
        assert_eq!(e.len() as u64, wire_size(&m));
        assert_eq!(decode(e).unwrap(), m);
    }

    #[test]
    fn truncated_buffers_rejected() {
        let m = RmiMessage::Dirty {
            holder: AoId::new(1, 1),
            lease: Dur::from_secs(1),
        };
        let e = encode(&m);
        for len in 0..e.len() {
            assert!(decode(e.slice(0..len)).is_err());
        }
    }

    #[test]
    fn bad_tag_rejected() {
        let mut buf = BytesMut::new();
        buf.put_u8(0x00);
        buf.put_u32(0);
        buf.put_u32(0);
        assert!(matches!(decode(buf.freeze()), Err(DecodeError::BadTag(0))));
    }
}
