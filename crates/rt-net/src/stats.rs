//! Transport counters: what actually went over the wire.
//!
//! The paper's fig. 8 argument is about bytes on the network, so the
//! socket runtime meters itself the same way the simulator does — every
//! frame and every protocol unit is counted at the moment it is written
//! to or read from a socket.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use dgc_obs::{Counter, Histogram, Registry};

/// Cached telemetry-plane handles mirroring every [`NetStats`] counter
/// under `net.*` in the node's [`Registry`], plus the reconnect-backoff
/// histogram only the registry carries. The legacy counters keep
/// counting; the mirror is what merges fleet-wide and what the
/// conservation test cross-checks against a snapshot.
#[derive(Debug, Clone)]
struct NetObs {
    frames_sent: Counter,
    bytes_sent: Counter,
    items_sent: Counter,
    frames_received: Counter,
    bytes_received: Counter,
    items_received: Counter,
    reconnects: Counter,
    send_failures: Counter,
    decode_errors: Counter,
    piggybacked: Counter,
    accept_errors: Counter,
    auth_ok: Counter,
    auth_rejects: Counter,
    handshake_timeouts: Counter,
    reconnect_backoff: Histogram,
}

impl NetObs {
    fn new(registry: &Registry) -> NetObs {
        NetObs {
            frames_sent: registry.counter("net.frames_sent"),
            bytes_sent: registry.counter("net.bytes_sent"),
            items_sent: registry.counter("net.items_sent"),
            frames_received: registry.counter("net.frames_received"),
            bytes_received: registry.counter("net.bytes_received"),
            items_received: registry.counter("net.items_received"),
            reconnects: registry.counter("net.reconnects"),
            send_failures: registry.counter("net.send_failures"),
            decode_errors: registry.counter("net.decode_errors"),
            piggybacked: registry.counter("net.piggybacked"),
            accept_errors: registry.counter("net.accept_errors"),
            auth_ok: registry.counter("net.auth_ok"),
            auth_rejects: registry.counter("net.auth_rejects"),
            handshake_timeouts: registry.counter("net.handshake_timeouts"),
            reconnect_backoff: registry.histogram("net.reconnect_backoff_ns"),
        }
    }
}

/// Monotonic transport counters, shared between a node's link threads
/// and its driver. All methods are lock-free.
#[derive(Debug, Default)]
pub struct NetStats {
    frames_sent: AtomicU64,
    bytes_sent: AtomicU64,
    items_sent: AtomicU64,
    frames_received: AtomicU64,
    bytes_received: AtomicU64,
    items_received: AtomicU64,
    reconnects: AtomicU64,
    send_failures: AtomicU64,
    decode_errors: AtomicU64,
    piggybacked: AtomicU64,
    accept_errors: AtomicU64,
    auth_ok: AtomicU64,
    auth_rejects: AtomicU64,
    handshake_timeouts: AtomicU64,
    obs: Option<NetObs>,
}

/// Point-in-time copy of a [`NetStats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NetStatsSnapshot {
    /// Frames written to sockets.
    pub frames_sent: u64,
    /// Bytes written to sockets (length prefixes included).
    pub bytes_sent: u64,
    /// Protocol units carried by those frames.
    pub items_sent: u64,
    /// Frames read from sockets.
    pub frames_received: u64,
    /// Bytes read from sockets.
    pub bytes_received: u64,
    /// Protocol units carried by received frames.
    pub items_received: u64,
    /// Times an outbound link re-established its connection.
    pub reconnects: u64,
    /// Items abandoned because a peer stayed unreachable (queued DGC
    /// messages additionally notify the local protocol, which drops the
    /// dead edges).
    pub send_failures: u64,
    /// Inbound traffic rejected as corrupt or misaddressed.
    pub decode_errors: u64,
    /// Background units (heartbeats, gossip digests, control) that
    /// rode an application-send flush — frames they did not pay for
    /// (the egress plane's piggyback win).
    pub piggybacked: u64,
    /// Transient `accept()` failures (fd exhaustion and friends) the
    /// acceptor survived by backing off instead of dying silently.
    pub accept_errors: u64,
    /// Links that completed the `dgc-plane` auth handshake.
    pub auth_ok: u64,
    /// Links dropped for failing it: bad MAC, out-of-order handshake,
    /// or a batch item attempted before authentication.
    pub auth_rejects: u64,
    /// Connections reclaimed for idling mid-handshake past
    /// [`crate::NetConfig::handshake_timeout`].
    pub handshake_timeouts: u64,
}

impl NetStatsSnapshot {
    /// Mean protocol units per sent frame — the batching factor the
    /// `net_batching` bench tracks (1.0 means no batching benefit).
    pub fn items_per_frame(&self) -> f64 {
        if self.frames_sent == 0 {
            0.0
        } else {
            self.items_sent as f64 / self.frames_sent as f64
        }
    }

    /// Adds every counter of `other` into `self` — the fleet-wide fold
    /// behind [`crate::Cluster::total_stats`]. Destructures both
    /// snapshots exhaustively, so adding a counter without folding it
    /// is a compile error, not a silently dropped stat.
    pub fn merge(&mut self, other: &NetStatsSnapshot) {
        let NetStatsSnapshot {
            frames_sent,
            bytes_sent,
            items_sent,
            frames_received,
            bytes_received,
            items_received,
            reconnects,
            send_failures,
            decode_errors,
            piggybacked,
            accept_errors,
            auth_ok,
            auth_rejects,
            handshake_timeouts,
        } = *other;
        self.frames_sent += frames_sent;
        self.bytes_sent += bytes_sent;
        self.items_sent += items_sent;
        self.frames_received += frames_received;
        self.bytes_received += bytes_received;
        self.items_received += items_received;
        self.reconnects += reconnects;
        self.send_failures += send_failures;
        self.decode_errors += decode_errors;
        self.piggybacked += piggybacked;
        self.accept_errors += accept_errors;
        self.auth_ok += auth_ok;
        self.auth_rejects += auth_rejects;
        self.handshake_timeouts += handshake_timeouts;
    }

    /// Every counter as `(registry key, value)` pairs, keyed exactly as
    /// the `net.*` telemetry mirror registers them. Exhaustive by
    /// construction (destructuring), so the obs-conservation test can
    /// cross-check snapshot ↔ registry in both directions and a new
    /// field can never dodge the mirror unnoticed.
    pub fn named_counters(&self) -> Vec<(&'static str, u64)> {
        let NetStatsSnapshot {
            frames_sent,
            bytes_sent,
            items_sent,
            frames_received,
            bytes_received,
            items_received,
            reconnects,
            send_failures,
            decode_errors,
            piggybacked,
            accept_errors,
            auth_ok,
            auth_rejects,
            handshake_timeouts,
        } = *self;
        vec![
            ("net.frames_sent", frames_sent),
            ("net.bytes_sent", bytes_sent),
            ("net.items_sent", items_sent),
            ("net.frames_received", frames_received),
            ("net.bytes_received", bytes_received),
            ("net.items_received", items_received),
            ("net.reconnects", reconnects),
            ("net.send_failures", send_failures),
            ("net.decode_errors", decode_errors),
            ("net.piggybacked", piggybacked),
            ("net.accept_errors", accept_errors),
            ("net.auth_ok", auth_ok),
            ("net.auth_rejects", auth_rejects),
            ("net.handshake_timeouts", handshake_timeouts),
        ]
    }
}

impl NetStats {
    /// Fresh zeroed counters behind an [`Arc`].
    pub fn shared() -> Arc<NetStats> {
        Arc::new(NetStats::default())
    }

    /// Fresh counters that additionally mirror every increment into
    /// `registry` under `net.*` (one extra relaxed atomic per event).
    pub fn shared_with_obs(registry: &Registry) -> Arc<NetStats> {
        Arc::new(NetStats {
            obs: Some(NetObs::new(registry)),
            ..NetStats::default()
        })
    }

    /// Records one written frame carrying `items` units in `bytes` bytes.
    pub fn on_frame_sent(&self, items: u64, bytes: u64) {
        self.frames_sent.fetch_add(1, Ordering::Relaxed);
        self.bytes_sent.fetch_add(bytes, Ordering::Relaxed);
        self.items_sent.fetch_add(items, Ordering::Relaxed);
        if let Some(obs) = &self.obs {
            obs.frames_sent.incr();
            obs.bytes_sent.add(bytes);
            obs.items_sent.add(items);
        }
    }

    /// Records one read frame carrying `items` units.
    pub fn on_frame_received(&self, items: u64) {
        self.frames_received.fetch_add(1, Ordering::Relaxed);
        self.items_received.fetch_add(items, Ordering::Relaxed);
        if let Some(obs) = &self.obs {
            obs.frames_received.incr();
            obs.items_received.add(items);
        }
    }

    /// Records raw bytes read off a socket (counted per `read`, so it
    /// covers partial frames too).
    pub fn on_raw_received(&self, bytes: u64) {
        self.bytes_received.fetch_add(bytes, Ordering::Relaxed);
        if let Some(obs) = &self.obs {
            obs.bytes_received.add(bytes);
        }
    }

    /// Records an outbound link reconnect.
    pub fn on_reconnect(&self) {
        self.reconnects.fetch_add(1, Ordering::Relaxed);
        if let Some(obs) = &self.obs {
            obs.reconnects.incr();
        }
    }

    /// Records one served reconnect-backoff wait (registry-only: the
    /// histogram has no legacy twin).
    pub fn on_backoff(&self, nanos: u64) {
        if let Some(obs) = &self.obs {
            obs.reconnect_backoff.record(nanos);
        }
    }

    /// Records `n` items surfaced as send failures.
    pub fn on_send_failures(&self, n: u64) {
        self.send_failures.fetch_add(n, Ordering::Relaxed);
        if let Some(obs) = &self.obs {
            obs.send_failures.add(n);
        }
    }

    /// Records a corrupt inbound frame.
    pub fn on_decode_error(&self) {
        self.decode_errors.fetch_add(1, Ordering::Relaxed);
        if let Some(obs) = &self.obs {
            obs.decode_errors.incr();
        }
    }

    /// Records `n` background units piggybacking on an app-send flush.
    pub fn on_piggybacked(&self, n: u64) {
        self.piggybacked.fetch_add(n, Ordering::Relaxed);
        if let Some(obs) = &self.obs {
            obs.piggybacked.add(n);
        }
    }

    /// Records a transient acceptor failure that triggered backoff.
    pub fn on_accept_error(&self) {
        self.accept_errors.fetch_add(1, Ordering::Relaxed);
        if let Some(obs) = &self.obs {
            obs.accept_errors.incr();
        }
    }

    /// Records a link that completed the auth handshake.
    pub fn on_auth_ok(&self) {
        self.auth_ok.fetch_add(1, Ordering::Relaxed);
        if let Some(obs) = &self.obs {
            obs.auth_ok.incr();
        }
    }

    /// Records a link dropped for failing authentication.
    pub fn on_auth_reject(&self) {
        self.auth_rejects.fetch_add(1, Ordering::Relaxed);
        if let Some(obs) = &self.obs {
            obs.auth_rejects.incr();
        }
    }

    /// Records a connection reclaimed for idling mid-handshake.
    pub fn on_handshake_timeout(&self) {
        self.handshake_timeouts.fetch_add(1, Ordering::Relaxed);
        if let Some(obs) = &self.obs {
            obs.handshake_timeouts.incr();
        }
    }

    /// Consistent-enough copy for reporting.
    pub fn snapshot(&self) -> NetStatsSnapshot {
        NetStatsSnapshot {
            frames_sent: self.frames_sent.load(Ordering::Relaxed),
            bytes_sent: self.bytes_sent.load(Ordering::Relaxed),
            items_sent: self.items_sent.load(Ordering::Relaxed),
            frames_received: self.frames_received.load(Ordering::Relaxed),
            bytes_received: self.bytes_received.load(Ordering::Relaxed),
            items_received: self.items_received.load(Ordering::Relaxed),
            reconnects: self.reconnects.load(Ordering::Relaxed),
            send_failures: self.send_failures.load(Ordering::Relaxed),
            decode_errors: self.decode_errors.load(Ordering::Relaxed),
            piggybacked: self.piggybacked.load(Ordering::Relaxed),
            accept_errors: self.accept_errors.load(Ordering::Relaxed),
            auth_ok: self.auth_ok.load(Ordering::Relaxed),
            auth_rejects: self.auth_rejects.load(Ordering::Relaxed),
            handshake_timeouts: self.handshake_timeouts.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let s = NetStats::shared();
        s.on_frame_sent(3, 100);
        s.on_frame_sent(1, 20);
        s.on_frame_received(2);
        s.on_raw_received(64);
        s.on_reconnect();
        s.on_send_failures(2);
        let snap = s.snapshot();
        assert_eq!(snap.frames_sent, 2);
        assert_eq!(snap.bytes_sent, 120);
        assert_eq!(snap.items_sent, 4);
        assert_eq!(snap.items_per_frame(), 2.0);
        assert_eq!(snap.frames_received, 1);
        assert_eq!(snap.bytes_received, 64);
        assert_eq!(snap.reconnects, 1);
        assert_eq!(snap.send_failures, 2);
    }

    #[test]
    fn empty_snapshot_has_no_batching_factor() {
        assert_eq!(NetStatsSnapshot::default().items_per_frame(), 0.0);
    }

    #[test]
    fn obs_mirror_conserves_every_counter() {
        let r = Registry::default();
        let s = NetStats::shared_with_obs(&r);
        s.on_frame_sent(3, 100);
        s.on_frame_sent(1, 20);
        s.on_frame_received(2);
        s.on_raw_received(64);
        s.on_reconnect();
        s.on_send_failures(2);
        s.on_decode_error();
        s.on_piggybacked(5);
        s.on_accept_error();
        s.on_auth_ok();
        s.on_auth_reject();
        s.on_handshake_timeout();
        s.on_backoff(1_000_000);
        let snap = s.snapshot();
        let o = r.snapshot();
        for (key, value) in snap.named_counters() {
            assert_eq!(o.counter(key), value, "mirror diverged for {key}");
        }
        assert!(snap.named_counters().iter().any(|&(_, v)| v > 0));
        assert_eq!(o.histogram("net.reconnect_backoff_ns").count, 1);
    }

    #[test]
    fn merge_folds_every_field() {
        let a = NetStats::shared();
        a.on_frame_sent(3, 100);
        a.on_accept_error();
        let b = NetStats::shared();
        b.on_frame_received(2);
        b.on_raw_received(64);
        b.on_reconnect();
        b.on_send_failures(2);
        b.on_decode_error();
        b.on_piggybacked(5);
        b.on_auth_ok();
        b.on_auth_reject();
        b.on_handshake_timeout();
        let mut total = a.snapshot();
        total.merge(&b.snapshot());
        for ((key, folded), ((_, va), (_, vb))) in total.named_counters().iter().zip(
            a.snapshot()
                .named_counters()
                .into_iter()
                .zip(b.snapshot().named_counters()),
        ) {
            assert_eq!(*folded, va + vb, "fold lost {key}");
        }
    }

    #[test]
    fn plain_stats_skip_backoff_histogram() {
        let s = NetStats::shared();
        s.on_backoff(500); // no registry attached: a quiet no-op
        assert_eq!(s.snapshot(), NetStatsSnapshot::default());
    }
}
