//! Ground-truth liveness oracle.
//!
//! The simulator knows the whole system state, so it can evaluate the
//! paper's Garbage property (equation (1)) directly:
//!
//! ```text
//! Garbage(x) ⇔ ∀y, y →* x ⇒ Idle(y)
//! ```
//!
//! equivalently: `x` is **live** iff some root or busy activity reaches
//! `x` through reference edges. The oracle computes the live set by
//! forward reachability from roots, busy activities and in-flight
//! application messages (a request in flight *will* make its receiver
//! busy; references inside in-flight payloads become edges of the
//! receiver). Tests use it two ways:
//!
//! * **safety** — at every termination, the terminated activity must not
//!   be in the live set;
//! * **liveness** — after the system quiesces and enough simulated time
//!   passes (`O(h·TTB) + 2·TTA`), no garbage activity may remain alive.

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use dgc_core::id::AoId;
use dgc_core::message::TerminateReason;
use dgc_simnet::time::SimTime;

/// An application message still travelling through the network.
#[derive(Debug, Clone)]
pub struct InflightMessage {
    /// Receiver.
    pub to: AoId,
    /// True for requests (which activate the receiver on arrival), false
    /// for replies (which cannot wake an idle activity, §4.1).
    pub is_request: bool,
    /// Remote references carried in the payload.
    pub refs: Vec<AoId>,
}

/// A full-system snapshot for the oracle.
#[derive(Debug, Clone, Default)]
pub struct Snapshot {
    /// Registered activities and dummy referencers: never idle.
    pub roots: Vec<AoId>,
    /// Activities currently busy (serving, queued work, or waiting on a
    /// future).
    pub busy: Vec<AoId>,
    /// Reference edges: holder → target, one per held stub tag.
    pub edges: Vec<(AoId, AoId)>,
    /// Application messages in flight.
    pub inflight: Vec<InflightMessage>,
}

/// A safety violation: a live activity was terminated.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SafetyViolation {
    /// When it happened.
    pub at: SimTime,
    /// The wrongfully terminated activity.
    pub ao: AoId,
    /// The reason the collector gave.
    pub reason: TerminateReason,
}

/// Computes the set of live activities in a snapshot.
pub fn live_set(snapshot: &Snapshot) -> BTreeSet<AoId> {
    let mut adj: BTreeMap<AoId, Vec<AoId>> = BTreeMap::new();
    for (from, to) in &snapshot.edges {
        adj.entry(*from).or_default().push(*to);
    }

    let mut live: BTreeSet<AoId> = BTreeSet::new();
    let mut frontier: VecDeque<AoId> = VecDeque::new();
    let push = |id: AoId, live: &mut BTreeSet<AoId>, frontier: &mut VecDeque<AoId>| {
        if live.insert(id) {
            frontier.push_back(id);
        }
    };

    for r in &snapshot.roots {
        push(*r, &mut live, &mut frontier);
    }
    for b in &snapshot.busy {
        push(*b, &mut live, &mut frontier);
    }
    for m in &snapshot.inflight {
        if m.is_request {
            // The request will activate its receiver: the receiver and
            // everything the payload references are live.
            push(m.to, &mut live, &mut frontier);
            for r in &m.refs {
                push(*r, &mut live, &mut frontier);
            }
        }
        // A reply's references become edges of the receiver: live only
        // if the receiver is.
    }

    // Replies: receiver → refs edges.
    let mut reply_edges: BTreeMap<AoId, Vec<AoId>> = BTreeMap::new();
    for m in &snapshot.inflight {
        if !m.is_request {
            reply_edges
                .entry(m.to)
                .or_default()
                .extend(m.refs.iter().copied());
        }
    }

    while let Some(id) = frontier.pop_front() {
        if let Some(nexts) = adj.get(&id) {
            for n in nexts {
                if live.insert(*n) {
                    frontier.push_back(*n);
                }
            }
        }
        if let Some(nexts) = reply_edges.get(&id) {
            for n in nexts.clone() {
                if live.insert(n) {
                    frontier.push_back(n);
                }
            }
        }
    }
    live
}

/// Activities in `alive` that the oracle deems garbage (not live).
pub fn garbage_set(snapshot: &Snapshot, alive: &BTreeSet<AoId>) -> BTreeSet<AoId> {
    let live = live_set(snapshot);
    alive
        .iter()
        .filter(|id| !live.contains(id))
        .copied()
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ao(n: u32) -> AoId {
        AoId::new(n, 0)
    }

    #[test]
    fn roots_and_busy_are_live() {
        let s = Snapshot {
            roots: vec![ao(1)],
            busy: vec![ao(2)],
            edges: vec![],
            inflight: vec![],
        };
        let live = live_set(&s);
        assert!(live.contains(&ao(1)));
        assert!(live.contains(&ao(2)));
        assert!(!live.contains(&ao(3)));
    }

    #[test]
    fn liveness_follows_reference_edges() {
        // root -> a -> b, and isolated c.
        let s = Snapshot {
            roots: vec![ao(0)],
            busy: vec![],
            edges: vec![(ao(0), ao(1)), (ao(1), ao(2)), (ao(3), ao(4))],
            inflight: vec![],
        };
        let live = live_set(&s);
        assert!(live.contains(&ao(1)));
        assert!(live.contains(&ao(2)));
        assert!(!live.contains(&ao(3)), "no busy/root reaches c");
        assert!(!live.contains(&ao(4)));
    }

    #[test]
    fn idle_cycle_is_garbage_even_if_it_references_live_objects() {
        // Fig. 4 orientation: the cycle {1,2} references busy 3; edges
        // point *from* the cycle, so the cycle stays garbage.
        let s = Snapshot {
            roots: vec![],
            busy: vec![ao(3)],
            edges: vec![(ao(1), ao(2)), (ao(2), ao(1)), (ao(2), ao(3))],
            inflight: vec![],
        };
        let live = live_set(&s);
        assert!(!live.contains(&ao(1)));
        assert!(!live.contains(&ao(2)));
        assert!(live.contains(&ao(3)));
    }

    #[test]
    fn busy_referencer_keeps_cycle_live() {
        let s = Snapshot {
            roots: vec![],
            busy: vec![ao(3)],
            edges: vec![(ao(3), ao(1)), (ao(1), ao(2)), (ao(2), ao(1))],
            inflight: vec![],
        };
        let live = live_set(&s);
        assert!(live.contains(&ao(1)));
        assert!(live.contains(&ao(2)));
    }

    #[test]
    fn inflight_request_keeps_receiver_and_refs_live() {
        let s = Snapshot {
            roots: vec![],
            busy: vec![],
            edges: vec![(ao(1), ao(2))],
            inflight: vec![InflightMessage {
                to: ao(1),
                is_request: true,
                refs: vec![ao(5)],
            }],
        };
        let live = live_set(&s);
        assert!(live.contains(&ao(1)), "request will activate it");
        assert!(live.contains(&ao(2)), "reached from the activated receiver");
        assert!(live.contains(&ao(5)), "carried reference");
    }

    #[test]
    fn inflight_reply_refs_live_only_if_receiver_is() {
        // Reply to idle garbage receiver: refs stay garbage.
        let s = Snapshot {
            roots: vec![],
            busy: vec![],
            edges: vec![],
            inflight: vec![InflightMessage {
                to: ao(1),
                is_request: false,
                refs: vec![ao(5)],
            }],
        };
        assert!(live_set(&s).is_empty());
        // Reply to a busy receiver: refs live.
        let s2 = Snapshot {
            roots: vec![],
            busy: vec![ao(1)],
            edges: vec![],
            inflight: vec![InflightMessage {
                to: ao(1),
                is_request: false,
                refs: vec![ao(5)],
            }],
        };
        let live = live_set(&s2);
        assert!(live.contains(&ao(5)));
    }

    #[test]
    fn garbage_set_is_alive_minus_live() {
        let s = Snapshot {
            roots: vec![ao(0)],
            busy: vec![],
            edges: vec![(ao(0), ao(1))],
            inflight: vec![],
        };
        let alive: BTreeSet<AoId> = [ao(0), ao(1), ao(2), ao(3)].into_iter().collect();
        let garbage = garbage_set(&s, &alive);
        assert_eq!(garbage, [ao(2), ao(3)].into_iter().collect());
    }
}
