//! Edge cases of the reactor I/O engine, pinned explicitly (these
//! tests force [`IoEngine::Reactor`] rather than relying on
//! `DGC_NET_ENGINE`): partial frames dribbling across readiness
//! events, write-buffer backpressure against a reader that never
//! reads, and a connection severed mid-frame.

use std::io::Write;
use std::net::{TcpListener, TcpStream};
use std::time::{Duration, Instant};

use dgc_core::config::DgcConfig;
use dgc_core::id::AoId;
use dgc_core::units::Dur;
use dgc_rt_net::frame::{encode_batch_frame, encode_frame, Frame, Item, PROTOCOL_VERSION};
use dgc_rt_net::{Cluster, IoEngine, NetConfig, NetNode};

fn cfg() -> NetConfig {
    NetConfig::new(
        DgcConfig::builder()
            .ttb(Dur::from_millis(25))
            .tta(Dur::from_millis(80))
            .max_comm(Dur::from_millis(20))
            .build(),
    )
    .engine(IoEngine::Reactor)
}

fn poll_until(deadline: Duration, check: impl Fn() -> bool) -> bool {
    let start = Instant::now();
    while start.elapsed() < deadline {
        if check() {
            return true;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    check()
}

/// A hello + one-app-item batch, as a fake peer `node` would send them.
fn hello_and_batch(node: u32, to: AoId, payload: &[u8]) -> (Vec<u8>, Vec<u8>) {
    let hello = encode_frame(&Frame::Hello {
        node,
        version: PROTOCOL_VERSION,
    });
    let batch = encode_batch_frame(&[Item::App {
        from: AoId::new(node, 0),
        to,
        reply: false,
        tenant: 0,
        payload: payload.to_vec().into(),
    }]);
    (hello, batch)
}

#[test]
fn partial_frames_dribbled_across_readiness_events_reassemble() {
    let node = NetNode::bind(0, cfg()).unwrap();
    let target = node.add_activity();

    // Write the hello and the batch three bytes at a time with real
    // pauses: every dribble is its own readiness event, so the decoder
    // must carry partial frames across `poll` rounds.
    let (hello, batch) = hello_and_batch(9, target, b"dribbled payload");
    let mut client = TcpStream::connect(node.addr()).unwrap();
    client.set_nodelay(true).unwrap();
    let wire: Vec<u8> = [hello, batch].concat();
    for chunk in wire.chunks(3) {
        client.write_all(chunk).unwrap();
        client.flush().unwrap();
        std::thread::sleep(Duration::from_millis(2));
    }

    assert!(
        poll_until(Duration::from_secs(5), || !node.app_received().is_empty()),
        "the dribbled app unit never arrived"
    );
    let got = node.app_received();
    assert_eq!(got[0].payload, b"dribbled payload");
    assert_eq!(got[0].to, target);
    assert_eq!(node.stats().decode_errors, 0, "dribble is not corruption");
    drop(client);
    node.shutdown();
}

#[test]
fn severed_mid_frame_discards_the_torso_and_takes_the_next_connection() {
    let node = NetNode::bind(0, cfg()).unwrap();
    let target = node.add_activity();

    // First connection dies halfway through a frame…
    let (hello, batch) = hello_and_batch(9, target, b"lost to the sever");
    let mut dying = TcpStream::connect(node.addr()).unwrap();
    dying.write_all(&hello).unwrap();
    dying.write_all(&batch[..batch.len() / 2]).unwrap();
    dying.flush().unwrap();
    std::thread::sleep(Duration::from_millis(50));
    drop(dying);

    // …which must neither deliver a torso nor poison the node: a fresh
    // connection (same claimed peer) delivers normally.
    let (hello, batch) = hello_and_batch(9, target, b"second life");
    let mut fresh = TcpStream::connect(node.addr()).unwrap();
    fresh.write_all(&[hello, batch].concat()).unwrap();
    fresh.flush().unwrap();

    assert!(
        poll_until(Duration::from_secs(5), || !node.app_received().is_empty()),
        "the post-sever connection never delivered"
    );
    let got = node.app_received();
    assert_eq!(got.len(), 1, "the severed torso must not deliver: {got:?}");
    assert_eq!(got[0].payload, b"second life");
    assert_eq!(
        node.stats().decode_errors,
        0,
        "truncation is not corruption"
    );
    drop(fresh);
    node.shutdown();
}

#[test]
fn slow_reader_backpressure_sheds_instead_of_wedging_the_loop() {
    // The "peer" accepts the reactor's connection and then never reads:
    // the kernel buffers fill, writes stall, and the link's pending
    // queue climbs. With a tight `max_link_pending` the overflow must
    // be shed into visible send failures while the event loop stays
    // responsive — not buffered without bound, not a wedged loop.
    let sink = TcpListener::bind(("127.0.0.1", 0)).unwrap();
    let sink_addr = sink.local_addr().unwrap();
    let accepter = std::thread::spawn(move || {
        let (stream, _) = sink.accept().unwrap();
        // Hold the socket open, reading nothing, until the test ends.
        std::thread::sleep(Duration::from_secs(20));
        drop(stream);
    });

    let node = NetNode::bind(0, cfg().max_link_pending(64)).unwrap();
    node.add_peer(1, sink_addr);
    let from = node.add_activity();
    let to = AoId::new(1, 0);
    for _ in 0..600 {
        node.send_app(from, to, false, vec![0xAB; 16 * 1024]);
    }

    assert!(
        poll_until(Duration::from_secs(15), || {
            node.stats().send_failures > 0 || !node.app_send_failures().is_empty()
        }),
        "overflow was neither shed nor surfaced; pending {:?}",
        node.egress_pending()
    );
    // The loop is still alive and answering control traffic.
    let probe = node.add_activity();
    node.set_idle(probe, true);
    assert!(
        node.wait_until(Duration::from_secs(10), |t| t.iter().any(|x| x.ao == probe)),
        "event loop wedged behind the stalled link"
    );
    node.shutdown();
    drop(accepter); // detach: it unblocks on its own timer
}

#[test]
fn cross_node_cycle_is_collected_on_the_reactor_engine() {
    // The whole-protocol smoke under the pinned reactor engine, env be
    // damned: two nodes, a cross-node cycle, full collection.
    let cluster = Cluster::listen_local(2, cfg()).unwrap();
    let a = cluster.add_activity(0);
    let b = cluster.add_activity(1);
    cluster.add_ref(a, b);
    cluster.add_ref(b, a);
    cluster.set_idle(a, true);
    cluster.set_idle(b, true);
    assert!(
        cluster.wait_until(Duration::from_secs(20), |t| t.len() == 2),
        "cyclic collection on the reactor engine: {:?}",
        cluster.terminated()
    );
    cluster.shutdown();
}
