//! Property tests of the vendored SHA-256 / HMAC primitives, in the
//! `frame_props` idiom: arbitrary inputs through the incremental and
//! one-shot paths must agree, and the adversarial length/prefix games a
//! handshake attacker can play (truncation, extension, bit flips) must
//! never produce a passing comparison.

use hmac::{ct_eq, hmac_sha256, sha256, Sha256};
use proptest::prelude::*;

proptest! {
    /// Incremental hashing at an arbitrary split point equals the
    /// one-shot digest (the socket readers feed packets, not messages).
    #[test]
    fn incremental_split_matches_oneshot(
        data in proptest::collection::vec(any::<u8>(), 0..512),
        split in any::<u64>(),
    ) {
        let at = if data.is_empty() { 0 } else { (split % (data.len() as u64 + 1)) as usize };
        let mut h = Sha256::new();
        h.update(&data[..at]);
        h.update(&data[at..]);
        prop_assert_eq!(h.finalize(), sha256(&data));
    }

    /// Feeding byte-at-a-time (worst fragmentation) equals one-shot.
    #[test]
    fn byte_at_a_time_matches_oneshot(
        data in proptest::collection::vec(any::<u8>(), 0..200),
    ) {
        let mut h = Sha256::new();
        for b in &data {
            h.update(std::slice::from_ref(b));
        }
        prop_assert_eq!(h.finalize(), sha256(&data));
    }

    /// A strict prefix of a message never authenticates as the whole
    /// message: truncating a handshake frame must break its MAC.
    #[test]
    fn truncated_message_changes_the_mac(
        key in proptest::collection::vec(any::<u8>(), 0..80),
        msg in proptest::collection::vec(any::<u8>(), 1..256),
        cut in any::<u64>(),
    ) {
        let at = (cut % msg.len() as u64) as usize;
        let full = hmac_sha256(&key, &msg);
        let truncated = hmac_sha256(&key, &msg[..at]);
        prop_assert!(!ct_eq(&full, &truncated));
    }

    /// Appending bytes (a replay attacker splicing traffic onto a
    /// recorded handshake) never preserves the MAC — HMAC is immune to
    /// the length-extension trick plain SHA-256 concatenation allows.
    #[test]
    fn extended_message_changes_the_mac(
        key in proptest::collection::vec(any::<u8>(), 0..80),
        msg in proptest::collection::vec(any::<u8>(), 0..128),
        suffix in proptest::collection::vec(any::<u8>(), 1..64),
    ) {
        let mut extended = msg.clone();
        extended.extend_from_slice(&suffix);
        prop_assert!(!ct_eq(&hmac_sha256(&key, &msg), &hmac_sha256(&key, &extended)));
    }

    /// Any single flipped bit in the message flips the MAC.
    #[test]
    fn bit_flip_changes_the_mac(
        key in proptest::collection::vec(any::<u8>(), 1..80),
        msg in proptest::collection::vec(any::<u8>(), 1..128),
        pos in any::<u64>(),
        bit in 0u8..8,
    ) {
        let mut tampered = msg.clone();
        let at = (pos % msg.len() as u64) as usize;
        tampered[at] ^= 1 << bit;
        prop_assert!(!ct_eq(&hmac_sha256(&key, &msg), &hmac_sha256(&key, &tampered)));
    }

    /// A different key yields a different MAC (two tenants with
    /// different secrets can never validate each other's traffic).
    #[test]
    fn different_key_changes_the_mac(
        key in proptest::collection::vec(any::<u8>(), 1..80),
        msg in proptest::collection::vec(any::<u8>(), 0..128),
        pos in any::<u64>(),
        bit in 0u8..8,
    ) {
        let mut other = key.clone();
        let at = (pos % key.len() as u64) as usize;
        other[at] ^= 1 << bit;
        prop_assert!(!ct_eq(&hmac_sha256(&key, &msg), &hmac_sha256(&other, &msg)));
    }

    /// `ct_eq` agrees with `==` on arbitrary byte vectors — including
    /// the prefix case (`a` a prefix of `b`), which must compare
    /// unequal, not truncate.
    #[test]
    fn ct_eq_matches_plain_equality(
        a in proptest::collection::vec(any::<u8>(), 0..64),
        b in proptest::collection::vec(any::<u8>(), 0..64),
    ) {
        prop_assert_eq!(ct_eq(&a, &b), a == b);
        let mut prefix = a.clone();
        prefix.extend_from_slice(&b);
        prop_assert_eq!(ct_eq(&a, &prefix), b.is_empty());
        prop_assert!(ct_eq(&a, &a.clone()));
    }

    /// Keys at and around the block boundary (64 bytes) take the
    /// hashed-key path consistently: a key equal to its own SHA-256
    /// padding-boundary variants never collides across the boundary.
    #[test]
    fn key_block_boundary_is_consistent(
        key in proptest::collection::vec(any::<u8>(), 60..70),
        msg in proptest::collection::vec(any::<u8>(), 0..64),
    ) {
        // Self-consistency: same key, same message, same MAC.
        prop_assert_eq!(hmac_sha256(&key, &msg), hmac_sha256(&key, &msg));
        // A key extended by a nonzero byte is a different key. (A zero
        // byte would not be: RFC 2104 zero-pads sub-block keys, so
        // `key` and `key || 0x00` are deliberately the same key.)
        let mut longer = key.clone();
        longer.push(1);
        prop_assert!(!ct_eq(&hmac_sha256(&key, &msg), &hmac_sha256(&longer, &msg)));
    }
}
