//! Offline stand-in for the
//! [`parking_lot`](https://crates.io/crates/parking_lot) crate.
//!
//! The build environment has no crates.io access; this shim wraps
//! `std::sync::Mutex` with parking_lot's non-poisoning API (`lock()`
//! returns the guard directly). A panicked holder's data stays
//! accessible, matching parking_lot semantics.
//!
//! Beyond the API shim, this crate carries the workspace's **lock-order
//! race detector** (see [`lockcheck`]): with `DGC_LOCK_CHECK=1` in a
//! debug build, every acquisition through this type feeds a per-thread
//! held-lock stack and a process-wide lock-order graph, panicking with
//! both acquisition sites on a potential deadlock (cycle) or a hold-time
//! budget violation. Disabled, the instrumentation costs one relaxed
//! atomic load per `lock()`.

#![warn(missing_docs)]

pub mod lockcheck;

use std::ops::{Deref, DerefMut};
use std::sync::atomic::AtomicUsize;
use std::sync::{self, PoisonError};

/// A mutual-exclusion lock whose `lock` never fails.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    /// Lazily-assigned process-unique id for [`lockcheck`]; 0 = unset.
    check_id: AtomicUsize,
    inner: sync::Mutex<T>,
}

/// RAII guard; the lock is released on drop.
#[derive(Debug)]
pub struct MutexGuard<'a, T: ?Sized> {
    /// Lock id to pop from the thread's held stack; 0 when the detector
    /// was off at acquisition (drop then skips the tracker entirely).
    check_id: usize,
    inner: sync::MutexGuard<'a, T>,
}

impl<T> Mutex<T> {
    /// Wraps `value`.
    pub const fn new(value: T) -> Self {
        Mutex {
            check_id: AtomicUsize::new(0),
            inner: sync::Mutex::new(value),
        }
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available. Ignores poisoning.
    ///
    /// Under [`lockcheck`] the acquisition is screened *before* it can
    /// block: a lock-order cycle or a re-entrant acquisition panics with
    /// the involved sites instead of deadlocking.
    #[track_caller]
    pub fn lock(&self) -> MutexGuard<'_, T> {
        let mut check_id = 0;
        if lockcheck::enabled() {
            let site = std::panic::Location::caller();
            check_id = lockcheck::lock_id(&self.check_id);
            lockcheck::before_blocking_acquire(check_id, site);
            let guard = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
            lockcheck::on_acquired(check_id, site);
            return MutexGuard {
                check_id,
                inner: guard,
            };
        }
        MutexGuard {
            check_id,
            inner: self.inner.lock().unwrap_or_else(PoisonError::into_inner),
        }
    }

    /// Tries to acquire without blocking. A `try_lock` cannot deadlock,
    /// so it adds no lock-order edges, but a successful acquisition
    /// still joins the held stack: blocking locks taken *under* it are
    /// ordered against it.
    #[track_caller]
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        let guard = match self.inner.try_lock() {
            Ok(g) => g,
            Err(sync::TryLockError::Poisoned(p)) => p.into_inner(),
            Err(sync::TryLockError::WouldBlock) => return None,
        };
        let mut check_id = 0;
        if lockcheck::enabled() {
            check_id = lockcheck::lock_id(&self.check_id);
            lockcheck::on_acquired(check_id, std::panic::Location::caller());
        }
        Some(MutexGuard {
            check_id,
            inner: guard,
        })
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

impl<T: ?Sized> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        if self.check_id != 0 {
            lockcheck::on_released(self.check_id);
        }
    }
}

impl<T: ?Sized + std::fmt::Display> std::fmt::Display for MutexGuard<'_, T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        (**self).fmt(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn basic_exclusion() {
        let m = Arc::new(Mutex::new(0u32));
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let m = Arc::clone(&m);
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        *m.lock() += 1;
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*m.lock(), 8000);
    }

    #[test]
    fn lock_survives_holder_panic() {
        let m = Arc::new(Mutex::new(5u32));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        assert_eq!(*m.lock(), 5);
    }

    #[test]
    fn try_lock_contended() {
        let m = Mutex::new(1);
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn into_inner_returns_value() {
        let m = Mutex::new(vec![1, 2, 3]);
        m.lock().push(4);
        assert_eq!(m.into_inner(), vec![1, 2, 3, 4]);
    }
}
