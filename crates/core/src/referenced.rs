//! The referenced table (§2.2).
//!
//! For each remote active object we hold a reference to, the DGC stores
//! the last DGC response received from it and whether the edge is still
//! needed. Two mechanisms from the paper:
//!
//! * **Stub tags.** Several local stubs may denote the same remote
//!   object; the middleware gives them one shared *tag* and tells us only
//!   when the tag dies (all stubs collected) — that removal is a "loss of
//!   a referenced" which must bump the activity clock (§3.2, Fig. 6).
//! * **`must_send_once`.** A freshly deserialized reference guarantees at
//!   least one DGC message at the next broadcast *even if the stub is
//!   immediately collected*, so a reference hopping quickly between
//!   objects keeps its target alive (§3.1).
//!
//! ## Storage
//!
//! Like [`crate::referencers`], entries are a flat `Vec` sorted by id —
//! the TTB broadcast walks it as one linear scan and
//! [`ReferencedTable::broadcast_targets_into`] fills caller-owned
//! scratch buffers instead of allocating per sweep. Iteration order is
//! unchanged (id order, load-bearing for conformance); the `BTreeMap`
//! original lives on in [`crate::legacy`] as model and baseline.

use crate::id::AoId;
use crate::message::DgcResponse;

/// What we know about one referenced active object.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReferencedInfo {
    /// Last DGC response received from it, if any.
    pub last_response: Option<DgcResponse>,
    /// True while at least one local stub (the shared tag) is alive.
    pub reachable: bool,
    /// True if we still owe this target one DGC message (deserialization
    /// happened after the last broadcast).
    pub must_send_once: bool,
}

/// Table of all referenced active objects: a flat arena sorted by id.
#[derive(Debug, Clone, Default)]
pub struct ReferencedTable {
    entries: Vec<(AoId, ReferencedInfo)>,
}

impl ReferencedTable {
    /// Empty table.
    pub fn new() -> Self {
        ReferencedTable::default()
    }

    #[inline]
    fn position(&self, id: AoId) -> Result<usize, usize> {
        crate::id::position_sorted(&self.entries, id)
    }

    /// Registers the deserialization of a stub for `target` (the §2.2
    /// hook). Creates the edge if needed, marks it reachable, and arms
    /// `must_send_once`. Returns `true` if the edge is new.
    pub fn on_stub_deserialized(&mut self, target: AoId) -> bool {
        let i = match self.position(target) {
            Ok(i) => i,
            Err(i) => {
                self.entries.insert(
                    i,
                    (
                        target,
                        ReferencedInfo {
                            last_response: None,
                            reachable: false,
                            must_send_once: false,
                        },
                    ),
                );
                i
            }
        };
        // dgc-analysis: allow(hot-path-panic): index is a binary-search Ok(i) into the same vec
        let entry = &mut self.entries[i].1;
        let was_new = !entry.reachable && entry.last_response.is_none() && !entry.must_send_once;
        entry.reachable = true;
        entry.must_send_once = true;
        was_new
    }

    /// The local collector reports that **all** stubs for `target` died
    /// (the weak-referenced tag was collected). The edge survives only if
    /// a first DGC message is still owed. Returns `true` if the edge was
    /// removed now (a "loss of a referenced").
    pub fn on_stubs_collected(&mut self, target: AoId) -> bool {
        match self.position(target) {
            Err(_) => false,
            Ok(i) => {
                // dgc-analysis: allow(hot-path-panic): index is a binary-search Ok(i) into the same vec
                let info = &mut self.entries[i].1;
                info.reachable = false;
                if info.must_send_once {
                    // Keep the edge until the promised message is sent.
                    false
                } else {
                    self.entries.remove(i);
                    true
                }
            }
        }
    }

    /// Records a DGC response from `target`. Returns `false` if we no
    /// longer track that target (late response after edge removal).
    pub fn record_response(&mut self, target: AoId, response: DgcResponse) -> bool {
        match self.position(target) {
            Ok(i) => {
                // dgc-analysis: allow(hot-path-panic): index is a binary-search Ok(i) into the same vec
                self.entries[i].1.last_response = Some(response);
                true
            }
            Err(_) => false,
        }
    }

    /// Removes the edge to `target` unconditionally (send failure: the
    /// target terminated). Returns `true` if it existed.
    pub fn remove(&mut self, target: AoId) -> bool {
        match self.position(target) {
            Ok(i) => {
                self.entries.remove(i);
                true
            }
            Err(_) => false,
        }
    }

    /// Ids to include in the next broadcast: all reachable targets plus
    /// any target still owed its first message. Clears `must_send_once`
    /// flags, and drops edges that were only kept for that promise —
    /// returning those drops as "losses of a referenced" (second element).
    pub fn broadcast_targets(&mut self) -> (Vec<AoId>, Vec<AoId>) {
        let mut targets = Vec::new();
        let mut dropped = Vec::new();
        self.broadcast_targets_into(&mut targets, &mut dropped);
        (targets, dropped)
    }

    /// [`Self::broadcast_targets`] into caller-owned scratch buffers
    /// (appended, id order) — one in-place pass, no allocation when the
    /// buffers' capacity is warm. This is the TTB-sweep hot path.
    pub fn broadcast_targets_into(&mut self, targets: &mut Vec<AoId>, dropped: &mut Vec<AoId>) {
        self.entries.retain_mut(|(id, info)| {
            if info.reachable || info.must_send_once {
                targets.push(*id);
                info.must_send_once = false;
                if !info.reachable {
                    // The promised message is being sent now; afterwards
                    // the edge is gone (stub already collected).
                    dropped.push(*id);
                    return false;
                }
            }
            true
        });
    }

    /// True when some edge is owed its first message but is already
    /// unreachable — i.e. the next broadcast walk will drop it. The
    /// sweep uses this to choose between the fused single-pass walk
    /// (no drop possible) and the exact two-phase order that drop
    /// bookkeeping needs (drops bump the activity clock *before* the
    /// heartbeats carrying it are built).
    pub fn has_pending_drops(&self) -> bool {
        self.entries
            .iter()
            .any(|(_, info)| info.must_send_once && !info.reachable)
    }

    /// The fused broadcast walk: one in-place pass that invokes `emit`
    /// for every target due a heartbeat, handing it the edge's last
    /// recorded response (Algorithm 2's consensus-bit input) so the
    /// caller never re-searches the table per destination. Semantics
    /// match [`Self::broadcast_targets_into`] followed by a
    /// [`Self::last_response`] lookup per target: `must_send_once`
    /// flags clear, and edges kept only for that promise drop into
    /// `dropped`. This is the TTB-sweep hot path.
    pub fn for_each_broadcast_target(
        &mut self,
        dropped: &mut Vec<AoId>,
        mut emit: impl FnMut(AoId, Option<&DgcResponse>),
    ) {
        self.entries.retain_mut(|(id, info)| {
            if info.reachable || info.must_send_once {
                emit(*id, info.last_response.as_ref());
                info.must_send_once = false;
                if !info.reachable {
                    // The promised message is being sent now; afterwards
                    // the edge is gone (stub already collected).
                    dropped.push(*id);
                    return false;
                }
            }
            true
        });
    }

    /// Last response from `target`, if tracked and received.
    pub fn last_response(&self, target: AoId) -> Option<&DgcResponse> {
        self.position(target)
            .ok()
            // dgc-analysis: allow(hot-path-panic): index is a binary-search Ok(i) into the same vec
            .and_then(|i| self.entries[i].1.last_response.as_ref())
    }

    /// Look up one edge.
    pub fn get(&self, target: AoId) -> Option<&ReferencedInfo> {
        // dgc-analysis: allow(hot-path-panic): index is a binary-search Ok(i) into the same vec
        self.position(target).ok().map(|i| &self.entries[i].1)
    }

    /// True if `target` is currently tracked.
    pub fn contains(&self, target: AoId) -> bool {
        self.position(target).is_ok()
    }

    /// Number of tracked edges.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if no edge is tracked.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates over `(id, info)` in id order.
    pub fn iter(&self) -> impl Iterator<Item = (AoId, &ReferencedInfo)> {
        self.entries.iter().map(|(k, v)| (*k, v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::NamedClock;

    fn ao(n: u32) -> AoId {
        AoId::new(n, 0)
    }

    fn resp(n: u32) -> DgcResponse {
        DgcResponse {
            responder: ao(n),
            clock: NamedClock::initial(ao(n)),
            has_parent: false,
            consensus_reached: false,
            depth: None,
        }
    }

    #[test]
    fn deserialization_creates_edge_and_arms_must_send() {
        let mut t = ReferencedTable::new();
        assert!(t.on_stub_deserialized(ao(1)));
        assert!(
            !t.on_stub_deserialized(ao(1)),
            "second stub is not a new edge"
        );
        let info = t.get(ao(1)).unwrap();
        assert!(info.reachable);
        assert!(info.must_send_once);
    }

    #[test]
    fn broadcast_clears_must_send_and_keeps_reachable_edges() {
        let mut t = ReferencedTable::new();
        t.on_stub_deserialized(ao(1));
        let (targets, dropped) = t.broadcast_targets();
        assert_eq!(targets, vec![ao(1)]);
        assert!(dropped.is_empty());
        assert!(!t.get(ao(1)).unwrap().must_send_once);
        // Still broadcast next time: the stub is alive.
        let (targets, _) = t.broadcast_targets();
        assert_eq!(targets, vec![ao(1)]);
    }

    #[test]
    fn quickly_collected_stub_still_gets_one_message() {
        // §3.1: reference passed through and collected before the first
        // broadcast — one DGC message must still go out.
        let mut t = ReferencedTable::new();
        t.on_stub_deserialized(ao(1));
        assert!(
            !t.on_stubs_collected(ao(1)),
            "edge kept for the promised message"
        );
        let (targets, dropped) = t.broadcast_targets();
        assert_eq!(targets, vec![ao(1)]);
        assert_eq!(
            dropped,
            vec![ao(1)],
            "edge dropped after the promise is honoured"
        );
        assert!(!t.contains(ao(1)));
        let (targets, _) = t.broadcast_targets();
        assert!(targets.is_empty());
    }

    #[test]
    fn broadcast_targets_into_appends_to_scratch() {
        let mut t = ReferencedTable::new();
        t.on_stub_deserialized(ao(2));
        t.on_stub_deserialized(ao(1));
        t.on_stubs_collected(ao(2)); // kept for the promise, dropped below
        let mut targets = vec![ao(7)];
        let mut dropped = Vec::new();
        t.broadcast_targets_into(&mut targets, &mut dropped);
        assert_eq!(targets, vec![ao(7), ao(1), ao(2)]);
        assert_eq!(dropped, vec![ao(2)]);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn fused_walk_matches_two_phase_walk_and_lookups() {
        let mut two_phase = ReferencedTable::new();
        two_phase.on_stub_deserialized(ao(3));
        two_phase.on_stub_deserialized(ao(1));
        two_phase.on_stub_deserialized(ao(2));
        two_phase.record_response(ao(1), resp(1));
        two_phase.on_stubs_collected(ao(2)); // kept for the promise only
        let mut fused = two_phase.clone();

        assert!(two_phase.has_pending_drops(), "ao2 is owed its drop");
        let pre_walk = two_phase.clone();
        let (targets, two_phase_dropped) = two_phase.broadcast_targets();
        let expected: Vec<(AoId, Option<DgcResponse>)> = targets
            .into_iter()
            .map(|t| (t, pre_walk.last_response(t).cloned()))
            .collect();

        let mut walked = Vec::new();
        let mut dropped = Vec::new();
        fused.for_each_broadcast_target(&mut dropped, |id, last| {
            walked.push((id, last.cloned()));
        });
        assert_eq!(walked, expected);
        assert_eq!(dropped, two_phase_dropped);
        assert_eq!(dropped, vec![ao(2)]);
        let (after, _) = two_phase.broadcast_targets();
        let mut fused_after = Vec::new();
        fused.for_each_broadcast_target(&mut Vec::new(), |id, _| fused_after.push(id));
        assert_eq!(fused_after, after, "both walks leave the same table");
        assert!(!fused.has_pending_drops());
    }

    #[test]
    fn stub_collection_after_broadcast_removes_edge() {
        let mut t = ReferencedTable::new();
        t.on_stub_deserialized(ao(1));
        t.broadcast_targets();
        assert!(t.on_stubs_collected(ao(1)), "loss of a referenced");
        assert!(t.is_empty());
    }

    #[test]
    fn re_deserialization_revives_edge() {
        let mut t = ReferencedTable::new();
        t.on_stub_deserialized(ao(1));
        t.broadcast_targets();
        t.on_stubs_collected(ao(1));
        assert!(t.on_stub_deserialized(ao(1)), "revived edge counts as new");
        assert!(t.get(ao(1)).unwrap().reachable);
    }

    #[test]
    fn responses_recorded_only_for_tracked_targets() {
        let mut t = ReferencedTable::new();
        assert!(!t.record_response(ao(1), resp(1)), "untracked target");
        t.on_stub_deserialized(ao(1));
        assert!(t.record_response(ao(1), resp(1)));
        assert_eq!(t.last_response(ao(1)).unwrap().responder, ao(1));
    }

    #[test]
    fn remove_on_send_failure() {
        let mut t = ReferencedTable::new();
        t.on_stub_deserialized(ao(1));
        assert!(t.remove(ao(1)));
        assert!(!t.remove(ao(1)));
    }

    #[test]
    fn iteration_is_id_ordered() {
        let mut t = ReferencedTable::new();
        t.on_stub_deserialized(ao(2));
        t.on_stub_deserialized(ao(1));
        let ids: Vec<AoId> = t.iter().map(|(id, _)| id).collect();
        assert_eq!(ids, vec![ao(1), ao(2)]);
    }
}
