//! FT — 3-D FFT partial-differential-equation kernel.
//!
//! NPB FT solves ∂u/∂t = α∇²u with forward FFT, per-step evolution in
//! the frequency domain, and inverse FFT; the distributed version's
//! communication is dominated by the global transpose (an all-to-all)
//! each iteration. Class C: a 512×512×512 grid, 20 iterations.
//!
//! Each worker genuinely evolves a scaled-down 1-D complex line with a
//! real radix-2 FFT; the all-to-all transpose traffic and per-iteration
//! compute are charged at class-C scale by the parameters below.

use dgc_simnet::time::SimDuration;

use super::common::{KernelMath, NasParams};

/// Class-C-scaled parameters.
pub fn class_c() -> NasParams {
    NasParams {
        name: "FT",
        workers: 256,
        iterations: 20,
        exchange: true,
        // Transpose chunk ≈ 512³ · 16 B / 256² per peer pair.
        chunk_bytes: 32_768,
        compute_per_iter: SimDuration::from_secs(20),
        reply_bytes: 1_024,
    }
}

/// In-place radix-2 decimation-in-time FFT on interleaved complex data.
///
/// `data` holds `(re, im)` pairs; `inverse` selects the inverse
/// transform (with 1/n normalization).
///
/// # Panics
///
/// Panics if the length is not a power of two.
pub fn fft(data: &mut [(f64, f64)], inverse: bool) {
    let n = data.len();
    assert!(n.is_power_of_two(), "fft length must be a power of two");
    if n <= 1 {
        return;
    }
    // Bit-reversal permutation.
    let mut j = 0usize;
    for i in 1..n {
        let mut bit = n >> 1;
        while j & bit != 0 {
            j ^= bit;
            bit >>= 1;
        }
        j |= bit;
        if i < j {
            data.swap(i, j);
        }
    }
    // Danielson–Lanczos.
    let sign = if inverse { 1.0 } else { -1.0 };
    let mut len = 2;
    while len <= n {
        let ang = sign * 2.0 * std::f64::consts::PI / len as f64;
        let (wr, wi) = (ang.cos(), ang.sin());
        let mut i = 0;
        while i < n {
            let (mut cr, mut ci) = (1.0f64, 0.0f64);
            for k in 0..len / 2 {
                let (ar, ai) = data[i + k];
                let (br, bi) = data[i + k + len / 2];
                let (tr, ti) = (br * cr - bi * ci, br * ci + bi * cr);
                data[i + k] = (ar + tr, ai + ti);
                data[i + k + len / 2] = (ar - tr, ai - ti);
                let (ncr, nci) = (cr * wr - ci * wi, cr * wi + ci * wr);
                cr = ncr;
                ci = nci;
            }
            i += len;
        }
        len <<= 1;
    }
    if inverse {
        let inv = 1.0 / n as f64;
        for v in data.iter_mut() {
            v.0 *= inv;
            v.1 *= inv;
        }
    }
}

/// Per-worker FT state: a complex line evolved in frequency space.
pub struct FtMath {
    line: Vec<(f64, f64)>,
    evolve: Vec<f64>,
}

impl FtMath {
    /// Builds the worker's line of `n` (power-of-two) complex points.
    pub fn new(n: usize, index: u32) -> Self {
        assert!(n.is_power_of_two());
        let mut seed = 0xF7u64 ^ ((index as u64 + 1) << 16);
        let mut next = move || {
            seed ^= seed >> 12;
            seed ^= seed << 25;
            seed ^= seed >> 27;
            (seed.wrapping_mul(0x2545_F491_4F6C_DD1D) >> 11) as f64 / (1u64 << 53) as f64
        };
        let line: Vec<(f64, f64)> = (0..n).map(|_| (next(), next())).collect();
        // exp(-4α π² k̄²) factors, α chosen so nothing underflows at toy n.
        let alpha = 1e-4;
        let evolve = (0..n)
            .map(|k| {
                let kk = if k <= n / 2 { k as f64 } else { (n - k) as f64 };
                (-4.0 * alpha * std::f64::consts::PI.powi(2) * kk * kk).exp()
            })
            .collect();
        FtMath { line, evolve }
    }
}

impl KernelMath for FtMath {
    fn compute(&mut self, _iteration: u32) -> f64 {
        fft(&mut self.line, false);
        for (v, e) in self.line.iter_mut().zip(&self.evolve) {
            v.0 *= e;
            v.1 *= e;
        }
        fft(&mut self.line, true);
        self.checksum()
    }

    fn checksum(&self) -> f64 {
        self.line.iter().map(|(r, i)| r + i).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fft_round_trip_recovers_input() {
        let mut data: Vec<(f64, f64)> = (0..64)
            .map(|i| ((i as f64 * 0.37).sin(), (i as f64 * 0.11).cos()))
            .collect();
        let original = data.clone();
        fft(&mut data, false);
        fft(&mut data, true);
        for (a, b) in data.iter().zip(&original) {
            assert!((a.0 - b.0).abs() < 1e-10);
            assert!((a.1 - b.1).abs() < 1e-10);
        }
    }

    #[test]
    fn fft_of_impulse_is_flat() {
        let mut data = vec![(0.0, 0.0); 32];
        data[0] = (1.0, 0.0);
        fft(&mut data, false);
        for (r, i) in &data {
            assert!((r - 1.0).abs() < 1e-12);
            assert!(i.abs() < 1e-12);
        }
    }

    #[test]
    fn fft_of_constant_is_impulse() {
        let mut data = vec![(1.0, 0.0); 16];
        fft(&mut data, false);
        assert!((data[0].0 - 16.0).abs() < 1e-12);
        for (r, i) in &data[1..] {
            assert!(r.abs() < 1e-12 && i.abs() < 1e-12);
        }
    }

    #[test]
    fn parseval_energy_is_preserved() {
        let mut data: Vec<(f64, f64)> = (0..128).map(|i| ((i as f64).sin(), 0.0)).collect();
        let time_energy: f64 = data.iter().map(|(r, i)| r * r + i * i).sum();
        fft(&mut data, false);
        let freq_energy: f64 = data.iter().map(|(r, i)| r * r + i * i).sum::<f64>() / 128.0;
        assert!((time_energy - freq_energy).abs() < 1e-8);
    }

    #[test]
    fn evolution_damps_energy() {
        let mut ft = FtMath::new(64, 0);
        let before: f64 = ft.line.iter().map(|(r, i)| r * r + i * i).sum();
        for it in 0..5 {
            ft.compute(it);
        }
        let after: f64 = ft.line.iter().map(|(r, i)| r * r + i * i).sum();
        assert!(after < before, "diffusion must dissipate energy");
        assert!(after > 0.0, "but not to nothing at toy scale");
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_rejected() {
        let mut data = vec![(0.0, 0.0); 12];
        fft(&mut data, false);
    }

    #[test]
    fn class_c_matches_paper_structure() {
        let p = class_c();
        assert_eq!(p.iterations, 20);
        assert!(p.exchange);
    }
}
