//! The canonical conformance scenarios: the four §4.2 quadrants.
//!
//! All four share one protocol configuration, chosen so a socket run
//! finishes in seconds while leaving wide wall-clock margins:
//!
//! * `TTB = 50 ms`, `TTA = 250 ms`, `MaxComm = 100 ms` — statically
//!   safe (`250 > 2·50 + 100`), with ~148 ms of real slack over the
//!   ~2 ms localhost/simulated latency.
//!
//! Every fault is then sized against that slack: "safe" scenarios keep
//! the worst added delay far below it (and give the verdict ≥ 50 ms of
//! scheduling margin on both sides of every deadline); "unsafe"
//! scenarios overshoot TTA itself by more than 2×. That is what makes
//! the expected verdicts robust across runtimes, seeds and loaded CI
//! machines.

use dgc_core::config::DgcConfig;
use dgc_core::faults::{FaultProfile, Window};
use dgc_core::units::{Dur, Time};

use crate::{Op, Scenario, ScriptOp, Verdict};

/// The shared protocol parameters (see module docs).
pub fn conformance_dgc() -> DgcConfig {
    DgcConfig::builder()
        .ttb(Dur::from_millis(50))
        .tta(Dur::from_millis(250))
        .max_comm(Dur::from_millis(100))
        .build()
}

fn at_ms(ms: u64, op: Op) -> ScriptOp {
    ScriptOp {
        at: Time::from_nanos(ms * 1_000_000),
        op,
    }
}

/// All four canonical scenarios.
pub fn all() -> Vec<Scenario> {
    vec![
        safe_with_slack(),
        delay_violates_tta(),
        partition_heals(),
        pause_models_local_gc(),
    ]
}

/// **safe-with-slack** — a cross-node garbage cycle collected while the
/// links misbehave *within* the TTA slack: 20 ms extra delay plus 10%
/// seeded frame loss. The bound holds, so the verdict must be clean
/// collection; and since both cycle members are garbage from 100 ms on,
/// no loss pattern can make a termination wrongful — the scenario is
/// seed-robust by construction.
pub fn safe_with_slack() -> Scenario {
    Scenario {
        name: "safe-with-slack",
        nodes: 2,
        dgc: conformance_dgc(),
        script: vec![
            at_ms(
                0,
                Op::Spawn {
                    tag: 0,
                    node: 0,
                    busy: true,
                },
            ),
            at_ms(
                0,
                Op::Spawn {
                    tag: 1,
                    node: 1,
                    busy: true,
                },
            ),
            at_ms(0, Op::AddRef { from: 0, to: 1 }),
            at_ms(0, Op::AddRef { from: 1, to: 0 }),
            at_ms(100, Op::SetIdle { tag: 0, idle: true }),
            at_ms(100, Op::SetIdle { tag: 1, idle: true }),
        ],
        profile: FaultProfile::none()
            .delay(
                None,
                None,
                Window::from_millis(200, 1500),
                Dur::from_millis(20),
            )
            .drop_frames(Some(0), Some(1), Window::from_millis(200, 1200), 100),
        horizon: Dur::from_secs(25),
        expect: Verdict::SAFE_AND_COMPLETE,
    }
}

/// **delay-violates-tta** — the §4.2 counterexample: a busy root keeps
/// referencing `v`, but its heartbeats cross a window of 600 ms extra
/// delay (2.4 × TTA). `v` hears silence longer than TTA, terminates,
/// and the oracle convicts the run: wrongful collection.
pub fn delay_violates_tta() -> Scenario {
    Scenario {
        name: "delay-violates-tta",
        nodes: 2,
        dgc: conformance_dgc(),
        script: vec![
            at_ms(
                0,
                Op::Spawn {
                    tag: 0,
                    node: 0,
                    busy: true, // stays busy: the root
                },
            ),
            at_ms(
                0,
                Op::Spawn {
                    tag: 1,
                    node: 1,
                    busy: true,
                },
            ),
            at_ms(0, Op::AddRef { from: 0, to: 1 }),
            at_ms(100, Op::SetIdle { tag: 1, idle: true }),
        ],
        profile: FaultProfile::none().delay(
            Some(0),
            Some(1),
            Window::from_millis(500, 1600),
            Dur::from_millis(600),
        ),
        horizon: Dur::from_secs(25),
        expect: Verdict::WRONGFUL,
    }
}

/// **partition-heals** — both directions between the nodes are severed
/// for 120 ms, then heal. The worst heartbeat gap is one TTB plus the
/// partition plus reconnect (≈ 220 ms), still under TTA = 250 ms with
/// the transport's backoff accounted for: the referenced activity `v`
/// must survive, and the garbage cycle that straddles the partition
/// must still be collected after the heal.
pub fn partition_heals() -> Scenario {
    Scenario {
        name: "partition-heals",
        nodes: 2,
        dgc: conformance_dgc(),
        script: vec![
            at_ms(
                0,
                Op::Spawn {
                    tag: 0,
                    node: 0,
                    busy: true, // the root, busy forever
                },
            ),
            at_ms(
                0,
                Op::Spawn {
                    tag: 1,
                    node: 1,
                    busy: true, // v: kept alive only by cross-node heartbeats
                },
            ),
            at_ms(
                0,
                Op::Spawn {
                    tag: 2,
                    node: 0,
                    busy: true,
                },
            ),
            at_ms(
                0,
                Op::Spawn {
                    tag: 3,
                    node: 1,
                    busy: true,
                },
            ),
            at_ms(0, Op::AddRef { from: 0, to: 1 }),
            at_ms(0, Op::AddRef { from: 2, to: 3 }),
            at_ms(0, Op::AddRef { from: 3, to: 2 }),
            at_ms(100, Op::SetIdle { tag: 1, idle: true }),
            at_ms(100, Op::SetIdle { tag: 2, idle: true }),
            at_ms(100, Op::SetIdle { tag: 3, idle: true }),
        ],
        profile: FaultProfile::none().partition_pair(0, 1, Window::from_millis(600, 720)),
        horizon: Dur::from_secs(25),
        expect: Verdict::SAFE_AND_COMPLETE,
    }
}

/// **pause-models-local-gc** — §4.2's other hazard: the *referencer's*
/// node stops the world for 700 ms (a long local-GC pause), sending no
/// heartbeats. 700 ms ≫ TTA, so the referenced activity times out while
/// genuinely live: wrongful collection, on both runtimes.
pub fn pause_models_local_gc() -> Scenario {
    Scenario {
        name: "pause-models-local-gc",
        nodes: 2,
        dgc: conformance_dgc(),
        script: vec![
            at_ms(
                0,
                Op::Spawn {
                    tag: 0,
                    node: 0,
                    busy: true, // busy root on the node that will pause
                },
            ),
            at_ms(
                0,
                Op::Spawn {
                    tag: 1,
                    node: 1,
                    busy: true,
                },
            ),
            at_ms(0, Op::AddRef { from: 0, to: 1 }),
            at_ms(100, Op::SetIdle { tag: 1, idle: true }),
        ],
        profile: FaultProfile::none().pause(0, Window::from_millis(600, 1300)),
        horizon: Dur::from_secs(25),
        expect: Verdict::WRONGFUL,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_scenario_is_statically_safe_and_sorted() {
        for s in all() {
            s.dgc
                .validate()
                .unwrap_or_else(|e| panic!("{}: unsafe static config: {e:?}", s.name));
            assert!(
                s.script.windows(2).all(|w| w[0].at <= w[1].at),
                "{}: script must be time-sorted",
                s.name
            );
            assert!(s.nodes >= 2, "{}: conformance needs a network", s.name);
        }
    }

    #[test]
    fn safe_scenarios_stay_inside_the_slack() {
        // TTA − 2·TTB − latency budget: what a fault may add without
        // breaking the bound. The two "safe" scenarios must fit; the
        // two "unsafe" ones must overshoot TTA itself.
        let dgc = conformance_dgc();
        let slack = Dur::from_nanos(
            dgc.tta.as_nanos() - 2 * dgc.ttb.as_nanos() - Dur::from_millis(4).as_nanos(),
        );
        let s = safe_with_slack();
        assert!(
            s.profile.worst_case_extra_delay() < slack,
            "{}: worst case {} ≥ slack {}",
            s.name,
            s.profile.worst_case_extra_delay(),
            slack
        );
        // The symmetric partition sums both directions in the global
        // worst case, but one message crosses only one of them: the
        // per-direction bound (the window width) is what must fit.
        let p = partition_heals();
        let width = p.profile.link_disruptions()[0].window;
        assert!(
            width.end.since(width.start) < slack,
            "{}: partition too wide",
            p.name
        );
        {
            let s = delay_violates_tta();
            assert!(s.profile.worst_case_extra_delay() > dgc.tta);
        }
        let pause = pause_models_local_gc();
        let p = &pause.profile.node_pauses()[0];
        assert!(p.window.end.since(p.window.start) > dgc.tta.saturating_mul(2));
    }
}
