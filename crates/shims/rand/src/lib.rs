//! Offline stand-in for the [`rand`](https://crates.io/crates/rand)
//! crate (0.9 method names).
//!
//! The build environment has no crates.io access, so this shim provides
//! the subset `dgc-simnet` uses: `rngs::StdRng`, [`SeedableRng`], and the
//! [`Rng`] methods `random`, `random_range`, `random_bool`. The generator
//! is **not** the upstream ChaCha12 — it is SplitMix64, which is more
//! than enough for the simulator's reproducible workload generation (the
//! repo's determinism properties only require same-seed ⇒ same-stream).

#![warn(missing_docs)]

use std::ops::Range;

/// Low-level 64-bit generator.
pub trait RngCore {
    /// Next raw 64 bits.
    fn next_u64(&mut self) -> u64;
}

/// Construction from seeds.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Values producible uniformly from raw bits (subset of upstream's
/// `StandardUniform` distribution).
pub trait Standard: Sized {
    /// Draws a uniform value.
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for bool {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Ranges samplable by [`Rng::random_range`].
pub trait SampleRange<T> {
    /// Draws a uniform value from the range.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as u128 - self.start as u128) as u64;
                // Debiased multiply-shift (Lemire); the retry loop keeps
                // the distribution exactly uniform.
                loop {
                    let x = rng.next_u64();
                    let m = (x as u128) * (span as u128);
                    let lo = m as u64;
                    if lo < span {
                        let threshold = span.wrapping_neg() % span;
                        if lo < threshold {
                            continue;
                        }
                    }
                    return self.start + ((m >> 64) as u64) as $t;
                }
            }
        }
    )*};
}

int_range!(u8, u16, u32, u64, usize);

impl SampleRange<f64> for Range<f64> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range");
        self.start + f64::draw(rng) * (self.end - self.start)
    }
}

/// High-level sampling methods (subset of upstream `Rng`).
pub trait Rng: RngCore {
    /// Uniform value of type `T`.
    fn random<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::draw(self)
    }

    /// Uniform value within `range`.
    fn random_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// Bernoulli trial with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        f64::draw(self) < p
    }
}

impl<R: RngCore> Rng for R {}

/// Named generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic generator (SplitMix64 core in this shim).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // SplitMix64 (Steele, Lea, Flood 2014).
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(1);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: u64 = r.random_range(10u64..20);
            assert!((10..20).contains(&x));
            let f: f64 = r.random_range(0.0..1.0);
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn bool_extremes() {
        let mut r = StdRng::seed_from_u64(3);
        assert!(!r.random_bool(0.0));
        assert!(r.random_bool(1.0));
    }

    #[test]
    fn small_ranges_hit_every_value() {
        let mut r = StdRng::seed_from_u64(5);
        let mut seen = [false; 5];
        for _ in 0..1000 {
            seen[r.random_range(0usize..5)] = true;
        }
        assert!(seen.iter().all(|s| *s));
    }
}
