//! # grid-dgc — facade crate
//!
//! Re-exports the whole workspace reproducing *"Garbage Collecting the
//! Grid: A Complete DGC for Activities"* (Caromel, Chazarain, Henrio —
//! Middleware 2007) under one roof:
//!
//! * [`simnet`] — deterministic discrete-event grid simulator (the
//!   Grid'5000 stand-in);
//! * [`activeobj`] — ProActive-style active-object middleware plus the
//!   simulation driver and the ground-truth liveness oracle;
//! * [`dgc`] — the paper's contribution: the complete (acyclic + cyclic)
//!   distributed garbage collector as a sans-io protocol core;
//! * [`membership`] — seed-node gossip directory: node records with
//!   incarnation numbers, anti-entropy join/leave/suspect/dead
//!   transitions, and the membership-event stream both runtimes feed
//!   into the collector's send-failure path;
//! * [`rmi`] — the lease-based reference-listing baseline (Java RMI
//!   style, acyclic only);
//! * [`workloads`] — NAS CG/EP/FT kernels, the torture test and the
//!   figure scenarios from the paper;
//! * [`rt_thread`] — a real-thread runtime driving the same protocol core
//!   with wall-clock timers;
//! * [`rt_net`] — a real TCP transport runtime: nodes on sockets,
//!   length-prefixed batched frames, reconnecting peer links, and a
//!   chaos proxy that replays fault profiles over live connections;
//! * [`conformance`] — the dual-runtime conformance harness: one fault
//!   scenario, one wrongful-collection-oracle verdict, checked on both
//!   the simulator and a chaos-proxied localhost cluster.
//!
//! See `examples/quickstart.rs` for a five-minute tour and the README
//! for the crate map and how to run the test/bench suites.

pub use dgc_activeobj as activeobj;
pub use dgc_conformance as conformance;
pub use dgc_core as dgc;
pub use dgc_membership as membership;
pub use dgc_rmi as rmi;
pub use dgc_rt_net as rt_net;
pub use dgc_rt_thread as rt_thread;
pub use dgc_simnet as simnet;
pub use dgc_workloads as workloads;
