//! Ablation — §7.1 dynamic TTB/TTA.
//!
//! The paper's first future-work item: let each activity adapt its
//! heartbeat — faster when garbage is suspected (an activity that is
//! idle, owns/anchors a clock and sees referencers agreeing), slower
//! otherwise. Our implementation halves the TTB on suspicion (bounded by
//! `min_ttb`) and relaxes geometrically back toward `max_ttb`; TTA is
//! validated against the worst-case TTB so the §3.1 formula still holds.
//! This ablation compares static and adaptive modes on idle rings.

use dgc_activeobj::collector::CollectorKind;
use dgc_activeobj::runtime::{Grid, GridConfig};
use dgc_bench::{mib, Table};
use dgc_core::config::{DgcConfig, TimingMode};
use dgc_core::units::Dur;
use dgc_simnet::time::{SimDuration, SimTime};
use dgc_simnet::topology::Topology;
use dgc_workloads::scenarios::ring;

fn run(timing: TimingMode) -> (f64, f64) {
    let cfg = DgcConfig::builder()
        .ttb(Dur::from_secs(30))
        .tta(Dur::from_secs(241)) // safe even for max_ttb = 120 s
        .max_comm(Dur::from_millis(500))
        .timing(timing)
        .build();
    cfg.validate().expect("safe config");
    let mut grid = Grid::new(
        GridConfig::new(Topology::single_site(8, SimDuration::from_millis(1)))
            .collector(CollectorKind::Complete(cfg))
            .seed(17),
    );
    let ids = ring(&mut grid, 12, 8);
    let deadline = SimTime::from_secs(60_000);
    while grid.now() < deadline && ids.iter().any(|id| grid.is_alive(*id)) {
        grid.run_for(SimDuration::from_secs(15));
    }
    assert!(ids.iter().all(|id| !grid.is_alive(*id)));
    assert!(grid.violations().is_empty());
    let last = grid
        .collected()
        .iter()
        .map(|c| c.at.as_secs_f64())
        .fold(0.0, f64::max);
    (last, mib(grid.traffic().total_bytes()))
}

fn main() {
    println!("=== Ablation: §7.1 static vs adaptive TTB (idle 12-ring) ===\n");
    let mut table = Table::new(vec!["Timing", "Collected at", "Traffic"]);
    let (static_at, static_mb) = run(TimingMode::Static);
    let adaptive = TimingMode::Adaptive {
        min_ttb: Dur::from_secs(5),
        max_ttb: Dur::from_secs(120),
    };
    let (adaptive_at, adaptive_mb) = run(adaptive);
    table.row(vec![
        "static 30 s (paper)".to_string(),
        format!("{static_at:.0} s"),
        format!("{static_mb:.2} MB"),
    ]);
    table.row(vec![
        "adaptive 5–120 s".to_string(),
        format!("{adaptive_at:.0} s"),
        format!("{adaptive_mb:.2} MB"),
    ]);
    table.print();
    println!(
        "\nAdaptive detection time is {:.0}% of static; once a consensus starts\n\
         forming, suspicion halves the TTB toward 5 s and the remaining rounds\n\
         run at the fast rate — the §7.1 motivation. Traffic rises accordingly.",
        adaptive_at / static_at * 100.0
    );
    assert!(
        adaptive_at < static_at,
        "suspicion-driven speed-up must beat the static heartbeat ({adaptive_at} vs {static_at})"
    );
}
