//! Outbound peer links: one queue + writer thread per remote node.
//!
//! A link owns the TCP connection **initiated** by this node toward a
//! peer. DGC messages travel in that direction (referencer → referenced,
//! the direction the application can already talk in, which is what
//! keeps the collector firewall-transparent); responses and failure
//! notifications ride back on the *accepting* side's reply writer (see
//! [`crate::node`]), never on a fresh reverse connection.
//!
//! Both directions share one queue-draining engine, [`BatchPump`],
//! which implements the transport behaviours the tentpole is about:
//!
//! * **Per-destination batching** — after the first queued item it
//!   lingers `batch_window`, then packs everything queued for this peer
//!   into shared [`Frame::Batch`]es (capped well under the frame size
//!   limit). At scale, the TTB sweep of a node with many activities
//!   referencing one remote node becomes a single frame instead of
//!   hundreds (the paper's fig. 8 bandwidth lever).
//! * **Reconnect-on-drop** — a broken connection is retried with
//!   exponential backoff while items keep queueing; after
//!   `fail_after_attempts` consecutive failures (connects *or* writes,
//!   so a peer that accepts and immediately closes still backs off)
//!   the queued DGC messages are surfaced to the local protocol as
//!   send failures so referencers drop edges to the unreachable node,
//!   exactly like a permanently failing RMI call. Backoff waits keep
//!   draining the queue channel, so shutdown never blocks on a sleep.

use std::collections::VecDeque;
use std::io::Write;
use std::net::{SocketAddr, TcpStream};
use std::sync::mpsc::{self, RecvTimeoutError};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crate::config::NetConfig;
use crate::frame::{encode_batch_frame, encode_frame, Frame, Item, PROTOCOL_VERSION};
use crate::node::{Event, SocketTracker};
use crate::stats::NetStats;

/// Queue bound: a peer that stays down long enough to accumulate this
/// many pending items starts shedding the oldest (they are periodic
/// heartbeats; the next TTB regenerates them anyway).
const MAX_PENDING: usize = 100_000;

/// Items per flushed frame, kept orders of magnitude under both
/// [`crate::frame::MAX_BATCH_ITEMS`] and [`crate::frame::MAX_FRAME_LEN`].
const MAX_ITEMS_PER_FRAME: usize = 4096;

/// The queue-draining half shared by the outbound writer and the reply
/// writer: blocks for work, lingers to coalesce, flushes in bounded
/// frames, and sheds overflow when the sink stalls.
struct BatchPump {
    rx: mpsc::Receiver<Item>,
    pending: VecDeque<Item>,
    config: NetConfig,
    stats: Arc<NetStats>,
    /// All senders dropped: the owning node is shutting down.
    closed: bool,
}

impl BatchPump {
    fn new(rx: mpsc::Receiver<Item>, config: NetConfig, stats: Arc<NetStats>) -> Self {
        BatchPump {
            rx,
            pending: VecDeque::new(),
            config,
            stats,
            closed: false,
        }
    }

    /// Blocks until there is something to send. `false` means the
    /// channel is closed and nothing is pending: time to exit.
    fn wait_for_work(&mut self) -> bool {
        if !self.pending.is_empty() {
            return true;
        }
        if self.closed {
            return false;
        }
        match self.rx.recv() {
            Ok(item) => {
                self.pending.push_back(item);
                true
            }
            Err(_) => {
                self.closed = true;
                false
            }
        }
    }

    /// After the first item, linger `batch_window` collecting co-due
    /// items, then drain whatever else is queued and shed overflow.
    fn gather(&mut self) {
        if self.config.batching && !self.config.batch_window.is_zero() {
            let deadline = Instant::now() + self.config.batch_window;
            while !self.closed {
                let left = deadline.saturating_duration_since(Instant::now());
                if left.is_zero() {
                    break;
                }
                match self.rx.recv_timeout(left) {
                    Ok(item) => self.pending.push_back(item),
                    Err(RecvTimeoutError::Timeout) => break,
                    Err(RecvTimeoutError::Disconnected) => self.closed = true,
                }
            }
        }
        while let Ok(item) = self.rx.try_recv() {
            self.pending.push_back(item);
        }
        while self.pending.len() > MAX_PENDING {
            self.pending.pop_front();
        }
    }

    /// Sleeps up to `d` while still accepting queued items, returning
    /// early (and fast) once the channel closes — an interruptible
    /// backoff, so a node shutting down never waits out a retry timer.
    fn idle(&mut self, d: Duration) {
        let deadline = Instant::now() + d;
        while !self.closed {
            let left = deadline.saturating_duration_since(Instant::now());
            if left.is_zero() {
                return;
            }
            match self.rx.recv_timeout(left) {
                Ok(item) => self.pending.push_back(item),
                Err(RecvTimeoutError::Timeout) => return,
                Err(RecvTimeoutError::Disconnected) => self.closed = true,
            }
        }
    }

    /// Writes everything pending to `stream` in bounded frames (one
    /// item per frame when batching is off). Items are drained only
    /// after their frame is written, so a failure keeps them for the
    /// retry — without cloning on the success path.
    fn flush_to(&mut self, stream: &mut TcpStream) -> std::io::Result<()> {
        while !self.pending.is_empty() {
            let n = if self.config.batching {
                self.pending.len().min(MAX_ITEMS_PER_FRAME)
            } else {
                1
            };
            let raw = encode_batch_frame(&self.pending.make_contiguous()[..n]);
            stream.write_all(&raw)?;
            self.stats.on_frame_sent(n as u64, raw.len() as u64);
            self.pending.drain(..n);
        }
        Ok(())
    }
}

/// Handle to an outbound link's queue and thread.
pub struct OutboundLink {
    tx: mpsc::Sender<Item>,
    handle: Option<JoinHandle<()>>,
}

impl OutboundLink {
    /// Spawns the writer thread for `peer_addr`.
    ///
    /// `loopback` feeds send-failure notifications back into the owning
    /// node's event loop when the peer proves unreachable; `tracker`
    /// owns the read-half sockets so node shutdown can unblock them.
    pub(crate) fn spawn(
        local_node: u32,
        peer_node: u32,
        peer_addr: SocketAddr,
        config: NetConfig,
        stats: Arc<NetStats>,
        loopback: mpsc::Sender<Event>,
        tracker: Arc<SocketTracker>,
    ) -> OutboundLink {
        let (tx, rx) = mpsc::channel();
        let worker = Writer {
            local_node,
            peer_node,
            peer_addr,
            config,
            stats: Arc::clone(&stats),
            loopback,
            tracker,
            pump: BatchPump::new(rx, config, stats),
            conn: None,
            failed_attempts: 0,
            ever_connected: false,
            terminal: false,
        };
        let handle = std::thread::Builder::new()
            .name(format!("dgc-net-{local_node}-to-{peer_node}"))
            .spawn(move || worker.run())
            .expect("spawn outbound link thread");
        OutboundLink {
            tx,
            handle: Some(handle),
        }
    }

    /// Queues `item` for the peer. Errors (thread gone during shutdown)
    /// are ignored — the item is a periodic protocol unit.
    pub fn send(&self, item: Item) {
        let _ = self.tx.send(item);
    }
}

impl Drop for OutboundLink {
    fn drop(&mut self) {
        // Closing the channel lets the writer flush and exit.
        let (dead_tx, _) = mpsc::channel();
        self.tx = dead_tx;
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

struct Writer {
    local_node: u32,
    peer_node: u32,
    peer_addr: SocketAddr,
    config: NetConfig,
    stats: Arc<NetStats>,
    loopback: mpsc::Sender<Event>,
    tracker: Arc<SocketTracker>,
    pump: BatchPump,
    conn: Option<TcpStream>,
    failed_attempts: u32,
    ever_connected: bool,
    /// Set once `fail_after_attempts` consecutive failures convicted
    /// the peer: the writer exits instead of retrying forever.
    terminal: bool,
}

impl Writer {
    fn run(mut self) {
        loop {
            if !self.pump.wait_for_work() {
                return; // owner gone, nothing pending
            }
            self.pump.gather();
            if self.conn.is_none() && !self.connect() {
                if self.terminal || self.pump.closed {
                    // Convicted as unreachable (or shutting down): the
                    // pending heartbeats were already surfaced as send
                    // failures; the writer's job is over.
                    return;
                }
                continue;
            }
            match self
                .pump
                .flush_to(self.conn.as_mut().expect("connection just ensured"))
            {
                // Only a completed flush proves the link works; a
                // successful connect alone must not reset the failure
                // count, or a peer that accepts and instantly closes
                // (e.g. version mismatch) would spin without backoff.
                Ok(()) => self.failed_attempts = 0,
                Err(_) => {
                    self.conn = None;
                    self.penalty();
                }
            }
            if self.terminal || (self.pump.closed && self.pump.pending.is_empty()) {
                return;
            }
        }
    }

    /// Returns true when a usable connection exists afterwards.
    fn connect(&mut self) -> bool {
        match TcpStream::connect_timeout(&self.peer_addr, Duration::from_millis(500)) {
            Ok(mut stream) => {
                let _ = stream.set_nodelay(true);
                // Backstop for peers that accept but stop reading: a
                // full send buffer must surface as an error, not block
                // this thread (and node shutdown) forever.
                let _ = stream.set_write_timeout(Some(Duration::from_secs(5)));
                let hello = encode_frame(&Frame::Hello {
                    node: self.local_node,
                    version: PROTOCOL_VERSION,
                });
                if stream.write_all(&hello).is_err() {
                    self.penalty();
                    return false;
                }
                self.stats.on_frame_sent(0, hello.len() as u64);
                if self.ever_connected {
                    self.stats.on_reconnect();
                }
                self.ever_connected = true;
                // Responses and send-failure notifications come back on
                // this same connection (the referenced node never opens
                // one toward us — §2.2 firewall transparency), so the
                // initiating side reads it too.
                if let Ok(rs) = stream.try_clone() {
                    crate::node::spawn_socket_reader(
                        self.local_node,
                        rs,
                        self.config,
                        self.loopback.clone(),
                        Arc::clone(&self.stats),
                        false,
                        Arc::clone(&self.tracker),
                    );
                }
                self.conn = Some(stream);
                true
            }
            Err(_) => {
                self.penalty();
                false
            }
        }
    }

    /// One failed connect or write: count it, back off (without
    /// blocking shutdown or the queue) — and at `fail_after_attempts`
    /// consecutive failures, go **terminal**: everything queued is
    /// surfaced as send failures, the node is told the peer is
    /// unreachable (`Event::PeerUnreachable` — membership's transport
    /// hook, or the direct `on_node_dead` verdict without membership),
    /// and the writer exits instead of retrying forever. The node
    /// re-establishes a link lazily if the peer's address is ever
    /// (re)announced.
    fn penalty(&mut self) {
        self.failed_attempts = self.failed_attempts.saturating_add(1);
        if self.failed_attempts >= self.config.fail_after_attempts {
            self.surface_send_failures();
            let _ = self.loopback.send(Event::PeerUnreachable {
                node: self.peer_node,
            });
            self.terminal = true;
            return;
        }
        let backoff = self
            .config
            .reconnect_base
            .saturating_mul(1u32 << self.failed_attempts.min(10))
            .min(self.config.reconnect_max);
        self.pump.idle(backoff);
    }

    /// Abandons everything queued for the unreachable peer, converting
    /// DGC messages into local send-failure events (the referencing
    /// activities must learn the edge is gone). Responses and relayed
    /// failure notifications have no local handler to notify, but their
    /// loss is still counted so the degraded link shows in the stats.
    fn surface_send_failures(&mut self) {
        let abandoned = self.pump.pending.len() as u64;
        for item in self.pump.pending.drain(..) {
            if let Item::Dgc { from, to, .. } = item {
                let _ = self.loopback.send(Event::Item(Item::SendFailure {
                    holder: from,
                    target: to,
                }));
            }
        }
        if abandoned > 0 {
            self.stats.on_send_failures(abandoned);
        }
    }
}

/// Spawns the batching writer for an **accepted** connection's reply
/// direction: responses and send-failure notifications travel back on
/// the socket the referencer's node opened, so no reverse connectivity
/// is ever required (NAT/firewall transparency, §2.2 of the paper).
pub fn spawn_reply_writer(
    local_node: u32,
    peer_node: u32,
    mut stream: TcpStream,
    config: NetConfig,
    stats: Arc<NetStats>,
) -> (mpsc::Sender<Item>, JoinHandle<()>) {
    let (tx, rx) = mpsc::channel::<Item>();
    let handle = std::thread::Builder::new()
        .name(format!("dgc-net-{local_node}-reply-{peer_node}"))
        .spawn(move || {
            let _ = stream.set_nodelay(true);
            let _ = stream.set_write_timeout(Some(Duration::from_secs(5)));
            let mut pump = BatchPump::new(rx, config, stats);
            loop {
                if !pump.wait_for_work() {
                    return;
                }
                pump.gather();
                if pump.flush_to(&mut stream).is_err() {
                    return; // reply link dead; peer will reconnect
                }
                if pump.closed && pump.pending.is_empty() {
                    return;
                }
            }
        })
        .expect("spawn reply writer thread");
    (tx, handle)
}
