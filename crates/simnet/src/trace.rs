//! Lightweight structured trace log.
//!
//! The simulator and the middleware record notable events (terminations,
//! consensus steps, clock bumps…) into an in-memory log that tests and
//! examples can inspect or print. Tracing is off by default and filtered
//! by level to keep large benchmarks allocation-free.

use std::fmt;

use crate::time::SimTime;

/// Verbosity of a trace record.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum TraceLevel {
    /// Nothing is recorded.
    Off,
    /// Life-cycle events: creations, terminations, consensus decisions.
    Info,
    /// Every protocol step: clock updates, parent adoption, message flow.
    Debug,
}

/// One recorded event.
#[derive(Debug, Clone)]
pub struct TraceRecord {
    /// When the event happened (simulated time).
    pub at: SimTime,
    /// Level it was recorded at.
    pub level: TraceLevel,
    /// Short category tag, e.g. `"terminate"`, `"clock-bump"`.
    pub tag: &'static str,
    /// Free-form details.
    pub detail: String,
}

impl fmt::Display for TraceRecord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] {:<14} {}", self.at, self.tag, self.detail)
    }
}

/// An append-only trace log with level filtering.
#[derive(Debug)]
pub struct TraceLog {
    level: TraceLevel,
    records: Vec<TraceRecord>,
}

impl TraceLog {
    /// Creates a log that records events at or below `level`.
    pub fn new(level: TraceLevel) -> Self {
        TraceLog {
            level,
            records: Vec::new(),
        }
    }

    /// A disabled log.
    pub fn off() -> Self {
        TraceLog::new(TraceLevel::Off)
    }

    /// Current filter level.
    pub fn level(&self) -> TraceLevel {
        self.level
    }

    /// True if records at `level` would be kept (callers can skip building
    /// the detail string otherwise).
    pub fn enabled(&self, level: TraceLevel) -> bool {
        level <= self.level && self.level != TraceLevel::Off
    }

    /// Records an event if the level passes the filter.
    pub fn record(&mut self, at: SimTime, level: TraceLevel, tag: &'static str, detail: String) {
        if self.enabled(level) {
            self.records.push(TraceRecord {
                at,
                level,
                tag,
                detail,
            });
        }
    }

    /// Convenience for `Info` records.
    pub fn info(&mut self, at: SimTime, tag: &'static str, detail: String) {
        self.record(at, TraceLevel::Info, tag, detail);
    }

    /// Convenience for `Debug` records.
    pub fn debug(&mut self, at: SimTime, tag: &'static str, detail: String) {
        self.record(at, TraceLevel::Debug, tag, detail);
    }

    /// All records so far, in order.
    pub fn records(&self) -> &[TraceRecord] {
        &self.records
    }

    /// Records whose tag equals `tag`.
    pub fn with_tag<'a>(&'a self, tag: &'a str) -> impl Iterator<Item = &'a TraceRecord> {
        self.records.iter().filter(move |r| r.tag == tag)
    }

    /// Discards all records (the filter level is kept).
    pub fn clear(&mut self) {
        self.records.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn off_records_nothing() {
        let mut log = TraceLog::off();
        log.info(SimTime::ZERO, "x", "y".into());
        log.debug(SimTime::ZERO, "x", "y".into());
        assert!(log.records().is_empty());
        assert!(!log.enabled(TraceLevel::Info));
    }

    #[test]
    fn info_filters_debug() {
        let mut log = TraceLog::new(TraceLevel::Info);
        log.info(SimTime::ZERO, "a", "1".into());
        log.debug(SimTime::ZERO, "b", "2".into());
        assert_eq!(log.records().len(), 1);
        assert_eq!(log.records()[0].tag, "a");
    }

    #[test]
    fn debug_records_everything() {
        let mut log = TraceLog::new(TraceLevel::Debug);
        log.info(SimTime::from_secs(1), "a", "1".into());
        log.debug(SimTime::from_secs(2), "b", "2".into());
        assert_eq!(log.records().len(), 2);
    }

    #[test]
    fn with_tag_filters() {
        let mut log = TraceLog::new(TraceLevel::Info);
        log.info(SimTime::ZERO, "terminate", "ao1".into());
        log.info(SimTime::ZERO, "clock-bump", "ao2".into());
        log.info(SimTime::ZERO, "terminate", "ao3".into());
        assert_eq!(log.with_tag("terminate").count(), 2);
    }

    #[test]
    fn clear_keeps_level() {
        let mut log = TraceLog::new(TraceLevel::Debug);
        log.info(SimTime::ZERO, "a", String::new());
        log.clear();
        assert!(log.records().is_empty());
        assert_eq!(log.level(), TraceLevel::Debug);
    }

    #[test]
    fn display_contains_tag_and_detail() {
        let r = TraceRecord {
            at: SimTime::from_secs(2),
            level: TraceLevel::Info,
            tag: "terminate",
            detail: "ao 7 (cyclic)".into(),
        };
        let s = r.to_string();
        assert!(s.contains("terminate"));
        assert!(s.contains("ao 7 (cyclic)"));
    }
}
