//! Grid topology: sites, processes (JVM-like address spaces) and link
//! latencies.
//!
//! The default preset reproduces the three-site Grid'5000 slice used in the
//! paper's evaluation (§5.1): 49 nodes in Bordeaux, 39 in Sophia, 40 in
//! Rennes, with the published round-trip latencies (intra-site 0.1–0.2 ms,
//! Rennes–Bordeaux 8 ms, Bordeaux–Sophia 10 ms, Rennes–Sophia 20 ms).

use std::fmt;

use crate::time::SimDuration;

/// Identifier of a process (an address space hosting many active objects).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ProcId(pub u32);

/// Identifier of a site (a cluster of processes with low mutual latency).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SiteId(pub u16);

impl fmt::Display for ProcId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

impl fmt::Display for SiteId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}

/// A named site with a process count and an intra-site one-way latency.
#[derive(Debug, Clone)]
pub struct Site {
    /// Human-readable name (e.g. `"bordeaux"`).
    pub name: String,
    /// Number of processes hosted at this site.
    pub procs: u32,
    /// One-way latency between two distinct processes of this site.
    pub local_latency: SimDuration,
}

/// Static description of the grid: sites plus an inter-site latency matrix.
#[derive(Debug, Clone)]
pub struct Topology {
    sites: Vec<Site>,
    /// One-way latency between sites, indexed `[from][to]`.
    inter: Vec<Vec<SimDuration>>,
    /// Cumulative process-count offsets per site (for ProcId -> SiteId).
    offsets: Vec<u32>,
    total_procs: u32,
}

impl Topology {
    /// Builds a topology from sites and a symmetric inter-site one-way
    /// latency matrix.
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not `sites.len() × sites.len()` or if there
    /// are no processes at all.
    pub fn new(sites: Vec<Site>, inter_site_latency: Vec<Vec<SimDuration>>) -> Self {
        assert!(!sites.is_empty(), "topology needs at least one site");
        assert_eq!(inter_site_latency.len(), sites.len(), "latency matrix rows");
        for row in &inter_site_latency {
            assert_eq!(row.len(), sites.len(), "latency matrix columns");
        }
        let mut offsets = Vec::with_capacity(sites.len());
        let mut total = 0u32;
        for s in &sites {
            offsets.push(total);
            total = total.checked_add(s.procs).expect("too many processes");
        }
        assert!(total > 0, "topology needs at least one process");
        Topology {
            sites,
            inter: inter_site_latency,
            offsets,
            total_procs: total,
        }
    }

    /// A single site with `procs` processes and a uniform latency between
    /// them. Convenient for unit tests and small experiments.
    pub fn single_site(procs: u32, latency: SimDuration) -> Self {
        Topology::new(
            vec![Site {
                name: "local".to_owned(),
                procs,
                local_latency: latency,
            }],
            vec![vec![SimDuration::ZERO]],
        )
    }

    /// The Grid'5000 slice of the paper (§5.1): Bordeaux (49), Sophia (39),
    /// Rennes (40). Latencies are one-way, i.e. half the published RTTs.
    pub fn grid5000() -> Self {
        let ms = |x: u64| SimDuration::from_micros(x * 500); // half-RTT in ms
        let us = SimDuration::from_micros;
        Topology::new(
            vec![
                Site {
                    name: "bordeaux".to_owned(),
                    procs: 49,
                    local_latency: us(100),
                },
                Site {
                    name: "sophia".to_owned(),
                    procs: 39,
                    local_latency: us(50),
                },
                Site {
                    name: "rennes".to_owned(),
                    procs: 40,
                    local_latency: us(50),
                },
            ],
            vec![
                // bordeaux   sophia    rennes
                vec![us(100), ms(10), ms(8)], // bordeaux
                vec![ms(10), us(50), ms(20)], // sophia
                vec![ms(8), ms(20), us(50)],  // rennes
            ],
        )
    }

    /// A scaled-down Grid'5000-like topology with `procs_per_site` processes
    /// on each of the three sites (for tests and quick benchmarks).
    pub fn grid5000_scaled(procs_per_site: u32) -> Self {
        let mut t = Topology::grid5000();
        for s in &mut t.sites {
            s.procs = procs_per_site;
        }
        Topology::new(t.sites, t.inter)
    }

    /// Total number of processes.
    pub fn procs(&self) -> u32 {
        self.total_procs
    }

    /// Iterator over all process ids.
    pub fn proc_ids(&self) -> impl Iterator<Item = ProcId> {
        (0..self.total_procs).map(ProcId)
    }

    /// The sites of this topology.
    pub fn sites(&self) -> &[Site] {
        &self.sites
    }

    /// Site hosting a given process.
    ///
    /// # Panics
    ///
    /// Panics if `proc` is out of range.
    pub fn site_of(&self, proc: ProcId) -> SiteId {
        assert!(proc.0 < self.total_procs, "process {proc} out of range");
        // offsets is sorted; find the last offset <= proc.0.
        let idx = match self.offsets.binary_search(&proc.0) {
            Ok(i) => i,
            Err(i) => i - 1,
        };
        SiteId(idx as u16)
    }

    /// One-way network latency between two processes. Zero for a process
    /// talking to itself (intra-JVM reference passing).
    pub fn latency(&self, from: ProcId, to: ProcId) -> SimDuration {
        if from == to {
            return SimDuration::ZERO;
        }
        let sf = self.site_of(from);
        let st = self.site_of(to);
        if sf == st {
            self.sites[sf.0 as usize].local_latency
        } else {
            self.inter[sf.0 as usize][st.0 as usize]
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid5000_matches_paper() {
        let t = Topology::grid5000();
        assert_eq!(t.procs(), 128);
        assert_eq!(t.sites().len(), 3);
        assert_eq!(t.sites()[0].procs, 49);
        assert_eq!(t.sites()[1].procs, 39);
        assert_eq!(t.sites()[2].procs, 40);
        // bordeaux <-> sophia RTT 10ms => one-way 5ms
        let l = t.latency(ProcId(0), ProcId(49));
        assert_eq!(l, SimDuration::from_micros(5_000));
        // rennes <-> sophia RTT 20ms => one-way 10ms
        let l = t.latency(ProcId(88), ProcId(49));
        assert_eq!(l, SimDuration::from_micros(10_000));
        // rennes <-> bordeaux RTT 8ms => one-way 4ms
        let l = t.latency(ProcId(88), ProcId(0));
        assert_eq!(l, SimDuration::from_micros(4_000));
    }

    #[test]
    fn site_of_respects_offsets() {
        let t = Topology::grid5000();
        assert_eq!(t.site_of(ProcId(0)), SiteId(0));
        assert_eq!(t.site_of(ProcId(48)), SiteId(0));
        assert_eq!(t.site_of(ProcId(49)), SiteId(1));
        assert_eq!(t.site_of(ProcId(87)), SiteId(1));
        assert_eq!(t.site_of(ProcId(88)), SiteId(2));
        assert_eq!(t.site_of(ProcId(127)), SiteId(2));
    }

    #[test]
    fn self_latency_is_zero() {
        let t = Topology::grid5000();
        assert_eq!(t.latency(ProcId(5), ProcId(5)), SimDuration::ZERO);
    }

    #[test]
    fn intra_site_uses_local_latency() {
        let t = Topology::grid5000();
        assert_eq!(
            t.latency(ProcId(0), ProcId(1)),
            SimDuration::from_micros(100)
        );
        assert_eq!(
            t.latency(ProcId(50), ProcId(51)),
            SimDuration::from_micros(50)
        );
    }

    #[test]
    fn single_site_topology() {
        let t = Topology::single_site(4, SimDuration::from_millis(1));
        assert_eq!(t.procs(), 4);
        assert_eq!(t.latency(ProcId(0), ProcId(3)), SimDuration::from_millis(1));
        assert_eq!(t.proc_ids().count(), 4);
    }

    #[test]
    fn latency_is_symmetric() {
        let t = Topology::grid5000();
        for a in [0u32, 10, 49, 60, 88, 127] {
            for b in [0u32, 10, 49, 60, 88, 127] {
                assert_eq!(
                    t.latency(ProcId(a), ProcId(b)),
                    t.latency(ProcId(b), ProcId(a))
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn site_of_out_of_range_panics() {
        Topology::grid5000().site_of(ProcId(128));
    }

    #[test]
    fn scaled_topology() {
        let t = Topology::grid5000_scaled(2);
        assert_eq!(t.procs(), 6);
        assert_eq!(t.site_of(ProcId(2)), SiteId(1));
    }
}
