//! Offline stand-in for the
//! [`proptest`](https://crates.io/crates/proptest) crate.
//!
//! The build environment has no crates.io access, so this shim
//! re-implements the subset of the proptest API the workspace's property
//! tests use: the [`Strategy`] trait with `prop_map`/`prop_flat_map`,
//! `any::<T>()`, [`Just`], tuple strategies, integer-range strategies,
//! [`collection::vec`], [`option::of`], the [`proptest!`] macro with
//! `#![proptest_config]`, and `prop_assert!`/`prop_assert_eq!`.
//!
//! Differences from upstream, by design:
//!
//! * **No shrinking.** A failing case reports its generated inputs and
//!   the case seed; re-running reproduces it exactly (generation is
//!   deterministic per test name and case index).
//! * **Default case count is 48** (upstream: 256), keeping the offline
//!   CI budget sane; override per-block with `proptest_config` or
//!   globally with the `PROPTEST_CASES` environment variable.

#![warn(missing_docs)]

pub mod strategy;
pub mod test_runner;

/// Strategies over collections.
pub mod collection {
    use crate::strategy::{SizeRange, Strategy, VecStrategy};

    /// Strategy producing a `Vec` whose elements come from `element` and
    /// whose length is drawn from `size` (a fixed `usize` or a range).
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

/// Strategies over `Option`.
pub mod option {
    use crate::strategy::{OptionStrategy, Strategy};

    /// Strategy producing `None` for roughly a quarter of cases and
    /// `Some` of the inner strategy otherwise.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }
}

/// The common imports property tests start from.
pub mod prelude {
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Asserts a condition inside a [`proptest!`] case, failing the case
/// (with its inputs reported) rather than panicking outright.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!("assertion failed: {}", ::std::stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!($($fmt)+),
            ));
        }
    };
}

/// Asserts equality inside a [`proptest!`] case.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if *l != *r {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!(
                    "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                    ::std::stringify!($left),
                    ::std::stringify!($right),
                    l,
                    r
                ),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if *l != *r {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!(
                    "{}\n  left: {:?}\n right: {:?}",
                    ::std::format!($($fmt)+),
                    l,
                    r
                ),
            ));
        }
    }};
}

/// Asserts inequality inside a [`proptest!`] case.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!(
                    "assertion failed: `{} != {}`\n  both: {:?}",
                    ::std::stringify!($left),
                    ::std::stringify!($right),
                    l
                ),
            ));
        }
    }};
}

/// Declares property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` that runs the body over generated inputs.
#[macro_export]
macro_rules! proptest {
    (@munch ($config:expr)
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $config;
            let cases = $crate::test_runner::effective_cases(config.cases);
            let test_path = ::std::concat!(::std::module_path!(), "::", ::std::stringify!($name));
            for case in 0..cases {
                let mut runner_rng = $crate::test_runner::TestRng::for_case(test_path, case);
                $(
                    let $arg = $crate::strategy::Strategy::generate(&($strat), &mut runner_rng);
                )*
                let inputs = ::std::format!("{:#?}", ($(&$arg,)*));
                let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| { $body ::std::result::Result::Ok(()) })();
                if let ::std::result::Result::Err(e) = outcome {
                    ::std::panic!(
                        "proptest case {case}/{cases} of `{}` failed: {e}\ninputs: {inputs}\n(shim runner: no shrinking; rerun reproduces this case deterministically)",
                        test_path
                    );
                }
            }
        }
        $crate::proptest!(@munch ($config) $($rest)*);
    };
    (@munch ($config:expr)) => {};
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@munch ($config) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@munch ($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}
