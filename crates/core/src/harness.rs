//! In-memory protocol harness.
//!
//! Drives a set of [`DgcState`]s over a loss-less, fixed-latency, FIFO
//! in-memory network with manually advanced time. This is *not* the full
//! middleware (no request queues, no futures, no local GC) — it exists so
//! that protocol-level behaviours (the figures of the paper, liveness
//! bounds, races) can be tested precisely and quickly, both here and in
//! the property-based suites.
//!
//! The harness owns idleness: tests declare objects idle or busy, create
//! and drop reference edges, and step simulated time; the harness ticks
//! every endpoint at its own TTB phase, ships messages and responses
//! after `latency`, and records terminations.

use std::collections::BTreeMap;
use std::collections::VecDeque;

use crate::config::DgcConfig;
use crate::id::AoId;
use crate::message::{Action, DgcMessage, DgcResponse, TerminateReason};
use crate::protocol::DgcState;
use crate::units::{Dur, Time};

/// A recorded termination.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Termination {
    /// Who terminated.
    pub id: AoId,
    /// Why.
    pub reason: TerminateReason,
    /// When.
    pub at: Time,
}

enum Wire {
    Message {
        from: AoId,
        to: AoId,
        message: DgcMessage,
    },
    Response {
        from: AoId,
        to: AoId,
        response: DgcResponse,
    },
}

struct Endpoint {
    state: DgcState,
    idle: bool,
    next_tick: Time,
}

/// Deterministic multi-endpoint protocol driver.
pub struct Harness {
    now: Time,
    latency: Dur,
    endpoints: BTreeMap<AoId, Endpoint>,
    in_flight: VecDeque<(Time, Wire)>,
    terminations: Vec<Termination>,
    next_node: u32,
}

impl Harness {
    /// Creates a harness whose links all have the given one-way latency.
    pub fn new(latency: Dur) -> Self {
        Harness {
            now: Time::ZERO,
            latency,
            endpoints: BTreeMap::new(),
            in_flight: VecDeque::new(),
            terminations: Vec::new(),
            next_node: 0,
        }
    }

    /// Current simulated time.
    pub fn now(&self) -> Time {
        self.now
    }

    /// Adds an endpoint with `config`, initially **busy** (tests flip it
    /// idle explicitly so the busy→idle bump is exercised like in the
    /// real middleware). Returns its id.
    pub fn add(&mut self, config: DgcConfig) -> AoId {
        let id = AoId::new(self.next_node, 0);
        self.next_node += 1;
        let first_tick = self.now + config.ttb;
        self.endpoints.insert(
            id,
            Endpoint {
                state: DgcState::new(id, self.now, config),
                idle: false,
                next_tick: first_tick,
            },
        );
        id
    }

    /// Adds `n` endpoints with the same config.
    pub fn add_many(&mut self, n: usize, config: DgcConfig) -> Vec<AoId> {
        (0..n).map(|_| self.add(config)).collect()
    }

    /// Declares `id` idle or busy; a busy→idle transition bumps the
    /// activity clock exactly as the middleware would.
    pub fn set_idle(&mut self, id: AoId, idle: bool) {
        let now = self.now;
        let ep = self.endpoints.get_mut(&id).expect("unknown endpoint");
        if idle && !ep.idle {
            ep.state.on_became_idle(now);
        }
        ep.idle = idle;
    }

    /// True if `id` is currently declared idle.
    pub fn is_idle(&self, id: AoId) -> bool {
        self.endpoints.get(&id).map(|e| e.idle).unwrap_or(false)
    }

    /// Creates the reference edge `from → to` (stub deserialization).
    pub fn add_ref(&mut self, from: AoId, to: AoId) {
        self.endpoints
            .get_mut(&from)
            .expect("unknown endpoint")
            .state
            .on_stub_deserialized(to);
    }

    /// Removes the reference edge `from → to` (all stubs collected).
    pub fn drop_ref(&mut self, from: AoId, to: AoId) {
        self.endpoints
            .get_mut(&from)
            .expect("unknown endpoint")
            .state
            .on_stubs_collected(to);
    }

    /// Immutable view of an endpoint's protocol state.
    pub fn state(&self, id: AoId) -> &DgcState {
        &self.endpoints.get(&id).expect("unknown endpoint").state
    }

    /// True if `id` is still alive (present and not dead).
    pub fn alive(&self, id: AoId) -> bool {
        self.endpoints.get(&id).is_some_and(|e| !e.state.is_dead())
    }

    /// Number of endpoints still alive.
    pub fn alive_count(&self) -> usize {
        self.endpoints
            .values()
            .filter(|e| !e.state.is_dead())
            .count()
    }

    /// All recorded terminations, in order.
    pub fn terminations(&self) -> &[Termination] {
        &self.terminations
    }

    /// Advances simulated time to `deadline`, processing deliveries and
    /// ticks in timestamp order (FIFO per sender thanks to queue order).
    pub fn run_until(&mut self, deadline: Time) {
        loop {
            // Earliest pending delivery or tick.
            let next_delivery = self.in_flight.front().map(|(t, _)| *t);
            let next_tick = self
                .endpoints
                .values()
                .filter(|e| !e.state.is_dead())
                .map(|e| e.next_tick)
                .min();
            let next = match (next_delivery, next_tick) {
                (None, None) => break,
                (Some(d), None) => d,
                (None, Some(t)) => t,
                (Some(d), Some(t)) => d.min(t),
            };
            if next > deadline {
                break;
            }
            self.now = next;
            if next_delivery == Some(next) {
                let (_, wire) = self.in_flight.pop_front().expect("non-empty");
                self.deliver(wire);
            } else {
                self.tick_due();
            }
        }
        self.now = self.now.max(deadline);
    }

    /// Advances time by `d`.
    pub fn run_for(&mut self, d: Dur) {
        self.run_until(self.now + d);
    }

    fn tick_due(&mut self) {
        let due: Vec<AoId> = self
            .endpoints
            .iter()
            .filter(|(_, e)| !e.state.is_dead() && e.next_tick <= self.now)
            .map(|(id, _)| *id)
            .collect();
        for id in due {
            let (idle, actions, period) = {
                let ep = self.endpoints.get_mut(&id).expect("exists");
                let idle = ep.idle;
                let actions = ep.state.on_tick(self.now, idle);
                let period = ep.state.current_ttb();
                ep.next_tick = self.now + period;
                (idle, actions, period)
            };
            let _ = (idle, period);
            self.apply_actions(id, actions);
        }
    }

    fn deliver(&mut self, wire: Wire) {
        match wire {
            Wire::Message { from, to, message } => {
                let actions = match self.endpoints.get_mut(&to) {
                    Some(ep) if !ep.state.is_dead() => ep.state.on_message(self.now, &message),
                    _ => {
                        // Target terminated: sender observes a failure.
                        if let Some(sender) = self.endpoints.get_mut(&from) {
                            sender.state.on_send_failure(to);
                        }
                        return;
                    }
                };
                self.apply_actions(to, actions);
            }
            Wire::Response { from, to, response } => {
                let Some(ep) = self.endpoints.get_mut(&to) else {
                    return;
                };
                if ep.state.is_dead() {
                    return;
                }
                let idle = ep.idle;
                let actions = ep.state.on_response(self.now, from, &response, idle);
                self.apply_actions(to, actions);
            }
        }
    }

    fn apply_actions(&mut self, who: AoId, actions: Vec<Action>) {
        for action in actions {
            match action {
                Action::SendMessage { to, message } => {
                    self.in_flight.push_back((
                        self.now + self.latency,
                        Wire::Message {
                            from: who,
                            to,
                            message,
                        },
                    ));
                }
                Action::SendResponse { to, response } => {
                    self.in_flight.push_back((
                        self.now + self.latency,
                        Wire::Response {
                            from: who,
                            to,
                            response,
                        },
                    ));
                }
                Action::Terminate { reason } => {
                    self.terminations.push(Termination {
                        id: who,
                        reason,
                        at: self.now,
                    });
                }
            }
        }
        // Keep the queue sorted by delivery time; pushes use now+latency
        // with constant latency so it already is, but ticks at different
        // phases can interleave — enforce it for safety.
        let mut v: Vec<_> = std::mem::take(&mut self.in_flight).into();
        v.sort_by_key(|(t, _)| *t);
        self.in_flight = v.into();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> DgcConfig {
        DgcConfig::builder()
            .ttb(Dur::from_secs(30))
            .tta(Dur::from_secs(61))
            .max_comm(Dur::from_millis(500))
            .build()
    }

    fn lat() -> Dur {
        Dur::from_millis(10)
    }

    #[test]
    fn lone_idle_object_dies_acyclically() {
        let mut h = Harness::new(lat());
        let a = h.add(cfg());
        h.set_idle(a, true);
        h.run_for(Dur::from_secs(200));
        assert!(!h.alive(a));
        assert_eq!(h.terminations().len(), 1);
        assert_eq!(h.terminations()[0].reason, TerminateReason::Acyclic);
    }

    #[test]
    fn heartbeats_keep_referenced_object_alive() {
        let mut h = Harness::new(lat());
        let a = h.add(cfg()); // busy root
        let b = h.add(cfg());
        h.add_ref(a, b);
        h.set_idle(b, true);
        h.run_for(Dur::from_secs(400));
        assert!(h.alive(b), "b hears from a every TTB");
        assert!(h.alive(a), "a is busy");
    }

    #[test]
    fn dropping_the_last_reference_collects_the_target() {
        let mut h = Harness::new(lat());
        let a = h.add(cfg());
        let b = h.add(cfg());
        h.add_ref(a, b);
        h.set_idle(b, true);
        h.run_for(Dur::from_secs(100));
        assert!(h.alive(b));
        h.drop_ref(a, b);
        h.run_for(Dur::from_secs(200));
        assert!(!h.alive(b), "silence for TTA collects b");
        assert!(h.alive(a));
    }

    #[test]
    fn two_cycle_is_collected() {
        let mut h = Harness::new(lat());
        let a = h.add(cfg());
        let b = h.add(cfg());
        h.add_ref(a, b);
        h.add_ref(b, a);
        h.set_idle(a, true);
        h.set_idle(b, true);
        h.run_for(Dur::from_secs(600));
        assert!(!h.alive(a) && !h.alive(b), "idle 2-cycle is garbage");
        assert!(h.terminations().iter().any(|t| t.reason.is_cyclic()));
    }

    #[test]
    fn cycle_with_busy_member_survives() {
        let mut h = Harness::new(lat());
        let a = h.add(cfg());
        let b = h.add(cfg());
        let c = h.add(cfg());
        h.add_ref(a, b);
        h.add_ref(b, c);
        h.add_ref(c, a);
        h.set_idle(a, true);
        h.set_idle(b, true);
        // c stays busy.
        h.run_for(Dur::from_secs(1000));
        assert!(h.alive(a) && h.alive(b) && h.alive(c));
    }

    #[test]
    fn busy_member_becoming_idle_releases_the_cycle() {
        let mut h = Harness::new(lat());
        let ids = h.add_many(3, cfg());
        for w in 0..3 {
            h.add_ref(ids[w], ids[(w + 1) % 3]);
        }
        h.set_idle(ids[0], true);
        h.set_idle(ids[1], true);
        h.run_for(Dur::from_secs(500));
        assert_eq!(h.alive_count(), 3);
        h.set_idle(ids[2], true);
        h.run_for(Dur::from_secs(800));
        assert_eq!(h.alive_count(), 0);
    }
}
