//! Integration tests of the real-thread runtime: the identical sans-io
//! protocol core under true concurrency and wall-clock timers.

use std::time::Duration;

use grid_dgc::dgc::config::DgcConfig;
use grid_dgc::dgc::units::Dur;
use grid_dgc::dgc::TerminateReason;
use grid_dgc::rt_thread::ThreadGrid;

fn cfg() -> DgcConfig {
    DgcConfig::builder()
        .ttb(Dur::from_millis(30))
        .tta(Dur::from_millis(100))
        .max_comm(Dur::from_millis(30))
        .build()
}

#[test]
fn mixed_graph_converges_under_threads() {
    // chain → ring, plus an isolated node: everything garbage.
    let grid = ThreadGrid::new(4, cfg());
    let chain: Vec<_> = (0..3).map(|i| grid.add_activity(i)).collect();
    let ring: Vec<_> = (0..3).map(|i| grid.add_activity((i + 1) & 3)).collect();
    let lone = grid.add_activity(0);
    grid.add_ref(chain[0], chain[1]);
    grid.add_ref(chain[1], chain[2]);
    grid.add_ref(chain[2], ring[0]);
    for w in 0..3 {
        grid.add_ref(ring[w], ring[(w + 1) % 3]);
    }
    for id in chain.iter().chain(&ring).chain([&lone]) {
        grid.set_idle(*id, true);
    }
    let total = chain.len() + ring.len() + 1;
    assert!(
        grid.wait_until(Duration::from_secs(20), |t| t.len() == total),
        "everything is garbage; got {:?}",
        grid.terminated()
    );
    grid.shutdown();
}

#[test]
fn live_subgraph_survives_thread_scheduling_noise() {
    let grid = ThreadGrid::new(4, cfg());
    let root = grid.add_activity(0); // never set idle: a root
    let kept: Vec<_> = (1..4).map(|i| grid.add_activity(i)).collect();
    grid.add_ref(root, kept[0]);
    grid.add_ref(kept[0], kept[1]);
    grid.add_ref(kept[1], kept[2]);
    grid.add_ref(kept[2], kept[0]); // a cycle, but reachable from root
    for id in &kept {
        grid.set_idle(*id, true);
    }
    std::thread::sleep(Duration::from_millis(800));
    assert!(
        grid.terminated().is_empty(),
        "nothing may die: {:?}",
        grid.terminated()
    );
    // Cut the root's edge: now the cycle is garbage.
    grid.drop_ref(root, kept[0]);
    assert!(grid.wait_until(Duration::from_secs(20), |t| t.len() == kept.len()));
    grid.shutdown();
}

#[test]
fn acyclic_and_cyclic_reasons_both_appear() {
    let grid = ThreadGrid::new(2, cfg());
    let lone = grid.add_activity(0);
    let a = grid.add_activity(0);
    let b = grid.add_activity(1);
    grid.add_ref(a, b);
    grid.add_ref(b, a);
    grid.set_idle(lone, true);
    grid.set_idle(a, true);
    grid.set_idle(b, true);
    assert!(grid.wait_until(Duration::from_secs(20), |t| t.len() == 3));
    let reasons: Vec<TerminateReason> = grid.terminated().iter().map(|t| t.reason).collect();
    assert!(reasons.contains(&TerminateReason::Acyclic));
    assert!(reasons.iter().any(|r| r.is_cyclic()));
    grid.shutdown();
}

#[test]
fn many_activities_per_thread() {
    // 4 threads × 8 activities wired as one big ring: one consensus must
    // sweep all 32.
    let grid = ThreadGrid::new(4, cfg());
    let ids: Vec<_> = (0..32).map(|i| grid.add_activity(i % 4)).collect();
    for w in 0..32 {
        grid.add_ref(ids[w], ids[(w + 1) % 32]);
    }
    for id in &ids {
        grid.set_idle(*id, true);
    }
    assert!(
        grid.wait_until(Duration::from_secs(60), |t| t.len() == 32),
        "ring of 32 across 4 threads: {:?} collected",
        grid.terminated().len()
    );
    grid.shutdown();
}
