//! The socket-facing lease driver: Birrell-style reference listing as
//! **application traffic**.
//!
//! The simulator hosts [`RmiEndpoint`]s natively and meters their calls
//! as a dedicated traffic class. On the real transport the baseline
//! behaves like what it models — Java RMI's DGC, whose `dirty`/`clean`
//! calls are ordinary remote invocations: this driver turns endpoint
//! actions into [`LeasePacket`]s (opaque call/reply payloads built by
//! [`crate::wire`]'s lease codec) for `dgc-rt-net`'s
//! `NetNode::send_app`, and consumes the packets the peer node
//! delivers. It is sans-io like the engines in `dgc-core` and
//! `dgc-membership`: the runtime decides when to tick and how packets
//! travel, so the same driver runs over the simulator, a localhost TCP
//! cluster, or a unit test's in-memory loop.
//!
//! One driver instance manages the endpoints of **one node** (one
//! address space); a deployment runs one per node and lets the
//! transport carry the packets between them.

use std::collections::BTreeMap;

use dgc_core::id::AoId;
use dgc_core::units::Time;
use dgc_core::wire::DecodeError;

use crate::endpoint::{RmiAction, RmiConfig, RmiEndpoint, RmiMessage};
use crate::wire::{decode_call, decode_reply, encode_call, encode_reply, LeaseCall, LeaseReply};

/// One lease call or reply, shaped for the application plane: exactly
/// the arguments of `NetNode::send_app` / the fields of a delivered
/// app unit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LeasePacket {
    /// Sending activity.
    pub from: AoId,
    /// Destination activity.
    pub to: AoId,
    /// True for a reply payload (travels the reply socket).
    pub reply: bool,
    /// The encoded [`LeaseCall`] or [`LeaseReply`].
    pub payload: Vec<u8>,
}

/// Traffic counters of one driver, mirroring the §5 accounting: first
/// registrations, renewals and releases are distinguishable.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LeaseStats {
    /// First `dirty` calls shipped.
    pub dirty_sent: u64,
    /// Renewal calls shipped.
    pub renew_sent: u64,
    /// `clean` calls shipped.
    pub clean_sent: u64,
    /// Grant replies received (our dirties/renews acknowledged).
    pub granted_received: u64,
    /// Release replies received (our cleans acknowledged).
    pub released_received: u64,
    /// Payloads that failed to decode (corrupt or misrouted).
    pub decode_errors: u64,
}

/// Per-node lease driver: hosts [`RmiEndpoint`]s, speaks
/// [`LeasePacket`]s.
#[derive(Debug)]
pub struct LeaseDriver {
    config: RmiConfig,
    endpoints: BTreeMap<AoId, RmiEndpoint>,
    idle: BTreeMap<AoId, bool>,
    terminated: Vec<AoId>,
    stats: LeaseStats,
}

impl LeaseDriver {
    /// An empty driver for one node's endpoints.
    pub fn new(config: RmiConfig) -> LeaseDriver {
        LeaseDriver {
            config,
            endpoints: BTreeMap::new(),
            idle: BTreeMap::new(),
            terminated: Vec::new(),
            stats: LeaseStats::default(),
        }
    }

    /// Hosts the endpoint for `id` (initially busy, like a fresh
    /// activity).
    pub fn add_endpoint(&mut self, id: AoId, now: Time) {
        self.endpoints
            .insert(id, RmiEndpoint::new(id, now, self.config));
        self.idle.insert(id, false);
    }

    /// Marks `id` idle or busy; only idle endpoints with no lease
    /// holders are ever collected.
    pub fn set_idle(&mut self, id: AoId, idle: bool) {
        if let Some(flag) = self.idle.get_mut(&id) {
            *flag = idle;
        }
    }

    /// `holder` (hosted here) gained a reference to `target`: ships the
    /// immediate first `dirty`.
    pub fn add_ref(&mut self, now: Time, holder: AoId, target: AoId) -> Vec<LeasePacket> {
        let Some(ep) = self.endpoints.get_mut(&holder) else {
            return Vec::new();
        };
        let actions = ep.on_stub_deserialized(now, target);
        self.realize(holder, actions, CallKind::Dirty)
    }

    /// `holder` dropped its last stub for `target`: ships the `clean`.
    pub fn drop_ref(&mut self, holder: AoId, target: AoId) -> Vec<LeasePacket> {
        let Some(ep) = self.endpoints.get_mut(&holder) else {
            return Vec::new();
        };
        let actions = ep.on_stubs_collected(target);
        self.realize(holder, actions, CallKind::Clean)
    }

    /// Periodic driver: renewals at half-lease (client role), lease
    /// expiry and idle-collection (server role). Call it at least a few
    /// times per lease period.
    pub fn tick(&mut self, now: Time) -> Vec<LeasePacket> {
        let ids: Vec<AoId> = self.endpoints.keys().copied().collect();
        let mut out = Vec::new();
        for id in ids {
            let idle = self.idle.get(&id).copied().unwrap_or(false);
            let Some(ep) = self.endpoints.get_mut(&id) else {
                continue;
            };
            let actions = ep.on_tick(now, idle);
            out.extend(self.realize(id, actions, CallKind::Renew));
        }
        out
    }

    /// Consumes one delivered application payload addressed to an
    /// endpoint hosted here. Calls are applied to the server role and
    /// answered (`dirty`/`renew` → `Granted`, `clean` → `Released`);
    /// replies update the client-side accounting.
    pub fn on_payload(
        &mut self,
        now: Time,
        from: AoId,
        to: AoId,
        reply: bool,
        payload: &[u8],
    ) -> Vec<LeasePacket> {
        if reply {
            match decode_reply(payload) {
                Ok(LeaseReply::Granted { .. }) => self.stats.granted_received += 1,
                Ok(LeaseReply::Released { .. }) => self.stats.released_received += 1,
                Err(_) => self.stats.decode_errors += 1,
            }
            return Vec::new();
        }
        let call = match decode_call(payload) {
            Ok(call) => call,
            Err(_) => {
                self.stats.decode_errors += 1;
                return Vec::new();
            }
        };
        let Some(ep) = self.endpoints.get_mut(&to) else {
            // Target already collected: in real RMI the call raises
            // NoSuchObjectException; the caller's send-failure path
            // (transport-level) handles it, nothing to answer.
            return Vec::new();
        };
        ep.on_message(now, &call.as_message());
        let answer = match call {
            LeaseCall::Dirty { holder, lease } | LeaseCall::Renew { holder, lease } => {
                LeaseReply::Granted { holder, lease }
            }
            LeaseCall::Clean { holder } => LeaseReply::Released { holder },
        };
        vec![LeasePacket {
            from: to,
            to: from,
            reply: true,
            payload: encode_reply(&answer),
        }]
    }

    /// A transport-level send failure toward `target`: every endpoint
    /// hosted here forgets it (stops renewing).
    pub fn on_send_failure(&mut self, target: AoId) {
        for ep in self.endpoints.values_mut() {
            ep.on_send_failure(target);
        }
    }

    /// Endpoints collected so far (idle, no holders, grace expired), in
    /// collection order.
    pub fn terminated(&self) -> &[AoId] {
        &self.terminated
    }

    /// True once `id` was collected.
    pub fn is_dead(&self, id: AoId) -> bool {
        self.terminated.contains(&id)
    }

    /// Current lease holders registered with `id` (server role).
    pub fn lease_holders(&self, id: AoId) -> usize {
        self.endpoints.get(&id).map_or(0, |e| e.lease_holders())
    }

    /// Traffic counters.
    pub fn stats(&self) -> LeaseStats {
        self.stats
    }

    /// Turns endpoint actions into packets. `kind` disambiguates what a
    /// `Send` action means in the context it was produced: dirties come
    /// from deserialization, renewals from ticks, cleans from stub
    /// collection (the endpoint emits the same `RmiMessage::Dirty` for
    /// the first two — the wire keeps them tellable apart).
    fn realize(&mut self, who: AoId, actions: Vec<RmiAction>, kind: CallKind) -> Vec<LeasePacket> {
        let mut out = Vec::new();
        for action in actions {
            match action {
                RmiAction::Send { to, message } => {
                    let call = match (message, kind) {
                        (RmiMessage::Dirty { holder, lease }, CallKind::Dirty) => {
                            self.stats.dirty_sent += 1;
                            LeaseCall::Dirty { holder, lease }
                        }
                        (RmiMessage::Dirty { holder, lease }, _) => {
                            self.stats.renew_sent += 1;
                            LeaseCall::Renew { holder, lease }
                        }
                        (RmiMessage::Clean { holder }, _) => {
                            self.stats.clean_sent += 1;
                            LeaseCall::Clean { holder }
                        }
                    };
                    out.push(LeasePacket {
                        from: who,
                        to,
                        reply: false,
                        payload: encode_call(&call),
                    });
                }
                RmiAction::Terminate => {
                    self.endpoints.remove(&who);
                    self.idle.remove(&who);
                    self.terminated.push(who);
                }
            }
        }
        out
    }
}

/// What a `Send` action means in the context that produced it.
#[derive(Debug, Clone, Copy)]
enum CallKind {
    Dirty,
    Renew,
    Clean,
}

/// Decodes a payload for inspection without a driver (tests, benches).
pub fn peek_call(payload: &[u8]) -> Result<LeaseCall, DecodeError> {
    decode_call(payload)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dgc_core::units::Dur;

    fn t(s: u64) -> Time {
        Time::from_secs(s)
    }

    fn cfg() -> RmiConfig {
        RmiConfig {
            lease: Dur::from_secs(60),
        }
    }

    /// Delivers `packets` into the driver hosting their destinations,
    /// returning the replies produced.
    fn deliver(driver: &mut LeaseDriver, now: Time, packets: &[LeasePacket]) -> Vec<LeasePacket> {
        packets
            .iter()
            .flat_map(|p| driver.on_payload(now, p.from, p.to, p.reply, &p.payload))
            .collect()
    }

    #[test]
    fn full_lease_round_trip_over_packets() {
        // node 0 hosts the holder, node 1 the target; packets are the
        // only thing crossing between the two drivers.
        let holder = AoId::new(0, 0);
        let target = AoId::new(1, 0);
        let mut client = LeaseDriver::new(cfg());
        let mut server = LeaseDriver::new(cfg());
        client.add_endpoint(holder, t(0));
        server.add_endpoint(target, t(0));
        server.set_idle(target, true);

        // Dirty registers the lease and is answered with a grant.
        let dirty = client.add_ref(t(0), holder, target);
        assert_eq!(dirty.len(), 1);
        assert!(!dirty[0].reply);
        assert_eq!(
            decode_call(&dirty[0].payload).unwrap(),
            LeaseCall::Dirty {
                holder,
                lease: Dur::from_secs(60)
            }
        );
        let grants = deliver(&mut server, t(0), &dirty);
        assert_eq!(server.lease_holders(target), 1);
        assert_eq!(grants.len(), 1);
        assert!(grants[0].reply);
        deliver(&mut client, t(0), &grants);
        assert_eq!(client.stats().granted_received, 1);

        // Renewal at half-lease keeps the target alive past the
        // original expiry.
        let renew = client.tick(t(30));
        assert_eq!(renew.len(), 1);
        assert!(matches!(
            decode_call(&renew[0].payload).unwrap(),
            LeaseCall::Renew { .. }
        ));
        deliver(&mut server, t(30), &renew);
        assert!(server.tick(t(70)).is_empty());
        assert!(!server.is_dead(target), "renewed lease holds");

        // Clean releases; the idle target collects after the grace.
        let clean = client.drop_ref(holder, target);
        let released = deliver(&mut server, t(80), &clean);
        assert_eq!(server.lease_holders(target), 0);
        deliver(&mut client, t(80), &released);
        assert_eq!(client.stats().released_received, 1);
        server.tick(t(145)); // last dirty at 30 + lease 60 < 145: grace over
        assert!(server.is_dead(target), "released idle target collects");
        assert_eq!(server.terminated(), &[target]);
        let s = client.stats();
        assert_eq!((s.dirty_sent, s.renew_sent, s.clean_sent), (1, 1, 1));
    }

    #[test]
    fn busy_or_leased_endpoints_survive_ticks() {
        let target = AoId::new(1, 0);
        let mut server = LeaseDriver::new(cfg());
        server.add_endpoint(target, t(0));
        // Busy: never collected, no matter how stale.
        server.tick(t(1_000));
        assert!(!server.is_dead(target));
        // Idle but leased: stays.
        server.set_idle(target, true);
        let holder = AoId::new(0, 0);
        let dirty = LeasePacket {
            from: holder,
            to: target,
            reply: false,
            payload: encode_call(&LeaseCall::Dirty {
                holder,
                lease: Dur::from_secs(60),
            }),
        };
        server.on_payload(t(1_000), holder, target, false, &dirty.payload);
        server.tick(t(1_030));
        assert!(!server.is_dead(target));
        // Lease expires without renewal: collected.
        server.tick(t(1_075));
        assert!(server.is_dead(target));
    }

    #[test]
    fn corrupt_payloads_are_counted_not_fatal() {
        let target = AoId::new(1, 0);
        let mut server = LeaseDriver::new(cfg());
        server.add_endpoint(target, t(0));
        let replies = server.on_payload(t(0), AoId::new(0, 0), target, false, &[0xFF, 0x01]);
        assert!(replies.is_empty());
        assert_eq!(server.stats().decode_errors, 1);
    }

    #[test]
    fn calls_to_collected_endpoints_are_unanswered() {
        let target = AoId::new(1, 0);
        let holder = AoId::new(0, 0);
        let mut server = LeaseDriver::new(cfg());
        server.add_endpoint(target, t(0));
        server.set_idle(target, true);
        server.tick(t(61)); // fresh-object grace expires
        assert!(server.is_dead(target));
        let payload = encode_call(&LeaseCall::Dirty {
            holder,
            lease: Dur::from_secs(60),
        });
        assert!(server
            .on_payload(t(62), holder, target, false, &payload)
            .is_empty());
    }
}
