//! Fig. 7 — compound-cycle detection walkthrough.
//!
//! The figure shows two executions: a compound cycle (two rings sharing
//! an activity) that is fully collected, and the same graph with one
//! live (busy) object referencing it, which must block collection
//! entirely. This bench replays both and reports detection/collection
//! timing and the consensus counters.

use dgc_activeobj::collector::CollectorKind;
use dgc_activeobj::runtime::{Grid, GridConfig};
use dgc_bench::{nas_dgc_config, Table};
use dgc_simnet::time::SimDuration;
use dgc_simnet::topology::Topology;
use dgc_workloads::scenarios::fig7_compound;

fn run(with_blocker: bool) -> (Grid, Vec<dgc_core::id::AoId>) {
    let mut grid = Grid::new(
        GridConfig::new(Topology::single_site(5, SimDuration::from_millis(1)))
            .collector(CollectorKind::Complete(nas_dgc_config()))
            .seed(7),
    );
    let (ids, _) = fig7_compound(&mut grid, 5, with_blocker);
    grid.run_for(SimDuration::from_secs(1_200));
    (grid, ids)
}

fn main() {
    println!("=== Fig. 7: compound cycle, with and without a live blocker ===\n");
    let mut table = Table::new(vec![
        "Scenario",
        "Members collected",
        "First collection",
        "Last collection",
        "Consensus detected",
        "Propagated",
        "Violations",
    ]);

    for with_blocker in [false, true] {
        let (grid, ids) = run(with_blocker);
        let collected: Vec<_> = grid
            .collected()
            .iter()
            .filter(|c| ids.contains(&c.ao))
            .collect();
        let stats = grid.dgc_stats();
        table.row(vec![
            if with_blocker {
                "live blocker".to_string()
            } else {
                "pure garbage".to_string()
            },
            format!("{}/{}", collected.len(), ids.len()),
            collected
                .iter()
                .map(|c| c.at.as_secs())
                .min()
                .map(|t| format!("{t} s"))
                .unwrap_or_else(|| "-".into()),
            collected
                .iter()
                .map(|c| c.at.as_secs())
                .max()
                .map(|t| format!("{t} s"))
                .unwrap_or_else(|| "-".into()),
            format!("{}", stats.consensus_detected),
            format!("{}", stats.consensus_propagated),
            format!("{}", grid.violations().len()),
        ]);
        assert!(grid.violations().is_empty());
        if with_blocker {
            assert_eq!(
                collected.len(),
                0,
                "a single live object must block everything"
            );
        } else {
            assert_eq!(
                collected.len(),
                ids.len(),
                "pure compound garbage must vanish"
            );
        }
    }
    table.print();
    println!(
        "\nAs in the paper: one busy referencer anywhere in the recursive\n\
         referencer closure keeps the whole compound alive; without it the\n\
         consensus collects both rings in one wave (steps 1-4 of §4.3)."
    );
}
