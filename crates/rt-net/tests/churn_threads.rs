//! Regression: crash/rejoin churn must not leak OS threads.
//!
//! The transport's helper threads (socket readers, reply writers, join
//! dialers) used to be detached; under membership churn the carcasses
//! and the odd reader wedged on a half-dead socket accumulated real OS
//! threads for the life of the process. Every helper now registers
//! with the node's `ThreadReaper` and is joined at shutdown, so a wave
//! of crash/rejoin cycles must leave the process's thread count where
//! it started.
//!
//! Linux-only: counts live via `/proc/self/status`. The file holds a
//! single test so the count is not polluted by parallel tests in the
//! same binary.

#![cfg(target_os = "linux")]

use std::time::{Duration, Instant};

use dgc_core::config::DgcConfig;
use dgc_core::units::Dur;
use dgc_membership::{MembershipConfig, NodeStatus};
use dgc_rt_net::{Cluster, NetConfig};

fn cfg() -> NetConfig {
    NetConfig::new(
        DgcConfig::builder()
            .ttb(Dur::from_millis(25))
            .tta(Dur::from_millis(80))
            .max_comm(Dur::from_millis(20))
            .build(),
    )
    .membership(MembershipConfig {
        gossip_interval: Dur::from_millis(50),
        suspect_after: Dur::from_millis(250),
        dead_after: Dur::from_millis(750),
        full_sync_every: 10,
    })
}

/// Live threads in this process, per the kernel.
fn live_threads() -> usize {
    std::fs::read_to_string("/proc/self/status")
        .expect("read /proc/self/status")
        .lines()
        .find_map(|l| l.strip_prefix("Threads:"))
        .expect("Threads: line")
        .trim()
        .parse()
        .expect("thread count")
}

/// Polls until the live-thread count drops to `limit`, returning the
/// last observed count.
fn settle_to(limit: usize, deadline: Duration) -> usize {
    let start = Instant::now();
    let mut n = live_threads();
    while n > limit && start.elapsed() < deadline {
        std::thread::sleep(Duration::from_millis(25));
        n = live_threads();
    }
    n
}

fn full_alive(records: &[dgc_membership::NodeRecord], n: u32) -> bool {
    records.len() == n as usize && records.iter().all(|r| r.status == NodeStatus::Alive)
}

#[test]
fn crash_rejoin_churn_does_not_leak_threads() {
    let before_cluster = live_threads();

    let cluster = Cluster::join_local(3, cfg()).expect("bind cluster");
    for node in 0..3 {
        assert!(
            cluster.wait_membership_until(node, Duration::from_secs(10), |r| full_alive(r, 3)),
            "node {node} never converged"
        );
    }
    // Baseline of a steady 3-node cluster: sample past the join
    // dialers' exit so transient helpers don't inflate it.
    std::thread::sleep(Duration::from_millis(300));
    let baseline = (0..10)
        .map(|_| {
            std::thread::sleep(Duration::from_millis(30));
            live_threads()
        })
        .min()
        .unwrap();

    for cycle in 0..4u64 {
        cluster.crash_node(2);
        for node in 0..2 {
            assert!(
                cluster.wait_membership_until(node, Duration::from_secs(10), |r| {
                    r.iter()
                        .any(|x| x.node == 2 && x.status == NodeStatus::Dead)
                }),
                "cycle {cycle}: node {node} never buried node 2"
            );
        }
        cluster.restart_node(2, cycle + 2).expect("restart");
        for node in 0..3 {
            assert!(
                cluster.wait_membership_until(node, Duration::from_secs(10), |r| {
                    full_alive(r, 3) && r.iter().any(|x| x.node == 2 && x.incarnation == cycle + 2)
                }),
                "cycle {cycle}: node {node} never saw the rejoin"
            );
        }
    }

    // The churn wave over, the count must return to (about) the steady
    // baseline — a leak grows by several threads per cycle.
    let after_churn = settle_to(baseline + 3, Duration::from_secs(15));
    assert!(
        after_churn <= baseline + 3,
        "thread leak under churn: baseline {baseline}, after 4 crash/rejoin cycles {after_churn}"
    );

    // And after shutdown every transport thread must be joined: back to
    // the pre-cluster count (one of slack for the test harness).
    cluster.shutdown();
    let after_shutdown = settle_to(before_cluster + 1, Duration::from_secs(15));
    assert!(
        after_shutdown <= before_cluster + 1,
        "threads survived shutdown: before {before_cluster}, after {after_shutdown}"
    );
}
