//! Integration tests replaying the paper's figures over the full
//! middleware stack on the (scaled) Grid'5000 topology — real inter-site
//! latencies, local-GC sweeps, the works.

use grid_dgc::activeobj::activity::Inert;
use grid_dgc::activeobj::collector::CollectorKind;
use grid_dgc::activeobj::runtime::{Grid, GridConfig};
use grid_dgc::dgc::config::DgcConfig;
use grid_dgc::dgc::units::Dur;
use grid_dgc::dgc::TerminateReason;
use grid_dgc::simnet::time::SimDuration;
use grid_dgc::simnet::topology::{ProcId, Topology};
use grid_dgc::workloads::scenarios;

fn dgc() -> DgcConfig {
    DgcConfig::builder()
        .ttb(Dur::from_secs(30))
        .tta(Dur::from_secs(61))
        .max_comm(Dur::from_millis(500))
        .build()
}

fn grid(seed: u64) -> Grid {
    Grid::new(
        GridConfig::new(Topology::grid5000_scaled(2)) // 6 procs, 3 sites
            .collector(CollectorKind::Complete(dgc()))
            .seed(seed),
    )
}

#[test]
fn fig3_spanning_tree_blob_collapses_across_sites() {
    let mut g = grid(1);
    let ids = scenarios::fig3(&mut g, 6);
    g.run_for(SimDuration::from_secs(1_500));
    assert!(ids.iter().all(|id| !g.is_alive(*id)));
    assert!(g.violations().is_empty());
    // The blob contains the cycle a→f→e? (a→f, f→e, e→c, c→a): cyclic
    // collection must have fired at least once.
    assert!(g
        .collected()
        .iter()
        .any(|c| matches!(c.reason, Some(r) if r.is_cyclic())));
}

#[test]
fn fig4_busy_downstream_cycle_does_not_retain_upstream() {
    // C1 → C2 with C2 kept live by a root: C1 must still be collected —
    // "C2 must not prevent C1 from being garbage collected".
    let mut g = grid(2);
    let (c1, c2) = scenarios::fig4(&mut g, 6);
    let root = g.spawn_root(ProcId(0), Box::new(Inert));
    g.make_ref(root, c2[0]);
    g.run_for(SimDuration::from_secs(1_500));
    assert!(!g.is_alive(c1[0]) && !g.is_alive(c1[1]), "C1 collected");
    assert!(
        g.is_alive(c2[0]) && g.is_alive(c2[1]),
        "C2 retained by root"
    );
    assert!(g.violations().is_empty());
}

#[test]
fn fig4_upstream_cycle_falls_then_downstream() {
    // Nothing keeps either cycle: C1 (upstream) and C2 both garbage.
    // C1's clocks flow into C2 but never back (responses carry no clock
    // updates), so both are collected independently.
    let mut g = grid(3);
    let (c1, c2) = scenarios::fig4(&mut g, 6);
    g.run_for(SimDuration::from_secs(2_000));
    for id in c1.iter().chain(&c2) {
        assert!(!g.is_alive(*id));
    }
    assert!(g.violations().is_empty());
}

#[test]
fn fig7_compound_over_wan_latencies() {
    let mut g = grid(4);
    let (ids, _) = scenarios::fig7_compound(&mut g, 6, false);
    g.run_for(SimDuration::from_secs(1_500));
    assert!(ids.iter().all(|id| !g.is_alive(*id)));
    assert!(g.violations().is_empty());
}

#[test]
fn fig7_blocker_blocks_until_it_stops() {
    let mut g = grid(5);
    let (ids, blocker) = scenarios::fig7_compound(&mut g, 6, true);
    let blocker = blocker.expect("with blocker");
    g.run_for(SimDuration::from_secs(1_000));
    assert!(ids.iter().all(|id| g.is_alive(*id)), "blocked while busy");
    // The spinner never stops by itself; sever its reference instead.
    g.drop_ref(blocker, ids[0]);
    g.run_for(SimDuration::from_secs(1_500));
    assert!(
        ids.iter().all(|id| !g.is_alive(*id)),
        "released after the drop"
    );
    assert!(g.violations().is_empty());
}

#[test]
fn nas_shaped_clique_collapses_like_the_paper() {
    // 24 activities, complete graph (the NAS §5.2 shape): one consensus
    // wave must reclaim everything in roughly 15-20 broadcast rounds.
    let mut g = grid(6);
    let ids = scenarios::clique(&mut g, 24, 6);
    let t0 = g.now();
    g.run_for(SimDuration::from_secs(3_000));
    assert!(ids.iter().all(|id| !g.is_alive(*id)));
    assert_eq!(g.alive_count(), 0);
    assert!(g.violations().is_empty());
    let last = g.collected().iter().map(|c| c.at).max().expect("collected");
    let rounds = (last - t0).as_secs_f64() / 30.0;
    assert!(
        rounds < 30.0,
        "clique of 24 should collapse within ~20 rounds, took {rounds:.1}"
    );
}

#[test]
fn mixed_live_and_dead_subgraphs_are_separated() {
    let mut g = grid(7);
    let dead_ring = scenarios::ring(&mut g, 5, 6);
    let live_ring = scenarios::ring(&mut g, 5, 6);
    let root = g.spawn_root(ProcId(1), Box::new(Inert));
    g.make_ref(root, live_ring[2]);
    // Cross edge from the live ring into the dead ring must NOT retain
    // it... wait — it does retain it: live_ring references dead_ring.
    // Edge in the *other* direction: dead ring references live ring;
    // orientation means the dead ring stays garbage.
    g.make_ref(dead_ring[0], live_ring[0]);
    g.run_for(SimDuration::from_secs(2_000));
    assert!(
        dead_ring.iter().all(|id| !g.is_alive(*id)),
        "dead ring collected"
    );
    assert!(
        live_ring.iter().all(|id| g.is_alive(*id)),
        "live ring survives"
    );
    assert!(g.violations().is_empty());
}

#[test]
fn acyclic_reason_for_chains_cyclic_for_rings() {
    let mut g = grid(8);
    let chain = scenarios::chain(&mut g, 3, 6);
    let ring = scenarios::ring(&mut g, 3, 6);
    g.run_for(SimDuration::from_secs(1_500));
    assert_eq!(g.alive_count(), 0);
    let reason_of = |id| {
        g.collected()
            .iter()
            .find(|c| c.ao == id)
            .and_then(|c| c.reason)
            .expect("collected")
    };
    assert_eq!(reason_of(chain[0]), TerminateReason::Acyclic);
    assert!(ring.iter().any(|id| reason_of(*id).is_cyclic()));
    assert!(g.violations().is_empty());
}
