//! The conformance contract: every canonical scenario reaches its
//! expected oracle verdict on **both** runtimes, under every seed of
//! this run (three fixed seeds by default; `CONFORMANCE_SEED=<n>`
//! pins one — the CI random job uses that and echoes the value).
//!
//! One test per scenario so the suites run concurrently and a failure
//! names the scenario directly.

use dgc_conformance::{
    evaluate, run_rtnet_obs, run_simnet, run_simnet_obs, scenarios, seeds, Observation, Scenario,
};

fn agree_on(scenario: Scenario) {
    for seed in seeds() {
        // A divergence report comes with the trace tails of both runs
        // (empty unless DGC_TRACE=info|debug was set — the dump says
        // how to re-run with it).
        let (sim, sim_tel) = run_simnet_obs(&scenario, seed);
        if sim != scenario.expect {
            eprint!("{}", sim_tel.dump_tails("simnet", scenario.name));
            panic!(
                "[{} seed {seed}] simnet verdict diverged: {sim:?} != {:?}",
                scenario.name, scenario.expect
            );
        }
        let (net, net_tel) = run_rtnet_obs(&scenario, seed).expect("bind chaos cluster");
        if net != scenario.expect || sim != net {
            eprint!("{}", sim_tel.dump_tails("simnet", scenario.name));
            eprint!("{}", net_tel.dump_tails("rt-net", scenario.name));
            panic!(
                "[{} seed {seed}] rt-net verdict diverged: {net:?} != {:?} (simnet said {sim:?})",
                scenario.name, scenario.expect
            );
        }
    }
}

#[test]
fn safe_with_slack_agrees_across_runtimes() {
    agree_on(scenarios::safe_with_slack());
}

#[test]
fn delay_violates_tta_agrees_across_runtimes() {
    agree_on(scenarios::delay_violates_tta());
}

#[test]
fn partition_heals_agrees_across_runtimes() {
    agree_on(scenarios::partition_heals());
}

#[test]
fn pause_models_local_gc_agrees_across_runtimes() {
    agree_on(scenarios::pause_models_local_gc());
}

#[test]
fn crash_without_rejoin_agrees_across_runtimes() {
    agree_on(scenarios::crash_without_rejoin());
}

#[test]
fn crash_and_rejoin_agrees_across_runtimes() {
    agree_on(scenarios::crash_and_rejoin());
}

#[test]
fn graceful_leave_agrees_across_runtimes() {
    agree_on(scenarios::graceful_leave());
}

/// Randomized profiles, simulator-side: a fixed, verified corpus of
/// seeded profiles with amplitudes well inside the TTA slack keeps the
/// safe scenario safe. The corpus is deterministic (same seeds → same
/// profiles → same verdicts), so this is a regression net, not a
/// universal claim — `FaultProfile::randomized` documents why no seed
/// range can prove safety for *all* profiles (consecutive-heartbeat
/// drop patterns have no deterministic bound). Widening the range or
/// changing the generator requires re-verifying the new profiles.
/// (The simulator explores many seeds cheaply; the socket runs above
/// keep the wall-clock budget.)
#[test]
fn randomized_profiles_inside_the_slack_stay_safe_on_simnet() {
    use dgc_core::faults::FaultProfile;
    use dgc_core::units::Dur;

    let base = scenarios::safe_with_slack();
    for seed in 0..16u64 {
        // ≤ 5 disruptions × ≤ 25 ms of delay/partition, plus drop
        // windows narrower than one TTB round: worst heartbeat gap for
        // these seeds ≈ 50 + 125 + 50 + latency < TTA = 250 ms.
        let profile =
            FaultProfile::randomized(seed, base.nodes, Dur::from_secs(2), Dur::from_millis(25));
        let scenario = Scenario {
            name: "randomized-within-slack",
            profile,
            ..base.clone()
        };
        let verdict = run_simnet(&scenario, seed);
        assert!(
            !verdict.wrongful_collection,
            "seed {seed}: a bounded profile broke the §4.2 bound"
        );
        assert!(
            !verdict.leftover_garbage,
            "seed {seed}: collection never completed"
        );
    }
}

/// The harness's own check is runtime-agnostic: feeding it the same
/// observations must give the same verdict no matter which runtime
/// produced them.
#[test]
fn evaluate_is_a_pure_function_of_observations() {
    use dgc_core::units::Time;

    let s = scenarios::delay_violates_tta();
    let obs = [Observation {
        at: Time::from_nanos(900_000_000),
        tag: 1,
    }];
    assert_eq!(evaluate(&s, &obs), evaluate(&s, &obs));
    assert_eq!(evaluate(&s, &obs), s.expect);
}
