//! Transport scaling — OS threads per peer, reactor vs threaded engine.
//!
//! The threaded engine spends ~3 dedicated blocking-I/O threads per
//! connected peer (link writer + socket reader on the dialing side,
//! reader + reply writer on the accepting side), which caps a node's
//! fan-in around the scheduler's tolerance, not the protocol's. The
//! reactor engine parks every socket of a node on one readiness loop:
//! O(shards) threads regardless of peer count.
//!
//! This bench builds a hub-and-spoke cluster — one hub node hosting a
//! busy activity, N spoke nodes each holding a reference to it — lets
//! the spokes' TTB heartbeats converge on the hub for a fixed window,
//! and reports live OS threads per node for both engines (the threaded
//! engine at a reduced N so the comparison doesn't have to survive
//! several thousand threads).
//!
//! Run: `cargo bench -p dgc-bench --bench reactor_scale`
//! (`DGC_BENCH_SCALE=quick` shrinks the cluster for smoke runs.)

use std::time::{Duration, Instant};

use dgc_bench::Scale;
use dgc_core::config::DgcConfig;
use dgc_core::units::Dur;
use dgc_rt_net::{IoEngine, NetConfig, NetNode};

/// Live threads in this process, per the kernel.
fn live_threads() -> usize {
    std::fs::read_to_string("/proc/self/status")
        .ok()
        .and_then(|s| {
            s.lines()
                .find_map(|l| l.strip_prefix("Threads:"))
                .and_then(|v| v.trim().parse().ok())
        })
        .unwrap_or(0)
}

struct Run {
    nodes: u32,
    threads: usize,
    items_received: u64,
    frames_received: u64,
    elapsed: Duration,
}

/// One hub + `spokes` spoke nodes on `engine`, heartbeating for
/// `window`; threads are sampled at the end of the window, with every
/// link long wired.
fn run(engine: IoEngine, spokes: u32, window: Duration) -> Run {
    let before = live_threads();
    let dgc = DgcConfig::builder()
        .ttb(Dur::from_millis(300))
        .tta(Dur::from_millis(960))
        .max_comm(Dur::from_millis(240))
        .build();
    let config = NetConfig::new(dgc).engine(engine);
    let hub = NetNode::bind(0, config).expect("bind hub");
    let target = hub.add_activity(); // stays busy: a root the spokes hold
    let mut nodes = Vec::with_capacity(spokes as usize);
    for id in 1..=spokes {
        let node = NetNode::bind(id, config).expect("bind spoke");
        node.add_peer(0, hub.addr());
        let holder = node.add_activity(); // busy holder: heartbeats flow forever
        node.add_ref(holder, target);
        nodes.push(node);
    }
    let start = Instant::now();
    std::thread::sleep(window);
    let threads = live_threads().saturating_sub(before);
    let stats = hub.stats();
    let elapsed = start.elapsed();
    for node in nodes {
        node.shutdown();
    }
    hub.shutdown();
    Run {
        nodes: spokes + 1,
        threads,
        items_received: stats.items_received,
        frames_received: stats.frames_received,
        elapsed,
    }
}

fn report(label: &str, r: &Run) -> f64 {
    let per_node = r.threads as f64 / r.nodes as f64;
    println!(
        "  {label:>8}: {:>5} nodes, {:>6} transport threads ({per_node:>5.2}/node), \
         hub took {} heartbeats in {} frames over {:.1}s",
        r.nodes,
        r.threads,
        r.items_received,
        r.frames_received,
        r.elapsed.as_secs_f64(),
    );
    per_node
}

fn main() {
    let scale = Scale::from_env();
    // A 1000-spoke hub needs ~4 fds per spoke across both endpoints.
    let nofile = polling::raise_nofile_limit();
    let (reactor_spokes, threaded_spokes, window) = match scale {
        Scale::Full => (1000, 128, Duration::from_secs(10)),
        Scale::Quick => (128, 32, Duration::from_secs(3)),
    };
    println!(
        "reactor_scale: hub-and-spoke heartbeat convergence (RLIMIT_NOFILE {nofile}, \
         scale {scale:?})"
    );

    let reactor = run(IoEngine::Reactor, reactor_spokes, window);
    let reactor_per_node = report("reactor", &reactor);
    let threaded = run(IoEngine::Threaded, threaded_spokes, window);
    let threaded_per_node = report("threaded", &threaded);

    // The claim under test: the reactor breaks the thread-per-link
    // ceiling. Every node is one event loop (== one thread), so the
    // whole-process count stays ~1/node where the threaded engine pays
    // its per-link retinue on top.
    assert!(
        reactor.items_received > reactor.nodes as u64,
        "hub must have taken at least one heartbeat round from {} spokes, got {}",
        reactor.nodes - 1,
        reactor.items_received
    );
    assert!(
        reactor_per_node < 2.0,
        "reactor engine regressed to per-link threads: {reactor_per_node:.2}/node"
    );
    assert!(
        reactor_per_node < threaded_per_node,
        "reactor ({reactor_per_node:.2}/node) must undercut threaded ({threaded_per_node:.2}/node)"
    );

    dgc_bench::record(
        "reactor_scale",
        &[
            ("reactor_nodes", reactor.nodes as f64),
            ("reactor_threads", reactor.threads as f64),
            ("reactor_threads_per_node", reactor_per_node),
            ("reactor_hub_items", reactor.items_received as f64),
            ("reactor_hub_frames", reactor.frames_received as f64),
            ("threaded_nodes", threaded.nodes as f64),
            ("threaded_threads", threaded.threads as f64),
            ("threaded_threads_per_node", threaded_per_node),
            ("window_secs", window.as_secs_f64()),
        ],
    );
}
