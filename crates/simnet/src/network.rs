//! FIFO network model.
//!
//! The paper assumes the transport of Java RMI: reliable, connection
//! oriented, FIFO per ordered process pair ("DGC messages and responses
//! cannot race with application messages as they are sent over the same
//! FIFO connection", §3.2). This module computes delivery times that
//! respect that ordering, meters cross-process bytes per traffic class,
//! and supports per-link fault windows (extra delay) used by the §4.2
//! experiments on missed deadlines.

use std::collections::HashMap;

use crate::fault::FaultPlan;
use crate::time::{SimDuration, SimTime};
use crate::topology::{ProcId, Topology};
use crate::traffic::{TrafficClass, TrafficMeter};

/// Computes message delivery times over the grid and meters traffic.
pub struct Network {
    topology: Topology,
    /// Last scheduled delivery per ordered (from, to) pair, enforcing FIFO.
    last_delivery: HashMap<(ProcId, ProcId), SimTime>,
    meter: TrafficMeter,
    /// Per-process meters (paper: one SOCKS proxy per machine).
    per_proc: Vec<TrafficMeter>,
    faults: FaultPlan,
    /// Optional fixed per-message serialization overhead added to latency
    /// per KiB of payload (models marshalling cost); zero by default.
    per_kib_cost: SimDuration,
}

impl Network {
    /// Creates a network over `topology` with no faults.
    pub fn new(topology: Topology) -> Self {
        let procs = topology.procs() as usize;
        Network {
            topology,
            last_delivery: HashMap::new(),
            meter: TrafficMeter::new(),
            per_proc: vec![TrafficMeter::new(); procs],
            faults: FaultPlan::none(),
            per_kib_cost: SimDuration::ZERO,
        }
    }

    /// Installs a fault plan (extra delays on links during time windows).
    pub fn set_fault_plan(&mut self, plan: FaultPlan) {
        self.faults = plan;
    }

    /// Sets a serialization cost added to latency per KiB of payload.
    pub fn set_per_kib_cost(&mut self, cost: SimDuration) {
        self.per_kib_cost = cost;
    }

    /// The topology this network runs over.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// Computes the delivery time of a message sent at `now` from process
    /// `from` to process `to`, carrying `size` bytes of class `class`.
    ///
    /// Cross-process messages are metered (both globally and on the two
    /// endpoint processes); intra-process messages are free and delivered
    /// immediately, exactly as the paper accounts traffic ("DGC messages
    /// and responses transmitted inside a single JVM are not accounted as
    /// they are directly passed by reference").
    pub fn send(
        &mut self,
        now: SimTime,
        from: ProcId,
        to: ProcId,
        class: TrafficClass,
        size: u64,
    ) -> SimTime {
        if from == to {
            // Intra-process: immediate, unmetered, but still FIFO with
            // itself (delivery at `now`, ordering by event sequence).
            return now;
        }
        self.meter.record(class, size);
        self.per_proc[from.0 as usize].record(class, size);
        self.per_proc[to.0 as usize].record(class, size);

        let mut latency = self.topology.latency(from, to);
        if !self.per_kib_cost.is_zero() {
            let kib = size.div_ceil(1024);
            latency = latency.saturating_add(self.per_kib_cost.saturating_mul(kib));
        }
        latency = latency.saturating_add(self.faults.extra_delay(now, from, to));

        let arrival = now + latency;
        let slot = self
            .last_delivery
            .entry((from, to))
            .or_insert(SimTime::ZERO);
        let delivery = arrival.max(*slot);
        *slot = delivery;
        delivery
    }

    /// Global traffic meter (all cross-process bytes).
    pub fn meter(&self) -> &TrafficMeter {
        &self.meter
    }

    /// Traffic meter of a single process.
    pub fn proc_meter(&self, proc: ProcId) -> &TrafficMeter {
        &self.per_proc[proc.0 as usize]
    }

    /// Resets all meters (e.g. after a warm-up phase).
    pub fn reset_meters(&mut self) {
        self.meter.reset();
        for m in &mut self.per_proc {
            m.reset();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::{FaultPlan, LinkFault};

    fn net() -> Network {
        Network::new(Topology::single_site(3, SimDuration::from_millis(2)))
    }

    #[test]
    fn delivery_adds_latency() {
        let mut n = net();
        let t = n.send(
            SimTime::from_secs(1),
            ProcId(0),
            ProcId(1),
            TrafficClass::AppRequest,
            100,
        );
        assert_eq!(t, SimTime::from_secs(1) + SimDuration::from_millis(2));
    }

    #[test]
    fn intra_process_is_free_and_instant() {
        let mut n = net();
        let t = n.send(
            SimTime::from_secs(5),
            ProcId(2),
            ProcId(2),
            TrafficClass::DgcMessage,
            100,
        );
        assert_eq!(t, SimTime::from_secs(5));
        assert_eq!(n.meter().total_bytes(), 0);
    }

    #[test]
    fn fifo_per_ordered_pair() {
        let mut n = net();
        // Two sends at the same instant: second must not overtake the first.
        let t1 = n.send(
            SimTime::ZERO,
            ProcId(0),
            ProcId(1),
            TrafficClass::AppRequest,
            10,
        );
        let t2 = n.send(
            SimTime::ZERO,
            ProcId(0),
            ProcId(1),
            TrafficClass::DgcMessage,
            10,
        );
        assert!(t2 >= t1);
        // Reverse direction is an independent link.
        let t3 = n.send(
            SimTime::ZERO,
            ProcId(1),
            ProcId(0),
            TrafficClass::AppRequest,
            10,
        );
        assert_eq!(t3, SimTime::ZERO + SimDuration::from_millis(2));
    }

    #[test]
    fn fifo_blocks_reordering_with_fault_delay() {
        let mut n = net();
        // First message hit by a fault window: +100ms.
        n.set_fault_plan(FaultPlan::with_faults(vec![LinkFault {
            from: Some(ProcId(0)),
            to: Some(ProcId(1)),
            start: SimTime::ZERO,
            end: SimTime::from_millis(1),
            extra_delay: SimDuration::from_millis(100),
        }]));
        let t1 = n.send(
            SimTime::ZERO,
            ProcId(0),
            ProcId(1),
            TrafficClass::AppRequest,
            10,
        );
        // Second message sent after the window, would normally arrive earlier.
        let t2 = n.send(
            SimTime::from_millis(2),
            ProcId(0),
            ProcId(1),
            TrafficClass::AppRequest,
            10,
        );
        assert_eq!(t1, SimTime::from_millis(102));
        assert_eq!(t2, t1, "FIFO: later send must not overtake the delayed one");
    }

    #[test]
    fn metering_counts_both_endpoints() {
        let mut n = net();
        n.send(
            SimTime::ZERO,
            ProcId(0),
            ProcId(1),
            TrafficClass::AppRequest,
            128,
        );
        assert_eq!(n.meter().total_bytes(), 128);
        assert_eq!(n.proc_meter(ProcId(0)).total_bytes(), 128);
        assert_eq!(n.proc_meter(ProcId(1)).total_bytes(), 128);
        assert_eq!(n.proc_meter(ProcId(2)).total_bytes(), 0);
    }

    #[test]
    fn per_kib_cost_scales_with_size() {
        let mut n = net();
        n.set_per_kib_cost(SimDuration::from_millis(1));
        let small = n.send(
            SimTime::ZERO,
            ProcId(0),
            ProcId(1),
            TrafficClass::AppRequest,
            10,
        );
        let big = n.send(
            SimTime::ZERO,
            ProcId(1),
            ProcId(2),
            TrafficClass::AppRequest,
            10 * 1024,
        );
        assert_eq!(small, SimTime::ZERO + SimDuration::from_millis(3)); // 2 + 1*1KiB
        assert_eq!(big, SimTime::ZERO + SimDuration::from_millis(12)); // 2 + 10KiB
    }

    #[test]
    fn reset_meters_clears_everything() {
        let mut n = net();
        n.send(
            SimTime::ZERO,
            ProcId(0),
            ProcId(1),
            TrafficClass::AppReply,
            64,
        );
        n.reset_meters();
        assert_eq!(n.meter().total_bytes(), 0);
        assert_eq!(n.proc_meter(ProcId(0)).total_bytes(), 0);
    }
}
