//! EP — the embarrassingly parallel kernel.
//!
//! NPB EP generates pseudo-random pairs with a linear congruential
//! generator, keeps those inside the unit circle, converts them to
//! Gaussian deviates by the Marsaglia polar method, and tallies them
//! into ten square annuli. No inter-worker communication at all — which
//! makes it the paper's *worst case for relative DGC overhead*: nearly
//! every byte on the wire during an EP run is collector traffic
//! (929 % bandwidth overhead in Fig. 8).

use dgc_simnet::time::SimDuration;

use super::common::{KernelMath, NasParams};

/// Class-C-scaled parameters.
pub fn class_c() -> NasParams {
    NasParams {
        name: "EP",
        workers: 256,
        iterations: 1,
        exchange: false,
        chunk_bytes: 0,
        // Class C EP finishes in ~8.4 s wall clock on the paper's grid.
        compute_per_iter: SimDuration::from_millis(8_300),
        reply_bytes: 256,
    }
}

/// NPB's LCG: `x ← a·x mod 2^46`, `a = 5^13`.
#[derive(Debug, Clone)]
pub struct NpbRandom {
    x: u64,
}

const A: u64 = 1_220_703_125; // 5^13
const MASK46: u64 = (1 << 46) - 1;

impl NpbRandom {
    /// Seeds the generator (NPB uses 271828183 by default).
    pub fn new(seed: u64) -> Self {
        NpbRandom { x: seed & MASK46 }
    }

    /// Next uniform deviate in (0, 1).
    pub fn next_f64(&mut self) -> f64 {
        self.x = self.x.wrapping_mul(A) & MASK46;
        self.x as f64 / (1u64 << 46) as f64
    }
}

/// Per-worker EP state: the pair budget and the annulus tallies.
pub struct EpMath {
    rng: NpbRandom,
    pairs_per_iter: u64,
    /// Annulus counts `q[0..10]`.
    pub counts: [u64; 10],
    /// Sums of the Gaussian deviates (NPB's verification values).
    pub sx: f64,
    /// See [`EpMath::sx`].
    pub sy: f64,
}

impl EpMath {
    /// Creates the worker's generator; each worker gets a distinct seed
    /// segment like NPB's `2^k` jump-ahead.
    pub fn new(pairs_per_iter: u64, index: u32) -> Self {
        EpMath {
            rng: NpbRandom::new(271_828_183 ^ ((index as u64 + 1) * 0x5DEE_CE66)),
            pairs_per_iter,
            counts: [0; 10],
            sx: 0.0,
            sy: 0.0,
        }
    }

    /// Total accepted pairs.
    pub fn accepted(&self) -> u64 {
        self.counts.iter().sum()
    }
}

impl KernelMath for EpMath {
    fn compute(&mut self, _iteration: u32) -> f64 {
        for _ in 0..self.pairs_per_iter {
            let x = 2.0 * self.rng.next_f64() - 1.0;
            let y = 2.0 * self.rng.next_f64() - 1.0;
            let t = x * x + y * y;
            if t <= 1.0 && t > 0.0 {
                let f = (-2.0 * t.ln() / t).sqrt();
                let gx = x * f;
                let gy = y * f;
                self.sx += gx;
                self.sy += gy;
                let l = gx.abs().max(gy.abs()) as usize;
                if l < 10 {
                    self.counts[l] += 1;
                }
            }
        }
        self.sx
    }

    fn checksum(&self) -> f64 {
        self.sx + self.sy
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lcg_stays_in_unit_interval_and_varies() {
        let mut r = NpbRandom::new(271_828_183);
        let mut values = Vec::new();
        for _ in 0..1000 {
            let v = r.next_f64();
            assert!((0.0..1.0).contains(&v));
            values.push(v);
        }
        let mean: f64 = values.iter().sum::<f64>() / 1000.0;
        assert!((mean - 0.5).abs() < 0.05, "roughly uniform, mean={mean}");
    }

    #[test]
    fn acceptance_rate_is_about_pi_over_4() {
        let mut ep = EpMath::new(200_000, 0);
        ep.compute(0);
        let rate = ep.accepted() as f64 / 200_000.0;
        assert!(
            (rate - std::f64::consts::FRAC_PI_4).abs() < 0.01,
            "acceptance ≈ π/4, got {rate}"
        );
    }

    #[test]
    fn gaussian_tallies_concentrate_in_inner_annuli() {
        let mut ep = EpMath::new(100_000, 1);
        ep.compute(0);
        assert!(ep.counts[0] > ep.counts[2]);
        assert!(ep.counts[1] > ep.counts[3]);
        // Gaussian deviates beyond |4| are vanishingly rare.
        assert_eq!(ep.counts[6..].iter().sum::<u64>(), 0);
    }

    #[test]
    fn distinct_workers_differ() {
        let mut a = EpMath::new(1000, 0);
        let mut b = EpMath::new(1000, 1);
        a.compute(0);
        b.compute(0);
        assert_ne!(a.sx.to_bits(), b.sx.to_bits());
    }

    #[test]
    fn class_c_has_no_exchange() {
        let p = class_c();
        assert!(!p.exchange);
        assert_eq!(p.iterations, 1);
    }
}
