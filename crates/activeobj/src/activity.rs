//! Activities: behaviours, their execution context, and per-activity
//! runtime state.
//!
//! An active object (§1) is a remotely accessible object with its own
//! logical thread and request queue. Application code is written as a
//! [`Behavior`]: a state machine whose handlers are invoked by the
//! runtime for each served request, resolved future, or timer, and which
//! interacts with the world exclusively through [`AoCtx`] — sending
//! asynchronous calls, replying to futures, accounting compute time,
//! spawning new activities, and managing which remote references it
//! retains.
//!
//! Idleness (§4.1): an activity is **idle** iff it is not serving a
//! request, has an empty queue, and is not waiting on a future (waiting
//! is busy — "waiting for a future can only be done during the service
//! of a request"). Roots (registered objects, dummy referencers) are
//! never idle.

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use dgc_simnet::rng::SimRng;
use dgc_simnet::time::{SimDuration, SimTime};
use dgc_simnet::topology::ProcId;

use dgc_core::id::AoId;

use crate::collector::Collector;
use crate::localgc::StubTable;
use crate::request::{FutureId, Reply, Request};

/// Application logic of an activity.
///
/// Handlers run atomically (one logical thread per activity). All
/// effects — messages, compute time, reference management — go through
/// the [`AoCtx`].
pub trait Behavior {
    /// Invoked once, right after the activity is created.
    fn on_start(&mut self, _ctx: &mut AoCtx<'_>) {}

    /// Serves one request from the queue.
    fn on_request(&mut self, _ctx: &mut AoCtx<'_>, _request: &Request) {}

    /// A future this activity was **waiting on** resolved. (Replies to
    /// futures that were never awaited are stored silently: a future
    /// value cannot wake an idle activity, §4.1.)
    fn on_reply(&mut self, _ctx: &mut AoCtx<'_>, _future: FutureId, _reply: &Reply) {}

    /// An application timer set through [`AoCtx::set_timer`] fired.
    fn on_timer(&mut self, _ctx: &mut AoCtx<'_>, _token: u64) {}

    /// Optional downcasting hook so drivers can read results back out of
    /// a behavior (return `Some(self)` in implementations that need it).
    fn as_any(&self) -> Option<&dyn std::any::Any> {
        None
    }
}

/// A no-op behavior: never sends anything, serves requests instantly.
/// Useful for leaf activities and dummy roots.
#[derive(Debug, Default, Clone, Copy)]
pub struct Inert;

impl Behavior for Inert {}

/// One deferred effect produced by a behavior handler.
pub(crate) enum Effect {
    Send {
        to: AoId,
        method: u32,
        payload_bytes: u64,
        refs: Vec<AoId>,
        future: Option<FutureId>,
        await_reply: bool,
    },
    Reply {
        future: FutureId,
        payload_bytes: u64,
        refs: Vec<AoId>,
    },
    Compute(SimDuration),
    Retain(AoId),
    Release {
        target: AoId,
        all: bool,
    },
    Spawn {
        id: AoId,
        behavior: Box<dyn Behavior>,
    },
    Timer {
        delay: SimDuration,
        token: u64,
    },
}

/// Allocates activity ids for `spawn`, shared by the whole grid.
#[derive(Debug, Clone)]
pub struct SpawnAlloc {
    next_index: Vec<u32>,
}

impl SpawnAlloc {
    /// One counter per process.
    pub fn new(procs: u32) -> Self {
        SpawnAlloc {
            next_index: vec![0; procs as usize],
        }
    }

    /// Draws a fresh id on `proc`.
    pub fn allocate(&mut self, proc: ProcId) -> AoId {
        let slot = &mut self.next_index[proc.0 as usize];
        let id = AoId::new(proc.0, *slot);
        *slot = slot.checked_add(1).expect("activity index overflow");
        id
    }
}

/// Execution context handed to behavior handlers.
///
/// Effects are buffered and applied by the runtime after the handler
/// returns, so handlers see a consistent snapshot.
pub struct AoCtx<'a> {
    me: AoId,
    now: SimTime,
    next_future_seq: &'a mut u64,
    spawn_alloc: &'a mut SpawnAlloc,
    rng: &'a mut SimRng,
    pub(crate) effects: Vec<Effect>,
}

impl<'a> AoCtx<'a> {
    pub(crate) fn new(
        me: AoId,
        now: SimTime,
        next_future_seq: &'a mut u64,
        spawn_alloc: &'a mut SpawnAlloc,
        rng: &'a mut SimRng,
    ) -> Self {
        AoCtx {
            me,
            now,
            next_future_seq,
            spawn_alloc,
            rng,
            effects: Vec::new(),
        }
    }

    /// This activity's id.
    pub fn me(&self) -> AoId {
        self.me
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Deterministic per-activity random stream.
    pub fn rng(&mut self) -> &mut SimRng {
        self.rng
    }

    /// One-way asynchronous call (no future).
    pub fn send(&mut self, to: AoId, method: u32, payload_bytes: u64, refs: Vec<AoId>) {
        self.effects.push(Effect::Send {
            to,
            method,
            payload_bytes,
            refs,
            future: None,
            await_reply: false,
        });
    }

    /// Asynchronous call returning a future; the activity does **not**
    /// wait on it (use [`AoCtx::call_await`] for wait-by-necessity).
    pub fn call(&mut self, to: AoId, method: u32, payload_bytes: u64, refs: Vec<AoId>) -> FutureId {
        let future = self.fresh_future();
        self.effects.push(Effect::Send {
            to,
            method,
            payload_bytes,
            refs,
            future: Some(future),
            await_reply: false,
        });
        future
    }

    /// Asynchronous call whose reply the activity immediately waits on:
    /// it stays **busy** until the reply arrives (§4.1).
    pub fn call_await(
        &mut self,
        to: AoId,
        method: u32,
        payload_bytes: u64,
        refs: Vec<AoId>,
    ) -> FutureId {
        let future = self.fresh_future();
        self.effects.push(Effect::Send {
            to,
            method,
            payload_bytes,
            refs,
            future: Some(future),
            await_reply: true,
        });
        future
    }

    /// Replies to a future received in a request.
    pub fn reply(&mut self, future: FutureId, payload_bytes: u64, refs: Vec<AoId>) {
        self.effects.push(Effect::Reply {
            future,
            payload_bytes,
            refs,
        });
    }

    /// Accounts `d` of local compute time; the activity stays busy for
    /// the sum of all `compute` calls of this handler.
    pub fn compute(&mut self, d: SimDuration) {
        self.effects.push(Effect::Compute(d));
    }

    /// Locally aliases a stub for `target` (one more strong reference).
    pub fn retain(&mut self, target: AoId) {
        self.effects.push(Effect::Retain(target));
    }

    /// Drops one stub for `target`.
    pub fn release(&mut self, target: AoId) {
        self.effects.push(Effect::Release { target, all: false });
    }

    /// Drops every stub for `target`.
    pub fn release_all(&mut self, target: AoId) {
        self.effects.push(Effect::Release { target, all: true });
    }

    /// Creates a new activity on `proc`; the creator holds the first
    /// stub for it. Returns the new id immediately.
    pub fn spawn(&mut self, proc: ProcId, behavior: Box<dyn Behavior>) -> AoId {
        let id = self.spawn_alloc.allocate(proc);
        self.effects.push(Effect::Spawn { id, behavior });
        id
    }

    /// Schedules an application timer; `token` comes back in
    /// [`Behavior::on_timer`]. Serving a timer makes the activity busy,
    /// like a self-addressed request.
    pub fn set_timer(&mut self, delay: SimDuration, token: u64) {
        self.effects.push(Effect::Timer { delay, token });
    }

    fn fresh_future(&mut self) -> FutureId {
        let seq = *self.next_future_seq;
        *self.next_future_seq += 1;
        FutureId {
            caller: self.me,
            seq,
        }
    }
}

/// Runtime state of one activity (owned by the grid driver).
pub struct Activity {
    /// The activity's id.
    pub id: AoId,
    /// Application logic.
    pub behavior: Box<dyn Behavior>,
    /// Pending requests, FIFO service.
    pub queue: VecDeque<Request>,
    /// Number of outstanding serve-completion events (busy while > 0).
    pub pending_serves: u32,
    /// Futures this activity is waiting on (busy while non-empty).
    pub waiting: BTreeSet<u64>,
    /// Replies that arrived for futures never awaited.
    pub stored_replies: BTreeMap<u64, Reply>,
    /// Held stubs (the local reference graph out-edges).
    pub stubs: StubTable,
    /// The distributed-collector endpoint attached to this activity.
    pub collector: Collector,
    /// Roots are never idle: registered objects and dummy referencers
    /// (§4.1).
    pub is_root: bool,
    /// Driver-pinned busyness (`Grid::set_busy`): an external client is
    /// mid-call on this activity. Orthogonal to `is_root`, so pinning
    /// and releasing never disturbs registry/root status.
    pub pinned_busy: bool,
    /// Idleness at the last refresh, to detect busy→idle transitions.
    pub was_idle: bool,
    /// Future sequence counter.
    pub next_future_seq: u64,
    /// Per-activity random stream.
    pub rng: SimRng,
}

impl Activity {
    /// Creates an activity shell.
    pub fn new(id: AoId, behavior: Box<dyn Behavior>, is_root: bool, rng: SimRng) -> Self {
        Activity {
            id,
            behavior,
            queue: VecDeque::new(),
            pending_serves: 0,
            waiting: BTreeSet::new(),
            stored_replies: BTreeMap::new(),
            stubs: StubTable::new(),
            collector: Collector::None,
            is_root,
            pinned_busy: false,
            // Start "busy": the runtime refreshes idleness right after
            // on_start, producing the busy→idle transition if warranted.
            was_idle: false,
            next_future_seq: 0,
            rng,
        }
    }

    /// §4.1 idleness: not serving, empty queue, not waiting, not a root,
    /// not pinned busy by the driver.
    pub fn is_idle(&self) -> bool {
        !self.is_root
            && !self.pinned_busy
            && self.pending_serves == 0
            && self.waiting.is_empty()
            && self.queue.is_empty()
    }

    /// True if a new request can start being served now.
    pub fn can_serve_next(&self) -> bool {
        self.pending_serves == 0 && self.waiting.is_empty() && !self.queue.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> SimRng {
        SimRng::from_seed(1)
    }

    #[test]
    fn spawn_alloc_is_per_process_sequential() {
        let mut a = SpawnAlloc::new(3);
        assert_eq!(a.allocate(ProcId(0)), AoId::new(0, 0));
        assert_eq!(a.allocate(ProcId(0)), AoId::new(0, 1));
        assert_eq!(a.allocate(ProcId(2)), AoId::new(2, 0));
    }

    #[test]
    fn ctx_allocates_distinct_futures() {
        let mut seq = 0u64;
        let mut alloc = SpawnAlloc::new(1);
        let mut r = rng();
        let mut ctx = AoCtx::new(AoId::new(0, 0), SimTime::ZERO, &mut seq, &mut alloc, &mut r);
        let f1 = ctx.call(AoId::new(0, 1), 1, 0, vec![]);
        let f2 = ctx.call_await(AoId::new(0, 1), 1, 0, vec![]);
        assert_ne!(f1, f2);
        assert_eq!(f1.caller, AoId::new(0, 0));
        assert_eq!(ctx.effects.len(), 2);
        assert_eq!(seq, 2);
    }

    #[test]
    fn ctx_spawn_returns_id_immediately() {
        let mut seq = 0u64;
        let mut alloc = SpawnAlloc::new(2);
        let mut r = rng();
        let mut ctx = AoCtx::new(AoId::new(0, 0), SimTime::ZERO, &mut seq, &mut alloc, &mut r);
        let id = ctx.spawn(ProcId(1), Box::new(Inert));
        assert_eq!(id, AoId::new(1, 0));
        assert_eq!(ctx.effects.len(), 1);
    }

    #[test]
    fn idleness_definition() {
        let mut a = Activity::new(AoId::new(0, 0), Box::new(Inert), false, rng());
        assert!(a.is_idle());
        a.pending_serves = 1;
        assert!(!a.is_idle());
        a.pending_serves = 0;
        a.waiting.insert(3);
        assert!(!a.is_idle(), "waiting on a future is busy (§4.1)");
        a.waiting.clear();
        a.queue.push_back(Request {
            sender: AoId::new(0, 1),
            method: 0,
            payload_bytes: 0,
            refs: vec![],
            future: None,
        });
        assert!(!a.is_idle());
    }

    #[test]
    fn roots_are_never_idle() {
        let a = Activity::new(AoId::new(0, 0), Box::new(Inert), true, rng());
        assert!(!a.is_idle());
    }

    #[test]
    fn serve_next_blocked_by_waiting() {
        let mut a = Activity::new(AoId::new(0, 0), Box::new(Inert), false, rng());
        a.queue.push_back(Request {
            sender: AoId::new(0, 1),
            method: 0,
            payload_bytes: 0,
            refs: vec![],
            future: None,
        });
        assert!(a.can_serve_next());
        a.waiting.insert(1);
        assert!(!a.can_serve_next(), "wait-by-necessity blocks the queue");
    }
}
