//! Runtime-neutral fault profiles for conformance testing.
//!
//! The paper's safety claim (§4.2) is conditional: the DGC is correct
//! only while `TTA > 2·TTB + MaxComm` holds under the *actual* delays a
//! deployment experiences. Exercising that bound therefore needs the
//! same fault scenario to run against every runtime — the deterministic
//! simulator (`dgc-simnet`), where faults are delivery-time arithmetic,
//! and the socket runtime (`dgc-rt-net`), where a chaos proxy perturbs
//! real TCP frames. This module is the shared vocabulary: a
//! [`FaultProfile`] describes *what* goes wrong on which links and when,
//! in runtime-neutral nanoseconds since scenario start ([`Time`]), and
//! each runtime realizes it with its own machinery:
//!
//! * `dgc_simnet::FaultPlan::from_profile` turns it into extra delivery
//!   latency, per-message drops and deferred events;
//! * `dgc_rt_net::chaos::ChaosProxy` turns it into held, discarded,
//!   reordered frames and severed connections between live sockets;
//! * `dgc_rt_net::NetNode::pause_for` realizes [`NodePause`] as a real
//!   stop-the-world stall of the node event loop.
//!
//! Primitives:
//!
//! * [`FaultKind::Delay`] — extra one-way latency during a window;
//! * [`FaultKind::Drop`] — seeded Bernoulli loss of individual
//!   messages/frames (TCP segments do not silently vanish, but frames
//!   crossing a flapping proxied link do — and the DGC's heartbeats must
//!   tolerate it);
//! * [`FaultKind::Partition`] — nothing crosses the link until the
//!   window closes (the simulator delivers at heal time, matching TCP
//!   retransmission after connectivity returns; the proxy severs
//!   connections and lets the transport's reconnect path deliver);
//! * [`FaultKind::Reorder`] — adjacent-frame swaps, violating the
//!   paper's FIFO transport assumption (§3.2). The FIFO simulator
//!   cannot express this one — it exists for adversarial robustness
//!   testing of the socket runtime only;
//! * [`NodePause`] — a stop-the-world pause of one whole node (§4.2's
//!   local-GC hazard);
//! * [`NodeCrash`] — a crash (and optional higher-incarnation restart)
//!   of one whole node: its activities are destroyed, the transport's
//!   send-failure path goes terminal, and the `dgc-membership` layer's
//!   dead verdict tells surviving referencers the node departed.
//!
//! All randomness (drop and reorder decisions, [`FaultProfile::randomized`])
//! is derived from the profile's seed with a SplitMix64 hash, so each
//! runtime's realization of a `(profile, seed)` pair is reproducible
//! run-to-run. The realizations are *not* loss-for-loss identical
//! across runtimes — they cannot be: the simulator decides per
//! protocol message while the proxy decides per TCP frame (which
//! batches many messages), and their sequence counters advance
//! differently. Conformance therefore compares oracle *verdicts*, not
//! loss patterns, and scenarios must be written so the expected verdict
//! is robust to any decision stream the stated probabilities allow.

use crate::units::{Dur, Time};

/// A half-open time window `[start, end)`: `start` is inside the
/// window, `end` is the first instant outside it. Matches the window
/// semantics of `dgc_simnet::fault` exactly, so conversions cannot
/// shift boundaries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Window {
    /// First instant of the window (inclusive).
    pub start: Time,
    /// First instant after the window (exclusive).
    pub end: Time,
}

impl Window {
    /// Builds a window from millisecond offsets since scenario start.
    pub const fn from_millis(start_ms: u64, end_ms: u64) -> Window {
        Window {
            start: Time::from_nanos(start_ms * 1_000_000),
            end: Time::from_nanos(end_ms * 1_000_000),
        }
    }

    /// True iff `t` is inside the half-open window.
    pub fn contains(&self, t: Time) -> bool {
        t >= self.start && t < self.end
    }

    /// Time remaining until the window closes; zero outside it.
    pub fn remaining(&self, t: Time) -> Dur {
        if self.contains(t) {
            self.end.since(t)
        } else {
            Dur::ZERO
        }
    }
}

/// What a [`LinkDisruption`] does to matching traffic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Extra one-way latency added to every matching message.
    Delay(Dur),
    /// Each matching message/frame is independently lost with
    /// probability `permille`/1000 (seeded, deterministic per profile).
    Drop {
        /// Loss probability in thousandths (0..=1000).
        permille: u16,
    },
    /// The link is down: nothing crosses until the window closes.
    Partition,
    /// Each matching frame is swapped with its successor with
    /// probability `permille`/1000. FIFO runtimes ignore this kind.
    Reorder {
        /// Swap probability in thousandths (0..=1000).
        permille: u16,
    },
}

/// One fault on directed node-to-node traffic during a window.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LinkDisruption {
    /// Source node filter; `None` matches any source.
    pub from: Option<u32>,
    /// Destination node filter; `None` matches any destination.
    pub to: Option<u32>,
    /// When the fault is active.
    pub window: Window,
    /// What it does.
    pub kind: FaultKind,
}

impl LinkDisruption {
    fn matches(&self, now: Time, from: u32, to: u32) -> bool {
        self.window.contains(now)
            && self.from.is_none_or(|f| f == from)
            && self.to.is_none_or(|t| t == to)
    }
}

/// A stop-the-world pause of one node: it neither ticks its activities
/// nor processes deliveries until the window closes (models a long
/// local-GC pause, the paper's §4.2 hazard).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NodePause {
    /// The paused node.
    pub node: u32,
    /// When it is stopped.
    pub window: Window,
}

/// A crash-restart of one whole node: at `down.start` the node dies —
/// every activity it hosts is destroyed (not *collected*: the crash is
/// the environment's doing, not the collector's) and it stops sending
/// or receiving anything. If `rejoin_incarnation` is set, the node
/// restarts at `down.end` as an **empty** node under that incarnation
/// number and must re-enter the cluster through the membership layer's
/// seed bootstrap (`dgc-membership`); when `None` the node never comes
/// back and `down.end` is only the bookkeeping end of the window.
///
/// This is the churn primitive the ROADMAP's discovery item calls for:
/// unlike a [`NodePause`], state does not survive, and unlike a
/// partition, the transport's send-failure path must go *terminal* so
/// referencers treat the node's activities as departed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NodeCrash {
    /// The crashing node.
    pub node: u32,
    /// Down window: crash at `start`; restart (if any) at `end`.
    pub down: Window,
    /// Incarnation the node rejoins under, strictly greater than any it
    /// lived before; `None` means it stays dead.
    pub rejoin_incarnation: Option<u64>,
}

impl NodeCrash {
    /// True if this crash leaves `node` dead at `t` (inside the down
    /// window, or forever past `down.start` when it never rejoins).
    pub fn down_at(&self, t: Time) -> bool {
        if self.rejoin_incarnation.is_some() {
            self.down.contains(t)
        } else {
            t >= self.down.start
        }
    }
}

/// A runtime-neutral schedule of link disruptions, node pauses and node
/// crash-restarts.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultProfile {
    links: Vec<LinkDisruption>,
    pauses: Vec<NodePause>,
    crashes: Vec<NodeCrash>,
    seed: u64,
}

impl FaultProfile {
    /// An empty profile: no faults.
    pub fn none() -> FaultProfile {
        FaultProfile::default()
    }

    /// Sets the seed that drop/reorder decisions derive from.
    pub fn seeded(mut self, seed: u64) -> FaultProfile {
        self.seed = seed;
        self
    }

    /// The decision seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Adds a delay disruption on `from → to` (either side `None` for a
    /// wildcard).
    pub fn delay(
        mut self,
        from: Option<u32>,
        to: Option<u32>,
        window: Window,
        extra: Dur,
    ) -> FaultProfile {
        self.links.push(LinkDisruption {
            from,
            to,
            window,
            kind: FaultKind::Delay(extra),
        });
        self
    }

    /// Adds a seeded frame-drop disruption.
    pub fn drop_frames(
        mut self,
        from: Option<u32>,
        to: Option<u32>,
        window: Window,
        permille: u16,
    ) -> FaultProfile {
        assert!(permille <= 1000, "drop probability above 100%");
        self.links.push(LinkDisruption {
            from,
            to,
            window,
            kind: FaultKind::Drop { permille },
        });
        self
    }

    /// Adds a partition of `from → to` during `window`. Call twice with
    /// the directions swapped for a symmetric partition.
    pub fn partition(mut self, from: Option<u32>, to: Option<u32>, window: Window) -> FaultProfile {
        self.links.push(LinkDisruption {
            from,
            to,
            window,
            kind: FaultKind::Partition,
        });
        self
    }

    /// Adds a symmetric partition (both directions) between `a` and `b`.
    pub fn partition_pair(self, a: u32, b: u32, window: Window) -> FaultProfile {
        self.partition(Some(a), Some(b), window)
            .partition(Some(b), Some(a), window)
    }

    /// Adds a seeded adjacent-frame reorder disruption (socket runtimes
    /// only; FIFO runtimes ignore it).
    pub fn reorder(
        mut self,
        from: Option<u32>,
        to: Option<u32>,
        window: Window,
        permille: u16,
    ) -> FaultProfile {
        assert!(permille <= 1000, "reorder probability above 100%");
        self.links.push(LinkDisruption {
            from,
            to,
            window,
            kind: FaultKind::Reorder { permille },
        });
        self
    }

    /// Adds a stop-the-world pause of `node`.
    pub fn pause(mut self, node: u32, window: Window) -> FaultProfile {
        self.pauses.push(NodePause { node, window });
        self
    }

    /// Adds a crash of `node` at `down.start`; if `rejoin_incarnation`
    /// is `Some`, the node restarts empty at `down.end` under that
    /// incarnation (see [`NodeCrash`]).
    pub fn crash(
        mut self,
        node: u32,
        down: Window,
        rejoin_incarnation: Option<u64>,
    ) -> FaultProfile {
        self.crashes.push(NodeCrash {
            node,
            down,
            rejoin_incarnation,
        });
        self
    }

    /// Raw link disruptions (for runtime realizations).
    pub fn link_disruptions(&self) -> &[LinkDisruption] {
        &self.links
    }

    /// Raw node pauses (for runtime realizations).
    pub fn node_pauses(&self) -> &[NodePause] {
        &self.pauses
    }

    /// Raw node crash-restarts (for runtime realizations).
    pub fn node_crashes(&self) -> &[NodeCrash] {
        &self.crashes
    }

    /// True if `node` is crashed (down) at `now`.
    pub fn crashed(&self, now: Time, node: u32) -> bool {
        self.crashes
            .iter()
            .any(|c| c.node == node && c.down_at(now))
    }

    /// True if the profile contains no faults at all.
    pub fn is_empty(&self) -> bool {
        self.links.is_empty() && self.pauses.is_empty() && self.crashes.is_empty()
    }

    // ------------------------------------------------------------------
    // Queries runtimes evaluate per message/frame
    // ------------------------------------------------------------------

    /// Total extra one-way latency for traffic sent at `now` over
    /// `from → to`. Overlapping delays accumulate; an active partition
    /// contributes "until the window closes", which is how a FIFO
    /// delivery-time runtime realizes a partition that heals.
    pub fn extra_delay(&self, now: Time, from: u32, to: u32) -> Dur {
        let mut d = Dur::ZERO;
        for l in &self.links {
            if l.matches(now, from, to) {
                match l.kind {
                    FaultKind::Delay(extra) => d = d.saturating_add(extra),
                    FaultKind::Partition => d = d.saturating_add(l.window.remaining(now)),
                    FaultKind::Drop { .. } | FaultKind::Reorder { .. } => {}
                }
            }
        }
        d
    }

    /// If `from → to` is inside an active partition window at `now`,
    /// returns the earliest instant the link heals.
    pub fn severed_until(&self, now: Time, from: u32, to: u32) -> Option<Time> {
        self.links
            .iter()
            .filter(|l| matches!(l.kind, FaultKind::Partition) && l.matches(now, from, to))
            .map(|l| l.window.end)
            .max()
    }

    /// Seeded drop decision for the `seq`-th message/frame on
    /// `from → to` at `now`. Deterministic in `(seed, from, to, seq)`
    /// and independent across links and sequence numbers.
    pub fn should_drop(&self, now: Time, from: u32, to: u32, seq: u64) -> bool {
        self.links.iter().enumerate().any(|(i, l)| {
            let FaultKind::Drop { permille } = l.kind else {
                return false;
            };
            l.matches(now, from, to) && bernoulli(self.seed, i as u64, from, to, seq, permille)
        })
    }

    /// Seeded reorder decision for the `seq`-th frame on `from → to`.
    pub fn should_reorder(&self, now: Time, from: u32, to: u32, seq: u64) -> bool {
        self.links.iter().enumerate().any(|(i, l)| {
            let FaultKind::Reorder { permille } = l.kind else {
                return false;
            };
            l.matches(now, from, to)
                && bernoulli(self.seed ^ 0x5EED, i as u64, from, to, seq, permille)
        })
    }

    /// If `node` is paused at `now`, returns the instant the longest
    /// covering pause ends.
    pub fn pause_end(&self, now: Time, node: u32) -> Option<Time> {
        self.pauses
            .iter()
            .filter(|p| p.node == node && p.window.contains(now))
            .map(|p| p.window.end)
            .max()
    }

    /// Upper bound on the extra one-way delay any single message can
    /// experience under this profile (delays summed where windows can
    /// overlap, partitions counted by their full width). Conformance
    /// scenarios use this to prove a profile respects the TTA slack.
    ///
    /// A [`FaultKind::Reorder`] disruption makes the bound [`Dur::MAX`]:
    /// a held-back frame waits for its *successor*, which on periodic
    /// traffic can be arbitrarily far away — reorder profiles cannot be
    /// proven in-slack and belong in adversarial robustness tests, not
    /// "safe" conformance scenarios.
    ///
    /// A [`NodeCrash`] makes the bound [`Dur::MAX`] too: a crash
    /// destroys endpoint state rather than delaying messages, so no
    /// delay bound can certify the profile — churn scenarios must argue
    /// their expected verdict from the ground truth (the crashed
    /// activities *are* dead) instead.
    ///
    /// A total-loss drop window (`permille == 1000`) is a partition in
    /// disguise and is counted by its full width. *Probabilistic* drops
    /// (`permille < 1000`) are **not** counted: no deterministic bound
    /// covers them (any frame might be lost), so a scenario that mixes
    /// partial loss into a "safe" profile must argue its safety
    /// separately — see `safe-with-slack`, whose cycle is garbage
    /// before the loss window opens, making every loss pattern
    /// verdict-neutral.
    ///
    /// [`NodePause`]s count by their full width too: a paused sender
    /// stops heartbeating and a paused receiver stops processing until
    /// the window closes, so end-to-end a pause stretches a message's
    /// effective delivery by up to the window — the hazard
    /// `pause-models-local-gc` demonstrates must not certify as
    /// in-slack.
    pub fn worst_case_extra_delay(&self) -> Dur {
        if !self.crashes.is_empty() {
            return Dur::MAX;
        }
        let mut total = Dur::ZERO;
        for l in &self.links {
            match l.kind {
                FaultKind::Delay(extra) => total = total.saturating_add(extra),
                FaultKind::Partition => {
                    total = total.saturating_add(l.window.end.since(l.window.start))
                }
                FaultKind::Reorder { .. } => return Dur::MAX,
                FaultKind::Drop { permille } if permille >= 1000 => {
                    total = total.saturating_add(l.window.end.since(l.window.start))
                }
                FaultKind::Drop { .. } => {}
            }
        }
        for p in &self.pauses {
            total = total.saturating_add(p.window.end.since(p.window.start));
        }
        total
    }

    /// A seeded random profile over `nodes` nodes within `horizon`:
    /// up to four disruptions (delay / drop / partition) plus at most
    /// one pause, every delay bounded by `max_delay` and every
    /// partition/pause window bounded by `max_delay` wide.
    ///
    /// The amplitude caps make these profiles *typically* in-slack for
    /// a `max_delay` chosen inside the configured TTA slack, but not
    /// provably so for every seed: up to four drop windows (≤ 30%
    /// loss each) can in principle line up over consecutive heartbeat
    /// rounds, and probabilistic loss has no deterministic bound (see
    /// [`FaultProfile::worst_case_extra_delay`]). The randomized
    /// conformance tests therefore pin a *fixed, verified* seed range —
    /// a deterministic regression corpus, not a universal safety
    /// theorem. Extending the range (or changing this generator) means
    /// re-verifying the new profiles.
    pub fn randomized(seed: u64, nodes: u32, horizon: Dur, max_delay: Dur) -> FaultProfile {
        assert!(nodes > 0, "profile over zero nodes");
        let mut rng = SplitMix64::new(seed);
        let mut profile = FaultProfile::none().seeded(seed);
        let window = |rng: &mut SplitMix64| {
            let start = rng.below(horizon.as_nanos().max(1));
            let len = 1 + rng.below(max_delay.as_nanos().max(1));
            Window {
                start: Time::from_nanos(start),
                end: Time::from_nanos(start.saturating_add(len)),
            }
        };
        let endpoint = |rng: &mut SplitMix64| -> Option<u32> {
            if rng.below(4) == 0 {
                None
            } else {
                Some(rng.below(nodes as u64) as u32)
            }
        };
        let n = 1 + rng.below(4);
        for _ in 0..n {
            let w = window(&mut rng);
            let from = endpoint(&mut rng);
            let to = endpoint(&mut rng);
            profile = match rng.below(3) {
                0 => profile.delay(
                    from,
                    to,
                    w,
                    Dur::from_nanos(1 + rng.below(max_delay.as_nanos().max(1))),
                ),
                1 => profile.drop_frames(from, to, w, rng.below(301) as u16),
                _ => profile.partition(from, to, w),
            };
        }
        if rng.below(2) == 0 {
            let w = window(&mut rng);
            profile = profile.pause(rng.below(nodes as u64) as u32, w);
        }
        profile
    }
}

/// Deterministic Bernoulli trial: hash the identifying tuple and
/// compare against the permille threshold. Public so every runtime
/// realization (simulator fault plans, chaos proxies) draws its loss
/// decisions from the same generator: a `(seed, stream, from, to,
/// seq)` tuple always decides the same way, making each realization
/// reproducible. (Runtimes number streams and sequences differently —
/// see the module docs — so reproducibility is per-runtime, not a
/// cross-runtime loss-pattern match.)
pub fn decision(seed: u64, stream: u64, from: u32, to: u32, seq: u64, permille: u16) -> bool {
    bernoulli(seed, stream, from, to, seq, permille)
}

fn bernoulli(seed: u64, link: u64, from: u32, to: u32, seq: u64, permille: u16) -> bool {
    let mut h = SplitMix64::new(
        seed ^ link.wrapping_mul(0x9E37_79B9_7F4A_7C15)
            ^ ((from as u64) << 32 | to as u64).wrapping_mul(0xBF58_476D_1CE4_E5B9)
            ^ seq.wrapping_mul(0x94D0_49BB_1331_11EB),
    );
    h.below(1000) < permille as u64
}

/// Minimal SplitMix64: `dgc-core` stays dependency-free, and fault
/// decisions must be bit-identical across runtimes, so the generator is
/// pinned here rather than borrowed from a runtime's RNG.
struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    fn new(seed: u64) -> SplitMix64 {
        SplitMix64 { state: seed }
    }

    fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform-enough integer in `[0, bound)`; `bound` must be > 0.
    fn below(&mut self, bound: u64) -> u64 {
        self.next() % bound
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(v: u64) -> Time {
        Time::from_nanos(v * 1_000_000)
    }

    #[test]
    fn window_is_half_open() {
        let w = Window::from_millis(10, 20);
        assert!(!w.contains(ms(9)));
        assert!(w.contains(ms(10)), "start is inclusive");
        assert!(w.contains(ms(19)));
        assert!(!w.contains(ms(20)), "end is exclusive");
        assert_eq!(w.remaining(ms(15)), Dur::from_millis(5));
        assert_eq!(w.remaining(ms(25)), Dur::ZERO);
    }

    #[test]
    fn delays_accumulate_and_filter() {
        let p = FaultProfile::none()
            .delay(
                Some(0),
                None,
                Window::from_millis(0, 100),
                Dur::from_millis(5),
            )
            .delay(
                None,
                Some(1),
                Window::from_millis(0, 100),
                Dur::from_millis(7),
            );
        assert_eq!(p.extra_delay(ms(50), 0, 1), Dur::from_millis(12));
        assert_eq!(p.extra_delay(ms(50), 0, 2), Dur::from_millis(5));
        assert_eq!(p.extra_delay(ms(50), 3, 1), Dur::from_millis(7));
        assert_eq!(p.extra_delay(ms(50), 3, 2), Dur::ZERO);
        assert_eq!(p.extra_delay(ms(100), 0, 1), Dur::ZERO, "window closed");
    }

    #[test]
    fn partition_delays_until_heal_and_reports_sever() {
        let p = FaultProfile::none().partition_pair(0, 1, Window::from_millis(100, 300));
        assert_eq!(p.extra_delay(ms(150), 0, 1), Dur::from_millis(150));
        assert_eq!(p.extra_delay(ms(150), 1, 0), Dur::from_millis(150));
        assert_eq!(p.severed_until(ms(150), 0, 1), Some(ms(300)));
        assert_eq!(p.severed_until(ms(300), 0, 1), None, "healed at end");
        assert_eq!(p.severed_until(ms(150), 0, 2), None, "other links clear");
    }

    #[test]
    fn drop_decisions_are_deterministic_and_windowed() {
        let p = FaultProfile::none().seeded(42).drop_frames(
            Some(0),
            Some(1),
            Window::from_millis(0, 1000),
            500,
        );
        let decisions: Vec<bool> = (0..64).map(|s| p.should_drop(ms(10), 0, 1, s)).collect();
        let again: Vec<bool> = (0..64).map(|s| p.should_drop(ms(10), 0, 1, s)).collect();
        assert_eq!(decisions, again, "same tuple, same decision");
        let hits = decisions.iter().filter(|d| **d).count();
        assert!((10..=54).contains(&hits), "~50% expected, got {hits}/64");
        assert!(
            (0..64).all(|s| !p.should_drop(ms(2000), 0, 1, s)),
            "outside the window nothing drops"
        );
        assert!(
            (0..64).all(|s| !p.should_drop(ms(10), 1, 0, s)),
            "reverse direction unaffected"
        );
    }

    #[test]
    fn different_seeds_make_different_drop_decisions() {
        let mk = |seed| {
            FaultProfile::none().seeded(seed).drop_frames(
                None,
                None,
                Window::from_millis(0, 1000),
                500,
            )
        };
        let a: Vec<bool> = (0..64).map(|s| mk(1).should_drop(ms(1), 0, 1, s)).collect();
        let b: Vec<bool> = (0..64).map(|s| mk(2).should_drop(ms(1), 0, 1, s)).collect();
        assert_ne!(a, b);
    }

    #[test]
    fn pause_end_takes_longest_cover() {
        let p = FaultProfile::none()
            .pause(3, Window::from_millis(5, 10))
            .pause(3, Window::from_millis(5, 15));
        assert_eq!(p.pause_end(ms(7), 3), Some(ms(15)));
        assert_eq!(p.pause_end(ms(4), 3), None);
        assert_eq!(p.pause_end(ms(15), 3), None);
        assert_eq!(p.pause_end(ms(7), 4), None);
    }

    #[test]
    fn worst_case_bounds_every_query() {
        let p = FaultProfile::none()
            .delay(None, None, Window::from_millis(0, 100), Dur::from_millis(9))
            .partition(Some(0), Some(1), Window::from_millis(200, 260));
        assert_eq!(p.worst_case_extra_delay(), Dur::from_millis(69));
        for t in 0..300 {
            assert!(p.extra_delay(ms(t), 0, 1) <= p.worst_case_extra_delay());
        }
    }

    #[test]
    fn worst_case_counts_total_loss_as_partition_and_skips_partial_loss() {
        // A 100% drop window delivers nothing — outage-equivalent to a
        // partition of the same width, and must not certify as
        // in-slack.
        let total_loss =
            FaultProfile::none().drop_frames(None, None, Window::from_millis(0, 10_000), 1000);
        assert_eq!(
            total_loss.worst_case_extra_delay(),
            Dur::from_millis(10_000)
        );
        // Probabilistic loss is outside the deterministic bound's
        // contract (documented), not silently zero-cost safety.
        let partial =
            FaultProfile::none().drop_frames(None, None, Window::from_millis(0, 10_000), 100);
        assert_eq!(partial.worst_case_extra_delay(), Dur::ZERO);
    }

    #[test]
    fn worst_case_counts_pauses_by_width() {
        // A profile whose only hazard is a long stop-the-world pause
        // must not certify as in-slack.
        let p = FaultProfile::none()
            .pause(0, Window::from_millis(0, 10_000))
            .pause(1, Window::from_millis(100, 200));
        assert_eq!(p.worst_case_extra_delay(), Dur::from_millis(10_100));
    }

    #[test]
    fn crash_windows_and_the_rejoin_distinction() {
        let p = FaultProfile::none()
            .crash(2, Window::from_millis(100, 500), Some(2))
            .crash(3, Window::from_millis(200, 300), None);
        assert_eq!(p.node_crashes().len(), 2);
        // Rejoining crash: down exactly over the window.
        assert!(!p.crashed(ms(99), 2));
        assert!(p.crashed(ms(100), 2));
        assert!(p.crashed(ms(499), 2));
        assert!(!p.crashed(ms(500), 2), "rejoined at down.end");
        // Non-rejoining crash: dead forever past the start.
        assert!(!p.crashed(ms(199), 3));
        assert!(p.crashed(ms(250), 3));
        assert!(p.crashed(ms(10_000), 3), "never comes back");
        assert!(!p.crashed(ms(250), 4), "other nodes unaffected");
        assert!(!p.is_empty());
    }

    #[test]
    fn crashes_cannot_certify_as_in_slack() {
        let p = FaultProfile::none().crash(0, Window::from_millis(0, 10), Some(2));
        assert_eq!(p.worst_case_extra_delay(), Dur::MAX);
    }

    #[test]
    fn randomized_profiles_are_reproducible_and_bounded() {
        let horizon = Dur::from_secs(2);
        let cap = Dur::from_millis(40);
        for seed in 0..32 {
            let a = FaultProfile::randomized(seed, 3, horizon, cap);
            let b = FaultProfile::randomized(seed, 3, horizon, cap);
            assert_eq!(a, b, "same seed, same profile");
            assert!(!a.is_empty());
            // Worst case counts every disruption, each bounded by cap.
            assert!(a.worst_case_extra_delay() <= cap.saturating_mul(5));
        }
        assert_ne!(
            FaultProfile::randomized(1, 3, horizon, cap),
            FaultProfile::randomized(2, 3, horizon, cap)
        );
    }
}
