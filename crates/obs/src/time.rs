//! The virtual/wall time seam.
//!
//! Every timestamp the telemetry plane records comes from a
//! [`TimeSource`]: the socket runtime anchors one to a wall-clock
//! [`Instant`] epoch, the deterministic simulator drives one from a
//! shared atomic the event loop advances in virtual nanoseconds. Code
//! instrumented against this seam is oblivious to which world it runs
//! in — the same property the simulator's determinism rests on.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Where "now" comes from, in nanoseconds since an arbitrary epoch.
#[derive(Debug, Clone)]
pub enum TimeSource {
    /// Wall clock: nanoseconds elapsed since `epoch` (socket runtime).
    Wall {
        /// The anchor instant; readings are `epoch.elapsed()`.
        epoch: Instant,
    },
    /// Virtual clock: whatever the owner last stored (simulator). All
    /// registries of one simulation share a single atomic, so their
    /// timestamps are mutually ordered.
    Shared(Arc<AtomicU64>),
}

impl TimeSource {
    /// A wall-clock source anchored now.
    pub fn wall() -> TimeSource {
        TimeSource::Wall {
            epoch: Instant::now(),
        }
    }

    /// A wall-clock source anchored at `epoch` (share the runtime's
    /// existing epoch so telemetry and protocol timestamps agree).
    pub fn wall_since(epoch: Instant) -> TimeSource {
        TimeSource::Wall { epoch }
    }

    /// A virtual source read from `clock`; the simulation's event loop
    /// stores the current virtual time into it as it advances.
    pub fn shared(clock: Arc<AtomicU64>) -> TimeSource {
        TimeSource::Shared(clock)
    }

    /// A fresh virtual source plus the handle that advances it.
    pub fn simulated() -> (TimeSource, Arc<AtomicU64>) {
        let clock = Arc::new(AtomicU64::new(0));
        (TimeSource::Shared(Arc::clone(&clock)), clock)
    }

    /// Current time in nanoseconds since this source's epoch.
    pub fn now_nanos(&self) -> u64 {
        match self {
            TimeSource::Wall { epoch } => epoch.elapsed().as_nanos() as u64,
            TimeSource::Shared(clock) => clock.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wall_advances() {
        let t = TimeSource::wall();
        let a = t.now_nanos();
        std::thread::sleep(std::time::Duration::from_millis(2));
        assert!(t.now_nanos() > a);
    }

    #[test]
    fn shared_reads_what_was_stored() {
        let (t, clock) = TimeSource::simulated();
        assert_eq!(t.now_nanos(), 0);
        clock.store(42_000, Ordering::Relaxed);
        assert_eq!(t.now_nanos(), 42_000);
        // Clones observe the same virtual clock.
        let t2 = t.clone();
        clock.store(99, Ordering::Relaxed);
        assert_eq!(t2.now_nanos(), 99);
    }
}
