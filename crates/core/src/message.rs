//! DGC protocol messages (§3.2 "DGC Messages and Responses").
//!
//! DGC **messages** flow from referencers to referenced active objects —
//! the same direction the application can already communicate in, so the
//! collector needs no extra connectivity (firewalls/NATs). DGC
//! **responses** travel back on the same FIFO connection.

use crate::clock::NamedClock;
use crate::id::AoId;
use crate::units::Dur;

/// A DGC message, broadcast every TTB from a referencer to each of its
/// referenced active objects.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DgcMessage {
    /// Sender id — lets the receiver discover new referencers and know
    /// which earlier DGC response the `consensus` bit refers to.
    pub sender: AoId,
    /// The sender's view of the final activity clock, propagated through
    /// the reference graph.
    pub clock: NamedClock,
    /// Acceptance of the consensus candidate received in the previous DGC
    /// response from this destination. Toward the sender's *parent* this
    /// is the conjunction of the sender's own agreement and that of all
    /// its referencers; toward anyone else it is only the sender's local
    /// agreement.
    pub consensus: bool,
    /// The sender's current TTB. The paper's §7.1 extension: advertising
    /// per-object heartbeat periods lets receivers compute a safe
    /// per-referencer expiry (`2·TTB + MaxComm`) instead of assuming a
    /// global constant.
    pub sender_ttb: Dur,
}

/// A DGC response, returned for every received DGC message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DgcResponse {
    /// Responder id (the referenced active object).
    pub responder: AoId,
    /// The consensus candidate: the responder's final activity clock.
    /// Never used to update the receiver's own clock (Fig. 4 — otherwise
    /// a downstream cycle would keep an upstream one alive), only to
    /// build the consensus.
    pub clock: NamedClock,
    /// True if the responder can serve as a parent in the reverse
    /// spanning tree, i.e. it has a parent itself or is the originator.
    /// Guarantees every adopted parent leads to the originator.
    pub has_parent: bool,
    /// §4.3 optimization: set once the responder has detected (or been
    /// told of) a completed consensus, so the whole cycle learns it is
    /// dead in one traversal instead of re-running consensus per
    /// sub-cycle.
    pub consensus_reached: bool,
    /// Responder's depth in the reverse spanning tree (0 for the
    /// originator). Only present when the breadth-first parent policy of
    /// §7.2 is enabled; referencers then prefer shallow parents.
    pub depth: Option<u32>,
}

/// Why an active object decided to terminate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum TerminateReason {
    /// No DGC message received for TTA: no referencer remains (§3.1).
    Acyclic,
    /// This object owns the final activity clock and its whole recursive
    /// referencer closure agreed on it (§3.2): it detected the garbage
    /// cycle itself.
    CyclicDetected,
    /// A referenced object reported `consensus_reached`; this object was
    /// part of the agreed cycle and terminates without re-running
    /// consensus (§4.3 step 4).
    CyclicPropagated,
}

impl TerminateReason {
    /// True for either cyclic variant.
    pub fn is_cyclic(self) -> bool {
        matches!(
            self,
            TerminateReason::CyclicDetected | TerminateReason::CyclicPropagated
        )
    }
}

/// Everything a [`crate::protocol::DgcState`] can ask its runtime to do.
///
/// The protocol core is sans-io: handlers mutate local state and return
/// actions; the runtime performs the sends and destroys terminated
/// objects.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum Action {
    /// Send a DGC message to a referenced active object.
    SendMessage {
        /// Destination (a referenced active object).
        to: AoId,
        /// The message.
        message: DgcMessage,
    },
    /// Send a DGC response back to a referencer.
    SendResponse {
        /// Destination (the referencer whose message we are answering).
        to: AoId,
        /// The response.
        response: DgcResponse,
    },
    /// Destroy this active object; it is garbage.
    Terminate {
        /// Which path of the collector fired.
        reason: TerminateReason,
    },
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ao(n: u32) -> AoId {
        AoId::new(n, 0)
    }

    #[test]
    fn terminate_reason_classification() {
        assert!(!TerminateReason::Acyclic.is_cyclic());
        assert!(TerminateReason::CyclicDetected.is_cyclic());
        assert!(TerminateReason::CyclicPropagated.is_cyclic());
    }

    #[test]
    fn message_is_plain_data() {
        let m = DgcMessage {
            sender: ao(1),
            clock: NamedClock::initial(ao(1)),
            consensus: true,
            sender_ttb: Dur::from_secs(30),
        };
        let copy = m;
        assert_eq!(m, copy);
    }

    #[test]
    fn response_is_plain_data() {
        let r = DgcResponse {
            responder: ao(2),
            clock: NamedClock::initial(ao(2)),
            has_parent: false,
            consensus_reached: false,
            depth: Some(3),
        };
        assert_eq!(r, r.clone());
        assert_eq!(r.depth, Some(3));
    }
}
