//! # dgc-plane — the secure multi-tenant plane
//!
//! The paper's DGC assumes a trusted LAN of cooperating runtimes; a
//! service carrying traffic for many users does not get that luxury.
//! This crate is the runtime-neutral policy layer both runtimes share:
//!
//! * [`auth`] — a **pre-shared-key HMAC challenge/response handshake**
//!   (sans-io, like the protocol core): a link is authenticated before
//!   any frame item crosses it. `dgc-rt-net` drives it over sockets at
//!   the `Hello` seam; the simulator models the same key check at the
//!   envelope layer. Primitives are the vendored `hmac` shim (SHA-256 +
//!   HMAC + constant-time compare — no crates.io in this build).
//! * [`envelope`] — a **middleware pipeline** over app-plane
//!   [`Envelope`]s, the way harmony runs every protocol through one
//!   `PipelineExecutor`: incoming and outgoing stages (authenticate,
//!   tenant-tag, isolate, transform, reject) written once, enforced on
//!   sockets and in the simulator alike.
//! * [`tenant`] — **tenant isolation and accounting**: a [`TenantId`]
//!   woven through the app plane, a [`TenantMap`] of activity
//!   ownership, and a [`TenantLedger`] whose per-tenant counters obey
//!   the egress plane's conservation law (enqueued = flushed + returned
//!   + pending) and mirror into `dgc-obs` under `tenant.<id>.*`.
//!
//! Everything here is sans-io and deterministic: no sockets, no clocks,
//! no randomness (nonces are injected by the runtimes).

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod auth;
pub mod envelope;
pub mod tenant;

pub use auth::{AuthError, AuthKey, AuthMsg, Authenticator, Step, MAC_LEN, NONCE_LEN};
pub use envelope::{
    Envelope, FnStage, Middleware, MiddlewareCtx, Pipeline, RequireAuth, TenantIsolation,
    TenantTag, Verdict,
};
pub use tenant::{TenantCounters, TenantId, TenantLedger, TenantMap};
