//! Active-object identity.
//!
//! The paper's algorithm distinguishes two relationships (§2.2, Fig. 2):
//! *referenced* active objects, which the DGC must be able to contact
//! (a remote reference), and *referencers*, which only ever need to be
//! **identified** — the DGC never contacts them directly, which is what
//! makes the algorithm work behind firewalls and NATs. An [`AoId`]
//! therefore serves both purposes: it is globally unique, totally ordered
//! (the named-clock tie-break requires it), and carries enough routing
//! information (`node`) for a runtime to reach the object when it does
//! hold a reference.

use std::fmt;

/// Globally unique identifier of an active object.
///
/// `node` identifies the address space (process / JVM) hosting the object
/// and `index` is the per-node creation counter. The derived lexicographic
/// order (`node`, then `index`) provides the total order used to break
/// ties between named activity clocks (§3.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct AoId {
    /// Hosting address space (maps to a `simnet` process or a thread-pool
    /// node in the threaded runtime).
    pub node: u32,
    /// Creation index within the node.
    pub index: u32,
}

impl AoId {
    /// Builds an id from its parts.
    pub const fn new(node: u32, index: u32) -> Self {
        AoId { node, index }
    }
}

impl fmt::Display for AoId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ao{}.{}", self.node, self.index)
    }
}

/// Allocates per-node `AoId`s.
#[derive(Debug, Clone)]
pub struct AoIdAllocator {
    node: u32,
    next: u32,
}

impl AoIdAllocator {
    /// Creates an allocator for a node.
    pub fn new(node: u32) -> Self {
        AoIdAllocator { node, next: 0 }
    }

    /// Returns a fresh id on this node.
    pub fn allocate(&mut self) -> AoId {
        let id = AoId::new(self.node, self.next);
        self.next = self.next.checked_add(1).expect("AoId index overflow");
        id
    }
}

/// Widest table a [`position_sorted`] lookup probes linearly. Real
/// referencer/referenced tables hold a handful to a few dozen edges;
/// at those sizes a branch-predictable forward scan over the sorted
/// vec beats `binary_search`'s data-dependent branches. Wider tables
/// fall back to bisection, keeping lookups `O(log n)` in the tail.
pub(crate) const LINEAR_SCAN_MAX: usize = 64;

/// Locates `id` in a vec sorted by `AoId`: `Ok(i)` when present,
/// `Err(i)` with the insertion point otherwise — `binary_search`'s
/// contract, served by a linear probe below [`LINEAR_SCAN_MAX`]
/// entries. The arena tables route every point lookup through this.
pub(crate) fn position_sorted<T>(entries: &[(AoId, T)], id: AoId) -> Result<usize, usize> {
    if entries.len() <= LINEAR_SCAN_MAX {
        for (i, (k, _)) in entries.iter().enumerate() {
            if *k >= id {
                return if *k == id { Ok(i) } else { Err(i) };
            }
        }
        Err(entries.len())
    } else {
        entries.binary_search_by(|(k, _)| k.cmp(&id))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn total_order_is_node_then_index() {
        assert!(AoId::new(0, 5) < AoId::new(1, 0));
        assert!(AoId::new(1, 0) < AoId::new(1, 1));
        assert_eq!(AoId::new(2, 3), AoId::new(2, 3));
    }

    #[test]
    fn display_is_compact() {
        assert_eq!(AoId::new(3, 14).to_string(), "ao3.14");
    }

    #[test]
    fn position_sorted_matches_binary_search_in_both_regimes() {
        for width in [0usize, 1, 5, LINEAR_SCAN_MAX, LINEAR_SCAN_MAX + 40] {
            let entries: Vec<(AoId, u32)> = (0..width)
                .map(|i| (AoId::new(0, 2 * i as u32), i as u32))
                .collect();
            for probe in 0..=(2 * width as u32 + 1) {
                let id = AoId::new(0, probe);
                let expect = entries.binary_search_by(|(k, _)| k.cmp(&id));
                assert_eq!(
                    position_sorted(&entries, id),
                    expect,
                    "width {width} probe {probe}"
                );
            }
        }
    }

    #[test]
    fn allocator_is_sequential_and_unique() {
        let mut alloc = AoIdAllocator::new(7);
        let a = alloc.allocate();
        let b = alloc.allocate();
        assert_eq!(a, AoId::new(7, 0));
        assert_eq!(b, AoId::new(7, 1));
        assert_ne!(a, b);
    }
}
