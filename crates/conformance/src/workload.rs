//! Workload-driven conformance: the oracle judges a *real* application
//! run, not a scripted one.
//!
//! The scripted scenarios in [`crate::scenarios`] pin the §4.2 fault
//! quadrants with hand-written timelines. This module closes the other
//! gap: it runs an actual §5 workload — the CG-style bulk-synchronous
//! request/reply rounds of [`dgc_workloads::bsp`] — over both runtimes
//! through the shared [`dgc_workloads::driver::AppTransport`] trait,
//! then rebuilds the run's ground-truth script from the driver trace
//! and hands it to the *same* [`evaluate`] oracle the scripted
//! scenarios use. Conformance means both runtimes earn
//! [`Verdict::SAFE_AND_COMPLETE`]: nothing live collected while the
//! rounds ran, and the released worker clique fully collected after.

use std::collections::BTreeMap;
use std::time::Duration;

use dgc_activeobj::collector::CollectorKind;
use dgc_activeobj::runtime::{Grid, GridConfig};
use dgc_core::config::DgcConfig;
use dgc_core::faults::FaultProfile;
use dgc_core::id::AoId;
use dgc_core::units::{Dur, Time};
use dgc_rt_net::{Cluster, NetConfig};
use dgc_simnet::time::SimDuration;
use dgc_simnet::topology::Topology;
use dgc_workloads::driver::{AppTransport, ClusterTransport, GridTransport, Traced, TracedOp};
use dgc_workloads::nas::Kernel;
use dgc_workloads::run_bsp;

use crate::{evaluate, Observation, Op, Scenario, ScriptOp, Verdict};

/// Millisecond-scale protocol shared by both runtimes, like the
/// scripted scenarios use.
fn workload_dgc() -> DgcConfig {
    DgcConfig::builder()
        .ttb(Dur::from_millis(25))
        .tta(Dur::from_millis(80))
        .max_comm(Dur::from_millis(20))
        .build()
}

fn workload_params() -> dgc_workloads::NasParams {
    let mut params = Kernel::Cg.class_c().scaled_down(4, 25);
    params.iterations = 8;
    params
}

const NODES: u32 = 2;

/// One workload conformance run on one runtime.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WorkloadRun {
    /// The oracle's verdict over the reconstructed script.
    pub verdict: Verdict,
    /// The kernel's verification value (must also agree bit-for-bit
    /// between runtimes — same math, different wires).
    pub checksum: f64,
}

/// Drives the workload on any transport and judges it with the shared
/// oracle.
fn run_and_judge<T: AppTransport>(transport: &mut T) -> WorkloadRun {
    let params = workload_params();
    let outcome = run_bsp(
        transport,
        &params,
        &|i| Kernel::Cg.math(i),
        Time::ZERO + Dur::from_secs(120),
    );

    // Watch the collector finish the released clique, stamping each
    // termination when first seen (the same observation discipline as
    // the scripted socket runner).
    let mut first_seen: BTreeMap<AoId, Time> = BTreeMap::new();
    let deadline = outcome.result_at + Dur::from_secs(60);
    loop {
        for ao in transport.terminated() {
            first_seen.entry(ao).or_insert_with(|| transport.now());
        }
        let all = outcome
            .layout
            .workers
            .iter()
            .all(|w| first_seen.contains_key(w));
        if all || transport.now() >= deadline {
            break;
        }
        transport.step();
    }

    // Rebuild the ground truth: tags are assigned in spawn order, so
    // the verdict cannot depend on runtime-specific AoIds.
    let mut tags: BTreeMap<AoId, usize> = BTreeMap::new();
    let mut script: Vec<ScriptOp> = Vec::new();
    for Traced { at, op } in &outcome.trace {
        let op = match *op {
            TracedOp::Spawn { ao, busy } => {
                let tag = tags.len();
                tags.insert(ao, tag);
                Op::Spawn {
                    tag,
                    node: ao.node,
                    busy,
                }
            }
            TracedOp::SetIdle { ao, idle } => Op::SetIdle {
                tag: tags[&ao],
                idle,
            },
            TracedOp::AddRef { from, to } => Op::AddRef {
                from: tags[&from],
                to: tags[&to],
            },
            TracedOp::DropRef { from, to } => Op::DropRef {
                from: tags[&from],
                to: tags[&to],
            },
        };
        script.push(ScriptOp { at: *at, op });
    }
    let horizon = transport
        .now()
        .since(Time::ZERO)
        .saturating_add(Dur::from_millis(1));
    let scenario = Scenario {
        name: "workload-cg-rounds",
        nodes: NODES,
        dgc: workload_dgc(),
        script,
        profile: FaultProfile::none(),
        membership: None,
        horizon,
        expect: Verdict::SAFE_AND_COMPLETE,
    };
    let observations: Vec<Observation> = first_seen
        .iter()
        .filter_map(|(ao, at)| tags.get(ao).map(|tag| Observation { at: *at, tag: *tag }))
        .collect();
    WorkloadRun {
        verdict: evaluate(&scenario, &observations),
        checksum: outcome.checksum,
    }
}

/// The workload scenario on the deterministic simulator.
pub fn run_workload_simnet(seed: u64) -> WorkloadRun {
    let topo = Topology::single_site(NODES, SimDuration::from_millis(2));
    let grid = Grid::new(
        GridConfig::new(topo)
            .collector(CollectorKind::Complete(workload_dgc()))
            .seed(seed)
            .egress(dgc_core::egress::FlushPolicy::default()),
    );
    let mut transport = GridTransport::new(grid, SimDuration::from_millis(5));
    let run = run_and_judge(&mut transport);
    // The grid's built-in oracle must concur with the harness verdict,
    // exactly like the scripted simnet runner cross-checks it.
    assert_eq!(
        run.verdict.wrongful_collection,
        !transport.grid().violations().is_empty(),
        "workload harness and grid oracle disagree: {:?}",
        transport.grid().violations()
    );
    run
}

/// The workload scenario on a localhost TCP cluster.
pub fn run_workload_rtnet(_seed: u64) -> std::io::Result<WorkloadRun> {
    // The wall clock is the socket runtime's only seed; the parameter
    // keeps the call shape symmetric with the scripted runners.
    let cluster = Cluster::listen_local(NODES, NetConfig::new(workload_dgc()))?;
    let mut transport = ClusterTransport::new(cluster, Duration::from_millis(1));
    let run = run_and_judge(&mut transport);
    transport.into_cluster().shutdown();
    Ok(run)
}
