//! The same protocol core under real threads and wall-clock time.
//!
//! Three OS threads each host one endpoint of a distributed cycle;
//! TTB is 25 real milliseconds. Watch the consensus reclaim the cycle in
//! a few hundred milliseconds of *wall* time — the identical sans-io
//! `DgcState` the simulator drives in virtual time.
//!
//! Run with: `cargo run --example threaded_demo`

use std::time::{Duration, Instant};

use grid_dgc::dgc::config::DgcConfig;
use grid_dgc::dgc::units::Dur;
use grid_dgc::rt_thread::ThreadGrid;

fn main() {
    let cfg = DgcConfig::builder()
        .ttb(Dur::from_millis(25))
        .tta(Dur::from_millis(80))
        .max_comm(Dur::from_millis(20))
        .build();
    cfg.validate().expect("safe timing");

    let grid = ThreadGrid::new(3, cfg);
    let a = grid.add_activity(0);
    let b = grid.add_activity(1);
    let c = grid.add_activity(2);
    println!("three activities on three OS threads: {a}, {b}, {c}");

    grid.add_ref(a, b);
    grid.add_ref(b, c);
    grid.add_ref(c, a);
    println!("wired into a cycle a → b → c → a; all still busy…");

    let t0 = Instant::now();
    std::thread::sleep(Duration::from_millis(200));
    assert!(grid.terminated().is_empty(), "busy activities never die");
    println!("t={:?}: all alive (busy)", t0.elapsed());

    grid.set_idle(a, true);
    grid.set_idle(b, true);
    grid.set_idle(c, true);
    println!("all three declared idle — the cycle is now garbage");

    let collected = grid.wait_until(Duration::from_secs(10), |t| t.len() == 3);
    assert!(
        collected,
        "cycle must be collected: {:?}",
        grid.terminated()
    );
    println!("t={:?}: collected:", t0.elapsed());
    for t in grid.terminated() {
        println!("  {} ({:?})", t.ao, t.reason);
    }
    grid.shutdown();
    println!("node threads joined. same protocol, real concurrency.");
}
