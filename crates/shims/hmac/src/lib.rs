//! Vendored crypto primitives for the secure plane: SHA-256
//! (FIPS 180-4), HMAC-SHA-256 (RFC 2104), and a constant-time
//! comparison. The build environment has no crates.io access, so the
//! usual RustCrypto crates are replaced by this minimal, test-vectored
//! implementation; swap the workspace `path` for the registry crates to
//! use upstream.
//!
//! Scope is deliberately small: everything `dgc-plane`'s pre-shared-key
//! challenge/response handshake needs and nothing more. No secret-keyed
//! branching anywhere: the compression function is branch-free on data,
//! and [`ct_eq`] folds differences without early exit.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

/// Digest size of SHA-256, in bytes.
pub const DIGEST_LEN: usize = 32;

/// Internal block size of SHA-256, in bytes (HMAC pads keys to this).
pub const BLOCK_LEN: usize = 64;

/// FIPS 180-4 round constants (first 32 bits of the fractional parts of
/// the cube roots of the first 64 primes).
const K: [u32; 64] = [
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1, 0x923f82a4, 0xab1c5ed5,
    0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3, 0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174,
    0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147, 0x06ca6351, 0x14292967,
    0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13, 0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85,
    0xa2bfe8a1, 0xa81a664b, 0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f, 0x682e6ff3,
    0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208, 0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2,
];

/// Incremental SHA-256 hasher.
#[derive(Clone)]
pub struct Sha256 {
    state: [u32; 8],
    /// Total message length fed so far, in bytes.
    len: u64,
    /// Partially filled block.
    buf: [u8; BLOCK_LEN],
    buf_len: usize,
}

impl Default for Sha256 {
    fn default() -> Self {
        Sha256::new()
    }
}

impl Sha256 {
    /// Fresh hasher (FIPS 180-4 initial state).
    pub fn new() -> Sha256 {
        Sha256 {
            state: [
                0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a, 0x510e527f, 0x9b05688c, 0x1f83d9ab,
                0x5be0cd19,
            ],
            len: 0,
            buf: [0; BLOCK_LEN],
            buf_len: 0,
        }
    }

    /// Feeds `data` into the hash.
    pub fn update(&mut self, mut data: &[u8]) {
        self.len = self.len.wrapping_add(data.len() as u64);
        if self.buf_len > 0 {
            let take = data.len().min(BLOCK_LEN - self.buf_len);
            self.buf[self.buf_len..self.buf_len + take].copy_from_slice(&data[..take]);
            self.buf_len += take;
            data = &data[take..];
            if self.buf_len == BLOCK_LEN {
                let block = self.buf;
                self.compress(&block);
                self.buf_len = 0;
            }
        }
        while data.len() >= BLOCK_LEN {
            let (block, rest) = data.split_at(BLOCK_LEN);
            let mut b = [0u8; BLOCK_LEN];
            b.copy_from_slice(block);
            self.compress(&b);
            data = rest;
        }
        if !data.is_empty() {
            self.buf[..data.len()].copy_from_slice(data);
            self.buf_len = data.len();
        }
    }

    /// Finishes the hash and returns the digest.
    pub fn finalize(mut self) -> [u8; DIGEST_LEN] {
        // The bit length is captured before padding; the padding bytes
        // fed through `update` below must not count toward it.
        let bit_len = self.len.wrapping_mul(8);
        // Padding: 0x80, zeros, then the 64-bit big-endian bit length.
        self.update(&[0x80]);
        while self.buf_len != 56 {
            self.update(&[0]);
        }
        let mut block = self.buf;
        block[56..64].copy_from_slice(&bit_len.to_be_bytes());
        self.compress(&block);
        let mut out = [0u8; DIGEST_LEN];
        for (i, word) in self.state.iter().enumerate() {
            out[i * 4..i * 4 + 4].copy_from_slice(&word.to_be_bytes());
        }
        out
    }

    fn compress(&mut self, block: &[u8; BLOCK_LEN]) {
        let mut w = [0u32; 64];
        for (i, chunk) in block.chunks_exact(4).enumerate() {
            w[i] = u32::from_be_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
        }
        for i in 16..64 {
            let s0 = w[i - 15].rotate_right(7) ^ w[i - 15].rotate_right(18) ^ (w[i - 15] >> 3);
            let s1 = w[i - 2].rotate_right(17) ^ w[i - 2].rotate_right(19) ^ (w[i - 2] >> 10);
            w[i] = w[i - 16]
                .wrapping_add(s0)
                .wrapping_add(w[i - 7])
                .wrapping_add(s1);
        }
        let [mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut h] = self.state;
        for i in 0..64 {
            let s1 = e.rotate_right(6) ^ e.rotate_right(11) ^ e.rotate_right(25);
            let ch = (e & f) ^ (!e & g);
            let t1 = h
                .wrapping_add(s1)
                .wrapping_add(ch)
                .wrapping_add(K[i])
                .wrapping_add(w[i]);
            let s0 = a.rotate_right(2) ^ a.rotate_right(13) ^ a.rotate_right(22);
            let maj = (a & b) ^ (a & c) ^ (b & c);
            let t2 = s0.wrapping_add(maj);
            h = g;
            g = f;
            f = e;
            e = d.wrapping_add(t1);
            d = c;
            c = b;
            b = a;
            a = t1.wrapping_add(t2);
        }
        for (s, v) in self.state.iter_mut().zip([a, b, c, d, e, f, g, h]) {
            *s = s.wrapping_add(v);
        }
    }
}

/// One-shot SHA-256.
pub fn sha256(data: &[u8]) -> [u8; DIGEST_LEN] {
    let mut h = Sha256::new();
    h.update(data);
    h.finalize()
}

/// HMAC-SHA-256 (RFC 2104): `HMAC(key, msg) = H((k ⊕ opad) || H((k ⊕
/// ipad) || msg))` with keys longer than one block hashed down first.
pub fn hmac_sha256(key: &[u8], msg: &[u8]) -> [u8; DIGEST_LEN] {
    let mut k = [0u8; BLOCK_LEN];
    if key.len() > BLOCK_LEN {
        k[..DIGEST_LEN].copy_from_slice(&sha256(key));
    } else {
        k[..key.len()].copy_from_slice(key);
    }
    let mut inner = Sha256::new();
    let ipad: Vec<u8> = k.iter().map(|b| b ^ 0x36).collect();
    inner.update(&ipad);
    inner.update(msg);
    let inner_digest = inner.finalize();
    let mut outer = Sha256::new();
    let opad: Vec<u8> = k.iter().map(|b| b ^ 0x5c).collect();
    outer.update(&opad);
    outer.update(&inner_digest);
    outer.finalize()
}

/// Constant-time equality: the comparison touches every byte of both
/// slices regardless of where they differ, so a MAC check leaks no
/// prefix-length timing. Slices of different lengths compare unequal
/// (the length itself is public — both sides of the handshake know the
/// digest size).
pub fn ct_eq(a: &[u8], b: &[u8]) -> bool {
    if a.len() != b.len() {
        return false;
    }
    let mut diff = 0u8;
    for (x, y) in a.iter().zip(b.iter()) {
        diff |= x ^ y;
    }
    diff == 0
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(bytes: &[u8]) -> String {
        bytes.iter().map(|b| format!("{b:02x}")).collect()
    }

    // FIPS 180-4 / NIST CAVP vectors.
    #[test]
    fn sha256_standard_vectors() {
        assert_eq!(
            hex(&sha256(b"")),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
        );
        assert_eq!(
            hex(&sha256(b"abc")),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
        );
        assert_eq!(
            hex(&sha256(
                b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"
            )),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
        );
        // One million 'a's: the multi-block + length-wrap path.
        let mut h = Sha256::new();
        for _ in 0..1000 {
            h.update(&[b'a'; 1000]);
        }
        assert_eq!(
            hex(&h.finalize()),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
        );
    }

    #[test]
    fn sha256_incremental_matches_oneshot() {
        let data: Vec<u8> = (0..1000u32).map(|i| i as u8).collect();
        for split in [0, 1, 55, 56, 63, 64, 65, 128, 999, 1000] {
            let mut h = Sha256::new();
            h.update(&data[..split]);
            h.update(&data[split..]);
            assert_eq!(h.finalize(), sha256(&data), "split at {split}");
        }
    }

    // RFC 4231 HMAC-SHA-256 test cases.
    #[test]
    fn hmac_rfc4231_vectors() {
        // Case 1
        assert_eq!(
            hex(&hmac_sha256(&[0x0b; 20], b"Hi There")),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
        );
        // Case 2: key shorter than digest.
        assert_eq!(
            hex(&hmac_sha256(b"Jefe", b"what do ya want for nothing?")),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
        );
        // Case 3: combined key/data longer than a block's worth of 0xaa/0xdd.
        assert_eq!(
            hex(&hmac_sha256(&[0xaa; 20], &[0xdd; 50])),
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe"
        );
        // Case 4: 25-byte counting key.
        let key: Vec<u8> = (1..=25).collect();
        assert_eq!(
            hex(&hmac_sha256(&key, &[0xcd; 50])),
            "82558a389a443c0ea4cc819899f2083a85f0faa3e578f8077a2e3ff46729665b"
        );
        // Case 6: key larger than one block (hashed down first).
        assert_eq!(
            hex(&hmac_sha256(
                &[0xaa; 131],
                b"Test Using Larger Than Block-Size Key - Hash Key First"
            )),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54"
        );
        // Case 7: large key and large data.
        assert_eq!(
            hex(&hmac_sha256(
                &[0xaa; 131],
                &b"This is a test using a larger than block-size key and a larger than block-size data. The key needs to be hashed before being used by the HMAC algorithm."[..]
            )),
            "9b09ffa71b942fcb27635fbcd5b0e944bfdc63644f0713938a7f51535c3a35e2"
        );
    }

    #[test]
    fn ct_eq_semantics() {
        assert!(ct_eq(b"", b""));
        assert!(ct_eq(b"abc", b"abc"));
        assert!(!ct_eq(b"abc", b"abd"));
        assert!(!ct_eq(b"abc", b"ab"));
        assert!(!ct_eq(b"abc", b"abcd"));
        let mac = hmac_sha256(b"k", b"m");
        let mut flipped = mac;
        flipped[31] ^= 1;
        assert!(ct_eq(&mac, &mac));
        assert!(!ct_eq(&mac, &flipped));
    }
}
