//! Outbound peer links for the **threaded** engine: one queue + writer
//! thread per remote node.
//!
//! A link owns the TCP connection **initiated** by this node toward a
//! peer. DGC messages and application requests travel in that direction
//! (referencer → referenced, the direction the application can already
//! talk in, which is what keeps the collector firewall-transparent);
//! responses, reply payloads and failure notifications ride back on the
//! *accepting* side's reply writer (see [`crate::node`]), never on a
//! fresh reverse connection. The reactor engine
//! ([`crate::reactor`]) implements the same link semantics without the
//! per-peer threads.
//!
//! Batching policy does **not** live here any more: the node's egress
//! plane ([`dgc_core::egress::Outbox`]) decides what coalesces into a
//! frame and hands each writer ready-made batches — one flush, one
//! frame. What the writers keep is the *transport* behaviour:
//!
//! * **Reconnect-on-drop** — a broken connection is retried with
//!   exponential backoff while batches keep queueing; after
//!   `fail_after_attempts` consecutive failures (connects *or* writes,
//!   so a peer that accepts and immediately closes still backs off)
//!   the link goes terminal and everything still queued is handed back
//!   to the node event loop, which reroutes it over the peer's reply
//!   socket or surfaces it as send failures so referencers drop edges
//!   to the unreachable node, exactly like a permanently failing RMI
//!   call. Backoff waits keep draining the queue channel, so shutdown
//!   never blocks on a sleep.
//! * **Bounded buffering** — a peer that stays down long enough sheds
//!   the oldest queued batches (the `max_link_pending` knob). Heartbeats
//!   and digests go quietly (the next TTB/gossip round regenerates them
//!   anyway), but application payloads are never regenerated, so shed
//!   app units are handed back to the node's send-failure surface
//!   instead of vanishing.
//! * **No stranded readers** — every writer shuts its socket down on
//!   exit, which EOFs the paired (detached) socket-reader thread; the
//!   node's [`crate::node::ThreadReaper`] then joins it, so crash/
//!   rejoin churn cannot accumulate OS threads.

use std::collections::VecDeque;
use std::io::Write;
use std::net::{Shutdown, SocketAddr, TcpStream};
use std::sync::mpsc::{self, RecvTimeoutError};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crate::config::NetConfig;
use crate::frame::{encode_batch_frame, encode_frame, split_len, Frame, Item, PROTOCOL_VERSION};
use crate::node::{Event, ReaderCtx};
use crate::stats::NetStats;

/// The queue-draining half shared by the outbound writer and the reply
/// writer: blocks for flushed batches, writes one frame per batch, and
/// sheds overflow when the sink stalls.
struct BatchPump {
    rx: mpsc::Receiver<Vec<Item>>,
    pending: VecDeque<Vec<Item>>,
    pending_items: usize,
    /// Queue bound in *items* (`NetConfig::max_link_pending`): a peer
    /// that stays down long enough to accumulate this many pending
    /// units starts shedding the oldest batches.
    max_pending: usize,
    stats: Arc<NetStats>,
    /// All senders dropped: the owning node is shutting down.
    closed: bool,
    /// Application payloads from shed overflow batches: unlike the
    /// periodic heartbeats they rode with (which the next TTB simply
    /// regenerates), an app unit is never re-produced by the protocol,
    /// so the writer must hand these back as send failures instead of
    /// letting the overload drop them unrecorded.
    shed_app: Vec<Item>,
}

impl BatchPump {
    fn new(rx: mpsc::Receiver<Vec<Item>>, stats: Arc<NetStats>, max_pending: usize) -> Self {
        BatchPump {
            rx,
            pending: VecDeque::new(),
            pending_items: 0,
            max_pending,
            stats,
            closed: false,
            shed_app: Vec::new(),
        }
    }

    fn push(&mut self, batch: Vec<Item>) {
        if batch.is_empty() {
            return;
        }
        self.pending_items += batch.len();
        self.pending.push_back(batch);
        while self.pending_items > self.max_pending {
            if let Some(old) = self.pending.pop_front() {
                self.pending_items -= old.len();
                self.shed_app
                    .extend(old.into_iter().filter(|i| matches!(i, Item::App { .. })));
            }
        }
    }

    /// Takes the app payloads lost to overflow shedding since the last
    /// call; the writer surfaces them through the node's failure path.
    fn take_shed_app(&mut self) -> Vec<Item> {
        std::mem::take(&mut self.shed_app)
    }

    /// Blocks until there is something to send. `false` means the
    /// channel is closed and nothing is pending: time to exit.
    fn wait_for_work(&mut self) -> bool {
        if !self.pending.is_empty() {
            return true;
        }
        if self.closed {
            return false;
        }
        match self.rx.recv() {
            Ok(batch) => {
                self.push(batch);
                !self.pending.is_empty()
            }
            Err(_) => {
                self.closed = true;
                false
            }
        }
    }

    /// Drains whatever else the channel already holds (no waiting: the
    /// egress plane, not this thread, decides coalescing).
    fn gather(&mut self) {
        while let Ok(batch) = self.rx.try_recv() {
            self.push(batch);
        }
    }

    /// Sleeps up to `d` while still accepting queued batches, returning
    /// early (and fast) once the channel closes — an interruptible
    /// backoff, so a node shutting down never waits out a retry timer.
    fn idle(&mut self, d: Duration) {
        // dgc-analysis: allow(wall-clock): the socket runtime paces real I/O in wall time
        let deadline = Instant::now() + d;
        while !self.closed {
            // dgc-analysis: allow(wall-clock): the socket runtime paces real I/O in wall time
            let left = deadline.saturating_duration_since(Instant::now());
            if left.is_zero() {
                return;
            }
            match self.rx.recv_timeout(left) {
                Ok(batch) => self.push(batch),
                Err(RecvTimeoutError::Timeout) => return,
                Err(RecvTimeoutError::Disconnected) => self.closed = true,
            }
        }
    }

    /// Writes everything pending to `stream`, one frame per flushed
    /// batch — split at [`crate::frame::split_len`]'s boundary (item
    /// *or* payload-byte bound, whichever comes first), so a permissive
    /// egress policy can never emit a frame the receiver rejects as
    /// oversized. Items are drained frame by frame as each frame is
    /// written: a failure keeps only the *unwritten* remainder for the
    /// retry — never re-sending a frame the peer may already have
    /// processed (duplicates would break the per-class
    /// exactly-once-in-order delivery the egress plane preserves).
    fn flush_to(&mut self, stream: &mut TcpStream) -> std::io::Result<()> {
        while let Some(batch) = self.pending.front_mut() {
            while !batch.is_empty() {
                let end = split_len(batch);
                let raw = encode_batch_frame(&batch[..end]);
                stream.write_all(&raw)?;
                self.stats.on_frame_sent(end as u64, raw.len() as u64);
                batch.drain(..end);
                self.pending_items -= end;
            }
            self.pending.pop_front();
        }
        Ok(())
    }
}

/// Handle to an outbound link's queue and thread.
pub struct OutboundLink {
    tx: mpsc::Sender<Vec<Item>>,
    handle: Option<JoinHandle<()>>,
}

impl OutboundLink {
    /// Spawns the writer thread for `peer_addr`.
    ///
    /// `ctx` carries the node plumbing: its loopback sender feeds
    /// send-failure notifications back into the owning node's event
    /// loop when the peer proves unreachable, its tracker owns the
    /// read-half sockets so node shutdown can unblock them, and its
    /// reaper joins the reader threads those sockets run on.
    pub(crate) fn spawn(
        peer_node: u32,
        peer_addr: SocketAddr,
        config: NetConfig,
        ctx: ReaderCtx,
    ) -> OutboundLink {
        let (tx, rx) = mpsc::channel();
        let local_node = ctx.node_id;
        let stats = Arc::clone(&ctx.stats);
        let worker = Writer {
            peer_node,
            peer_addr,
            config,
            pump: BatchPump::new(rx, stats, config.max_link_pending),
            ctx,
            conn: None,
            failed_attempts: 0,
            ever_connected: false,
            terminal: false,
        };
        let handle = std::thread::Builder::new()
            .name(format!("dgc-net-{local_node}-to-{peer_node}"))
            .spawn(move || worker.run())
            .expect("spawn outbound link thread");
        OutboundLink {
            tx,
            handle: Some(handle),
        }
    }

    /// Queues one flushed batch (one frame) for the peer. A closed
    /// channel — the writer went terminal, or is mid-shutdown — hands
    /// the batch back so the caller can reroute it over the peer's
    /// reply socket or surface it as send failures; silently accepting
    /// units for a dead letterbox is how requests used to vanish.
    pub fn send_batch(&self, batch: Vec<Item>) -> Result<(), Vec<Item>> {
        self.tx.send(batch).map_err(|mpsc::SendError(b)| b)
    }
}

impl Drop for OutboundLink {
    fn drop(&mut self) {
        // Closing the channel lets the writer flush and exit.
        let (dead_tx, _) = mpsc::channel();
        self.tx = dead_tx;
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

struct Writer {
    peer_node: u32,
    peer_addr: SocketAddr,
    config: NetConfig,
    ctx: ReaderCtx,
    pump: BatchPump,
    conn: Option<TcpStream>,
    failed_attempts: u32,
    ever_connected: bool,
    /// Set once `fail_after_attempts` consecutive failures convicted
    /// the peer: the writer exits instead of retrying forever.
    terminal: bool,
}

impl Writer {
    fn run(mut self) {
        self.pump_until_done();
        // Shutting the connection down EOFs the paired detached reader
        // thread out of its blocking read; the node's reaper then joins
        // it, so link churn cannot strand reader threads.
        if let Some(conn) = self.conn.take() {
            let _ = conn.shutdown(Shutdown::Both);
        }
    }

    fn pump_until_done(&mut self) {
        loop {
            if !self.pump.wait_for_work() {
                self.surface_shed();
                return; // owner gone, nothing pending
            }
            self.pump.gather();
            self.surface_shed();
            if self.conn.is_none() && !self.connect() {
                if self.terminal {
                    // Convicted as unreachable: the queue was handed
                    // back with the conviction; stay on the channel
                    // until the node drops the link, so nothing sent in
                    // the conviction window dies unheard.
                    self.linger_terminal();
                    return;
                }
                if self.pump.closed {
                    return;
                }
                continue;
            }
            match self
                .pump
                .flush_to(self.conn.as_mut().expect("connection just ensured"))
            {
                // Only a completed flush proves the link works; a
                // successful connect alone must not reset the failure
                // count, or a peer that accepts and instantly closes
                // (e.g. version mismatch) would spin without backoff.
                Ok(()) => self.failed_attempts = 0,
                Err(_) => {
                    if let Some(conn) = self.conn.take() {
                        let _ = conn.shutdown(Shutdown::Both);
                    }
                    self.penalty();
                }
            }
            if self.terminal {
                self.linger_terminal();
                return;
            }
            if self.pump.closed && self.pump.pending.is_empty() {
                return;
            }
        }
    }

    /// Surfaces app payloads the pump shed to overflow: the peer may
    /// merely be slow, so they fail outright (no reroute that could
    /// reorder around what the still-live link will deliver).
    fn surface_shed(&mut self) {
        let shed = self.pump.take_shed_app();
        if !shed.is_empty() {
            let _ = self.ctx.events.send(Event::Undeliverable {
                node: self.peer_node,
                items: shed,
                reroute: false,
            });
        }
    }

    /// The terminal tail: between this writer's conviction and the node
    /// processing it, the node may still hand batches to our (open)
    /// channel — they used to die with the receiver. Keep draining and
    /// hand everything back for rerouting until the node drops the link
    /// (which closes the channel and releases this thread).
    fn linger_terminal(&mut self) {
        loop {
            self.pump.gather();
            let mut items: Vec<Item> = self.pump.pending.drain(..).flatten().collect();
            items.extend(self.pump.take_shed_app());
            self.pump.pending_items = 0;
            if !items.is_empty() {
                let _ = self.ctx.events.send(Event::Undeliverable {
                    node: self.peer_node,
                    items,
                    reroute: true,
                });
            }
            match self.pump.rx.recv() {
                Ok(batch) => self.pump.push(batch),
                Err(_) => return, // the node dropped the link
            }
        }
    }

    /// Returns true when a usable connection exists afterwards.
    fn connect(&mut self) -> bool {
        match TcpStream::connect_timeout(&self.peer_addr, Duration::from_millis(500)) {
            Ok(mut stream) => {
                let _ = stream.set_nodelay(true);
                // Backstop for peers that accept but stop reading: a
                // full send buffer must surface as an error, not block
                // this thread (and node shutdown) forever.
                let _ = stream.set_write_timeout(Some(Duration::from_secs(5)));
                let hello = encode_frame(&Frame::Hello {
                    node: self.ctx.node_id,
                    version: PROTOCOL_VERSION,
                });
                if stream.write_all(&hello).is_err() {
                    self.penalty();
                    return false;
                }
                self.ctx.stats.on_frame_sent(0, hello.len() as u64);
                // With a key configured, prove possession right after
                // the hello — the peer accepts no batch before the
                // handshake, and neither side trusts a half-shaken
                // link. Failure takes the normal penalty path.
                if let Some(key) = self.config.auth {
                    if !crate::node::client_auth_handshake(
                        &mut stream,
                        key,
                        self.config.handshake_timeout,
                        &self.ctx.stats,
                    ) {
                        self.penalty();
                        return false;
                    }
                }
                if self.ever_connected {
                    self.ctx.stats.on_reconnect();
                }
                self.ever_connected = true;
                // Responses and send-failure notifications come back on
                // this same connection (the referenced node never opens
                // one toward us — §2.2 firewall transparency), so the
                // initiating side reads it too.
                if let Ok(rs) = stream.try_clone() {
                    crate::node::spawn_socket_reader(self.ctx.clone(), rs, false);
                }
                self.conn = Some(stream);
                true
            }
            Err(_) => {
                self.penalty();
                false
            }
        }
    }

    /// One failed connect or write: count it, back off (without
    /// blocking shutdown or the queue) — and at `fail_after_attempts`
    /// consecutive failures, go **terminal**: everything still queued
    /// (channel included) is handed back to the node inside
    /// `Event::PeerUnreachable` — the event loop reroutes it over the
    /// peer's reply socket if one is live, or surfaces it as send
    /// failures — and the writer exits instead of retrying forever.
    /// The node re-establishes a link lazily if the peer's address is
    /// ever (re)announced.
    fn penalty(&mut self) {
        self.failed_attempts = self.failed_attempts.saturating_add(1);
        if self.failed_attempts >= self.config.fail_after_attempts {
            // Batches sitting unread in the channel are as undelivered
            // as the gathered ones; take them along.
            self.pump.gather();
            let unsent: Vec<Item> = self.pump.pending.drain(..).flatten().collect();
            self.pump.pending_items = 0;
            let _ = self.ctx.events.send(Event::PeerUnreachable {
                node: self.peer_node,
                unsent,
            });
            self.terminal = true;
            return;
        }
        let backoff = self
            .config
            .reconnect_base
            .saturating_mul(1u32 << self.failed_attempts.min(10))
            .min(self.config.reconnect_max);
        self.ctx.stats.on_backoff(backoff.as_nanos() as u64);
        self.pump.idle(backoff);
    }
}

/// Spawns the batch writer for an **accepted** connection's reply
/// direction: responses, reply payloads and send-failure notifications
/// travel back on the socket the referencer's node opened, so no
/// reverse connectivity is ever required (NAT/firewall transparency,
/// §2.2 of the paper).
///
/// `ctx.events` receives what a dying reply socket could not ship: the
/// protocol regenerates its own responses, but application payloads
/// must surface on the node's send-failure path, never evaporate with
/// the connection.
pub(crate) fn spawn_reply_writer(
    ctx: &ReaderCtx,
    peer_node: u32,
    mut stream: TcpStream,
) -> (mpsc::Sender<Vec<Item>>, JoinHandle<()>) {
    let (tx, rx) = mpsc::channel::<Vec<Item>>();
    let local_node = ctx.node_id;
    let stats = Arc::clone(&ctx.stats);
    let events = ctx.events.clone();
    let max_pending = ctx.max_link_pending;
    let handle = std::thread::Builder::new()
        .name(format!("dgc-net-{local_node}-reply-{peer_node}"))
        .spawn(move || {
            let _ = stream.set_nodelay(true);
            let _ = stream.set_write_timeout(Some(Duration::from_secs(5)));
            let mut pump = BatchPump::new(rx, stats, max_pending);
            let salvage = |pump: &mut BatchPump, events: &crate::node::LoopSender| {
                let mut items: Vec<Item> = pump.pending.drain(..).flatten().collect();
                items.extend(pump.take_shed_app());
                pump.pending_items = 0;
                if !items.is_empty() {
                    // No reroute: the peer may be reconnecting already,
                    // and retrying around a half-written stream could
                    // reorder what the fresh socket will carry.
                    let _ = events.send(Event::Undeliverable {
                        node: peer_node,
                        items,
                        reroute: false,
                    });
                }
            };
            loop {
                if !pump.wait_for_work() {
                    break;
                }
                pump.gather();
                let shed = pump.take_shed_app();
                if !shed.is_empty() {
                    let _ = events.send(Event::Undeliverable {
                        node: peer_node,
                        items: shed,
                        reroute: false,
                    });
                }
                if pump.flush_to(&mut stream).is_err() {
                    // Reply link dead; the peer will reconnect. Hand
                    // back the unwritten remainder first.
                    salvage(&mut pump, &events);
                    break;
                }
                if pump.closed && pump.pending.is_empty() {
                    break;
                }
            }
            // EOF the paired reader so churned links leave no thread
            // behind (the reaper joins it).
            let _ = stream.shutdown(Shutdown::Both);
        })
        .expect("spawn reply writer thread");
    (tx, handle)
}
