//! The pre-arena `BTreeMap` table implementations, kept verbatim.
//!
//! Two jobs, neither of them production:
//!
//! * **Model.** The arena tables in [`crate::referencers`] /
//!   [`crate::referenced`] must be observationally identical to these —
//!   same returns, same expiry/broadcast sets, same id-ordered
//!   iteration — under any operation interleaving. The
//!   `table_props` proptest drives both side by side.
//! * **Ablation baseline.** The `node_throughput` bench replays the
//!   pre-change per-activity sweep (BTreeMap walk + fresh `Vec` per
//!   table per beat) against the batched arena sweep, so the recorded
//!   speedup is measured in-run rather than asserted from memory.
//!
//! Not part of the public API surface; do not build on it.

use std::collections::BTreeMap;

use crate::clock::NamedClock;
use crate::id::AoId;
use crate::message::DgcResponse;
use crate::referenced::ReferencedInfo;
use crate::referencers::ReferencerInfo;
use crate::units::{Dur, Time};

/// `BTreeMap`-backed referencer table (pre-arena implementation).
#[derive(Debug, Clone, Default)]
pub struct ReferencerTable {
    entries: BTreeMap<AoId, ReferencerInfo>,
}

impl ReferencerTable {
    /// Empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// See [`crate::referencers::ReferencerTable::record_message`].
    pub fn record_message(
        &mut self,
        sender: AoId,
        clock: NamedClock,
        consensus: bool,
        now: Time,
        advertised_ttb: Dur,
    ) -> bool {
        self.entries
            .insert(
                sender,
                ReferencerInfo {
                    clock,
                    consensus,
                    last_message: now,
                    advertised_ttb,
                },
            )
            .is_none()
    }

    /// See [`crate::referencers::ReferencerTable::agree`].
    pub fn agree(&self, clock: NamedClock) -> bool {
        self.entries
            .values()
            .all(|r| r.clock == clock && r.consensus)
    }

    /// See [`crate::referencers::ReferencerTable::expire_silent`] —
    /// including the original collect-then-remove allocation pattern.
    pub fn expire_silent(&mut self, now: Time, tta: Dur, max_comm: Dur) -> Vec<AoId> {
        let expired: Vec<AoId> = self
            .entries
            .iter()
            .filter(|(_, info)| {
                let per_ref = info
                    .advertised_ttb
                    .saturating_mul(2)
                    .saturating_add(max_comm);
                let timeout = tta.max(per_ref);
                now.since(info.last_message) > timeout
            })
            .map(|(id, _)| *id)
            .collect();
        for id in &expired {
            self.entries.remove(id);
        }
        expired
    }

    /// See [`crate::referencers::ReferencerTable::remove`].
    pub fn remove(&mut self, id: AoId) -> bool {
        self.entries.remove(&id).is_some()
    }

    /// See [`crate::referencers::ReferencerTable::max_expiry`].
    pub fn max_expiry(&self, tta: Dur, max_comm: Dur) -> Dur {
        self.entries
            .values()
            .map(|info| {
                tta.max(
                    info.advertised_ttb
                        .saturating_mul(2)
                        .saturating_add(max_comm),
                )
            })
            .max()
            .unwrap_or(tta)
    }

    /// See [`crate::referencers::ReferencerTable::get`].
    pub fn get(&self, id: AoId) -> Option<&ReferencerInfo> {
        self.entries.get(&id)
    }

    /// See [`crate::referencers::ReferencerTable::len`].
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// See [`crate::referencers::ReferencerTable::is_empty`].
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// See [`crate::referencers::ReferencerTable::iter`].
    pub fn iter(&self) -> impl Iterator<Item = (AoId, &ReferencerInfo)> {
        self.entries.iter().map(|(k, v)| (*k, v))
    }
}

/// `BTreeMap`-backed referenced table (pre-arena implementation).
#[derive(Debug, Clone, Default)]
pub struct ReferencedTable {
    entries: BTreeMap<AoId, ReferencedInfo>,
}

impl ReferencedTable {
    /// Empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// See [`crate::referenced::ReferencedTable::on_stub_deserialized`].
    pub fn on_stub_deserialized(&mut self, target: AoId) -> bool {
        let entry = self.entries.entry(target).or_insert(ReferencedInfo {
            last_response: None,
            reachable: false,
            must_send_once: false,
        });
        let was_new = !entry.reachable && entry.last_response.is_none() && !entry.must_send_once;
        entry.reachable = true;
        entry.must_send_once = true;
        was_new
    }

    /// See [`crate::referenced::ReferencedTable::on_stubs_collected`].
    pub fn on_stubs_collected(&mut self, target: AoId) -> bool {
        match self.entries.get_mut(&target) {
            None => false,
            Some(info) => {
                info.reachable = false;
                if info.must_send_once {
                    false
                } else {
                    self.entries.remove(&target);
                    true
                }
            }
        }
    }

    /// See [`crate::referenced::ReferencedTable::record_response`].
    pub fn record_response(&mut self, target: AoId, response: DgcResponse) -> bool {
        match self.entries.get_mut(&target) {
            Some(info) => {
                info.last_response = Some(response);
                true
            }
            None => false,
        }
    }

    /// See [`crate::referenced::ReferencedTable::remove`].
    pub fn remove(&mut self, target: AoId) -> bool {
        self.entries.remove(&target).is_some()
    }

    /// See [`crate::referenced::ReferencedTable::broadcast_targets`] —
    /// including the original two-pass collect-then-mutate allocation
    /// pattern.
    pub fn broadcast_targets(&mut self) -> (Vec<AoId>, Vec<AoId>) {
        let targets: Vec<AoId> = self
            .entries
            .iter()
            .filter(|(_, info)| info.reachable || info.must_send_once)
            .map(|(id, _)| *id)
            .collect();
        let mut dropped = Vec::new();
        for id in &targets {
            let info = self.entries.get_mut(id).expect("target exists");
            info.must_send_once = false;
            if !info.reachable {
                self.entries.remove(id);
                dropped.push(*id);
            }
        }
        (targets, dropped)
    }

    /// See [`crate::referenced::ReferencedTable::last_response`].
    pub fn last_response(&self, target: AoId) -> Option<&DgcResponse> {
        self.entries
            .get(&target)
            .and_then(|i| i.last_response.as_ref())
    }

    /// See [`crate::referenced::ReferencedTable::get`].
    pub fn get(&self, target: AoId) -> Option<&ReferencedInfo> {
        self.entries.get(&target)
    }

    /// See [`crate::referenced::ReferencedTable::contains`].
    pub fn contains(&self, target: AoId) -> bool {
        self.entries.contains_key(&target)
    }

    /// See [`crate::referenced::ReferencedTable::len`].
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// See [`crate::referenced::ReferencedTable::is_empty`].
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// See [`crate::referenced::ReferencedTable::iter`].
    pub fn iter(&self) -> impl Iterator<Item = (AoId, &ReferencedInfo)> {
        self.entries.iter().map(|(k, v)| (*k, v))
    }
}
