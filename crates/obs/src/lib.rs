//! `dgc-obs` — the runtime-neutral telemetry plane.
//!
//! The paper's evaluation (§5) is an observability exercise: bytes per
//! plane, collection latency under TTB/TTA. This crate is the one
//! substrate both runtimes record into:
//!
//! * [`registry::Registry`] — one per node; lock-free named counters,
//!   gauges and log2 [`metrics::Histogram`]s, snapshotted into a
//!   mergeable [`registry::Snapshot`] tree;
//! * [`trace::Tracer`] — bounded structured event ring over the
//!   [`time::TimeSource`] seam (virtual nanoseconds on the simulated
//!   grid, wall-clock on sockets), off by default and allocation-free
//!   when disabled;
//! * [`export`] — JSONL and Chrome `trace_event` renderings, so a
//!   conformance scenario or BSP run opens as a timeline in
//!   `chrome://tracing`;
//! * [`bench`] — the `BENCH_<name>.json` report encoding the bench
//!   harnesses persist the perf trajectory with.
//!
//! The crate is dependency-free and sans-io except for [`export`]
//! string building; file writing stays with the callers.

pub mod bench;
pub mod export;
pub mod metrics;
pub mod registry;
pub mod time;
pub mod trace;

pub use metrics::{Counter, Gauge, Histogram, HistogramSnapshot, LocalHistogram};
pub use registry::{Registry, Snapshot};
pub use time::TimeSource;
pub use trace::{TraceEvent, TraceLevel, Tracer};
