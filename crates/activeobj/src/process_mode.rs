//! Process-graph mode (§4.1).
//!
//! When a middleware cannot guarantee the no-sharing property, the
//! per-activity reference graph is unavailable and the paper falls back
//! to the **graph of address spaces**: one DGC endpoint per process,
//! whose idleness is the conjunction of its activities' idleness, and
//! whose out-edges are the union of its activities' cross-process
//! references (equation (2)).
//!
//! [`ProcessModeSim`] runs exactly the same `dgc_core` protocol at that
//! granularity, reusing the in-memory harness. Its purpose is the
//! precision comparison of `benches/process_graph_precision.rs`: a
//! garbage cycle spanning processes that also host one live activity is
//! *not* collected in this mode, while the reference-graph mode collects
//! it.

use std::collections::{BTreeMap, BTreeSet};

use dgc_core::config::DgcConfig;
use dgc_core::harness::Harness;
use dgc_core::id::AoId;
use dgc_core::process_graph::ProcessGraph;
use dgc_core::units::Dur;

/// A coarse-grained (per-process) DGC simulation.
pub struct ProcessModeSim {
    harness: Harness,
    graph: ProcessGraph,
    /// Process group → harness endpoint.
    endpoints: BTreeMap<u32, AoId>,
    /// Group edges currently mirrored into the harness.
    mirrored_edges: BTreeSet<(u32, u32)>,
    /// Activities collected because their whole process group was.
    collected: BTreeSet<AoId>,
    next_index: BTreeMap<u32, u32>,
}

impl ProcessModeSim {
    /// Creates a simulation with `procs` processes, all running the DGC
    /// with `config`, over links of one-way latency `latency`.
    pub fn new(procs: u32, config: DgcConfig, latency: Dur) -> Self {
        let mut harness = Harness::new(latency);
        let mut endpoints = BTreeMap::new();
        for g in 0..procs {
            let ep = harness.add(config);
            endpoints.insert(g, ep);
        }
        ProcessModeSim {
            harness,
            graph: ProcessGraph::new(),
            endpoints,
            mirrored_edges: BTreeSet::new(),
            collected: BTreeSet::new(),
            next_index: BTreeMap::new(),
        }
    }

    /// Adds an activity on process `proc` (initially busy).
    pub fn add_activity(&mut self, proc: u32) -> AoId {
        assert!(self.endpoints.contains_key(&proc), "unknown process {proc}");
        let idx = self.next_index.entry(proc).or_insert(0);
        let id = AoId::new(proc, *idx);
        *idx += 1;
        self.graph.add_member(id);
        id
    }

    /// Sets an activity's idleness.
    pub fn set_idle(&mut self, activity: AoId, idle: bool) {
        self.graph.set_idle(activity, idle);
    }

    /// Adds an activity-level reference edge.
    pub fn add_edge(&mut self, from: AoId, to: AoId) {
        self.graph.add_edge(from, to);
    }

    /// Removes an activity-level reference edge.
    pub fn remove_edge(&mut self, from: AoId, to: AoId) {
        self.graph.remove_edge(from, to);
    }

    /// Advances the coarse simulation by `d`, mirroring group idleness
    /// and group edges into the per-process DGC endpoints first.
    pub fn step(&mut self, d: Dur) {
        // Mirror idleness.
        let groups: Vec<u32> = self.endpoints.keys().copied().collect();
        for g in groups {
            let ep = self.endpoints[&g];
            if !self.harness.alive(ep) {
                continue;
            }
            // An empty group is vacuously idle but also uninteresting;
            // only occupied groups matter for collection outcomes.
            let idle = self.graph.group_len(g) > 0 && self.graph.group_idle(g);
            self.harness.set_idle(ep, idle);
        }
        // Mirror edge changes (equation (2)).
        let desired = self.graph.group_edges();
        let added: Vec<(u32, u32)> = desired.difference(&self.mirrored_edges).copied().collect();
        let removed: Vec<(u32, u32)> = self.mirrored_edges.difference(&desired).copied().collect();
        for (f, t) in added {
            let (ef, et) = (self.endpoints[&f], self.endpoints[&t]);
            if self.harness.alive(ef) {
                self.harness.add_ref(ef, et);
            }
            self.mirrored_edges.insert((f, t));
        }
        for (f, t) in removed {
            let (ef, et) = (self.endpoints[&f], self.endpoints[&t]);
            if self.harness.alive(ef) {
                self.harness.drop_ref(ef, et);
            }
            self.mirrored_edges.remove(&(f, t));
        }

        self.harness.run_for(d);

        // A terminated process endpoint collects all its activities.
        let groups: Vec<u32> = self.endpoints.keys().copied().collect();
        for g in groups {
            let ep = self.endpoints[&g];
            if !self.harness.alive(ep) {
                for m in self.graph.group_members(g) {
                    self.collected.insert(m);
                }
                for m in self.collected.iter().copied().collect::<Vec<_>>() {
                    if ProcessGraph::group_of(m) == g {
                        self.graph.remove_member(m);
                    }
                }
            }
        }
    }

    /// True if the activity's process group has not been collected.
    pub fn is_alive(&self, activity: AoId) -> bool {
        !self.collected.contains(&activity)
    }

    /// Activities collected so far.
    pub fn collected(&self) -> &BTreeSet<AoId> {
        &self.collected
    }

    /// True if the process endpoint of group `g` is still alive.
    pub fn group_alive(&self, g: u32) -> bool {
        self.harness.alive(self.endpoints[&g])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> DgcConfig {
        DgcConfig::builder()
            .ttb(Dur::from_secs(30))
            .tta(Dur::from_secs(61))
            .build()
    }

    fn lat() -> Dur {
        Dur::from_millis(1)
    }

    #[test]
    fn idle_cross_process_cycle_is_collected() {
        // One activity per process; a ⇄ b cycle across processes 0 and 1.
        let mut sim = ProcessModeSim::new(2, cfg(), lat());
        let a = sim.add_activity(0);
        let b = sim.add_activity(1);
        sim.add_edge(a, b);
        sim.add_edge(b, a);
        sim.set_idle(a, true);
        sim.set_idle(b, true);
        for _ in 0..30 {
            sim.step(Dur::from_secs(30));
        }
        assert!(!sim.is_alive(a) && !sim.is_alive(b));
    }

    #[test]
    fn live_co_hosted_activity_blocks_collection() {
        // The imprecision the paper warns about: process 0 hosts both a
        // cycle member and a busy activity; the whole group stays alive.
        let mut sim = ProcessModeSim::new(2, cfg(), lat());
        let a = sim.add_activity(0);
        let busy = sim.add_activity(0);
        let b = sim.add_activity(1);
        sim.add_edge(a, b);
        sim.add_edge(b, a);
        sim.set_idle(a, true);
        sim.set_idle(b, true);
        sim.set_idle(busy, false);
        for _ in 0..40 {
            sim.step(Dur::from_secs(30));
        }
        assert!(
            sim.is_alive(a),
            "group 0 is busy because of the co-hosted activity"
        );
        assert!(
            sim.is_alive(b),
            "group 1 idles but group 0 keeps referencing it (heartbeats flow)"
        );
    }

    #[test]
    fn co_hosted_activity_becoming_idle_releases_the_group_cycle() {
        let mut sim = ProcessModeSim::new(2, cfg(), lat());
        let a = sim.add_activity(0);
        let busy = sim.add_activity(0);
        let b = sim.add_activity(1);
        sim.add_edge(a, b);
        sim.add_edge(b, a);
        sim.set_idle(a, true);
        sim.set_idle(b, true);
        sim.set_idle(busy, false);
        for _ in 0..10 {
            sim.step(Dur::from_secs(30));
        }
        assert!(sim.is_alive(a));
        sim.set_idle(busy, true);
        for _ in 0..40 {
            sim.step(Dur::from_secs(30));
        }
        assert!(!sim.is_alive(a) && !sim.is_alive(b) && !sim.is_alive(busy));
    }

    #[test]
    fn intra_process_edges_do_not_appear() {
        let mut sim = ProcessModeSim::new(2, cfg(), lat());
        let a = sim.add_activity(0);
        let b = sim.add_activity(0);
        sim.add_edge(a, b); // same process: not a group edge
        sim.set_idle(a, true);
        sim.set_idle(b, true);
        for _ in 0..30 {
            sim.step(Dur::from_secs(30));
        }
        // Group 0 idle with no referencers: collected acyclically.
        assert!(!sim.is_alive(a) && !sim.is_alive(b));
    }
}
