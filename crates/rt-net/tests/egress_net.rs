//! The egress plane over real sockets: application sends flush the
//! per-destination outbox and carry the queued background units
//! (piggybacking), and the coalesced frames preserve per-class FIFO —
//! including through a chaos proxy adding real delay.

use std::time::Duration;

use dgc_core::config::DgcConfig;
use dgc_core::egress::FlushPolicy;
use dgc_core::faults::{FaultProfile, Window};
use dgc_core::units::Dur;
use dgc_rt_net::{Cluster, NetConfig};

fn dgc() -> DgcConfig {
    DgcConfig::builder()
        .ttb(Dur::from_millis(25))
        .tta(Dur::from_millis(80))
        .max_comm(Dur::from_millis(20))
        .build()
}

#[test]
fn app_sends_flush_immediately_and_carry_queued_heartbeats() {
    // Heartbeats alone would linger 10 s in the outbox — far beyond
    // TTA. Steady app traffic to the same peer must flush them out
    // (flush-on-app-send), or the referenced activity dies of silence.
    let policy = FlushPolicy {
        flush_on_app: true,
        max_delay: Dur::from_secs(10),
        max_bytes: u64::MAX,
        max_items: usize::MAX,
    };
    let cluster = Cluster::listen_local(2, NetConfig::new(dgc()).egress(policy)).unwrap();
    let holder = cluster.add_activity(0); // stays busy: a root
    let kept = cluster.add_activity(1);
    cluster.add_ref(holder, kept);
    cluster.set_idle(kept, true);
    // App traffic node 0 → node 1 every 10 ms: every TTB heartbeat
    // finds a ride long before its own (hopeless) deadline.
    let deadline = std::time::Instant::now() + Duration::from_millis(600);
    let mut seq: u64 = 0;
    while std::time::Instant::now() < deadline {
        cluster.send_app(holder, kept, false, seq.to_be_bytes().to_vec());
        seq += 1;
        std::thread::sleep(Duration::from_millis(10));
    }
    assert!(
        !cluster.is_terminated(kept),
        "piggybacked heartbeats must keep the referenced activity alive: {:?}",
        cluster.terminated()
    );
    let sender = cluster.stats()[0];
    assert!(
        sender.piggybacked > 0,
        "heartbeats must have ridden app frames: {sender:?}"
    );
    let received = cluster.app_received(1);
    assert!(received.len() as u64 > seq / 2, "app payloads delivered");
    cluster.shutdown();
}

#[test]
fn piggybacked_classes_preserve_fifo_through_the_chaos_proxy() {
    // Every link crosses a chaos proxy adding 10 ms of real delay (a
    // FIFO-preserving fault). App payloads carry sequence numbers and
    // interleave with DGC heartbeats in shared frames; the receiver
    // must observe the app stream in exact send order — the §3.2
    // transport assumption, surviving both the egress coalescing and
    // the proxy's delay queue.
    let profile = FaultProfile::none().delay(
        None,
        None,
        Window::from_millis(0, 10_000),
        Dur::from_millis(10),
    );
    let cluster = Cluster::listen_local_chaos(2, NetConfig::new(dgc()), profile).unwrap();
    let sender = cluster.add_activity(0); // busy root
    let sink = cluster.add_activity(1); // busy root on the far side
    cluster.add_ref(sender, sink); // heartbeats flow 0 → 1 throughout
    for seq in 0u64..200 {
        cluster.send_app(sender, sink, false, seq.to_be_bytes().to_vec());
        if seq % 20 == 0 {
            // Let a few TTB sweeps interleave with the app bursts.
            std::thread::sleep(Duration::from_millis(5));
        }
    }
    // Wait until everything crossed the (delayed) proxy.
    let deadline = Duration::from_secs(10);
    let start = std::time::Instant::now();
    while (cluster.app_received(1).len() as u64) < 200 && start.elapsed() < deadline {
        std::thread::sleep(Duration::from_millis(10));
    }
    let received = cluster.app_received(1);
    assert_eq!(received.len(), 200, "all app payloads must arrive");
    let seqs: Vec<u64> = received
        .iter()
        .map(|r| u64::from_be_bytes(r.payload.as_slice().try_into().unwrap()))
        .collect();
    assert_eq!(
        seqs,
        (0u64..200).collect::<Vec<u64>>(),
        "per-class FIFO violated through the chaos proxy"
    );
    // The DGC plane flowed alongside (same frames, same proxy) and the
    // referenced sink was never collected (both ends stayed busy).
    assert!(cluster.stats()[0].items_sent > 200, "heartbeats rode along");
    assert!(cluster.terminated().is_empty());
    cluster.shutdown();
}
