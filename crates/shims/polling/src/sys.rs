//! Linux backend: epoll, pipes, and nonblocking connect declared
//! directly against the C ABI — the environment has no `libc` crate, so
//! the handful of syscall wrappers the reactor needs live here, with
//! their Linux constant values spelled out.

use std::io;
use std::net::{SocketAddr, TcpStream};
use std::os::unix::io::{AsRawFd, FromRawFd, RawFd};
use std::time::Duration;

use crate::{Interest, PollEvent};

type CInt = i32;

const EPOLL_CLOEXEC: CInt = 0o2000000;
const EPOLL_CTL_ADD: CInt = 1;
const EPOLL_CTL_DEL: CInt = 2;
const EPOLL_CTL_MOD: CInt = 3;
const EPOLLIN: u32 = 0x001;
const EPOLLOUT: u32 = 0x004;
const EPOLLERR: u32 = 0x008;
const EPOLLHUP: u32 = 0x010;
const EPOLLRDHUP: u32 = 0x2000;

const O_NONBLOCK: CInt = 0o4000;
const O_CLOEXEC: CInt = 0o2000000;

const AF_INET: CInt = 2;
const AF_INET6: CInt = 10;
const SOCK_STREAM: CInt = 1;
const SOCK_NONBLOCK: CInt = 0o4000;
const SOCK_CLOEXEC: CInt = 0o2000000;
const SOL_SOCKET: CInt = 1;
const SO_ERROR: CInt = 4;
const EINPROGRESS: CInt = 115;
const EINTR: CInt = 4;

const RLIMIT_NOFILE: CInt = 7;

/// `struct epoll_event`; packed on x86-64 per the kernel ABI.
#[repr(C)]
#[cfg_attr(target_arch = "x86_64", repr(packed))]
struct EpollEvent {
    events: u32,
    data: u64,
}

#[repr(C)]
struct RLimit {
    cur: u64,
    max: u64,
}

extern "C" {
    fn epoll_create1(flags: CInt) -> CInt;
    fn epoll_ctl(epfd: CInt, op: CInt, fd: CInt, event: *mut EpollEvent) -> CInt;
    fn epoll_wait(epfd: CInt, events: *mut EpollEvent, maxevents: CInt, timeout: CInt) -> CInt;
    fn close(fd: CInt) -> CInt;
    fn pipe2(fds: *mut CInt, flags: CInt) -> CInt;
    fn read(fd: CInt, buf: *mut u8, count: usize) -> isize;
    fn write(fd: CInt, buf: *const u8, count: usize) -> isize;
    fn socket(domain: CInt, ty: CInt, protocol: CInt) -> CInt;
    fn connect(fd: CInt, addr: *const u8, len: u32) -> CInt;
    fn getsockopt(fd: CInt, level: CInt, name: CInt, value: *mut u8, len: *mut u32) -> CInt;
    fn getrlimit(resource: CInt, rlim: *mut RLimit) -> CInt;
    fn setrlimit(resource: CInt, rlim: *const RLimit) -> CInt;
}

fn cvt(r: CInt) -> io::Result<CInt> {
    if r < 0 {
        Err(io::Error::last_os_error())
    } else {
        Ok(r)
    }
}

fn epoll_flags(interest: Interest) -> u32 {
    let mut f = EPOLLRDHUP; // hangups surface as readable
    if interest.readable {
        f |= EPOLLIN;
    }
    if interest.writable {
        f |= EPOLLOUT;
    }
    f
}

/// Level-triggered epoll instance.
pub(crate) struct Epoll {
    epfd: RawFd,
}

impl Epoll {
    pub(crate) fn new() -> io::Result<Epoll> {
        let epfd = cvt(unsafe { epoll_create1(EPOLL_CLOEXEC) })?;
        Ok(Epoll { epfd })
    }

    fn ctl(&self, op: CInt, fd: RawFd, key: usize, interest: Interest) -> io::Result<()> {
        let mut ev = EpollEvent {
            events: epoll_flags(interest),
            data: key as u64,
        };
        cvt(unsafe { epoll_ctl(self.epfd, op, fd, &mut ev) })?;
        Ok(())
    }

    pub(crate) fn add(&self, fd: RawFd, key: usize, interest: Interest) -> io::Result<()> {
        self.ctl(EPOLL_CTL_ADD, fd, key, interest)
    }

    pub(crate) fn modify(&self, fd: RawFd, key: usize, interest: Interest) -> io::Result<()> {
        self.ctl(EPOLL_CTL_MOD, fd, key, interest)
    }

    pub(crate) fn delete(&self, fd: RawFd) -> io::Result<()> {
        self.ctl(EPOLL_CTL_DEL, fd, 0, Interest::NONE)
    }

    pub(crate) fn wait(
        &self,
        out: &mut Vec<PollEvent>,
        timeout: Option<Duration>,
    ) -> io::Result<usize> {
        let ms: CInt = match timeout {
            None => -1,
            // Round up so sub-millisecond deadlines never busy-spin.
            Some(t) => t.as_nanos().div_ceil(1_000_000).min(CInt::MAX as u128) as CInt,
        };
        const CAP: usize = 1024;
        let mut buf: Vec<EpollEvent> = Vec::with_capacity(CAP);
        let n = unsafe { epoll_wait(self.epfd, buf.as_mut_ptr(), CAP as CInt, ms) };
        if n < 0 {
            let e = io::Error::last_os_error();
            if e.raw_os_error() == Some(EINTR) {
                return Ok(0); // interrupted: caller re-waits
            }
            return Err(e);
        }
        unsafe { buf.set_len(n as usize) };
        let mut pushed = 0;
        for ev in &buf {
            let events = ev.events; // by-value reads handle the packed layout
            let data = ev.data;
            out.push(PollEvent {
                key: data as usize,
                readable: events & (EPOLLIN | EPOLLERR | EPOLLHUP | EPOLLRDHUP) != 0,
                writable: events & (EPOLLOUT | EPOLLERR | EPOLLHUP) != 0,
            });
            pushed += 1;
        }
        Ok(pushed)
    }
}

impl Drop for Epoll {
    fn drop(&mut self) {
        unsafe { close(self.epfd) };
    }
}

/// A nonblocking self-pipe for waking an epoll wait.
pub(crate) struct Pipe {
    pub(crate) read_fd: RawFd,
    write_fd: RawFd,
}

pub(crate) fn pipe_nonblocking() -> io::Result<Pipe> {
    let mut fds = [0 as CInt; 2];
    cvt(unsafe { pipe2(fds.as_mut_ptr(), O_NONBLOCK | O_CLOEXEC) })?;
    Ok(Pipe {
        read_fd: fds[0],
        write_fd: fds[1],
    })
}

impl Pipe {
    pub(crate) fn signal(&self) {
        // EAGAIN means the pipe already holds a wake token: coalesced.
        unsafe { write(self.write_fd, [1u8].as_ptr(), 1) };
    }

    pub(crate) fn drain(&self) {
        let mut buf = [0u8; 64];
        while unsafe { read(self.read_fd, buf.as_mut_ptr(), buf.len()) } > 0 {}
    }
}

impl Drop for Pipe {
    fn drop(&mut self) {
        unsafe {
            close(self.read_fd);
            close(self.write_fd);
        }
    }
}

/// Serializes a socket address into `sockaddr_in`/`sockaddr_in6` wire
/// layout: `(domain, bytes, length)`.
fn sockaddr(addr: &SocketAddr) -> (CInt, [u8; 28], u32) {
    let mut buf = [0u8; 28];
    match addr {
        SocketAddr::V4(a) => {
            buf[0..2].copy_from_slice(&(AF_INET as u16).to_ne_bytes());
            buf[2..4].copy_from_slice(&a.port().to_be_bytes());
            buf[4..8].copy_from_slice(&a.ip().octets());
            (AF_INET, buf, 16)
        }
        SocketAddr::V6(a) => {
            buf[0..2].copy_from_slice(&(AF_INET6 as u16).to_ne_bytes());
            buf[2..4].copy_from_slice(&a.port().to_be_bytes());
            buf[4..8].copy_from_slice(&a.flowinfo().to_ne_bytes());
            buf[8..24].copy_from_slice(&a.ip().octets());
            buf[24..28].copy_from_slice(&a.scope_id().to_ne_bytes());
            (AF_INET6, buf, 28)
        }
    }
}

pub(crate) fn connect_nonblocking(addr: &SocketAddr) -> io::Result<TcpStream> {
    let (domain, sa, len) = sockaddr(addr);
    let fd = cvt(unsafe { socket(domain, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0) })?;
    let r = unsafe { connect(fd, sa.as_ptr(), len) };
    if r != 0 {
        let e = io::Error::last_os_error();
        if e.raw_os_error() != Some(EINPROGRESS) {
            unsafe { close(fd) };
            return Err(e);
        }
    }
    Ok(unsafe { TcpStream::from_raw_fd(fd) })
}

pub(crate) fn take_socket_error(stream: &TcpStream) -> io::Result<()> {
    let fd = stream.as_raw_fd();
    let mut err: CInt = 0;
    let mut len: u32 = std::mem::size_of::<CInt>() as u32;
    cvt(unsafe {
        getsockopt(
            fd,
            SOL_SOCKET,
            SO_ERROR,
            (&mut err as *mut CInt).cast::<u8>(),
            &mut len,
        )
    })?;
    if err == 0 {
        Ok(())
    } else {
        Err(io::Error::from_raw_os_error(err))
    }
}

pub(crate) fn raise_nofile_limit() -> u64 {
    let mut lim = RLimit { cur: 0, max: 0 };
    if unsafe { getrlimit(RLIMIT_NOFILE, &mut lim) } != 0 {
        return 0;
    }
    if lim.cur < lim.max {
        let bumped = RLimit {
            cur: lim.max,
            max: lim.max,
        };
        if unsafe { setrlimit(RLIMIT_NOFILE, &bumped) } == 0 {
            return lim.max;
        }
    }
    lim.cur
}
