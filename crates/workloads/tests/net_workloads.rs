//! §5 workloads over real sockets — and the same workload over the
//! simulated grid, through one driver trait.
//!
//! The tentpole claim of PR 5: the traffic the paper's figures are
//! about (NAS-style request/reply rounds, the RMI baseline's lease
//! calls) actually crosses TCP, with DGC heartbeats and membership
//! digests piggybacking on its frames — and the identical workload
//! binary-for-binary runs on the deterministic grid.

use std::time::Duration;

use dgc_activeobj::collector::CollectorKind;
use dgc_activeobj::runtime::{Grid, GridConfig};
use dgc_core::config::DgcConfig;
use dgc_core::units::{Dur, Time};
use dgc_rt_net::{Cluster, NetConfig};
use dgc_simnet::time::SimDuration;
use dgc_simnet::topology::Topology;
use dgc_workloads::driver::{wait_all_terminated, AppTransport, ClusterTransport, GridTransport};
use dgc_workloads::nas::Kernel;
use dgc_workloads::{run_bsp, run_lease};

/// Millisecond-scale protocol so a socket run finishes in seconds.
fn net_dgc() -> DgcConfig {
    DgcConfig::builder()
        .ttb(Dur::from_millis(25))
        .tta(Dur::from_millis(80))
        .max_comm(Dur::from_millis(20))
        .build()
}

/// Second-scale protocol for the virtual-time grid run.
fn sim_dgc() -> DgcConfig {
    DgcConfig::builder()
        .ttb(Dur::from_secs(2))
        .tta(Dur::from_secs(5))
        .max_comm(Dur::from_millis(500))
        .build()
}

#[test]
fn cg_rounds_run_over_tcp_and_the_clique_is_collected() {
    // Enough iterations that the run spans several TTB sweeps: the
    // piggybacking is measured on traffic that genuinely interleaves
    // with the protocol, not on a burst that outruns the first tick.
    let mut params = Kernel::Cg.class_c().scaled_down(4, 10);
    params.iterations = 30;
    let dgc = DgcConfig::builder()
        .ttb(Dur::from_millis(10))
        .tta(Dur::from_millis(80))
        .max_comm(Dur::from_millis(20))
        .build();
    // Background units wait up to 40 ms for an app ride — well inside
    // TTA (10 ms TTB + 40 ms linger < 80 ms), so the piggybacking is
    // visible without starving the consensus of heartbeats.
    let policy = dgc_core::egress::FlushPolicy {
        flush_on_app: true,
        max_delay: Dur::from_millis(40),
        max_bytes: 64 * 1024,
        max_items: 4096,
    };
    let cluster = Cluster::listen_local(2, NetConfig::new(dgc).egress(policy)).unwrap();
    let mut t = ClusterTransport::new(cluster, Duration::from_millis(1));
    let outcome = run_bsp(
        &mut t,
        &params,
        &|i| Kernel::Cg.math(i),
        Time::ZERO + Dur::from_secs(60),
    );
    assert!(outcome.checksum.is_finite());
    assert!(outcome.packets_sent > 0);
    // The released worker clique is cyclic garbage: the complete DGC
    // must collect it over real sockets.
    let collected_at = wait_all_terminated(
        &mut t,
        &outcome.layout.workers,
        outcome.result_at + Dur::from_secs(60),
    );
    assert!(
        collected_at.is_some(),
        "worker clique must be collected over TCP: terminated {:?}",
        t.terminated()
    );
    // The DGC plane rode the workload's frames: piggybacking happened
    // on real traffic, and nothing the workload sent was lost.
    let stats = t.cluster().total_stats();
    assert!(
        stats.piggybacked > 0,
        "heartbeats must ride the workload's app frames: {stats:?}"
    );
    t.into_cluster().shutdown();
}

#[test]
fn the_same_workload_runs_on_both_runtimes_with_the_same_checksum() {
    let params = Kernel::Cg.class_c().scaled_down(4, 25);

    // Grid run (virtual time).
    let topo = Topology::single_site(2, SimDuration::from_millis(2));
    let grid = Grid::new(
        GridConfig::new(topo)
            .collector(CollectorKind::Complete(sim_dgc()))
            .seed(11)
            .egress(dgc_core::egress::FlushPolicy::default()),
    );
    let mut sim = GridTransport::new(grid, SimDuration::from_millis(5));
    let sim_outcome = run_bsp(
        &mut sim,
        &params,
        &|i| Kernel::Cg.math(i),
        Time::ZERO + Dur::from_secs(100_000),
    );
    assert!(
        wait_all_terminated(
            &mut sim,
            &sim_outcome.layout.workers,
            sim_outcome.result_at + Dur::from_secs(1_000),
        )
        .is_some(),
        "grid must collect the released clique"
    );
    assert!(
        sim.grid().violations().is_empty(),
        "{:?}",
        sim.grid().violations()
    );

    // Socket run (wall clock).
    let cluster = Cluster::listen_local(2, NetConfig::new(net_dgc())).unwrap();
    let mut net = ClusterTransport::new(cluster, Duration::from_millis(1));
    let net_outcome = run_bsp(
        &mut net,
        &params,
        &|i| Kernel::Cg.math(i),
        Time::ZERO + Dur::from_secs(60),
    );
    net.into_cluster().shutdown();

    // Identical numerics through two entirely different transports.
    assert_eq!(
        sim_outcome.checksum.to_bits(),
        net_outcome.checksum.to_bits(),
        "the genuinely executed kernel math must agree bit-for-bit"
    );
    assert_eq!(sim_outcome.packets_sent, net_outcome.packets_sent);
}

#[test]
fn ep_style_workload_completes_over_tcp() {
    // EP has no inter-worker exchange: the whole run is RUN fan-out and
    // DONE replies — the lightly-communicating end of the §5 table.
    let params = Kernel::Ep.class_c().scaled_down(3, 25);
    let cluster = Cluster::listen_local(3, NetConfig::new(net_dgc())).unwrap();
    let mut t = ClusterTransport::new(cluster, Duration::from_millis(1));
    let outcome = run_bsp(
        &mut t,
        &params,
        &|i| Kernel::Ep.math(i),
        Time::ZERO + Dur::from_secs(60),
    );
    assert!(outcome.checksum.is_finite());
    // RUN×3 + DONE×3, no chunks.
    assert_eq!(outcome.packets_sent, 6);
    t.into_cluster().shutdown();
}

#[test]
fn lease_baseline_renews_and_collects_over_tcp() {
    let cluster = Cluster::listen_local(2, NetConfig::new(net_dgc())).unwrap();
    let mut t = ClusterTransport::new(cluster, Duration::from_millis(1));
    let outcome = run_lease(
        &mut t,
        Dur::from_millis(400),  // lease
        Dur::from_millis(1200), // hold: several renewal periods
        Time::ZERO + Dur::from_secs(30),
    );
    assert!(
        outcome.target_survived_hold,
        "renewals over TCP must keep the lease alive: {outcome:?}"
    );
    assert!(
        outcome.holder_stats.renew_sent >= 1,
        "the holder must have renewed: {:?}",
        outcome.holder_stats
    );
    assert!(
        outcome.holder_stats.granted_received >= 1,
        "grant replies must travel the reply socket back: {:?}",
        outcome.holder_stats
    );
    assert_eq!(outcome.holder_stats.clean_sent, 1);
    assert!(
        outcome.target_collected_at.is_some(),
        "the released lease must expire and the target collect: {outcome:?}"
    );
    t.into_cluster().shutdown();
}

#[test]
fn lease_baseline_agrees_between_runtimes() {
    // Same lease script on the grid: the counters the §5 table is
    // built from (dirties, renewals, cleans) must match the socket
    // run's exactly — virtual or wall clock, the protocol is the same.
    let topo = Topology::single_site(2, SimDuration::from_millis(2));
    let grid = Grid::new(GridConfig::new(topo).seed(3));
    let mut sim = GridTransport::new(grid, SimDuration::from_millis(5));
    let sim_out = run_lease(
        &mut sim,
        Dur::from_millis(400),
        Dur::from_millis(1200),
        Time::ZERO + Dur::from_secs(1_000),
    );
    let cluster = Cluster::listen_local(2, NetConfig::new(net_dgc())).unwrap();
    let mut net = ClusterTransport::new(cluster, Duration::from_millis(1));
    let net_out = run_lease(
        &mut net,
        Dur::from_millis(400),
        Dur::from_millis(1200),
        Time::ZERO + Dur::from_secs(30),
    );
    net.into_cluster().shutdown();
    assert!(sim_out.target_survived_hold && net_out.target_survived_hold);
    assert!(sim_out.target_collected_at.is_some() && net_out.target_collected_at.is_some());
    assert_eq!(
        sim_out.holder_stats.dirty_sent,
        net_out.holder_stats.dirty_sent
    );
    assert_eq!(
        sim_out.holder_stats.clean_sent,
        net_out.holder_stats.clean_sent
    );
}
