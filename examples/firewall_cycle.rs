//! The Fig. 3 / Fig. 7 walkthrough: consensus over a reverse spanning
//! tree, traced step by step.
//!
//! The DGC never needs to *contact* referencers — only referenced
//! objects — so it works behind firewalls and NATs exactly where the
//! application does. This example builds the compound cycle of Fig. 7,
//! runs the collector with debug tracing, and prints the protocol's own
//! account of what happened: clock bumps, parent adoptions, the
//! consensus, and the one-TTA collapse of the whole compound.
//!
//! Run with: `cargo run --example firewall_cycle`

use grid_dgc::activeobj::collector::CollectorKind;
use grid_dgc::activeobj::runtime::{Grid, GridConfig};
use grid_dgc::dgc::config::DgcConfig;
use grid_dgc::dgc::units::Dur;
use grid_dgc::simnet::time::SimDuration;
use grid_dgc::simnet::topology::Topology;
use grid_dgc::simnet::trace::TraceLevel;
use grid_dgc::workloads::scenarios::fig7_compound;

fn main() {
    let dgc = DgcConfig::builder()
        .ttb(Dur::from_secs(30))
        .tta(Dur::from_secs(61))
        .max_comm(Dur::from_millis(500))
        .build();
    let mut grid = Grid::new(
        GridConfig::new(Topology::single_site(5, SimDuration::from_millis(1)))
            .collector(CollectorKind::Complete(dgc))
            .trace_level(TraceLevel::Info)
            .seed(3),
    );

    // Two rings sharing one activity — five activities on five
    // processes, every edge crossing a (possibly firewalled) boundary.
    let (ids, _) = fig7_compound(&mut grid, 5, false);
    println!(
        "compound cycle: {} activities, two rings sharing one member\n",
        ids.len()
    );

    grid.run_for(SimDuration::from_secs(700));

    println!("trace (spawns, terminations):");
    for record in grid.trace().records() {
        println!("  {record}");
    }

    let stats = grid.dgc_stats();
    println!("\nprotocol counters:");
    println!("  clock bumps (became idle)    {}", stats.bumps_became_idle);
    println!(
        "  clock bumps (lost referencer){:>5}",
        stats.bumps_lost_referencer
    );
    println!(
        "  clock bumps (lost referenced){:>5}",
        stats.bumps_lost_referenced
    );
    println!("  parents adopted              {}", stats.parents_adopted);
    println!(
        "  consensus detected           {}",
        stats.consensus_detected
    );
    println!(
        "  consensus propagated         {}",
        stats.consensus_propagated
    );
    // Depending on broadcast phases the compound collapses in one
    // consensus wave (1 detection + 4 propagations) or several; members
    // orphaned between waves may even fall to the *acyclic* path once
    // their referencers died — the two collectors cooperate. What is
    // invariant: at least one consensus, everything collected, no live
    // object touched.
    assert!(
        stats.consensus_detected >= 1,
        "at least one originator concludes"
    );
    assert_eq!(grid.alive_count(), 0, "the whole compound is reclaimed");
    assert!(grid.violations().is_empty());
    println!("\nthe compound is gone: consensus waves plus the acyclic sweeper — §4.3.");
}
