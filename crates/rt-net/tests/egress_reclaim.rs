//! Regression tests for the egress plane's reclamation paths.
//!
//! PR-5 bugfixes: (1) `Outbox` had no `remove` path, so a Dead/Left
//! peer's queue — items, bytes and flush deadline — leaked for the
//! node's lifetime; (2) an app request whose forward link had gone
//! *terminal* was handed to the dead writer's closed channel and
//! silently vanished, even when the peer's reply socket was alive.

use std::time::{Duration, Instant};

use dgc_core::config::DgcConfig;
use dgc_core::egress::FlushPolicy;
use dgc_core::id::AoId;
use dgc_core::units::Dur;
use dgc_membership::MembershipConfig;
use dgc_rt_net::{Cluster, NetConfig, NetNode};

fn dgc() -> DgcConfig {
    DgcConfig::builder()
        .ttb(Dur::from_millis(25))
        .tta(Dur::from_millis(80))
        .max_comm(Dur::from_millis(20))
        .build()
}

fn poll_until(deadline: Duration, check: impl Fn() -> bool) -> bool {
    let start = Instant::now();
    while start.elapsed() < deadline {
        if check() {
            return true;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    check()
}

/// A `127.0.0.1` port with nobody listening behind it (bound once,
/// dropped immediately): connects fail fast and deterministically.
fn dead_addr() -> std::net::SocketAddr {
    std::net::TcpListener::bind(("127.0.0.1", 0))
        .unwrap()
        .local_addr()
        .unwrap()
}

#[test]
fn dead_peer_queue_is_reclaimed_with_its_deadline() {
    // The leak regression, on the membership path: heartbeats toward a
    // peer linger in the outbox under a 10 s background delay; when the
    // peer departs (graceful leave -> `Left` verdict, the same handling
    // as `Dead` minus the suspicion wait), the queue, its bytes and its
    // wakeup deadline must all be reclaimed — and the queued DGC units
    // must surface as send failures, not sit against a corpse forever.
    let lingering = FlushPolicy {
        flush_on_app: true,
        max_delay: Dur::from_secs(10),
        max_bytes: u64::MAX,
        max_items: usize::MAX,
    };
    let membership = MembershipConfig {
        gossip_interval: Dur::from_millis(50),
        suspect_after: Dur::from_secs(30),
        dead_after: Dur::from_secs(60),
        full_sync_every: 4,
    };
    let config = NetConfig::new(dgc())
        .egress(lingering)
        .membership(membership);
    let cluster = Cluster::join_local(2, config).unwrap();

    // Bootstrap under a 10 s linger: gossip only travels by riding app
    // flushes, so pump app traffic 0 -> 1 until both directories
    // converge (which is itself the piggyback plane working).
    let pump_from = cluster.add_activity(0);
    let pump_to = cluster.add_activity(1);
    assert!(
        cluster.wait_membership_until(0, Duration::from_secs(5), |r| r.len() == 2),
        "seed must learn the joiner from its probe"
    );
    let converged = poll_until(Duration::from_secs(10), || {
        cluster.send_app(pump_from, pump_to, false, vec![0xAA]);
        cluster
            .member_records(1)
            .is_some_and(|r| r.len() == 2 && r.iter().all(|rec| rec.addr.is_some()))
    });
    assert!(
        converged,
        "app-carried gossip must converge the directories"
    );

    // Phase 2: stop the app pump; heartbeats toward node 1 now have no
    // ride and accumulate against the 10 s deadline.
    let holder = cluster.add_activity(0); // stays busy
    let target = cluster.add_activity(1);
    cluster.add_ref(holder, target);
    assert!(
        poll_until(Duration::from_secs(5), || {
            cluster
                .egress_pending(0)
                .is_some_and(|p| p.items > 0 && p.bytes > 0 && p.next_deadline.is_some())
        }),
        "heartbeats should be queued for the peer: {:?}",
        cluster.egress_pending(0)
    );
    let failures_before = cluster.stats()[0].send_failures;

    // The peer departs gracefully; node 0 gets the `Left` verdict. The
    // emptiness must come from an *answered* snapshot (`Some`), so a
    // wedged event loop can never make this pass vacuously.
    cluster.leave_node(1);
    assert!(
        poll_until(Duration::from_secs(10), || {
            cluster
                .egress_pending(0)
                .is_some_and(|p| p.items == 0 && p.bytes == 0 && p.next_deadline.is_none())
        }),
        "departed peer's queue, bytes and wakeup must be reclaimed: {:?}",
        cluster.egress_pending(0)
    );
    assert!(
        cluster.stats()[0].send_failures > failures_before,
        "the reclaimed heartbeats must surface as send failures"
    );
    cluster.shutdown();
}

#[test]
fn terminal_conviction_reclaims_queue_and_fails_app_units() {
    // The no-membership twin: a peer registered at a dead address burns
    // through fail_after_attempts; the terminal verdict must reclaim
    // the egress queue and hand the stranded *app* unit back through
    // the send-failure surface instead of dropping it on the floor.
    let lingering = FlushPolicy {
        flush_on_app: false, // so the app unit lingers alongside the heartbeats
        max_delay: Dur::from_millis(100),
        max_bytes: u64::MAX,
        max_items: usize::MAX,
    };
    let config = NetConfig {
        fail_after_attempts: 2,
        ..NetConfig::new(dgc()).egress(lingering)
    };
    let node = NetNode::bind(0, config).unwrap();
    node.add_peer(1, dead_addr());
    let holder = node.add_activity();
    let remote = AoId::new(1, 0);
    node.add_ref(holder, remote);
    node.send_app(holder, remote, false, b"stranded".to_vec());
    assert!(
        poll_until(Duration::from_secs(10), || {
            node.app_send_failures()
                .iter()
                .any(|f| f.payload == b"stranded" && f.to == remote)
        }),
        "queued app unit must surface as a send failure: {:?}",
        node.app_send_failures()
    );
    assert!(
        poll_until(Duration::from_secs(10), || {
            node.egress_pending()
                .is_some_and(|p| p.items == 0 && p.next_deadline.is_none())
        }),
        "terminal conviction must reclaim the egress queue: {:?}",
        node.egress_pending()
    );
    assert!(node.stats().send_failures > 0);
    node.shutdown();
}

#[test]
fn stranded_request_falls_back_to_the_live_reply_socket() {
    // Severed forward link + live reply socket: node 1 can reach node 0
    // (and did — that socket carries node 0's replies), but node 0's
    // *forward* address for node 1 points at a dead port. Requests
    // node 0 -> node 1 must not be handed to the terminal writer's dead
    // channel: they fall back to the reply path and arrive.
    let config = NetConfig {
        fail_after_attempts: 2,
        reconnect_base: Duration::from_millis(5),
        ..NetConfig::new(dgc())
    };
    let node0 = NetNode::bind(0, config).unwrap();
    let node1 = NetNode::bind(1, config).unwrap();
    let a0 = node0.add_activity();
    let a1 = node1.add_activity();

    // Node 1 opens the only real connection: its requests give node 0 a
    // reply path back over that same socket.
    node1.add_peer(0, node0.addr());
    node1.send_app(a1, a0, false, b"hello".to_vec());
    assert!(
        poll_until(Duration::from_secs(5), || !node0.app_received().is_empty()),
        "node 1's request must establish the reply path"
    );

    // Node 0's forward route to node 1 is severed (dead port).
    node0.add_peer(1, dead_addr());
    node0.send_app(a0, a1, false, b"first".to_vec());
    assert!(
        poll_until(Duration::from_secs(10), || {
            node1.app_received().iter().any(|r| r.payload == b"first")
        }),
        "request must fall back to the live reply socket: got {:?}, failures {:?}",
        node1.app_received(),
        node0.app_send_failures()
    );
    // And a request sent *after* the writer exited (its channel is now
    // closed) takes the same fallback instead of vanishing into it.
    node0.send_app(a0, a1, false, b"second".to_vec());
    assert!(
        poll_until(Duration::from_secs(10), || {
            node1.app_received().iter().any(|r| r.payload == b"second")
        }),
        "post-terminal request must not vanish into the dead channel: got {:?}",
        node1.app_received()
    );
    node0.shutdown();
    node1.shutdown();
}
