//! Multi-node test/demo driver: a whole DGC deployment on localhost.
//!
//! Spawns N [`NetNode`]s on ephemeral `127.0.0.1` ports, cross-registers
//! their listen addresses, and exposes the same driver surface as
//! `dgc_rt_thread::ThreadGrid` — create activities, flip idleness, wire
//! reference edges, watch terminations — except every DGC message and
//! response now crosses a real TCP socket in a length-prefixed batched
//! frame.

use std::net::SocketAddr;
use std::time::Duration;

use dgc_core::id::AoId;

use crate::config::NetConfig;
use crate::node::{NetNode, Terminated};
use crate::stats::NetStatsSnapshot;

/// A running localhost cluster of DGC nodes.
pub struct Cluster {
    nodes: Vec<NetNode>,
}

impl Cluster {
    /// Starts `n` nodes, each with `config`, fully peered.
    pub fn listen_local(n: u32, config: NetConfig) -> std::io::Result<Cluster> {
        let mut nodes = Vec::with_capacity(n as usize);
        for id in 0..n {
            nodes.push(NetNode::bind(id, config)?);
        }
        let addrs: Vec<(u32, SocketAddr)> =
            nodes.iter().map(|nd| (nd.node_id(), nd.addr())).collect();
        for node in &nodes {
            for (id, addr) in &addrs {
                if *id != node.node_id() {
                    node.add_peer(*id, *addr);
                }
            }
        }
        Ok(Cluster { nodes })
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True if the cluster has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The node hosting id-namespace `node`.
    pub fn node(&self, node: u32) -> &NetNode {
        &self.nodes[node as usize]
    }

    /// Creates an activity on `node` (initially busy); returns its id.
    pub fn add_activity(&self, node: u32) -> AoId {
        self.nodes[node as usize].add_activity()
    }

    /// Declares `ao` idle or busy.
    pub fn set_idle(&self, ao: AoId, idle: bool) {
        self.nodes[ao.node as usize].set_idle(ao, idle);
    }

    /// Adds the reference edge `from → to` (any pair of nodes).
    pub fn add_ref(&self, from: AoId, to: AoId) {
        self.nodes[from.node as usize].add_ref(from, to);
    }

    /// Drops the reference edge `from → to`.
    pub fn drop_ref(&self, from: AoId, to: AoId) {
        self.nodes[from.node as usize].drop_ref(from, to);
    }

    /// All terminations recorded so far, across nodes.
    pub fn terminated(&self) -> Vec<Terminated> {
        let mut all: Vec<Terminated> = self.nodes.iter().flat_map(|n| n.terminated()).collect();
        all.sort_by_key(|t| t.ao);
        all
    }

    /// True if `ao` has terminated.
    pub fn is_terminated(&self, ao: AoId) -> bool {
        self.nodes[ao.node as usize]
            .terminated()
            .iter()
            .any(|t| t.ao == ao)
    }

    /// Blocks until `predicate` holds over the merged termination log or
    /// the deadline passes; returns whether it held.
    pub fn wait_until(
        &self,
        deadline: Duration,
        predicate: impl Fn(&[Terminated]) -> bool,
    ) -> bool {
        crate::node::poll_until(deadline, || predicate(&self.terminated()))
    }

    /// Per-node transport counters.
    pub fn stats(&self) -> Vec<NetStatsSnapshot> {
        self.nodes.iter().map(|n| n.stats()).collect()
    }

    /// Transport counters summed over all nodes.
    pub fn total_stats(&self) -> NetStatsSnapshot {
        let mut total = NetStatsSnapshot::default();
        for s in self.stats() {
            total.frames_sent += s.frames_sent;
            total.bytes_sent += s.bytes_sent;
            total.items_sent += s.items_sent;
            total.frames_received += s.frames_received;
            total.bytes_received += s.bytes_received;
            total.items_received += s.items_received;
            total.reconnects += s.reconnects;
            total.send_failures += s.send_failures;
            total.decode_errors += s.decode_errors;
        }
        total
    }

    /// Stops every node and joins their threads.
    pub fn shutdown(self) {
        for node in self.nodes {
            node.shutdown();
        }
    }
}
