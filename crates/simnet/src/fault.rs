//! Fault injection: link delays, loss, partitions and process pauses.
//!
//! The paper's DGC is *hard real-time* (§4.2): if a DGC message is delayed
//! beyond the `TTA > 2·TTB + MaxComm` bound — by TCP timeouts or local GC
//! pauses — a live activity can be wrongfully collected. This module
//! injects exactly those hazards so tests can demonstrate both the failure
//! mode and the safety of correctly chosen parameters.
//!
//! A [`FaultPlan`] is now a thin [`SimTime`]-typed veneer over the
//! runtime-neutral [`dgc_core::faults::FaultProfile`]: the builder
//! methods below convert their `SimTime` windows into profile time
//! (both are nanoseconds since scenario start, so conversions cannot
//! shift boundaries) and every query — window/filter matching, the
//! seeded drop Bernoulli, pause covering-unions — delegates to the one
//! implementation in `dgc-core` that the chaos proxy also evaluates.
//! The plan used to carry private copies of that logic; embedding the
//! profile deleted them, and `from_profile_realizes_every_fifo_primitive`
//! pins that the realization still matches the profile's own answers.

use dgc_core::faults::{FaultProfile, NodeCrash, Window};
use dgc_core::units::{Dur, Time};

use crate::time::{SimDuration, SimTime};
use crate::topology::ProcId;

/// Extra delay applied to messages traversing a link during a time window.
#[derive(Debug, Clone)]
pub struct LinkFault {
    /// Source process filter; `None` matches any source.
    pub from: Option<ProcId>,
    /// Destination process filter; `None` matches any destination.
    pub to: Option<ProcId>,
    /// Start of the fault window (inclusive).
    pub start: SimTime,
    /// End of the fault window (exclusive).
    pub end: SimTime,
    /// Additional one-way delay applied to matching messages.
    pub extra_delay: SimDuration,
}

/// A "stop-the-world" pause of one process (models a long local-GC pause,
/// §4.2). While paused, the process neither sends broadcasts nor processes
/// deliveries; the runtime defers its events to the end of the pause.
#[derive(Debug, Clone)]
pub struct ProcessPause {
    /// The paused process.
    pub proc: ProcId,
    /// Start of the pause (inclusive).
    pub start: SimTime,
    /// End of the pause (exclusive).
    pub end: SimTime,
}

/// A full partition of a link during a window: nothing crosses until
/// the window closes. In a reliable-FIFO delivery-time model this is
/// "delivered at heal time" — the same outcome TCP retransmission
/// produces once connectivity returns.
#[derive(Debug, Clone)]
pub struct LinkPartition {
    /// Source process filter; `None` matches any source.
    pub from: Option<ProcId>,
    /// Destination process filter; `None` matches any destination.
    pub to: Option<ProcId>,
    /// Start of the partition (inclusive).
    pub start: SimTime,
    /// First healed instant (exclusive).
    pub end: SimTime,
}

/// Probabilistic message loss on a link during a window. Decisions are
/// seeded and deterministic, drawn from the same generator as the chaos
/// proxy's frame drops ([`dgc_core::faults::decision`]) — though the
/// two realizations number their streams differently (per-message here,
/// per-frame there), so a shared profile reproduces *rates*, not loss
/// patterns.
#[derive(Debug, Clone)]
pub struct LinkDrop {
    /// Source process filter; `None` matches any source.
    pub from: Option<ProcId>,
    /// Destination process filter; `None` matches any destination.
    pub to: Option<ProcId>,
    /// Start of the loss window (inclusive).
    pub start: SimTime,
    /// End of the loss window (exclusive).
    pub end: SimTime,
    /// Loss probability in thousandths.
    pub permille: u16,
}

fn window(start: SimTime, end: SimTime) -> Window {
    Window {
        start: Time::from_nanos(start.as_nanos()),
        end: Time::from_nanos(end.as_nanos()),
    }
}

fn endpoint(p: Option<ProcId>) -> Option<u32> {
    p.map(|p| p.0)
}

/// A schedule of link faults and process pauses: the simulator's
/// realization of a [`FaultProfile`].
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    profile: FaultProfile,
}

impl FaultPlan {
    /// No faults at all.
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// A plan with the given link faults.
    pub fn with_faults(link_faults: Vec<LinkFault>) -> Self {
        let mut plan = FaultPlan::none();
        for f in link_faults {
            plan.add_link_fault(f);
        }
        plan
    }

    /// Realizes a runtime-neutral [`FaultProfile`] as a simulator fault
    /// plan. Profile times are nanoseconds since scenario start, which
    /// is exactly [`SimTime`]'s epoch; node ids map to [`ProcId`]s.
    /// [`dgc_core::faults::FaultKind::Reorder`] has no FIFO realization
    /// and is ignored by every query — the simulator models the paper's
    /// in-order transport (§3.2).
    pub fn from_profile(profile: &FaultProfile) -> Self {
        FaultPlan {
            profile: profile.clone(),
        }
    }

    /// Adds a link fault.
    pub fn add_link_fault(&mut self, fault: LinkFault) {
        self.profile = std::mem::take(&mut self.profile).delay(
            endpoint(fault.from),
            endpoint(fault.to),
            window(fault.start, fault.end),
            Dur::from_nanos(fault.extra_delay.as_nanos()),
        );
    }

    /// Adds a process pause.
    pub fn add_pause(&mut self, pause: ProcessPause) {
        self.profile =
            std::mem::take(&mut self.profile).pause(pause.proc.0, window(pause.start, pause.end));
    }

    /// Adds a link partition.
    pub fn add_partition(&mut self, partition: LinkPartition) {
        self.profile = std::mem::take(&mut self.profile).partition(
            endpoint(partition.from),
            endpoint(partition.to),
            window(partition.start, partition.end),
        );
    }

    /// Adds a probabilistic-loss window.
    pub fn add_drop(&mut self, drop: LinkDrop) {
        self.profile = std::mem::take(&mut self.profile).drop_frames(
            endpoint(drop.from),
            endpoint(drop.to),
            window(drop.start, drop.end),
            drop.permille,
        );
    }

    /// Sets the seed loss decisions derive from.
    pub fn set_seed(&mut self, seed: u64) {
        self.profile = std::mem::take(&mut self.profile).seeded(seed);
    }

    /// The embedded runtime-neutral profile.
    pub fn profile(&self) -> &FaultProfile {
        &self.profile
    }

    /// Node crash-restarts carried by the profile (realized by the grid
    /// runtime, not by delivery arithmetic).
    pub fn crashes(&self) -> &[NodeCrash] {
        self.profile.node_crashes()
    }

    /// Total extra delay for a message sent at `now` over `(from, to)`.
    /// Overlapping faults accumulate; an active partition defers the
    /// message to its heal time (`end - now` extra).
    pub fn extra_delay(&self, now: SimTime, from: ProcId, to: ProcId) -> SimDuration {
        SimDuration::from_nanos(
            self.profile
                .extra_delay(Time::from_nanos(now.as_nanos()), from.0, to.0)
                .as_nanos(),
        )
    }

    /// Seeded loss decision for the `seq`-th metered message over
    /// `(from, to)` at `now`. Deterministic in `(seed, disruption
    /// index, from, to, seq)` via [`dgc_core::faults::decision`], the
    /// same generator the chaos proxy draws from.
    pub fn should_drop(&self, now: SimTime, from: ProcId, to: ProcId, seq: u64) -> bool {
        self.profile
            .should_drop(Time::from_nanos(now.as_nanos()), from.0, to.0, seq)
    }

    /// If `proc` is paused at `now`, returns the time the pause ends.
    pub fn pause_end(&self, now: SimTime, proc: ProcId) -> Option<SimTime> {
        self.profile
            .pause_end(Time::from_nanos(now.as_nanos()), proc.0)
            .map(|t| SimTime::from_nanos(t.as_nanos()))
    }

    /// True if the plan contains no faults.
    pub fn is_empty(&self) -> bool {
        self.profile.is_empty()
    }
}

impl From<&FaultProfile> for FaultPlan {
    fn from(profile: &FaultProfile) -> FaultPlan {
        FaultPlan::from_profile(profile)
    }
}
#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn none_is_empty() {
        assert!(FaultPlan::none().is_empty());
        assert_eq!(
            FaultPlan::none().extra_delay(t(0), ProcId(0), ProcId(1)),
            SimDuration::ZERO
        );
    }

    #[test]
    fn link_fault_applies_in_window() {
        let mut p = FaultPlan::none();
        p.add_link_fault(LinkFault {
            from: Some(ProcId(0)),
            to: None,
            start: t(10),
            end: t(20),
            extra_delay: SimDuration::from_secs(5),
        });
        assert_eq!(p.extra_delay(t(9), ProcId(0), ProcId(1)), SimDuration::ZERO);
        assert_eq!(
            p.extra_delay(t(10), ProcId(0), ProcId(1)),
            SimDuration::from_secs(5)
        );
        assert_eq!(
            p.extra_delay(t(19), ProcId(0), ProcId(9)),
            SimDuration::from_secs(5)
        );
        assert_eq!(
            p.extra_delay(t(20), ProcId(0), ProcId(1)),
            SimDuration::ZERO
        );
        // Different source unaffected.
        assert_eq!(
            p.extra_delay(t(15), ProcId(2), ProcId(1)),
            SimDuration::ZERO
        );
    }

    #[test]
    fn overlapping_faults_accumulate() {
        let mut p = FaultPlan::none();
        for _ in 0..2 {
            p.add_link_fault(LinkFault {
                from: None,
                to: None,
                start: t(0),
                end: t(100),
                extra_delay: SimDuration::from_secs(1),
            });
        }
        assert_eq!(
            p.extra_delay(t(1), ProcId(0), ProcId(1)),
            SimDuration::from_secs(2)
        );
    }

    #[test]
    fn link_fault_window_is_start_inclusive_end_exclusive() {
        let mut p = FaultPlan::none();
        p.add_link_fault(LinkFault {
            from: None,
            to: None,
            start: t(10),
            end: t(20),
            extra_delay: SimDuration::from_secs(1),
        });
        // One nanosecond before `start`: outside.
        let just_before = SimTime::from_nanos(t(10).as_nanos() - 1);
        assert_eq!(
            p.extra_delay(just_before, ProcId(0), ProcId(1)),
            SimDuration::ZERO
        );
        // Exactly `start`: inside.
        assert_eq!(
            p.extra_delay(t(10), ProcId(0), ProcId(1)),
            SimDuration::from_secs(1)
        );
        // One nanosecond before `end`: still inside.
        let just_inside = SimTime::from_nanos(t(20).as_nanos() - 1);
        assert_eq!(
            p.extra_delay(just_inside, ProcId(0), ProcId(1)),
            SimDuration::from_secs(1)
        );
        // Exactly `end`: outside.
        assert_eq!(
            p.extra_delay(t(20), ProcId(0), ProcId(1)),
            SimDuration::ZERO
        );
    }

    #[test]
    fn pause_window_is_start_inclusive_end_exclusive() {
        let mut p = FaultPlan::none();
        p.add_pause(ProcessPause {
            proc: ProcId(0),
            start: t(10),
            end: t(20),
        });
        let just_before = SimTime::from_nanos(t(10).as_nanos() - 1);
        assert_eq!(p.pause_end(just_before, ProcId(0)), None);
        assert_eq!(p.pause_end(t(10), ProcId(0)), Some(t(20)));
        let just_inside = SimTime::from_nanos(t(20).as_nanos() - 1);
        assert_eq!(p.pause_end(just_inside, ProcId(0)), Some(t(20)));
        assert_eq!(p.pause_end(t(20), ProcId(0)), None);
    }

    #[test]
    fn wildcard_filters_match_any_pair() {
        let mut any_any = FaultPlan::none();
        any_any.add_link_fault(LinkFault {
            from: None,
            to: None,
            start: t(0),
            end: t(10),
            extra_delay: SimDuration::from_secs(1),
        });
        for (f, to) in [(0u32, 1u32), (5, 9), (9, 5), (7, 0)] {
            assert_eq!(
                any_any.extra_delay(t(5), ProcId(f), ProcId(to)),
                SimDuration::from_secs(1),
                "None/None must match {f}→{to}"
            );
        }
        // Half-wildcards filter only their bound side.
        let mut from_only = FaultPlan::none();
        from_only.add_link_fault(LinkFault {
            from: Some(ProcId(2)),
            to: None,
            start: t(0),
            end: t(10),
            extra_delay: SimDuration::from_secs(1),
        });
        assert_eq!(
            from_only.extra_delay(t(5), ProcId(2), ProcId(8)),
            SimDuration::from_secs(1)
        );
        assert_eq!(
            from_only.extra_delay(t(5), ProcId(3), ProcId(8)),
            SimDuration::ZERO
        );
        let mut to_only = FaultPlan::none();
        to_only.add_link_fault(LinkFault {
            from: None,
            to: Some(ProcId(4)),
            start: t(0),
            end: t(10),
            extra_delay: SimDuration::from_secs(1),
        });
        assert_eq!(
            to_only.extra_delay(t(5), ProcId(9), ProcId(4)),
            SimDuration::from_secs(1)
        );
        assert_eq!(
            to_only.extra_delay(t(5), ProcId(9), ProcId(5)),
            SimDuration::ZERO
        );
    }

    #[test]
    fn overlapping_pauses_on_one_process_extend_to_latest_end() {
        // Chained partial overlaps: [5,10) ∪ [8,14) ∪ [13,21). Probing
        // inside each segment reports the longest end *covering that
        // instant*, not the global maximum.
        let mut p = FaultPlan::none();
        for (s, e) in [(5, 10), (8, 14), (13, 21)] {
            p.add_pause(ProcessPause {
                proc: ProcId(1),
                start: t(s),
                end: t(e),
            });
        }
        assert_eq!(p.pause_end(t(6), ProcId(1)), Some(t(10)), "only 1st covers");
        assert_eq!(p.pause_end(t(9), ProcId(1)), Some(t(14)), "1st and 2nd");
        assert_eq!(p.pause_end(t(13), ProcId(1)), Some(t(21)), "2nd and 3rd");
        assert_eq!(p.pause_end(t(20), ProcId(1)), Some(t(21)));
        assert_eq!(p.pause_end(t(21), ProcId(1)), None);
        // A different process never pauses.
        assert_eq!(p.pause_end(t(9), ProcId(2)), None);
    }

    #[test]
    fn pause_end_reports_longest() {
        let mut p = FaultPlan::none();
        p.add_pause(ProcessPause {
            proc: ProcId(3),
            start: t(5),
            end: t(10),
        });
        p.add_pause(ProcessPause {
            proc: ProcId(3),
            start: t(5),
            end: t(15),
        });
        assert_eq!(p.pause_end(t(7), ProcId(3)), Some(t(15)));
        assert_eq!(p.pause_end(t(4), ProcId(3)), None);
        assert_eq!(p.pause_end(t(15), ProcId(3)), None);
        assert_eq!(p.pause_end(t(7), ProcId(4)), None);
    }

    #[test]
    fn partition_defers_to_heal_time() {
        let mut p = FaultPlan::none();
        p.add_partition(LinkPartition {
            from: Some(ProcId(0)),
            to: Some(ProcId(1)),
            start: t(10),
            end: t(30),
        });
        assert_eq!(
            p.extra_delay(t(10), ProcId(0), ProcId(1)),
            SimDuration::from_secs(20)
        );
        assert_eq!(
            p.extra_delay(t(25), ProcId(0), ProcId(1)),
            SimDuration::from_secs(5)
        );
        assert_eq!(
            p.extra_delay(t(30), ProcId(0), ProcId(1)),
            SimDuration::ZERO,
            "healed"
        );
        assert_eq!(
            p.extra_delay(t(25), ProcId(1), ProcId(0)),
            SimDuration::ZERO,
            "reverse direction unaffected"
        );
        assert!(!p.is_empty());
    }

    #[test]
    fn drops_are_seeded_and_windowed() {
        let mut p = FaultPlan::none();
        p.set_seed(7);
        p.add_drop(LinkDrop {
            from: Some(ProcId(0)),
            to: None,
            start: t(0),
            end: t(100),
            permille: 500,
        });
        let seq: Vec<bool> = (0..64)
            .map(|s| p.should_drop(t(5), ProcId(0), ProcId(1), s))
            .collect();
        let again: Vec<bool> = (0..64)
            .map(|s| p.should_drop(t(5), ProcId(0), ProcId(1), s))
            .collect();
        assert_eq!(seq, again);
        let hits = seq.iter().filter(|d| **d).count();
        assert!((10..=54).contains(&hits), "~50% expected, got {hits}/64");
        assert!(
            !p.should_drop(t(100), ProcId(0), ProcId(1), 0),
            "window end"
        );
        assert!(
            !p.should_drop(t(5), ProcId(2), ProcId(1), 0),
            "wrong source"
        );
    }

    #[test]
    fn from_profile_realizes_every_fifo_primitive() {
        use dgc_core::faults::{FaultProfile, Window};
        use dgc_core::units::Dur;

        let profile = FaultProfile::none()
            .seeded(99)
            .delay(
                Some(0),
                Some(1),
                Window::from_millis(0, 50),
                Dur::from_millis(5),
            )
            .partition_pair(0, 1, Window::from_millis(100, 200))
            .drop_frames(None, Some(2), Window::from_millis(0, 1000), 1000)
            .reorder(None, None, Window::from_millis(0, 1000), 500)
            .pause(1, Window::from_millis(300, 400));
        let plan = FaultPlan::from_profile(&profile);
        assert!(!plan.is_empty());
        // Delay window carried over.
        assert_eq!(
            plan.extra_delay(SimTime::from_millis(10), ProcId(0), ProcId(1)),
            SimDuration::from_millis(5)
        );
        // Partition defers to heal in both directions.
        assert_eq!(
            plan.extra_delay(SimTime::from_millis(150), ProcId(0), ProcId(1)),
            SimDuration::from_millis(50)
        );
        assert_eq!(
            plan.extra_delay(SimTime::from_millis(150), ProcId(1), ProcId(0)),
            SimDuration::from_millis(50)
        );
        // A certain drop drops; reorder has no FIFO realization.
        assert!(plan.should_drop(SimTime::from_millis(1), ProcId(0), ProcId(2), 0));
        assert!(!plan.should_drop(SimTime::from_millis(1), ProcId(0), ProcId(1), 0));
        // Pause carried over with the same window semantics.
        assert_eq!(
            plan.pause_end(SimTime::from_millis(350), ProcId(1)),
            Some(SimTime::from_millis(400))
        );
        // The matching profile query agrees with the plan realization.
        assert_eq!(
            profile
                .extra_delay(dgc_core::units::Time::from_nanos(150_000_000), 0, 1)
                .as_nanos(),
            plan.extra_delay(SimTime::from_millis(150), ProcId(0), ProcId(1))
                .as_nanos()
        );
    }
}
