//! The telemetry-plane half of the conformance contract: both runtimes
//! must not only reach the same *verdict*, they must measure the same
//! *collection latency* for the same scenario.
//!
//! `safe-with-slack` collects a two-member garbage cycle on each
//! runtime, and each collection records into the node-local
//! `dgc.collect.*` histograms (virtual nanoseconds on the grid, wall
//! nanoseconds on sockets). Since TTB/TTA/MaxComm are identical and the
//! latency is protocol-dominated (consensus propagation plus the §4.3
//! TTA wait — hundreds of milliseconds against ~2 ms of transport
//! noise), the two distributions must agree: same observation count,
//! means on the same side of TTA, and means within a small factor of
//! each other. That factor is the *slack*: the fault profile (20 ms
//! extra delay, seeded frame loss) perturbs the consensus schedule
//! differently per runtime, and wall-clock runs add scheduling jitter,
//! but neither effect can stretch one runtime's latency past 4× the
//! other's plus a couple of TTB rounds without a real divergence.

use dgc_conformance::{
    env_trace_level, run_rtnet_obs, run_simnet_obs, scenarios, seeds, TraceLevel,
};

#[test]
fn collection_latency_histograms_agree_across_runtimes() {
    let scenario = scenarios::safe_with_slack();
    let seed = seeds()[0];
    let (sim_verdict, sim) = run_simnet_obs(&scenario, seed);
    let (net_verdict, net) = run_rtnet_obs(&scenario, seed).expect("bind chaos cluster");
    assert_eq!(sim_verdict, scenario.expect, "simnet verdict diverged");
    assert_eq!(net_verdict, scenario.expect, "rt-net verdict diverged");

    // When the suite runs under DGC_TRACE=info|debug, both runtimes
    // must actually have recorded protocol events into their rings.
    if env_trace_level() != TraceLevel::Off {
        for (name, tel) in [("simnet", &sim), ("rt-net", &net)] {
            assert!(
                tel.trace_tails.iter().any(|(_, t)| !t.is_empty()),
                "{name}: DGC_TRACE set but no events recorded"
            );
        }
    }

    let sim_h = sim.snapshot.histogram("dgc.collect.idle_to_collected_ns");
    let net_h = net.snapshot.histogram("dgc.collect.idle_to_collected_ns");

    // Both cycle members were collected, and every collection recorded
    // exactly one latency sample — on both runtimes.
    assert_eq!(sim_h.count, 2, "simnet: {} samples", sim_h.count);
    assert_eq!(net_h.count, sim_h.count, "sample counts diverge");
    for (name, snap) in [("simnet", &sim), ("rt-net", &net)] {
        let collected = snap.snapshot.counter("dgc.collected.cyclic")
            + snap.snapshot.counter("dgc.collected.acyclic");
        assert_eq!(
            collected,
            snap.snapshot
                .histogram("dgc.collect.idle_to_collected_ns")
                .count,
            "{name}: collections without a latency sample"
        );
    }

    // The latency includes the full §4.3 TTA wait, so each mean sits
    // above TTA on both clocks...
    let tta = scenario.dgc.tta.as_nanos() as f64;
    assert!(sim_h.mean() >= tta, "simnet mean {:.0} < TTA", sim_h.mean());
    assert!(net_h.mean() >= tta, "rt-net mean {:.0} < TTA", net_h.mean());

    // ...and the two means agree within the slack (see module docs).
    let ttb = scenario.dgc.ttb.as_nanos() as f64;
    let (lo, hi) = if sim_h.mean() <= net_h.mean() {
        (sim_h.mean(), net_h.mean())
    } else {
        (net_h.mean(), sim_h.mean())
    };
    assert!(
        hi <= lo * 4.0 + 2.0 * ttb,
        "collection-latency means diverge: simnet {:.0} ns vs rt-net {:.0} ns",
        sim_h.mean(),
        net_h.mean()
    );

    // The TTA wait itself is measured separately and is bounded below
    // by TTA by construction — on both runtimes.
    for (name, snap) in [("simnet", &sim), ("rt-net", &net)] {
        let wait = snap
            .snapshot
            .histogram("dgc.collect.consensus_to_collected_ns");
        assert_eq!(wait.count, 2, "{name}: missing TTA-wait samples");
        assert!(
            wait.mean() >= tta,
            "{name}: TTA wait mean {:.0} < TTA",
            wait.mean()
        );
    }
}
