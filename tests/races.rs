//! Race tests: the §3.2 clock-increment cases and the §3.1 in-flight
//! reference window, exercised through the full middleware.

use grid_dgc::activeobj::activity::{AoCtx, Behavior, Inert};
use grid_dgc::activeobj::collector::CollectorKind;
use grid_dgc::activeobj::request::Request;
use grid_dgc::activeobj::runtime::{Grid, GridConfig};
use grid_dgc::dgc::config::DgcConfig;
use grid_dgc::dgc::units::Dur;
use grid_dgc::simnet::time::SimDuration;
use grid_dgc::simnet::topology::{ProcId, Topology};
use grid_dgc::workloads::scenarios;

fn dgc() -> DgcConfig {
    DgcConfig::builder()
        .ttb(Dur::from_secs(30))
        .tta(Dur::from_secs(61))
        .max_comm(Dur::from_millis(500))
        .build()
}

fn grid(seed: u64) -> Grid {
    Grid::new(
        GridConfig::new(Topology::single_site(6, SimDuration::from_millis(1)))
            .collector(CollectorKind::Complete(dgc()))
            .seed(seed),
    )
}

#[test]
fn fig5_dying_referencer_leaves_collectable_cycle() {
    // A references a cycle; A is acyclic garbage. When A goes, the cycle
    // must notice the loss of a referencer, bump to a clock owned inside
    // the cycle, and reach its own consensus (case 2 of Fig. 5).
    let mut g = grid(1);
    let (a, cycle) = scenarios::fig5(&mut g, 6);
    g.run_for(SimDuration::from_secs(2_000));
    assert!(!g.is_alive(a));
    assert!(cycle.iter().all(|id| !g.is_alive(*id)));
    assert!(g.violations().is_empty());
    let stats = g.dgc_stats();
    assert!(
        stats.bumps_lost_referencer > 0,
        "Fig. 5's bump must have happened"
    );
}

#[test]
fn fig6_edge_removal_mid_consensus_is_safe() {
    // The cycle is blocked by busy d. Remove the c→a edge (the parent
    // edge in the paper's narration) while consensus attempts circulate:
    // without the loss-of-referenced bump this wrongly collects the
    // cycle; with it, everyone stays alive while d is busy.
    let mut g = grid(2);
    let (cycle, d) = scenarios::fig6(&mut g, 6);
    g.run_for(SimDuration::from_secs(400));
    assert!(cycle.iter().all(|id| g.is_alive(*id)));
    // Sever the c→a edge mid-flight (a "loss of a referenced"). Busy d
    // still reaches every member through a→b→c→e→a, so NOTHING may be
    // collected — this is precisely the wrongful collection Fig. 6 warns
    // about if the clock were not bumped on the edge loss.
    g.drop_ref(cycle[2], cycle[0]);
    g.run_for(SimDuration::from_secs(1_200));
    assert!(
        cycle.iter().all(|id| g.is_alive(*id)),
        "no wrongful collection"
    );
    assert!(g.is_alive(d));
    assert!(g.violations().is_empty(), "{:?}", g.violations());
    assert!(g.dgc_stats().bumps_lost_referenced > 0);
    // Now sever the busy referencer's edge: the remaining a→b→c→e→a
    // cycle is garbage and must be reclaimed.
    g.drop_ref(d, cycle[0]);
    g.run_for(SimDuration::from_secs(1_500));
    assert!(cycle.iter().all(|id| !g.is_alive(*id)));
    assert!(g.violations().is_empty(), "{:?}", g.violations());
}

/// Passes its reference to `next` on request, then drops its own stub —
/// the §3.1 "reference quickly exchanged between two active objects"
/// pattern that the must-send-once rule protects.
struct PassAlong {
    next: Option<grid_dgc::dgc::AoId>,
}

impl Behavior for PassAlong {
    fn on_request(&mut self, ctx: &mut AoCtx<'_>, request: &Request) {
        if request.method != 7 {
            return;
        }
        let target = request.refs[0];
        if let Some(next) = self.next {
            // Forward the hot potato and immediately drop our stub.
            ctx.send(next, 7, 16, vec![target]);
        }
        ctx.release_all(target);
        ctx.compute(SimDuration::from_millis(1));
    }
}

#[test]
fn hot_potato_reference_survives_rapid_exchange() {
    // target is only ever referenced by whoever holds the potato, and
    // each holder drops its stub right after forwarding. The in-flight
    // message plus the must-send-once rule must keep target alive for
    // the whole relay, and collect it only after the relay ends.
    let mut g = grid(3);
    let target = g.spawn(ProcId(5), Box::new(Inert));
    // Relay chain of 6 hops across processes.
    let mut next = None;
    let mut relays = Vec::new();
    for i in (0..6).rev() {
        let r = g.spawn_root(ProcId(i), Box::new(PassAlong { next }));
        relays.push(r);
        next = Some(r);
    }
    let first = *relays.last().expect("non-empty");
    // Seed: a dummy root hands the potato to the first relay.
    let dummy = g.spawn_root(ProcId(0), Box::new(Inert));
    g.make_ref(dummy, target);
    g.make_ref(dummy, first);
    g.send_from(dummy, first, 7, 16, vec![target]);
    g.drop_ref(dummy, target);

    // While the potato travels (hops every ~ms), target must stay alive
    // well past one TTA.
    g.run_for(SimDuration::from_secs(70));
    assert!(
        g.is_alive(target),
        "in-flight references must keep the target alive"
    );
    // After the relay finishes (last holder dropped it), it is garbage.
    g.run_for(SimDuration::from_secs(400));
    assert!(!g.is_alive(target));
    assert!(g.violations().is_empty(), "{:?}", g.violations());
}

/// Alternates between busy and idle forever by re-arming timers slowly.
struct Blinker {
    period: SimDuration,
}

impl Behavior for Blinker {
    fn on_start(&mut self, ctx: &mut AoCtx<'_>) {
        ctx.set_timer(self.period, 0);
    }
    fn on_timer(&mut self, ctx: &mut AoCtx<'_>, _token: u64) {
        ctx.compute(SimDuration::from_secs(5));
        ctx.set_timer(self.period, 0);
    }
}

#[test]
fn blinking_member_never_lets_the_cycle_die() {
    // One cycle member alternates idle/busy on a period incommensurate
    // with TTB. The clock bump on every busy→idle transition must keep
    // invalidating consensus attempts: nothing may ever be collected.
    let mut g = grid(4);
    let a = g.spawn(
        ProcId(0),
        Box::new(Blinker {
            period: SimDuration::from_secs(47),
        }),
    );
    let b = g.spawn(ProcId(1), Box::new(Inert));
    let c = g.spawn(ProcId(2), Box::new(Inert));
    g.make_ref(a, b);
    g.make_ref(b, c);
    g.make_ref(c, a);
    g.run_for(SimDuration::from_secs(5_000));
    assert!(g.is_alive(a) && g.is_alive(b) && g.is_alive(c));
    assert!(g.violations().is_empty());
    assert!(
        g.dgc_stats().bumps_became_idle > 50,
        "the blinker kept bumping"
    );
}

#[test]
fn late_idle_member_delays_then_releases_consensus() {
    // The cycle forms early; one member stays busy for a long while.
    // After it finally idles, collection must complete within the
    // O(h·TTB) + TTA bound (generously slackened here).
    let mut g = grid(5);
    let a = g.spawn(
        ProcId(0),
        Box::new(Blinker {
            period: SimDuration::from_secs(40),
        }),
    );
    let b = g.spawn(ProcId(1), Box::new(Inert));
    g.make_ref(a, b);
    g.make_ref(b, a);
    g.run_for(SimDuration::from_secs(600));
    assert!(g.is_alive(a) && g.is_alive(b));
    // Stop the blinker by removing it: kill is an explicit termination,
    // after which b loses its referencer and dies acyclically.
    g.kill(a);
    g.run_for(SimDuration::from_secs(300));
    assert!(!g.is_alive(b));
    assert!(g.violations().is_empty());
}

#[test]
fn idle_busy_churn_under_many_seeds_is_safe() {
    for seed in 0..8 {
        let mut g = grid(100 + seed);
        let ids = scenarios::random_graph(&mut g, 16, 6, 2, seed);
        // A root pokes random activities periodically, creating bursts
        // of busyness racing the collector.
        let root = g.spawn_root(ProcId(0), Box::new(Inert));
        for id in &ids {
            g.make_ref(root, *id);
        }
        for round in 0..10u64 {
            let victim = ids[(seed as usize + round as usize * 5) % ids.len()];
            g.send_from(root, victim, 1, 64, vec![]);
            g.run_for(SimDuration::from_secs(20));
        }
        // Release everything: the whole graph is garbage now.
        for id in &ids {
            g.drop_ref(root, *id);
        }
        g.run_for(SimDuration::from_secs(3_000));
        assert!(
            ids.iter().all(|id| !g.is_alive(*id)),
            "seed {seed}: liveness violated, {} left",
            ids.iter().filter(|id| g.is_alive(**id)).count()
        );
        assert!(
            g.violations().is_empty(),
            "seed {seed}: {:?}",
            g.violations()
        );
    }
}
