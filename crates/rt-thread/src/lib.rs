//! # dgc-rt-thread — real-thread runtime for the DGC core
//!
//! The simulator (`dgc-activeobj`) proves the protocol at grid scale in
//! virtual time; this crate proves the same sans-io `dgc_core::DgcState`
//! works under **real concurrency**: every node (address space) is an OS
//! thread with a crossbeam channel for its mailbox, timers come from the
//! wall clock, and DGC messages/responses travel between threads exactly
//! as the protocol emits them.
//!
//! The API mirrors the test surface of the simulator: create activities,
//! flip their idleness, wire reference edges, and watch terminations
//! arrive. Used by `examples/threaded_demo.rs` and the `tests/threaded.rs`
//! integration suite with millisecond-scale TTB/TTA.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

use std::collections::BTreeMap;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender};
use parking_lot::Mutex;

use dgc_core::config::DgcConfig;
use dgc_core::id::AoId;
use dgc_core::message::{Action, DgcMessage, DgcResponse, TerminateReason};
use dgc_core::protocol::DgcState;
use dgc_core::sweep::{sweep_sharded, SweepPools};
use dgc_core::units::Time;

/// A recorded termination, visible to the driver.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Terminated {
    /// Which activity ended.
    pub ao: AoId,
    /// Why.
    pub reason: TerminateReason,
}

enum NodeMsg {
    Dgc {
        from: AoId,
        to: AoId,
        message: DgcMessage,
    },
    Resp {
        from: AoId,
        to: AoId,
        response: DgcResponse,
    },
    SendFailure {
        holder: AoId,
        target: AoId,
    },
    AddActivity {
        id: AoId,
    },
    SetIdle {
        ao: AoId,
        idle: bool,
    },
    AddRef {
        from: AoId,
        to: AoId,
    },
    DropRef {
        from: AoId,
        to: AoId,
    },
    Shutdown,
}

struct Endpoint {
    state: DgcState,
    idle: bool,
    next_tick: Instant,
}

struct NodeWorker {
    rx: Receiver<NodeMsg>,
    peers: Vec<Sender<NodeMsg>>,
    endpoints: BTreeMap<u32, Endpoint>,
    epoch: Instant,
    config: DgcConfig,
    /// TTB sweep fan-out (`DGC_SWEEP_SHARDS`, default 1) plus the
    /// per-shard scratch/unit buffers reused every sweep.
    sweep_shards: usize,
    sweep_pools: SweepPools,
    terminated: Arc<Mutex<Vec<Terminated>>>,
}

impl NodeWorker {
    fn now(&self) -> Time {
        Time::from_nanos(self.epoch.elapsed().as_nanos() as u64)
    }

    fn route(&self, to: AoId, msg: NodeMsg) {
        // A dropped peer channel means global shutdown: ignore errors.
        let _ = self.peers[to.node as usize].send(msg);
    }

    fn apply_actions(&mut self, who: AoId, actions: Vec<Action>) {
        for action in actions {
            self.apply_action(who, action);
        }
    }

    fn apply_action(&mut self, who: AoId, action: Action) {
        match action {
            Action::SendMessage { to, message } => {
                self.route(
                    to,
                    NodeMsg::Dgc {
                        from: who,
                        to,
                        message,
                    },
                );
            }
            Action::SendResponse { to, response } => {
                self.route(
                    to,
                    NodeMsg::Resp {
                        from: who,
                        to,
                        response,
                    },
                );
            }
            Action::Terminate { reason } => {
                self.endpoints.remove(&who.index);
                self.terminated.lock().push(Terminated { ao: who, reason });
            }
            _ => {}
        }
    }

    fn handle(&mut self, msg: NodeMsg) -> bool {
        let now = self.now();
        match msg {
            NodeMsg::Shutdown => return false,
            NodeMsg::AddActivity { id } => {
                self.endpoints.insert(
                    id.index,
                    Endpoint {
                        state: DgcState::new(id, now, self.config),
                        idle: false,
                        // dgc-analysis: allow(wall-clock): the in-process runtime times real thread wake-ups
                        next_tick: Instant::now()
                            + Duration::from_nanos(self.config.ttb.as_nanos()),
                    },
                );
            }
            NodeMsg::SetIdle { ao, idle } => {
                if let Some(ep) = self.endpoints.get_mut(&ao.index) {
                    if idle && !ep.idle {
                        ep.state.on_became_idle(now);
                    }
                    ep.idle = idle;
                }
            }
            NodeMsg::AddRef { from, to } => {
                if let Some(ep) = self.endpoints.get_mut(&from.index) {
                    ep.state.on_stub_deserialized(to);
                }
            }
            NodeMsg::DropRef { from, to } => {
                if let Some(ep) = self.endpoints.get_mut(&from.index) {
                    ep.state.on_stubs_collected(to);
                }
            }
            NodeMsg::Dgc { from, to, message } => {
                match self.endpoints.get_mut(&to.index) {
                    Some(ep) => {
                        let actions = ep.state.on_message(now, &message);
                        self.apply_actions(to, actions);
                    }
                    None => {
                        // Target is gone: tell the sender's node.
                        self.route(
                            from,
                            NodeMsg::SendFailure {
                                holder: from,
                                target: to,
                            },
                        );
                    }
                }
            }
            NodeMsg::Resp { from, to, response } => {
                if let Some(ep) = self.endpoints.get_mut(&to.index) {
                    let idle = ep.idle;
                    let actions = ep.state.on_response(now, from, &response, idle);
                    self.apply_actions(to, actions);
                }
            }
            NodeMsg::SendFailure { holder, target } => {
                if let Some(ep) = self.endpoints.get_mut(&holder.index) {
                    ep.state.on_send_failure(target);
                }
            }
        }
        true
    }

    /// One batched TTB sweep over every due endpoint: collected in
    /// ascending activity-id order, ticked through `on_tick_into`
    /// (across `sweep_shards` threads when configured) with reused
    /// scratch buffers, emitted units routed afterwards in exactly the
    /// sequential order.
    fn tick_due(&mut self) {
        // dgc-analysis: allow(wall-clock): the in-process runtime times real thread wake-ups
        let now_i = Instant::now();
        let now = self.now();
        let mut due: Vec<(u32, &mut Endpoint)> = self
            .endpoints
            .iter_mut()
            .filter(|(_, ep)| ep.next_tick <= now_i)
            .map(|(idx, ep)| (*idx, ep))
            .collect();
        if due.is_empty() {
            return;
        }
        let mut pools = std::mem::take(&mut self.sweep_pools);
        sweep_sharded(
            &mut due,
            self.sweep_shards,
            &mut pools,
            |(_, ep), scratch, units| {
                ep.state.on_tick_into(now, ep.idle, scratch, units);
                ep.next_tick = now_i + Duration::from_nanos(ep.state.current_ttb().as_nanos());
            },
        );
        drop(due);
        for unit in pools.drain_units() {
            self.apply_action(unit.from, unit.action);
        }
        self.sweep_pools = pools;
    }

    fn run(mut self) {
        loop {
            let next_tick = self
                .endpoints
                .values()
                .map(|e| e.next_tick)
                .min()
                // dgc-analysis: allow(wall-clock): the in-process runtime times real thread wake-ups
                .unwrap_or_else(|| Instant::now() + Duration::from_millis(50));
            // dgc-analysis: allow(wall-clock): the in-process runtime times real thread wake-ups
            let timeout = next_tick.saturating_duration_since(Instant::now());
            match self.rx.recv_timeout(timeout) {
                Ok(msg) => {
                    if !self.handle(msg) {
                        return;
                    }
                }
                Err(RecvTimeoutError::Timeout) => {}
                Err(RecvTimeoutError::Disconnected) => return,
            }
            self.tick_due();
        }
    }
}

/// A running multi-threaded grid of DGC endpoints.
pub struct ThreadGrid {
    senders: Vec<Sender<NodeMsg>>,
    handles: Vec<JoinHandle<()>>,
    terminated: Arc<Mutex<Vec<Terminated>>>,
    next_index: Mutex<Vec<u32>>,
}

impl ThreadGrid {
    /// Spawns `nodes` node threads, each hosting activities running the
    /// DGC with `config`.
    ///
    /// # Panics
    ///
    /// Panics if `config` violates the TTA safety formula.
    pub fn new(nodes: u32, config: DgcConfig) -> Self {
        config.validate().expect("unsafe TTB/TTA configuration");
        let terminated = Arc::new(Mutex::new(Vec::new()));
        let channels: Vec<(Sender<NodeMsg>, Receiver<NodeMsg>)> =
            (0..nodes).map(|_| unbounded()).collect();
        let senders: Vec<Sender<NodeMsg>> = channels.iter().map(|(tx, _)| tx.clone()).collect();
        // dgc-analysis: allow(wall-clock): the in-process runtime times real thread wake-ups
        let epoch = Instant::now();
        let mut handles = Vec::new();
        for (node, (_, rx)) in channels.into_iter().enumerate() {
            let worker = NodeWorker {
                rx,
                peers: senders.clone(),
                endpoints: BTreeMap::new(),
                epoch,
                config,
                sweep_shards: std::env::var("DGC_SWEEP_SHARDS")
                    .ok()
                    .and_then(|v| v.parse().ok())
                    .filter(|&n| n >= 1)
                    .unwrap_or(1),
                sweep_pools: SweepPools::new(),
                terminated: Arc::clone(&terminated),
            };
            handles.push(
                std::thread::Builder::new()
                    .name(format!("dgc-node-{node}"))
                    .spawn(move || worker.run())
                    .expect("spawn node thread"),
            );
        }
        ThreadGrid {
            senders,
            handles,
            terminated,
            next_index: Mutex::new(vec![0; nodes as usize]),
        }
    }

    /// Creates an activity on `node` (initially busy). Returns its id.
    pub fn add_activity(&self, node: u32) -> AoId {
        let id = {
            let mut idx = self.next_index.lock();
            let slot = &mut idx[node as usize];
            let id = AoId::new(node, *slot);
            *slot += 1;
            id
        };
        let _ = self.senders[node as usize].send(NodeMsg::AddActivity { id });
        id
    }

    /// Declares `ao` idle or busy.
    pub fn set_idle(&self, ao: AoId, idle: bool) {
        let _ = self.senders[ao.node as usize].send(NodeMsg::SetIdle { ao, idle });
    }

    /// Adds the reference edge `from → to`.
    pub fn add_ref(&self, from: AoId, to: AoId) {
        let _ = self.senders[from.node as usize].send(NodeMsg::AddRef { from, to });
    }

    /// Drops the reference edge `from → to`.
    pub fn drop_ref(&self, from: AoId, to: AoId) {
        let _ = self.senders[from.node as usize].send(NodeMsg::DropRef { from, to });
    }

    /// Snapshot of terminations so far.
    pub fn terminated(&self) -> Vec<Terminated> {
        self.terminated.lock().clone()
    }

    /// True if `ao` has terminated.
    pub fn is_terminated(&self, ao: AoId) -> bool {
        self.terminated.lock().iter().any(|t| t.ao == ao)
    }

    /// Blocks until `predicate` holds over the termination log or the
    /// deadline passes; returns whether it held.
    pub fn wait_until(
        &self,
        deadline: Duration,
        predicate: impl Fn(&[Terminated]) -> bool,
    ) -> bool {
        // dgc-analysis: allow(wall-clock): the in-process runtime times real thread wake-ups
        let start = Instant::now();
        loop {
            if predicate(&self.terminated.lock()) {
                return true;
            }
            if start.elapsed() > deadline {
                return false;
            }
            std::thread::sleep(Duration::from_millis(2));
        }
    }

    /// Stops all node threads and waits for them.
    pub fn shutdown(mut self) {
        for tx in &self.senders {
            let _ = tx.send(NodeMsg::Shutdown);
        }
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dgc_core::units::Dur;

    fn cfg() -> DgcConfig {
        DgcConfig::builder()
            .ttb(Dur::from_millis(25))
            .tta(Dur::from_millis(80))
            .max_comm(Dur::from_millis(20))
            .build()
    }

    #[test]
    fn lone_idle_activity_is_collected() {
        let grid = ThreadGrid::new(2, cfg());
        let a = grid.add_activity(0);
        grid.set_idle(a, true);
        assert!(
            grid.wait_until(Duration::from_secs(5), |t| t.iter().any(|x| x.ao == a)),
            "acyclic collection under real threads"
        );
        let t = grid.terminated();
        assert_eq!(t[0].reason, TerminateReason::Acyclic);
        grid.shutdown();
    }

    #[test]
    fn referenced_activity_stays_alive() {
        let grid = ThreadGrid::new(2, cfg());
        let root = grid.add_activity(0); // stays busy: a root
        let b = grid.add_activity(1);
        grid.add_ref(root, b);
        grid.set_idle(b, true);
        std::thread::sleep(Duration::from_millis(400));
        assert!(
            !grid.is_terminated(b),
            "heartbeats from the busy root keep it"
        );
        grid.shutdown();
    }

    #[test]
    fn cross_thread_cycle_is_collected() {
        let grid = ThreadGrid::new(3, cfg());
        let a = grid.add_activity(0);
        let b = grid.add_activity(1);
        let c = grid.add_activity(2);
        grid.add_ref(a, b);
        grid.add_ref(b, c);
        grid.add_ref(c, a);
        grid.set_idle(a, true);
        grid.set_idle(b, true);
        grid.set_idle(c, true);
        assert!(
            grid.wait_until(Duration::from_secs(10), |t| t.len() == 3),
            "cyclic collection under real threads: {:?}",
            grid.terminated()
        );
        assert!(grid.terminated().iter().any(|t| t.reason.is_cyclic()));
        grid.shutdown();
    }

    #[test]
    fn busy_member_protects_the_cycle() {
        let grid = ThreadGrid::new(2, cfg());
        let a = grid.add_activity(0);
        let b = grid.add_activity(1);
        grid.add_ref(a, b);
        grid.add_ref(b, a);
        grid.set_idle(a, true);
        // b stays busy.
        std::thread::sleep(Duration::from_millis(500));
        assert!(grid.terminated().is_empty());
        grid.set_idle(b, true);
        assert!(grid.wait_until(Duration::from_secs(10), |t| t.len() == 2));
        grid.shutdown();
    }

    #[test]
    #[should_panic(expected = "unsafe TTB/TTA")]
    fn unsafe_config_is_rejected() {
        let bad = DgcConfig::builder()
            .ttb(Dur::from_millis(50))
            .tta(Dur::from_millis(50))
            .build();
        let _ = ThreadGrid::new(1, bad);
    }
}
