//! virtual-path: crates/core/src/fixture.rs
// Golden fixture: malformed allow directives are findings themselves.

fn reasonless() -> Instant {
    // dgc-analysis: allow(wall-clock)
    Instant::now()
}

fn unknown_rule() -> u32 {
    // dgc-analysis: allow(fast-path): no such rule
    0
}

fn not_an_allow() -> u32 {
    // dgc-analysis: suppress(wall-clock): wrong verb
    0
}
