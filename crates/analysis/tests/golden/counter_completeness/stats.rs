//! virtual-path: crates/rt-net/src/stats.rs
// Golden fixture (file 1 of 2): the canonical counter enumeration and
// registrations the rule cross-checks against.

impl Snapshot {
    pub fn named_counters(&self) -> Vec<(&'static str, u64)> {
        vec![
            ("net.frames_sent", self.frames_sent),
            ("net.frames_received", self.frames_received),
        ]
    }
}

fn register(obs: &Registry) {
    obs.counter("net.frames_sent");
    obs.counter("net.frames_received");
    obs.histogram("net.reconnect_backoff_ns");
}

fn tenant_mirror(registry: &Registry, tenant: u32) {
    let name = |field: &str| format!("tenant.{tenant}.app_{field}");
    registry.counter(&name("enqueued"));
    registry.counter(&name("flushed"));
}
