//! One NAS kernel, with and without the collector (a miniature Fig. 8/9).
//!
//! Runs the CG kernel at a reduced scale twice — control run with
//! explicit termination, then with the complete DGC — and prints the
//! bandwidth/time comparison the paper's evaluation tables are made of.
//!
//! Run with: `cargo run --release --example nas_bench`

use grid_dgc::activeobj::collector::CollectorKind;
use grid_dgc::dgc::config::DgcConfig;
use grid_dgc::dgc::units::Dur;
use grid_dgc::simnet::topology::Topology;
use grid_dgc::workloads::nas::{run_kernel, Kernel};

fn main() {
    let kernel = Kernel::Cg;
    // 32 workers, iterations/compute/chunks scaled down 5×.
    let params = kernel.class_c().scaled_down(32, 5);
    let topology = Topology::grid5000_scaled(6); // 18 processes
    let dgc = CollectorKind::Complete(
        DgcConfig::builder()
            .ttb(Dur::from_secs(30))
            .tta(Dur::from_secs(61))
            .max_comm(Dur::from_millis(500))
            .build(),
    );

    println!(
        "NAS {} (scaled): {} workers, {} iterations on {} processes\n",
        params.name,
        params.workers,
        params.iterations,
        topology.procs()
    );

    let control = run_kernel(kernel, &params, topology.clone(), CollectorKind::None, 1);
    let with_dgc = run_kernel(kernel, &params, topology, dgc, 1);

    let mib = |b: u64| b as f64 / (1024.0 * 1024.0);
    println!("                         no DGC         with DGC");
    println!(
        "result at        {:>12.2} s   {:>12.2} s",
        control.result_at.as_secs_f64(),
        with_dgc.result_at.as_secs_f64()
    );
    println!(
        "total traffic    {:>12.2} MB  {:>12.2} MB",
        mib(control.total_bytes),
        mib(with_dgc.total_bytes)
    );
    println!(
        "collector share  {:>12.2} MB  {:>12.2} MB",
        mib(control.dgc_bytes),
        mib(with_dgc.dgc_bytes)
    );
    println!(
        "bandwidth overhead: {:.2} %",
        (with_dgc.total_bytes as f64 - control.total_bytes as f64) / control.total_bytes as f64
            * 100.0
    );
    let dgc_time = with_dgc.dgc_time.expect("all workers collected");
    println!(
        "DGC time: {:.0} s (≈ {:.1} broadcast rounds after the result, then all {} workers gone)",
        dgc_time.as_secs_f64(),
        dgc_time.as_secs_f64() / 30.0,
        params.workers
    );
    assert_eq!(with_dgc.violations, 0);
}
