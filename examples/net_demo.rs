//! Tour of `rt_net`: the paper's collector crossing real TCP sockets.
//!
//! Spawns three DGC nodes on localhost ephemeral ports, then stages the
//! three situations the paper cares about — acyclic garbage, a live
//! (rooted) activity, and a cross-node garbage cycle — and watches the
//! collector resolve all three over the network. Finishes with the
//! transport's own accounting: frames, bytes, and the batching factor.
//!
//! Run: `cargo run --example net_demo`

use std::time::Duration;

use grid_dgc::dgc::config::DgcConfig;
use grid_dgc::dgc::units::Dur;
use grid_dgc::rt_net::{Cluster, NetConfig};

fn main() {
    // Millisecond-scale timers (the paper runs TTB 30 s / TTA 61 s; the
    // protocol is scale-free as long as TTA > 2·TTB + MaxComm).
    let dgc = DgcConfig::builder()
        .ttb(Dur::from_millis(25))
        .tta(Dur::from_millis(80))
        .max_comm(Dur::from_millis(20))
        .build();
    let cluster = Cluster::listen_local(3, NetConfig::new(dgc)).expect("bind 3 nodes");
    for node in 0..3 {
        println!("node {node} listening on {}", cluster.addr(node));
    }

    // A root on node 0 keeps one activity on node 1 alive.
    let root = cluster.add_activity(0); // never idled: a root
    let kept = cluster.add_activity(1);
    cluster.add_ref(root, kept);
    cluster.set_idle(kept, true);

    // Lone idle activity on node 2: acyclic garbage.
    let lone = cluster.add_activity(2);
    cluster.set_idle(lone, true);

    // A garbage cycle spanning all three nodes.
    let ca = cluster.add_activity(0);
    let cb = cluster.add_activity(1);
    let cc = cluster.add_activity(2);
    cluster.add_ref(ca, cb);
    cluster.add_ref(cb, cc);
    cluster.add_ref(cc, ca);
    for id in [ca, cb, cc] {
        cluster.set_idle(id, true);
    }

    println!("\nwaiting for the collector (lone activity + 3-node cycle = 4 terminations)…");
    let all_garbage_fell = cluster.wait_until(Duration::from_secs(30), |t| t.len() == 4);
    assert!(
        all_garbage_fell,
        "garbage not collected: {:?}",
        cluster.terminated()
    );
    for t in cluster.terminated() {
        println!("  {} terminated: {:?}", t.ao, t.reason);
    }
    assert!(!cluster.is_terminated(root) && !cluster.is_terminated(kept));
    println!("root {root} and referenced {kept} survived, as they must.");

    println!("\ntransport accounting per node:");
    for (node, s) in cluster.stats().iter().enumerate() {
        println!(
            "  node {node}: {:>4} frames / {:>4} items out ({:.2} items/frame), {:>6} B out, {:>6} B in",
            s.frames_sent, s.items_sent, s.items_per_frame(), s.bytes_sent, s.bytes_received
        );
    }
    let total = cluster.total_stats();
    println!(
        "\ntotals: {} frames, {} protocol units, {} bytes on the wire, {} decode errors",
        total.frames_sent, total.items_sent, total.bytes_sent, total.decode_errors
    );
    cluster.shutdown();
    println!("clean shutdown.");
}
