//! virtual-path: crates/core/src/sweep.rs
// Golden fixture: the hot-path-panic rule (virtual path is one of the
// PR 9 hot-path modules).

fn panicky(v: &[u8], o: Option<u8>, r: Result<u8, ()>) -> u8 {
    let first = v[0];
    let second = o.unwrap();
    let third = r.expect("hot path");
    if first == 0 {
        panic!("zero");
    }
    first + second + third
}

fn handled(v: &[u8], o: Option<u8>) -> Option<u8> {
    let first = v.first()?;
    let second = o?;
    Some(first + second)
}

fn annotated(v: &[u8]) -> u8 {
    // dgc-analysis: allow(hot-path-panic): caller guarantees non-empty
    v[0]
}

#[cfg(test)]
mod tests {
    fn unwrap_in_tests_is_fine(o: Option<u8>) -> u8 {
        o.unwrap()
    }
}
