//! The sans-io membership engine: one per node, driven by whatever
//! clock and transport the runtime owns.
//!
//! Like [`dgc_core::protocol::DgcState`], the engine performs no I/O:
//! the runtime calls [`Membership::on_tick`] periodically and
//! [`Membership::on_digest`] for every received gossip digest, and
//! sends whatever [`GossipOut`]s come back. The simulator drives it
//! from virtual time and simulated delivery (verdicts stay
//! deterministic); the socket runtime drives it from its node event
//! loop and piggybacks digests on the DGC's batched frames.
//!
//! Protocol, in brief:
//!
//! * **Bootstrap** — a joining node knows only seed contacts
//!   ([`Membership::on_contact`], or a socket dial of a seed address).
//!   Its first digest introduces it; the seed replies with the full
//!   directory (push-on-new), and anti-entropy spreads the join.
//! * **Anti-entropy, as deltas** — every `gossip_interval` the engine
//!   pushes each present peer a [`Digest`] of the records that changed
//!   since the directory version that peer last **acknowledged**
//!   (digests carry the sender's version; the receiver echoes it back
//!   in its own digests' `ack` field). In steady state the delta is
//!   empty and a digest is a ~19-byte heartbeat, so gossip cost is
//!   O(churn) per round instead of O(cluster). Unacknowledged changes
//!   simply stay in the next delta, which is what makes loss harmless.
//!   A **full sync** (the entire directory) goes out to new, rejoined
//!   or restarted peers and periodically every `full_sync_every`
//!   rounds, so no replica can stay divergent behind a lost ack.
//! * **Failure detection** — a peer silent past `suspect_after` is
//!   suspected; past `dead_after` it is declared dead, which the
//!   runtime feeds into `DgcState::on_node_dead` so the collector
//!   treats the node's referencers as departed (the paper's
//!   send-failure path, §4.1).
//! * **Refutation / rejoin** — verdicts are pinned to incarnations
//!   (see [`crate::directory`]); a slandered node outbids the verdict
//!   by re-announcing one incarnation higher, and a crash-rejoin under
//!   a fresh incarnation supersedes its own death record.

use std::collections::BTreeMap;
use std::net::SocketAddr;

use dgc_core::units::{Dur, Time};
use dgc_obs::{Counter, Registry};

use crate::directory::{Directory, NodeRecord, NodeStatus, Transition};

/// Timing knobs of the membership layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MembershipConfig {
    /// Anti-entropy period: how often the full directory is pushed to
    /// every present peer.
    pub gossip_interval: Dur,
    /// Silence after which an alive peer is suspected. Must cover
    /// several gossip intervals, or ordinary jitter slanders peers.
    pub suspect_after: Dur,
    /// Silence after which a peer is declared dead. Must exceed
    /// `suspect_after`; the gap is the refutation window.
    pub dead_after: Dur,
    /// Gossip rounds between unconditional full-directory pushes to a
    /// peer (the anti-entropy backstop for lost acks); rounds in
    /// between carry only deltas. `0` or `1` pushes the full directory
    /// every round — the pre-delta behaviour, kept as the bandwidth
    /// baseline.
    pub full_sync_every: u32,
}

impl MembershipConfig {
    /// A config scaled around one gossip interval: suspicion after 5
    /// silent intervals, death after 15, a full sync every 10 rounds.
    pub fn scaled(gossip_interval: Dur) -> MembershipConfig {
        MembershipConfig {
            gossip_interval,
            suspect_after: gossip_interval.saturating_mul(5),
            dead_after: gossip_interval.saturating_mul(15),
            full_sync_every: 10,
        }
    }

    /// The same timings with full-directory pushes every round (no
    /// deltas) — what the `gossip_bandwidth` bench compares against.
    pub fn full_push(mut self) -> MembershipConfig {
        self.full_sync_every = 1;
        self
    }

    fn validate(&self) {
        assert!(
            !self.gossip_interval.is_zero(),
            "gossip_interval must be positive"
        );
        assert!(
            self.suspect_after.as_nanos() >= self.gossip_interval.as_nanos() * 2,
            "suspect_after below 2 gossip intervals slanders healthy peers"
        );
        assert!(
            self.dead_after > self.suspect_after,
            "dead_after must leave a refutation window past suspect_after"
        );
    }
}

impl Default for MembershipConfig {
    fn default() -> MembershipConfig {
        MembershipConfig::scaled(Dur::from_millis(100))
    }
}

/// One gossip digest: a versioned, acknowledged batch of directory
/// records. Deltas carry only records the destination has not
/// acknowledged; full syncs carry the whole directory; an empty delta
/// is a liveness heartbeat (failure detection listens for digests, not
/// for their contents).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Digest {
    /// The sender's directory version when the digest was built. The
    /// receiver echoes the highest version it has applied back in
    /// `ack`, which is what lets the sender shrink future deltas.
    pub version: u64,
    /// Highest version of the *receiver's* directory the sender has
    /// applied (the acknowledgement driving the receiver's deltas).
    pub ack: u64,
    /// True when `records` is the sender's entire directory.
    pub full: bool,
    /// The records, node-id order.
    pub records: Vec<NodeRecord>,
}

/// One digest the runtime must deliver to a peer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GossipOut {
    /// Destination node.
    pub to: u32,
    /// What to deliver.
    pub digest: Digest,
}

/// One observed membership transition, in the runtime's scenario time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MembershipEvent {
    /// When the local engine applied it.
    pub at: Time,
    /// The node the verdict is about.
    pub node: u32,
    /// The incarnation the verdict is pinned to.
    pub incarnation: u64,
    /// What happened.
    pub transition: Transition,
}

/// Per-peer delta-gossip bookkeeping.
#[derive(Debug, Clone, Copy, Default)]
struct PeerSync {
    /// Highest of *our* directory versions the peer acknowledged.
    acked: u64,
    /// The peer's directory version as of its most recent digest (what
    /// we echo back as `ack`). Tracks the statement, not a running
    /// max — see [`Membership::on_digest`].
    applied: u64,
    /// Gossip rounds left until the periodic full sync; 0 = full now.
    /// Fresh peers start at 0, so the first push is always full.
    until_full: u32,
}

/// Cached `dgc-obs` counters for membership verdict transitions,
/// recorded at the single place every [`MembershipEvent`] is born.
/// Names live under `member.transitions.` in the owning node's
/// registry.
#[derive(Debug, Clone)]
pub struct MembershipObs {
    joined: Counter,
    alive: Counter,
    suspected: Counter,
    left: Counter,
    dead: Counter,
}

impl MembershipObs {
    /// Resolves the engine's handles against `registry`.
    pub fn new(registry: &Registry) -> MembershipObs {
        MembershipObs {
            joined: registry.counter("member.transitions.joined"),
            alive: registry.counter("member.transitions.alive"),
            suspected: registry.counter("member.transitions.suspected"),
            left: registry.counter("member.transitions.left"),
            dead: registry.counter("member.transitions.dead"),
        }
    }

    fn counter(&self, t: Transition) -> &Counter {
        match t {
            Transition::Joined => &self.joined,
            Transition::Alive => &self.alive,
            Transition::Suspected => &self.suspected,
            Transition::Left => &self.left,
            Transition::Dead => &self.dead,
        }
    }
}

/// The per-node membership engine.
#[derive(Debug, Clone)]
pub struct Membership {
    node: u32,
    addr: Option<SocketAddr>,
    incarnation: u64,
    config: MembershipConfig,
    directory: Directory,
    /// Last instant a digest arrived from each peer.
    last_heard: BTreeMap<u32, Time>,
    /// Delta-gossip state per peer.
    peers: BTreeMap<u32, PeerSync>,
    next_gossip: Time,
    events: Vec<MembershipEvent>,
    /// Set by [`Membership::leave`]: self-defense is off.
    left: bool,
    obs: Option<MembershipObs>,
}

impl Membership {
    /// A fresh engine for `node`, announcing itself under
    /// `incarnation` (first lives start at 1; rejoins must pass
    /// something strictly above every incarnation the node lived
    /// before).
    ///
    /// # Panics
    ///
    /// Panics if `config` timings are inconsistent (see
    /// [`MembershipConfig`]).
    pub fn new(
        node: u32,
        addr: Option<SocketAddr>,
        incarnation: u64,
        now: Time,
        config: MembershipConfig,
    ) -> Membership {
        config.validate();
        let mut directory = Directory::new();
        directory.merge(&NodeRecord::alive(node, incarnation, addr));
        Membership {
            node,
            addr,
            incarnation,
            config,
            directory,
            last_heard: BTreeMap::new(),
            peers: BTreeMap::new(),
            next_gossip: now,
            events: Vec::new(),
            left: false,
            obs: None,
        }
    }

    /// Attaches verdict-transition counters (usually
    /// [`MembershipObs::new`] against the hosting node's registry).
    pub fn set_obs(&mut self, obs: MembershipObs) {
        self.obs = Some(obs);
    }

    /// This engine's node id.
    pub fn node_id(&self) -> u32 {
        self.node
    }

    /// The incarnation this node currently announces. Monotone:
    /// refutations only ever raise it.
    pub fn incarnation(&self) -> u64 {
        self.incarnation
    }

    /// The timing configuration.
    pub fn config(&self) -> &MembershipConfig {
        &self.config
    }

    /// The current directory.
    pub fn directory(&self) -> &Directory {
        &self.directory
    }

    /// The current full digest (what gossip carries).
    pub fn records(&self) -> Vec<NodeRecord> {
        self.directory.records()
    }

    /// Seed bootstrap: the runtime knows (out of band) that `node`
    /// exists, optionally at `addr`. Inserted as assumed-alive at
    /// incarnation 0, which any real announcement supersedes.
    pub fn on_contact(&mut self, now: Time, node: u32, addr: Option<SocketAddr>) {
        if node == self.node {
            return;
        }
        if let Some(tr) = self.directory.merge(&NodeRecord::alive(node, 0, addr)) {
            self.push_event(now, node, 0, tr);
        }
        self.last_heard.entry(node).or_insert(now);
    }

    /// Periodic driver: runs failure detection, and when the gossip
    /// period elapsed, emits one digest to every present peer — a delta
    /// of whatever that peer has not acknowledged (possibly empty: the
    /// heartbeat), or the full directory when the periodic full sync is
    /// due. Call at least a couple of times per `gossip_interval`.
    pub fn on_tick(&mut self, now: Time) -> Vec<GossipOut> {
        self.detect_failures(now);
        if now < self.next_gossip {
            return Vec::new();
        }
        self.next_gossip = now + self.config.gossip_interval;
        let present: Vec<u32> = self
            .directory
            .iter()
            .filter(|r| r.node != self.node && r.status.is_present())
            .map(|r| r.node)
            .collect();
        present
            .into_iter()
            .map(|p| {
                let full = {
                    let sync = self.peers.entry(p).or_default();
                    let due = self.config.full_sync_every <= 1 || sync.until_full == 0;
                    sync.until_full = if due {
                        self.config.full_sync_every.saturating_sub(1)
                    } else {
                        sync.until_full - 1
                    };
                    due
                };
                GossipOut {
                    to: p,
                    digest: self.digest_for(p, full),
                }
            })
            .collect()
    }

    /// The digest this engine would send `to` right now: the full
    /// directory, or the delta of records `to` has not acknowledged.
    /// Runtimes normally receive digests from [`Membership::on_tick`] /
    /// [`Membership::on_digest`]; this is the building block, public
    /// for tests and drivers that splice digests themselves.
    pub fn digest_for(&self, to: u32, full: bool) -> Digest {
        let sync = self.peers.get(&to).copied().unwrap_or_default();
        let records = if full {
            self.records()
        } else {
            self.directory.changed_since(sync.acked)
        };
        Digest {
            version: self.directory.version(),
            ack: sync.applied,
            full,
            records,
        }
    }

    /// Handles one received digest. Returns any immediate replies:
    /// the full directory pushed back when the sender is new or just
    /// transitioned (back) to alive — a joiner, rejoiner or restarted
    /// peer (its rejoin incarnation outbids the old record) converges
    /// in one round-trip instead of waiting out a gossip period — when
    /// a record about *this* node had to be refuted, or when the sender
    /// is one we had written off (it must learn the verdict to outbid
    /// it).
    pub fn on_digest(&mut self, now: Time, from: u32, digest: &Digest) -> Vec<GossipOut> {
        let known_before = self.directory.contains(from);
        self.last_heard.insert(from, now);
        {
            // `applied` tracks the sender's *stated* version, not a
            // running max: a version that runs backwards is either a
            // stale digest delivered out of order (a reorder fault) or
            // a peer that restarted into a fresh, smaller version
            // space — in both cases our next ack must not overstate in
            // the sender's current space. Tracking the statement
            // (rather than resyncing from scratch) keeps one delayed
            // digest from costing O(cluster) full pushes; a *genuine*
            // restart is detected below by its higher incarnation
            // (`sender_reappeared`), which resets the acks and replies
            // with a full sync.
            let sync = self.peers.entry(from).or_default();
            sync.applied = digest.version;
            sync.acked = sync.acked.max(digest.ack);
        }
        let mut refuted = false;
        let mut sender_reappeared = false;
        for rec in &digest.records {
            if rec.node == self.node {
                refuted |= self.defend(now, rec);
                continue;
            }
            // A sender announcing itself under a *higher incarnation*
            // than we knew has restarted (or refuted) — even when its
            // visible status never left Alive, because the restart beat
            // the failure detector. That is the reliable rejoin signal
            // (version counters are not: they regress on mere
            // reordering), and it must resync the delta state below.
            if rec.node == from
                && rec.status == NodeStatus::Alive
                && self
                    .directory
                    .get(from)
                    .is_some_and(|prior| rec.incarnation > prior.incarnation)
            {
                sender_reappeared = true;
            }
            if let Some(tr) = self.directory.merge(rec) {
                self.push_event(now, rec.node, rec.incarnation, tr);
                // A node (re)appearing alive starts a fresh silence
                // clock; without this it would be instantly re-suspected.
                if matches!(tr, Transition::Joined | Transition::Alive) {
                    self.last_heard.insert(rec.node, now);
                    sender_reappeared |= rec.node == from;
                }
            }
        }
        if !known_before || sender_reappeared {
            // A joiner or rejoiner may have lost every ack it held:
            // resume its deltas from scratch (the reply below is full).
            self.peers.entry(from).or_default().acked = 0;
        }
        let written_off = self
            .directory
            .status_of(from)
            .is_some_and(|s| !s.is_present());
        if !known_before || refuted || written_off || sender_reappeared {
            let mut outs = self.broadcast_full();
            // `broadcast_full` skips written-off peers; this reply is
            // the one channel through which a slandered node learns its
            // verdict.
            if written_off {
                outs.push(GossipOut {
                    to: from,
                    digest: self.digest_for(from, true),
                });
            }
            outs
        } else {
            Vec::new()
        }
    }

    /// Transport-level hint: the runtime's link to `node` failed
    /// terminally (e.g. `fail_after_attempts` consecutive connect
    /// failures). Recorded as an immediate suspicion at the node's
    /// current incarnation — `dead_after` still gates the dead verdict,
    /// so a refutation through a third node can save it.
    pub fn on_peer_unreachable(&mut self, now: Time, node: u32) {
        if node == self.node {
            return;
        }
        let Some(rec) = self.directory.get(node).copied() else {
            return;
        };
        if rec.status == NodeStatus::Alive {
            let suspect = NodeRecord {
                status: NodeStatus::Suspect,
                ..rec
            };
            if let Some(tr) = self.directory.merge(&suspect) {
                self.push_event(now, node, rec.incarnation, tr);
            }
            // Backdate the silence clock to at least `suspect_after`
            // ago, so the dead verdict does not restart from a digest
            // that arrived just before the link died.
            let backdated = Time::from_nanos(
                now.as_nanos()
                    .saturating_sub(self.config.suspect_after.as_nanos()),
            );
            let prior = self.heard(node, now);
            self.last_heard.insert(node, prior.min(backdated));
        }
    }

    /// Graceful departure: marks this node [`NodeStatus::Left`] and
    /// returns the farewell digest for every present peer. The engine
    /// stops defending itself afterwards — echoes of its own `Left`
    /// record must not goad it into refuting its voluntary departure —
    /// and should not be ticked any more (the runtime is shutting
    /// down).
    pub fn leave(&mut self, now: Time) -> Vec<GossipOut> {
        self.left = true;
        let rec = NodeRecord {
            node: self.node,
            incarnation: self.incarnation,
            status: NodeStatus::Left,
            addr: self.addr,
        };
        if let Some(tr) = self.directory.merge(&rec) {
            self.push_event(now, self.node, self.incarnation, tr);
        }
        self.broadcast_full()
    }

    /// Drains the pending membership events, oldest first.
    pub fn poll_events(&mut self) -> Vec<MembershipEvent> {
        std::mem::take(&mut self.events)
    }

    // ------------------------------------------------------------------
    // Internals
    // ------------------------------------------------------------------

    fn heard(&mut self, node: u32, now: Time) -> Time {
        *self.last_heard.entry(node).or_insert(now)
    }

    fn push_event(&mut self, at: Time, node: u32, incarnation: u64, transition: Transition) {
        if let Some(obs) = &self.obs {
            obs.counter(transition).incr();
        }
        self.events.push(MembershipEvent {
            at,
            node,
            incarnation,
            transition,
        });
    }

    /// Self-defense (SWIM refutation): a circulating record claims this
    /// node is suspect/left/dead, or someone echoes an incarnation at
    /// least ours with a worse status. Outbid it: jump strictly above
    /// the slander and re-announce alive. Returns true if a refutation
    /// happened (the caller then pushes the new record out).
    fn defend(&mut self, now: Time, rec: &NodeRecord) -> bool {
        if self.left {
            // A voluntary departure is not slander: the engine said
            // `Left` about itself and must not outbid its own farewell
            // when gossip echoes it back.
            return false;
        }
        let slandered = rec.status != NodeStatus::Alive && rec.incarnation >= self.incarnation;
        let outrun = rec.incarnation > self.incarnation;
        if !(slandered || outrun) {
            return false;
        }
        // Saturating: a hostile digest claiming u64::MAX must not wrap
        // the incarnation back to 0 (which would bury this node behind
        // its own higher-precedence slander forever) or panic the
        // engine. At saturation the refutation cannot outbid a
        // same-incarnation slander — an accepted edge of a 2^64 space
        // no honest cluster approaches.
        self.incarnation = rec.incarnation.saturating_add(u64::from(slandered));
        let own = NodeRecord::alive(self.node, self.incarnation, self.addr);
        if let Some(tr) = self.directory.merge(&own) {
            self.push_event(now, self.node, self.incarnation, tr);
        }
        slandered
    }

    fn detect_failures(&mut self, now: Time) {
        let present: Vec<NodeRecord> = self
            .directory
            .iter()
            .filter(|r| r.node != self.node && r.status.is_present())
            .copied()
            .collect();
        for rec in present {
            let silent = now.since(self.heard(rec.node, now));
            if rec.status == NodeStatus::Alive && silent >= self.config.suspect_after {
                let suspect = NodeRecord {
                    status: NodeStatus::Suspect,
                    ..rec
                };
                if let Some(tr) = self.directory.merge(&suspect) {
                    self.push_event(now, rec.node, rec.incarnation, tr);
                }
            }
            if silent >= self.config.dead_after {
                let dead = NodeRecord {
                    status: NodeStatus::Dead,
                    ..rec
                };
                if let Some(tr) = self.directory.merge(&dead) {
                    self.push_event(now, rec.node, rec.incarnation, tr);
                }
            }
        }
    }

    /// A full-directory push to every present peer: the convergence
    /// accelerator behind joins, refutations and farewells (ordinary
    /// rounds go through [`Membership::on_tick`]'s deltas).
    fn broadcast_full(&self) -> Vec<GossipOut> {
        self.directory
            .iter()
            .filter(|r| r.node != self.node && r.status.is_present())
            .map(|r| GossipOut {
                to: r.node,
                digest: self.digest_for(r.node, true),
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(v: u64) -> Time {
        Time::from_nanos(v * 1_000_000)
    }

    fn cfg() -> MembershipConfig {
        // 50 ms gossip, suspect at 250 ms, dead at 750 ms, full sync
        // every 10 rounds (delta gossip in between).
        MembershipConfig {
            gossip_interval: Dur::from_millis(50),
            suspect_after: Dur::from_millis(250),
            dead_after: Dur::from_millis(750),
            full_sync_every: 10,
        }
    }

    /// Drives `engines` lock-step with instant loss-free delivery until
    /// `until`, in `step`-ms increments.
    fn run(engines: &mut [Membership], from_ms: u64, until_ms: u64, step: u64) {
        let mut t = from_ms;
        while t <= until_ms {
            let mut outbox: Vec<(u32, GossipOut)> = Vec::new();
            for e in engines.iter_mut() {
                let from = e.node_id();
                for out in e.on_tick(ms(t)) {
                    outbox.push((from, out));
                }
            }
            while let Some((from, out)) = outbox.pop() {
                if let Some(dst) = engines.iter_mut().find(|e| e.node_id() == out.to) {
                    for reply in dst.on_digest(ms(t), from, &out.digest) {
                        outbox.push((dst.node_id(), reply));
                    }
                }
            }
            t += step;
        }
    }

    #[test]
    fn seed_bootstrap_converges_to_full_membership() {
        let mut engines: Vec<Membership> = (0..3u32)
            .map(|n| Membership::new(n, None, 1, ms(0), cfg()))
            .collect();
        // Nodes 1 and 2 know only the seed (node 0); the seed knows no
        // one. Node 2 must still learn node 1 exists, through the seed.
        engines[1].on_contact(ms(0), 0, None);
        engines[2].on_contact(ms(0), 0, None);
        run(&mut engines, 0, 300, 10);
        for e in &engines {
            assert_eq!(e.directory().len(), 3, "node {} incomplete", e.node_id());
            assert_eq!(
                e.directory().alive_nodes(),
                vec![0, 1, 2],
                "node {} disagrees",
                e.node_id()
            );
        }
        // Every engine saw the other two join.
        for e in engines.iter_mut() {
            let joins: Vec<u32> = e
                .poll_events()
                .iter()
                .filter(|ev| matches!(ev.transition, Transition::Joined))
                .map(|ev| ev.node)
                .collect();
            assert_eq!(joins.len(), 2, "node {} joins: {joins:?}", e.node_id());
        }
    }

    #[test]
    fn silence_escalates_to_suspect_then_dead() {
        let mut engines: Vec<Membership> = (0..2u32)
            .map(|n| Membership::new(n, None, 1, ms(0), cfg()))
            .collect();
        engines[1].on_contact(ms(0), 0, None);
        run(&mut engines, 0, 200, 10);
        assert_eq!(engines[0].directory().alive_nodes(), vec![0, 1]);
        // Node 1 goes silent: only node 0 ticks from now on.
        let a = &mut engines[0];
        a.poll_events(); // drain the join
        let mut transitions = Vec::new();
        for t in (210..1300).step_by(10) {
            a.on_tick(ms(t));
            transitions.extend(a.poll_events().into_iter().map(|e| (e.transition, e.node)));
        }
        assert_eq!(
            transitions,
            vec![(Transition::Suspected, 1), (Transition::Dead, 1)],
            "silence must escalate exactly once through suspect to dead"
        );
        assert_eq!(a.directory().status_of(1), Some(NodeStatus::Dead));
    }

    #[test]
    fn suspected_node_refutes_and_survives() {
        let mut a = Membership::new(0, None, 1, ms(0), cfg());
        let mut b = Membership::new(1, None, 1, ms(0), cfg());
        b.on_contact(ms(0), 0, None);
        // Introduce them.
        let hello = b.on_tick(ms(0));
        for out in hello {
            for reply in a.on_digest(ms(0), 1, &out.digest) {
                if reply.to == 1 {
                    b.on_digest(ms(0), 0, &reply.digest);
                }
            }
        }
        // A suspects B (silence on A's side only).
        for t in (0..400).step_by(10) {
            a.on_tick(ms(t));
        }
        assert_eq!(a.directory().status_of(1), Some(NodeStatus::Suspect));
        // A's next digest reaches B: B must outbid the suspicion.
        let inc_before = b.incarnation();
        let replies = b.on_digest(ms(400), 0, &a.digest_for(1, true));
        assert_eq!(b.incarnation(), inc_before + 1, "refutation bumps");
        assert!(
            replies.iter().any(|o| o.to == 0),
            "the refutation must be pushed back immediately"
        );
        for out in replies {
            if out.to == 0 {
                a.on_digest(ms(400), 1, &out.digest);
            }
        }
        assert_eq!(a.directory().status_of(1), Some(NodeStatus::Alive));
    }

    #[test]
    fn dead_node_rejoining_under_higher_incarnation_recovers() {
        let mut a = Membership::new(0, None, 1, ms(0), cfg());
        a.on_contact(ms(0), 1, None);
        // Write node 1 off entirely.
        for t in (0..1000).step_by(10) {
            a.on_tick(ms(t));
        }
        assert_eq!(a.directory().status_of(1), Some(NodeStatus::Dead));
        a.poll_events();
        // Rejoin under incarnation 2 (strictly above the corpse).
        let b2 = Membership::new(1, None, 2, ms(1500), cfg());
        let outs = a.on_digest(ms(1500), 1, &b2.digest_for(0, true));
        assert_eq!(a.directory().status_of(1), Some(NodeStatus::Alive));
        let evs = a.poll_events();
        assert!(
            evs.iter()
                .any(|e| e.node == 1 && e.incarnation == 2 && e.transition == Transition::Alive),
            "rejoin must surface as an Alive transition at the new incarnation: {evs:?}"
        );
        // And the (formerly written-off) sender gets a direct reply.
        assert!(outs.iter().any(|o| o.to == 1));
    }

    #[test]
    fn wrongly_buried_node_learns_its_verdict_and_refutes() {
        // A declares B dead; B never crashed and keeps gossiping at its
        // original incarnation. The direct reply to a written-off sender
        // is what closes the loop.
        let mut a = Membership::new(0, None, 1, ms(0), cfg());
        let mut b = Membership::new(1, None, 1, ms(0), cfg());
        b.on_contact(ms(0), 0, None);
        // A has heard B's real announcement once, so the eventual death
        // verdict is pinned to B's true incarnation (not the weaker
        // assumed-contact one an alive re-announcement would outbid).
        for out in b.on_tick(ms(0)) {
            if out.to == 0 {
                a.on_digest(ms(0), 1, &out.digest);
            }
        }
        for t in (0..1000).step_by(10) {
            a.on_tick(ms(t)); // hears nothing more: buries B
        }
        assert_eq!(a.directory().status_of(1), Some(NodeStatus::Dead));
        // B's routine digest reaches A: A replies with the verdict.
        let replies = a.on_digest(ms(1000), 1, &b.digest_for(0, true));
        let to_b: Vec<_> = replies.into_iter().filter(|o| o.to == 1).collect();
        assert!(!to_b.is_empty(), "a written-off sender must get a reply");
        for out in to_b {
            for back in b.on_digest(ms(1000), 0, &out.digest) {
                if back.to == 0 {
                    a.on_digest(ms(1000), 1, &back.digest);
                }
            }
        }
        assert_eq!(b.incarnation(), 2, "refuted the death verdict");
        assert_eq!(a.directory().status_of(1), Some(NodeStatus::Alive));
    }

    #[test]
    fn leave_is_announced_and_not_refuted_by_its_own_record() {
        let mut a = Membership::new(0, None, 1, ms(0), cfg());
        let mut b = Membership::new(1, None, 1, ms(0), cfg());
        a.on_contact(ms(0), 1, None);
        b.on_contact(ms(0), 0, None);
        let farewell = b.leave(ms(100));
        assert!(farewell.iter().any(|o| o.to == 0));
        assert!(farewell.iter().all(|o| o.digest.full), "farewells are full");
        for out in farewell {
            if out.to == 0 {
                a.on_digest(ms(100), 1, &out.digest);
            }
        }
        assert_eq!(a.directory().status_of(1), Some(NodeStatus::Left));
        // Left is quieter than dead but still departed: not present.
        assert_eq!(a.directory().present_nodes(), vec![0]);
        // An echo of its own farewell must not goad b into refuting its
        // voluntary departure (a runtime may deliver digests between
        // the leave and the actual shutdown).
        let echo = a.digest_for(1, true);
        let replies = b.on_digest(ms(150), 0, &echo);
        assert_eq!(b.incarnation(), 1, "no refutation after leave");
        assert_eq!(b.directory().status_of(1), Some(NodeStatus::Left));
        assert!(
            replies.iter().all(|o| o
                .digest
                .records
                .iter()
                .all(|r| r.node != 1 || r.status == NodeStatus::Left)),
            "a left engine must not re-announce itself alive"
        );
    }

    #[test]
    fn unreachable_report_suspects_immediately() {
        let mut a = Membership::new(0, None, 1, ms(0), cfg());
        a.on_contact(ms(0), 1, None);
        a.on_peer_unreachable(ms(10), 1);
        assert_eq!(a.directory().status_of(1), Some(NodeStatus::Suspect));
        let evs = a.poll_events();
        assert!(evs
            .iter()
            .any(|e| e.node == 1 && e.transition == Transition::Suspected));
        // Death still waits for dead_after from the report.
        a.on_tick(ms(20));
        assert_eq!(a.directory().status_of(1), Some(NodeStatus::Suspect));
        for t in (20..1300).step_by(10) {
            a.on_tick(ms(t));
        }
        assert_eq!(a.directory().status_of(1), Some(NodeStatus::Dead));
    }

    #[test]
    fn gossip_respects_the_interval() {
        let mut a = Membership::new(0, None, 1, ms(0), cfg());
        a.on_contact(ms(0), 1, None);
        assert!(!a.on_tick(ms(0)).is_empty(), "first tick gossips");
        assert!(a.on_tick(ms(10)).is_empty(), "inside the interval");
        assert!(a.on_tick(ms(49)).is_empty());
        assert!(!a.on_tick(ms(50)).is_empty(), "interval elapsed");
    }

    /// Wires a ⇄ b until both directories and acks are settled.
    fn settle(a: &mut Membership, b: &mut Membership, from_ms: u64, rounds: u64) -> u64 {
        let mut t = from_ms;
        for _ in 0..rounds {
            let mut outbox: Vec<(u32, GossipOut)> = Vec::new();
            for e in [&mut *a, &mut *b] {
                let from = e.node_id();
                outbox.extend(e.on_tick(ms(t)).into_iter().map(|o| (from, o)));
            }
            while let Some((from, out)) = outbox.pop() {
                let dst = if out.to == a.node_id() {
                    &mut *a
                } else {
                    &mut *b
                };
                let replies = dst.on_digest(ms(t), from, &out.digest);
                let dst_id = dst.node_id();
                outbox.extend(replies.into_iter().map(|o| (dst_id, o)));
            }
            t += 50;
        }
        t
    }

    #[test]
    fn steady_state_rounds_send_empty_deltas() {
        let mut a = Membership::new(0, None, 1, ms(0), cfg());
        let mut b = Membership::new(1, None, 1, ms(0), cfg());
        b.on_contact(ms(0), 0, None);
        let t = settle(&mut a, &mut b, 0, 6);
        // Nothing changed since the peers acked: ordinary rounds are
        // pure heartbeats.
        let outs = a.on_tick(ms(t));
        assert_eq!(outs.len(), 1);
        assert!(!outs[0].digest.full, "steady state must not full-sync");
        assert!(
            outs[0].digest.records.is_empty(),
            "steady-state delta must be empty, got {:?}",
            outs[0].digest.records
        );
    }

    #[test]
    fn unacked_changes_stay_in_the_delta_until_acknowledged() {
        // Long silence timeouts: node 5 gossips only once here, and a
        // drifting suspicion would (correctly!) re-enter the delta.
        let quiet = MembershipConfig {
            suspect_after: Dur::from_secs(10),
            dead_after: Dur::from_secs(20),
            ..cfg()
        };
        let mut a = Membership::new(0, None, 1, ms(0), quiet);
        let mut b = Membership::new(1, None, 1, ms(0), quiet);
        b.on_contact(ms(0), 0, None);
        let t = settle(&mut a, &mut b, 0, 6);
        // A learns something new (node 5 joins through it).
        a.on_digest(
            ms(t),
            5,
            &Membership::new(5, None, 1, ms(t), cfg()).digest_for(0, true),
        );
        // Every subsequent delta to b carries node 5's record for as
        // long as b has not acknowledged — lost digests are simply
        // retransmitted.
        for round in 0..3u64 {
            let outs = a.on_tick(ms(t + 50 + round * 50));
            let to_b = outs.iter().find(|o| o.to == 1).expect("b is present");
            assert!(
                to_b.digest.records.iter().any(|r| r.node == 5),
                "round {round}: unacked join missing from delta"
            );
        }
        // b finally hears one and acks; a's next delta is empty again.
        let digest = a.digest_for(1, false);
        b.on_digest(ms(t + 200), 0, &digest);
        let ack = b.digest_for(0, false);
        a.on_digest(ms(t + 200), 1, &ack);
        let outs = a.on_tick(ms(t + 250));
        let to_b = outs.iter().find(|o| o.to == 1).expect("b still present");
        assert!(
            to_b.digest.records.iter().all(|r| r.node != 5),
            "acked change must leave the delta"
        );
    }

    #[test]
    fn full_sync_recurs_every_configured_round() {
        let mut a = Membership::new(0, None, 1, ms(0), cfg());
        a.on_contact(ms(0), 1, None);
        let mut fulls = Vec::new();
        for round in 0..25u64 {
            // Keep node 1 alive: an empty heartbeat delta per round
            // (silence would bury it and end the gossip).
            a.on_digest(
                ms(round * 50),
                1,
                &Digest {
                    version: round + 1,
                    ack: 0,
                    full: false,
                    records: Vec::new(),
                },
            );
            for out in a.on_tick(ms(round * 50)) {
                if out.digest.full {
                    fulls.push(round);
                }
            }
        }
        assert_eq!(
            fulls,
            vec![0, 10, 20],
            "first push full, then every full_sync_every rounds"
        );
    }

    #[test]
    fn a_stale_reordered_digest_does_not_trigger_a_full_resync() {
        // A delay/reorder fault delivers an *older* digest after a
        // newer one. That must not be mistaken for a peer restart: no
        // O(cluster) full broadcast, no transition events — only a
        // temporarily conservative ack (benign retransmission).
        let mut a = Membership::new(0, None, 1, ms(0), cfg());
        let mut b = Membership::new(1, None, 1, ms(0), cfg());
        b.on_contact(ms(0), 0, None);
        let t = settle(&mut a, &mut b, 0, 6);
        let fresh = b.digest_for(0, false);
        let stale = Digest {
            version: fresh.version.saturating_sub(2),
            ack: fresh.ack,
            full: false,
            records: Vec::new(),
        };
        assert!(a.on_digest(ms(t), 1, &fresh).is_empty());
        a.poll_events();
        let replies = a.on_digest(ms(t + 10), 1, &stale);
        assert!(
            replies.is_empty(),
            "a reordered digest must not trigger replies: {replies:?}"
        );
        assert!(a.poll_events().is_empty(), "and no spurious transitions");
        // The next in-order digest restores the ack.
        a.on_digest(ms(t + 20), 1, &b.digest_for(0, false));
        assert_eq!(a.digest_for(1, false).ack, fresh.version);
    }

    #[test]
    fn a_restarted_peer_is_resynced_from_scratch() {
        let mut a = Membership::new(0, None, 1, ms(0), cfg());
        let mut b = Membership::new(1, None, 1, ms(0), cfg());
        b.on_contact(ms(0), 0, None);
        let t = settle(&mut a, &mut b, 0, 6);
        // b crashes and rejoins with a *fresh* directory: its version
        // counter restarts far below what a had applied.
        let mut b2 = Membership::new(1, None, 2, ms(t), cfg());
        b2.on_contact(ms(t), 0, None);
        let probe = b2.digest_for(0, true);
        let replies = a.on_digest(ms(t), 1, &probe);
        // a must notice the restart (the rejoin incarnation outbids
        // the old record), resync the acks, and push full.
        let to_b: Vec<_> = replies.iter().filter(|o| o.to == 1).collect();
        assert!(!to_b.is_empty(), "rejoiner must get an immediate reply");
        assert!(to_b.iter().all(|o| o.digest.full));
        for out in replies {
            if out.to == 1 {
                b2.on_digest(ms(t), 0, &out.digest);
            }
        }
        assert_eq!(b2.directory().alive_nodes(), vec![0, 1]);
    }
}
