//! The five project-specific lint rules.
//!
//! Each rule works on the token stream from [`crate::lexer`], so string
//! literals, comments, raw strings and lifetimes can never masquerade
//! as code. Rules are deliberately scoped by path: a rule only fires
//! where its invariant actually matters (see the constants below), and
//! `#[cfg(test)]` regions are skipped by every rule except
//! `counter-completeness` (tests asserting on counter keys are exactly
//! the literals that rule wants to cross-check).

use crate::lexer::{lex, TokKind, Token};
use crate::report::Finding;
use std::collections::{BTreeMap, BTreeSet};

/// A lexed source file plus the per-token facts rules share.
pub struct SourceFile {
    /// Repo-relative path, `/` separators.
    pub path: String,
    /// Full token stream, comments included.
    pub tokens: Vec<Token>,
    /// Indices into `tokens` of significant (non-comment) tokens.
    pub sig: Vec<usize>,
    /// Per-`sig`-index: is this token inside a `#[cfg(test)]` item?
    pub in_test: Vec<bool>,
}

impl SourceFile {
    pub fn new(path: &str, source: &str) -> SourceFile {
        let tokens = lex(source);
        let sig: Vec<usize> = (0..tokens.len())
            .filter(|&i| !matches!(tokens[i].kind, TokKind::LineComment | TokKind::BlockComment))
            .collect();
        let in_test = mark_cfg_test(&tokens, &sig);
        SourceFile {
            path: path.to_string(),
            tokens,
            sig,
            in_test,
        }
    }
}

/// A view over the significant tokens of one file.
struct Sig<'a> {
    f: &'a SourceFile,
}

impl<'a> Sig<'a> {
    fn new(f: &'a SourceFile) -> Sig<'a> {
        Sig { f }
    }
    fn len(&self) -> usize {
        self.f.sig.len()
    }
    fn tok(&self, i: usize) -> Option<&'a Token> {
        self.f.sig.get(i).map(|&ix| &self.f.tokens[ix])
    }
    fn ident(&self, i: usize) -> Option<&'a str> {
        self.tok(i)
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text.as_str())
    }
    fn is_ident(&self, i: usize, name: &str) -> bool {
        self.ident(i) == Some(name)
    }
    fn is_punct(&self, i: usize, p: &str) -> bool {
        self.tok(i)
            .is_some_and(|t| t.kind == TokKind::Punct && t.text == p)
    }
    fn str_lit(&self, i: usize) -> Option<&'a str> {
        self.tok(i)
            .filter(|t| t.kind == TokKind::Str)
            .map(|t| t.text.as_str())
    }
    fn line(&self, i: usize) -> u32 {
        self.tok(i).map_or(0, |t| t.line)
    }
    fn in_test(&self, i: usize) -> bool {
        self.f.in_test.get(i).copied().unwrap_or(false)
    }
    fn finding(&self, rule: &'static str, i: usize, message: String) -> Finding {
        Finding {
            rule,
            path: self.f.path.clone(),
            line: self.line(i),
            message,
        }
    }
}

/// Marks every significant token inside a `#[cfg(test)]` item (module,
/// fn, impl, …). Recognizes the attribute, skips any further
/// attributes, then covers the item's balanced `{ … }` body (or up to
/// the `;` for an item without a body).
fn mark_cfg_test(tokens: &[Token], sig: &[usize]) -> Vec<bool> {
    let t = |i: usize| -> Option<&Token> { sig.get(i).map(|&ix| &tokens[ix]) };
    let is_p = |i: usize, p: &str| t(i).is_some_and(|k| k.kind == TokKind::Punct && k.text == p);
    let is_i = |i: usize, n: &str| t(i).is_some_and(|k| k.kind == TokKind::Ident && k.text == n);

    let n = sig.len();
    let mut marked = vec![false; n];
    let mut i = 0;
    while i < n {
        // `# [ cfg ( test ) ]` — also match `#[cfg(all(test, …))]` by
        // scanning the attribute's parens for an ident `test`.
        if is_p(i, "#") && is_p(i + 1, "[") && is_i(i + 2, "cfg") && is_p(i + 3, "(") {
            // Find the attribute's closing `]`, remembering whether a
            // bare `test` appears inside.
            let mut j = i + 4;
            let mut depth = 1usize; // inside the `(`
            let mut saw_test = false;
            while j < n && depth > 0 {
                if is_p(j, "(") {
                    depth += 1;
                } else if is_p(j, ")") {
                    depth -= 1;
                } else if is_i(j, "test") {
                    saw_test = true;
                }
                j += 1;
            }
            // j is now just past the `)`; expect `]`.
            if saw_test && is_p(j, "]") {
                let start = i;
                let mut k = j + 1;
                // Skip any further attributes on the same item.
                while is_p(k, "#") && is_p(k + 1, "[") {
                    let mut d = 1usize;
                    k += 2;
                    while k < n && d > 0 {
                        if is_p(k, "[") {
                            d += 1;
                        } else if is_p(k, "]") {
                            d -= 1;
                        }
                        k += 1;
                    }
                }
                // Scan to the item's body `{` (or a bodiless `;`).
                while k < n && !is_p(k, "{") && !is_p(k, ";") {
                    k += 1;
                }
                let end = if is_p(k, "{") {
                    let mut d = 1usize;
                    k += 1;
                    while k < n && d > 0 {
                        if is_p(k, "{") {
                            d += 1;
                        } else if is_p(k, "}") {
                            d -= 1;
                        }
                        k += 1;
                    }
                    k // one past the closing `}`
                } else {
                    k + 1 // past the `;`
                };
                for slot in marked.iter_mut().take(end.min(n)).skip(start) {
                    *slot = true;
                }
                i = end;
                continue;
            }
        }
        i += 1;
    }
    marked
}

// ---------------------------------------------------------------------------
// Rule scopes
// ---------------------------------------------------------------------------

/// PR 9's hot-path modules: one allocation or panic here shows up
/// straight in the steady-state throughput numbers.
const HOT_PATH_FILES: &[&str] = &[
    "crates/core/src/sweep.rs",
    "crates/core/src/referencers.rs",
    "crates/core/src/referenced.rs",
    "crates/core/src/egress.rs",
    "crates/rt-net/src/frame.rs",
];

/// Crates whose outputs feed the wire, the conformance oracle, or the
/// deterministic simulator — iteration order there must be stable.
const ORDER_SENSITIVE: &[&str] = &[
    "crates/core/src/",
    "crates/membership/src/",
    "crates/conformance/src/",
    "crates/simnet/src/",
];

/// Runtime crates where a shim-mutex guard held across a blocking call
/// can stall a peer (and where the lockcheck budget will flag it late
/// — this rule flags it at review time).
const LOCK_SCOPE: &[&str] = &["crates/rt-net/src/", "crates/rt-thread/src/"];

fn lib_source(path: &str) -> bool {
    // Library code only: `tests/`, `benches/`, `examples/` run outside
    // the determinism envelope by design.
    path.starts_with("src/") || (path.starts_with("crates/") && path.contains("/src/"))
}

fn wall_clock_scope(path: &str) -> bool {
    lib_source(path)
        && !path.starts_with("crates/shims/")
        && !path.starts_with("crates/analysis/")
        // The TimeSource seam itself is where wall time is *supposed*
        // to enter the system.
        && path != "crates/obs/src/time.rs"
}

// ---------------------------------------------------------------------------
// Rule: wall-clock
// ---------------------------------------------------------------------------

/// Flags `Instant::now()` / `SystemTime::now()` outside the TimeSource
/// seam. Everything that wants time must go through
/// `obs::time::TimeSource` so simulated runs stay deterministic.
pub fn wall_clock(f: &SourceFile) -> Vec<Finding> {
    if !wall_clock_scope(&f.path) {
        return Vec::new();
    }
    let s = Sig::new(f);
    let mut out = Vec::new();
    for i in 0..s.len() {
        if s.in_test(i) {
            continue;
        }
        let Some(name) = s.ident(i) else { continue };
        if (name == "Instant" || name == "SystemTime")
            && s.is_punct(i + 1, ":")
            && s.is_punct(i + 2, ":")
            && s.is_ident(i + 3, "now")
            && s.is_punct(i + 4, "(")
        {
            out.push(s.finding(
                "wall-clock",
                i,
                format!(
                    "`{name}::now()` outside the TimeSource seam — route time through \
                     `obs::time::TimeSource` so simulated runs stay deterministic"
                ),
            ));
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Rule: unordered-iter
// ---------------------------------------------------------------------------

/// Iteration methods whose order is nondeterministic on hash tables.
const ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "into_iter",
    "drain",
    "retain",
];

/// Flags iteration over `HashMap`/`HashSet` in protocol, oracle and
/// simulator code, where nondeterministic order leaks into message
/// order or oracle verdicts. Point lookups are fine; use `BTreeMap`/
/// `BTreeSet` or sort after collecting when you must walk one.
pub fn unordered_iter(f: &SourceFile) -> Vec<Finding> {
    if !ORDER_SENSITIVE.iter().any(|p| f.path.starts_with(p)) {
        return Vec::new();
    }
    let s = Sig::new(f);
    let n = s.len();

    // Pass 1: names bound to hash collections in this file — typed
    // declarations (`x: HashMap<…>` in structs/fns) and constructions
    // (`x = HashMap::new()` / `let x = HashMap::with_capacity(…)`).
    let mut hash_names: BTreeSet<&str> = BTreeSet::new();
    let mut direct: Vec<usize> = Vec::new(); // `HashMap::new().iter()`-style chains
    for i in 0..n {
        let Some(name) = s.ident(i) else { continue };
        if name != "HashMap" && name != "HashSet" {
            continue;
        }
        direct.push(i);
        // Walk back over path/type noise to the declared name.
        let mut j = i;
        while let Some(prev) = j.checked_sub(1) {
            let skip = s.is_punct(prev, ":")
                || s.is_punct(prev, "&")
                || s.is_punct(prev, "<")
                || s.is_punct(prev, "(")
                || s.is_ident(prev, "mut")
                || s.is_ident(prev, "std")
                || s.is_ident(prev, "collections");
            if !skip {
                break;
            }
            j = prev;
        }
        let Some(prev) = j.checked_sub(1) else {
            continue;
        };
        if let Some(bound) = s.ident(prev) {
            // `bound: … HashMap` (single colon → a declaration;
            // double colon → just a path segment).
            if s.is_punct(prev + 1, ":") && !s.is_punct(prev + 2, ":") {
                hash_names.insert(bound);
            }
        } else if s.is_punct(prev, "=") {
            // `bound = HashMap::new()`.
            if let Some(bound) = s.ident(prev.wrapping_sub(1)) {
                hash_names.insert(bound);
            }
        }
    }

    // Pass 2: flag iteration over those names.
    let mut out = Vec::new();
    let mut flag = |s: &Sig, i: usize, what: &str, via: &str| {
        out.push(s.finding(
            "unordered-iter",
            i,
            format!(
                "iterating `{what}` via `{via}` in order-sensitive code — hash iteration \
                 order is nondeterministic; use BTreeMap/BTreeSet or sort after collecting"
            ),
        ));
    };
    for i in 0..n {
        if s.in_test(i) {
            continue;
        }
        // `name.iter()` / `name.keys()` / …
        if let Some(name) = s.ident(i) {
            if hash_names.contains(name)
                && s.is_punct(i + 1, ".")
                && s.ident(i + 2).is_some_and(|m| ITER_METHODS.contains(&m))
                && s.is_punct(i + 3, "(")
            {
                flag(&s, i, name, s.ident(i + 2).unwrap_or(""));
                continue;
            }
            // `for k in name` / `for (k, v) in &name {`
            if name == "for" {
                // Scan ahead (bounded) for `in <expr>` mentioning a hash name.
                let mut j = i + 1;
                while j < (i + 16).min(n) && !s.is_ident(j, "in") {
                    j += 1;
                }
                if s.is_ident(j, "in") {
                    let mut k = j + 1;
                    while k < (j + 8).min(n) && !s.is_punct(k, "{") {
                        if let Some(nm) = s.ident(k) {
                            if hash_names.contains(nm)
                                // a method call on it is handled above
                                && !s.is_punct(k + 1, ".")
                            {
                                flag(&s, k, nm, "for-in");
                                break;
                            }
                        }
                        k += 1;
                    }
                }
            }
        }
    }
    // Direct chains: `HashMap::from(…).iter()` etc. (rare, but cheap).
    for i in direct {
        if s.in_test(i) {
            continue;
        }
        // Find the matching `)` after `HashMap::method(` then check for `.iter()`.
        if s.is_punct(i + 1, ":") && s.is_punct(i + 2, ":") && s.is_punct(i + 4, "(") {
            let mut d = 1usize;
            let mut j = i + 5;
            while j < n && d > 0 {
                if s.is_punct(j, "(") {
                    d += 1;
                } else if s.is_punct(j, ")") {
                    d -= 1;
                }
                j += 1;
            }
            if s.is_punct(j, ".") && s.ident(j + 1).is_some_and(|m| ITER_METHODS.contains(&m)) {
                flag(
                    &s,
                    j + 1,
                    "a fresh hash collection",
                    s.ident(j + 1).unwrap_or(""),
                );
            }
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Rule: hot-path-panic
// ---------------------------------------------------------------------------

/// Flags `unwrap` / `expect` / `panic!` / `unreachable!` / slice
/// indexing in the PR 9 hot-path modules. One panic there takes down a
/// mutator thread mid-epoch; return the error or handle the `None`.
pub fn hot_path_panic(f: &SourceFile) -> Vec<Finding> {
    if !HOT_PATH_FILES.contains(&f.path.as_str()) {
        return Vec::new();
    }
    let s = Sig::new(f);
    let n = s.len();
    let mut out = Vec::new();
    for i in 0..n {
        if s.in_test(i) {
            continue;
        }
        let Some(t) = s.tok(i) else { continue };
        match t.kind {
            TokKind::Ident => {
                let name = t.text.as_str();
                if (name == "unwrap" || name == "expect")
                    && s.is_punct(i.wrapping_sub(1), ".")
                    && s.is_punct(i + 1, "(")
                {
                    out.push(s.finding(
                        "hot-path-panic",
                        i,
                        format!(
                            "`.{name}()` on a hot-path module — a panic here kills a mutator \
                             thread mid-epoch; handle the None/Err instead"
                        ),
                    ));
                } else if (name == "panic"
                    || name == "unreachable"
                    || name == "todo"
                    || name == "unimplemented"
                    || name == "assert")
                    && s.is_punct(i + 1, "!")
                {
                    out.push(s.finding(
                        "hot-path-panic",
                        i,
                        format!("`{name}!` on a hot-path module — return an error instead"),
                    ));
                }
            }
            TokKind::Punct if t.text == "[" => {
                // Slice/array indexing: `expr[idx]` — `[` directly after
                // an ident, `)` or `]`. (A `[` after `=`/`(`/`,`/operator
                // is an array literal, not an index.)
                let prev = i.wrapping_sub(1);
                let is_index = s.ident(prev).is_some_and(|id| {
                    // `ident [` where ident isn't a keyword introducing
                    // a type or pattern position.
                    !matches!(id, "mut" | "in" | "as" | "dyn" | "impl" | "return" | "box")
                }) || s.is_punct(prev, ")")
                    || s.is_punct(prev, "]");
                // `&x[..]`-style full-range slicing is still a panic
                // site if bounds are wrong, keep it flagged; but skip
                // attribute brackets `#[…]`.
                if is_index && !s.is_punct(prev, "#") {
                    out.push(
                        s.finding(
                            "hot-path-panic",
                            i,
                            "slice indexing on a hot-path module — an out-of-bounds index panics; \
                         use `.get()` and handle the miss"
                                .to_string(),
                        ),
                    );
                }
            }
            _ => {}
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Rule: counter-completeness (workspace-level)
// ---------------------------------------------------------------------------

/// Cross-checks every `net.*` / `tenant.*.app_*` counter key in the
/// workspace against the canonical sets: `net.*` keys must appear in
/// `NetStatsSnapshot::named_counters` (or be the registered histogram),
/// and tenant app-ledger suffixes must be registered by the tenant
/// mirror. Catches typo'd keys and counters dodging the obs mirrors.
pub fn counter_completeness(files: &[SourceFile]) -> Vec<Finding> {
    let mut canonical_net: BTreeMap<String, (String, u32)> = BTreeMap::new();
    let mut histograms: BTreeSet<String> = BTreeSet::new();
    let mut registered_net: BTreeMap<String, (String, u32)> = BTreeMap::new();
    let mut tenant_suffixes: BTreeSet<String> = BTreeSet::new();
    let mut net_usages: Vec<(String, String, u32)> = Vec::new();
    let mut tenant_usages: Vec<(String, String, u32)> = Vec::new();

    let net_key = |s: &str| {
        s.strip_prefix("net.").is_some_and(|rest| {
            !rest.is_empty()
                && rest
                    .chars()
                    .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_' || c == '.')
        })
    };

    for f in files {
        if f.path.starts_with("crates/analysis/") {
            continue; // this crate names the prefixes it checks
        }
        let s = Sig::new(f);
        let n = s.len();

        // The span of `fn named_counters { … }`, if this file has one.
        let mut canon_range: Option<(usize, usize)> = None;
        for i in 0..n {
            if s.is_ident(i, "fn") && s.is_ident(i + 1, "named_counters") {
                let mut j = i + 2;
                while j < n && !s.is_punct(j, "{") {
                    j += 1;
                }
                let start = j;
                let mut d = 1usize;
                j += 1;
                while j < n && d > 0 {
                    if s.is_punct(j, "{") {
                        d += 1;
                    } else if s.is_punct(j, "}") {
                        d -= 1;
                    }
                    j += 1;
                }
                canon_range = Some((start, j));
                break;
            }
        }

        for i in 0..n {
            let in_canon = canon_range.is_some_and(|(a, b)| i >= a && i < b);
            if let Some(lit) = s.str_lit(i) {
                if net_key(lit) {
                    if in_canon {
                        canonical_net
                            .entry(lit.to_string())
                            .or_insert_with(|| (f.path.clone(), s.line(i)));
                    } else {
                        net_usages.push((lit.to_string(), f.path.clone(), s.line(i)));
                    }
                }
                if let Some(rest) = lit.strip_prefix("tenant.") {
                    // `tenant.<seg>.app_<suffix>` — skip format
                    // templates (they contain `{`).
                    if !lit.contains('{') {
                        if let Some((_seg, field)) = rest.split_once('.') {
                            if let Some(sfx) = field.strip_prefix("app_") {
                                if !sfx.is_empty()
                                    && sfx.chars().all(|c| c.is_ascii_lowercase() || c == '_')
                                {
                                    tenant_usages.push((
                                        sfx.to_string(),
                                        f.path.clone(),
                                        s.line(i),
                                    ));
                                }
                            }
                        }
                    }
                }
            } else if let Some(name) = s.ident(i) {
                if name == "counter" && s.is_punct(i + 1, "(") {
                    // `counter("net.x")` or `counter(&name("sfx"))`.
                    let mut j = i + 2;
                    if s.is_punct(j, "&") {
                        j += 1;
                    }
                    if let Some(lit) = s.str_lit(j) {
                        if net_key(lit) {
                            registered_net
                                .entry(lit.to_string())
                                .or_insert_with(|| (f.path.clone(), s.line(j)));
                        }
                    } else if s.is_ident(j, "name") && s.is_punct(j + 1, "(") {
                        if let Some(sfx) = s.str_lit(j + 2) {
                            tenant_suffixes.insert(sfx.to_string());
                        }
                    }
                } else if name == "histogram" && s.is_punct(i + 1, "(") {
                    let mut j = i + 2;
                    if s.is_punct(j, "&") {
                        j += 1;
                    }
                    if let Some(lit) = s.str_lit(j) {
                        if net_key(lit) {
                            histograms.insert(lit.to_string());
                        }
                    }
                }
            }
        }
    }

    let mut out = Vec::new();
    // If the workspace has no named_counters at all (e.g. a fixture
    // set), only the tenant half can run meaningfully.
    if !canonical_net.is_empty() {
        let mut seen: BTreeSet<&str> = BTreeSet::new();
        for (key, path, line) in &net_usages {
            if canonical_net.contains_key(key) || histograms.contains(key) {
                continue;
            }
            if !seen.insert(key) {
                continue; // one finding per unknown key per pass
            }
            out.push(Finding {
                rule: "counter-completeness",
                path: path.clone(),
                line: *line,
                message: format!(
                    "`{key}` is not enumerated in `NetStatsSnapshot::named_counters` — a typo'd \
                     key or a counter dodging the obs conservation mirror"
                ),
            });
        }
        for (key, (path, line)) in &canonical_net {
            if !registered_net.contains_key(key) && !net_usages.iter().any(|(k, _, _)| k == key) {
                out.push(Finding {
                    rule: "counter-completeness",
                    path: path.clone(),
                    line: *line,
                    message: format!(
                        "`{key}` is enumerated in `named_counters` but never registered or used"
                    ),
                });
            }
        }
    }
    if !tenant_suffixes.is_empty() {
        let mut seen: BTreeSet<&str> = BTreeSet::new();
        for (sfx, path, line) in &tenant_usages {
            if tenant_suffixes.contains(sfx) || !seen.insert(sfx) {
                continue;
            }
            out.push(Finding {
                rule: "counter-completeness",
                path: path.clone(),
                line: *line,
                message: format!(
                    "tenant ledger suffix `app_{sfx}` is not registered by the tenant obs \
                     mirror — the per-tenant conservation check will never see it"
                ),
            });
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Rule: lock-across-send
// ---------------------------------------------------------------------------

/// Calls that can block the calling thread for unbounded time.
const BLOCKING: &[&str] = &[
    "send",
    "recv",
    "recv_timeout",
    "recv_deadline",
    "join",
    "wait",
    "wait_timeout",
    "wait_while",
    "accept",
    "connect",
    "write_all",
    "read_exact",
    "flush",
    "sleep",
    "park",
];

/// Flags holding a shim-mutex guard across a channel send or other
/// blocking call in the runtime crates. The guard serializes every
/// other thread behind a peer's flow control; the lockcheck budget
/// catches this at runtime — this rule catches it at review time.
pub fn lock_across_send(f: &SourceFile) -> Vec<Finding> {
    if !LOCK_SCOPE.iter().any(|p| f.path.starts_with(p)) {
        return Vec::new();
    }
    let s = Sig::new(f);
    let n = s.len();

    #[derive(Debug)]
    struct Guard {
        name: Option<String>, // None for a temporary (un-bound) guard
        depth: i32,
        line: u32,
    }

    let mut out = Vec::new();
    let mut guards: Vec<Guard> = Vec::new();
    let mut claimed_locks: BTreeSet<usize> = BTreeSet::new();
    let mut depth: i32 = 0;
    let mut i = 0;
    while i < n {
        if s.is_punct(i, "{") {
            // A block opening at a temporary guard's depth ends the
            // statement (e.g. an `if cond { … }` condition's
            // temporaries drop before the block runs).
            guards.retain(|g| !(g.name.is_none() && depth == g.depth));
            depth += 1;
        } else if s.is_punct(i, "}") {
            depth -= 1;
            guards.retain(|g| !(g.name.is_some() && depth < g.depth));
            // A temporary guard in a block's tail expression dies with
            // the block too.
            guards.retain(|g| !(g.name.is_none() && depth < g.depth));
        } else if s.is_punct(i, ";") {
            guards.retain(|g| !(g.name.is_none() && depth <= g.depth));
        } else if s.is_ident(i, "let") && !s.in_test(i) {
            // `let [mut] name = … .lock() …;` or
            // `if let Ok(name)/Some(name) = … .try_lock() …`.
            let mut j = i + 1;
            if s.is_ident(j, "mut") {
                j += 1;
            }
            let mut bound = s.ident(j).map(str::to_string);
            if let Some(outer) = &bound {
                if (outer == "Some" || outer == "Ok")
                    && s.is_punct(j + 1, "(")
                    && s.is_punct(j + 3, ")")
                {
                    bound = s.ident(j + 2).map(str::to_string);
                }
            }
            // Scan this statement (to `;` or its body `{`) for a lock.
            let mut k = j;
            let mut d = 0i32;
            let mut lock_at: Option<usize> = None;
            let mut chained = false;
            while k < n && k < i + 400 {
                if s.is_punct(k, "{") && d == 0 {
                    break;
                }
                if s.is_punct(k, "(") {
                    d += 1;
                } else if s.is_punct(k, ")") {
                    d -= 1;
                } else if s.is_punct(k, ";") && d <= 0 {
                    break;
                } else if let Some(m) = s.ident(k) {
                    if (m == "lock" || m == "try_lock")
                        && s.is_punct(k + 1, "(")
                        && !s.is_ident(k.wrapping_sub(1), "fn")
                    {
                        lock_at = Some(k);
                        // `m.lock().field…` — the chain consumes the
                        // guard inside this statement; the bound name
                        // is *not* the guard.
                        let mut close = k + 2;
                        let mut pd = 1i32;
                        while close < n && pd > 0 {
                            if s.is_punct(close, "(") {
                                pd += 1;
                            } else if s.is_punct(close, ")") {
                                pd -= 1;
                            }
                            close += 1;
                        }
                        chained = s.is_punct(close, ".") || s.is_punct(close, "?");
                    }
                }
                k += 1;
            }
            if chained {
                if let Some(at) = lock_at {
                    claimed_locks.insert(at);
                    guards.push(Guard {
                        name: None,
                        depth,
                        line: s.line(at),
                    });
                }
                i += 1;
                continue;
            }
            if let (Some(at), Some(name)) = (lock_at, bound) {
                claimed_locks.insert(at);
                // An `if let` / `while let` binding lives inside the
                // block that follows, not the enclosing scope.
                let scoped =
                    s.is_ident(i.wrapping_sub(1), "if") || s.is_ident(i.wrapping_sub(1), "while");
                guards.push(Guard {
                    name: Some(name),
                    depth: if scoped { depth + 1 } else { depth },
                    line: s.line(at),
                });
            }
        } else if let Some(name) = s.ident(i) {
            if (name == "lock" || name == "try_lock")
                && s.is_punct(i + 1, "(")
                && !s.is_ident(i.wrapping_sub(1), "fn")
                && !claimed_locks.contains(&i)
                && !s.in_test(i)
            {
                // A guard used as a temporary: lives to the end of the
                // enclosing statement.
                guards.push(Guard {
                    name: None,
                    depth,
                    line: s.line(i),
                });
            } else if name == "drop" && s.is_punct(i + 1, "(") {
                if let Some(dropped) = s.ident(i + 2) {
                    if s.is_punct(i + 3, ")") {
                        if let Some(pos) = guards
                            .iter()
                            .rposition(|g| g.name.as_deref() == Some(dropped))
                        {
                            guards.remove(pos);
                        }
                    }
                }
            } else if !guards.is_empty()
                && !s.in_test(i)
                && BLOCKING.contains(&name)
                && s.is_punct(i + 1, "(")
                && (s.is_punct(i.wrapping_sub(1), ".") || s.is_punct(i.wrapping_sub(1), ":"))
            {
                let held = &guards[guards.len() - 1];
                let held_desc = match &held.name {
                    Some(nm) => format!("guard `{nm}`"),
                    None => "a temporary guard".to_string(),
                };
                out.push(s.finding(
                    "lock-across-send",
                    i,
                    format!(
                        "`.{name}()` can block while {held_desc} (locked at line {}) is held — \
                         drop the guard (or move the blocking call out) first",
                        held.line
                    ),
                ));
            }
        }
        i += 1;
    }
    out
}

/// Runs every per-file rule on one file.
pub fn per_file_rules(f: &SourceFile) -> Vec<Finding> {
    let mut out = Vec::new();
    out.extend(wall_clock(f));
    out.extend(unordered_iter(f));
    out.extend(hot_path_panic(f));
    out.extend(lock_across_send(f));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn file(path: &str, src: &str) -> SourceFile {
        SourceFile::new(path, src)
    }

    #[test]
    fn cfg_test_regions_are_marked() {
        let f = file(
            "crates/core/src/x.rs",
            "fn live() {}\n#[cfg(test)]\nmod tests {\n fn t() { x.unwrap(); }\n}\nfn after() {}\n",
        );
        let s = Sig::new(&f);
        let live = (0..s.len()).find(|&i| s.is_ident(i, "live")).unwrap();
        let unwrap = (0..s.len()).find(|&i| s.is_ident(i, "unwrap")).unwrap();
        let after = (0..s.len()).find(|&i| s.is_ident(i, "after")).unwrap();
        assert!(!s.in_test(live));
        assert!(s.in_test(unwrap));
        assert!(!s.in_test(after));
    }

    #[test]
    fn wall_clock_fires_only_in_scope() {
        let src = "fn f() { let t = Instant::now(); }\n";
        assert_eq!(wall_clock(&file("crates/core/src/x.rs", src)).len(), 1);
        assert!(wall_clock(&file("crates/core/tests/x.rs", src)).is_empty());
        assert!(wall_clock(&file("crates/shims/x/src/lib.rs", src)).is_empty());
        assert!(wall_clock(&file("crates/obs/src/time.rs", src)).is_empty());
    }

    #[test]
    fn unordered_iter_flags_iteration_not_lookup() {
        let src = "struct S { m: HashMap<u32, u64> }\n\
                   fn f(s: &S) { for (k, v) in s.m.iter() { use_(k, v); } }\n\
                   fn g(s: &S) -> Option<&u64> { s.m.get(&1) }\n";
        let found = unordered_iter(&file("crates/core/src/x.rs", src));
        assert_eq!(found.len(), 1, "{found:?}");
        assert_eq!(found[0].line, 2);
        // Same code outside the order-sensitive crates: silent.
        assert!(unordered_iter(&file("crates/obs/src/x.rs", src)).is_empty());
    }

    #[test]
    fn hot_path_panic_catches_unwrap_and_indexing() {
        let src = "fn f(v: &[u8], o: Option<u8>) -> u8 { let a = v[0]; o.unwrap() + a }\n";
        let found = hot_path_panic(&file("crates/core/src/sweep.rs", src));
        assert_eq!(found.len(), 2, "{found:?}");
        assert!(hot_path_panic(&file("crates/core/src/other.rs", src)).is_empty());
    }

    #[test]
    fn lock_across_send_catches_guard_over_send() {
        let src = "fn f(m: &Mutex<u32>, tx: &Sender<u32>) {\n\
                     let g = m.lock();\n\
                     tx.send(*g);\n\
                   }\n";
        let found = lock_across_send(&file("crates/rt-net/src/x.rs", src));
        assert_eq!(found.len(), 1, "{found:?}");
        assert!(found[0].message.contains("line 2"), "{}", found[0].message);
    }

    #[test]
    fn lock_across_send_respects_drop_and_scope() {
        let src = "fn f(m: &Mutex<u32>, tx: &Sender<u32>) {\n\
                     let v = { let g = m.lock(); *g };\n\
                     tx.send(v);\n\
                   }\n\
                   fn h(m: &Mutex<u32>, tx: &Sender<u32>) {\n\
                     let g = m.lock();\n\
                     let v = *g;\n\
                     drop(g);\n\
                     tx.send(v);\n\
                   }\n";
        let found = lock_across_send(&file("crates/rt-net/src/x.rs", src));
        assert!(found.is_empty(), "{found:?}");
    }

    #[test]
    fn counter_completeness_cross_checks_sets() {
        let stats = "impl Snap { pub fn named_counters(&self) -> Vec<(&str, u64)> {\n\
                       vec![(\"net.frames_sent\", self.a)] } }\n\
                     fn reg(o: &Obs) { o.counter(\"net.frames_sent\"); }\n";
        let user = "fn f(o: &Obs) { o.counter(\"net.frames_sent\").inc();\n\
                    o.counter(\"net.frames_snet\").inc(); }\n";
        let files = vec![
            file("crates/rt-net/src/stats.rs", stats),
            file("crates/rt-net/src/node.rs", user),
        ];
        let found = counter_completeness(&files);
        assert_eq!(found.len(), 1, "{found:?}");
        assert!(found[0].message.contains("net.frames_snet"));
    }
}
