//! Tenant identity, ownership, and conservation-checked accounting.

use std::collections::BTreeMap;

use dgc_core::id::AoId;
use dgc_obs::{Counter, Registry};

/// A tenant namespace. Tenant `0` is the **default tenant**: every
/// activity not explicitly registered belongs to it, which keeps
/// single-tenant deployments exactly as they were.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TenantId(pub u32);

impl TenantId {
    /// The default tenant unregistered activities belong to.
    pub const DEFAULT: TenantId = TenantId(0);
}

impl std::fmt::Display for TenantId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Which tenant each activity belongs to. Owned by the runtime's event
/// loop (one per node / one per grid) and consulted by the pipeline
/// stages through [`crate::MiddlewareCtx`].
#[derive(Debug, Default, Clone)]
pub struct TenantMap {
    map: BTreeMap<AoId, TenantId>,
}

impl TenantMap {
    /// Empty map: everything is the default tenant.
    pub fn new() -> TenantMap {
        TenantMap::default()
    }

    /// Assigns `ao` to `tenant`. Isolation policy is only as good as
    /// this map: every node enforcing a tenant boundary must know both
    /// endpoints' assignments (drivers broadcast registrations).
    pub fn register(&mut self, ao: AoId, tenant: TenantId) {
        if tenant == TenantId::DEFAULT {
            self.map.remove(&ao);
        } else {
            self.map.insert(ao, tenant);
        }
    }

    /// The tenant `ao` belongs to ([`TenantId::DEFAULT`] when never
    /// registered).
    pub fn of(&self, ao: AoId) -> TenantId {
        self.map.get(&ao).copied().unwrap_or(TenantId::DEFAULT)
    }

    /// True when no activity is registered outside the default tenant.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

/// Per-tenant lifetime app-plane counters, with the same conservation
/// treatment as [`dgc_core::egress::EgressStats`]: every accepted unit
/// is eventually flushed, returned, or still pending —
/// `enqueued = flushed + returned + pending`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TenantCounters {
    /// App units the pipeline accepted onto the egress plane.
    pub enqueued: u64,
    /// App units flushed toward (or delivered on) their destination.
    pub flushed: u64,
    /// App units returned to the sender as failures (peer unreachable,
    /// frame lost, queue shed or reclaimed).
    pub returned: u64,
    /// Outgoing app units the pipeline rejected (never entered the
    /// egress plane; outside the conservation sum by design).
    pub rejected_outgoing: u64,
    /// Incoming app units the pipeline rejected before dispatch.
    pub rejected_incoming: u64,
}

impl TenantCounters {
    /// Units still in flight on the egress plane, by conservation.
    /// (Saturating: a runtime that flushed more than it enqueued has a
    /// ledger bug, which [`TenantCounters::conserves`] exposes.)
    pub fn pending(&self) -> u64 {
        self.enqueued.saturating_sub(self.flushed + self.returned)
    }

    /// The conservation law itself: no unit unaccounted for. At
    /// quiescence a test additionally asserts `pending() == 0`.
    pub fn conserves(&self) -> bool {
        self.enqueued >= self.flushed + self.returned
    }
}

/// Cached `tenant.<id>.*` registry handles (one set per tenant, interned
/// once — the hot path pays one relaxed atomic per event, like the
/// `net.*` mirror).
#[derive(Debug, Clone)]
struct TenantObs {
    enqueued: Counter,
    flushed: Counter,
    returned: Counter,
    rejected_outgoing: Counter,
    rejected_incoming: Counter,
}

impl TenantObs {
    fn new(registry: &Registry, tenant: TenantId) -> TenantObs {
        let name = |field: &str| format!("tenant.{tenant}.app_{field}");
        TenantObs {
            enqueued: registry.counter(&name("enqueued")),
            flushed: registry.counter(&name("flushed")),
            returned: registry.counter(&name("returned")),
            rejected_outgoing: registry.counter(&name("rejected_out")),
            rejected_incoming: registry.counter(&name("rejected_in")),
        }
    }
}

/// The per-tenant app-plane ledger one runtime event loop keeps, with an
/// optional `dgc-obs` mirror so per-tenant traffic merges fleet-wide
/// like every other metric.
#[derive(Debug, Default)]
pub struct TenantLedger {
    per: BTreeMap<TenantId, TenantCounters>,
    obs: Option<(Registry, BTreeMap<TenantId, TenantObs>)>,
}

impl TenantLedger {
    /// Fresh, unmirrored ledger.
    pub fn new() -> TenantLedger {
        TenantLedger::default()
    }

    /// Mirrors every subsequent increment into `registry` under
    /// `tenant.<id>.app_*`.
    pub fn set_obs(&mut self, registry: Registry) {
        self.obs = Some((registry, BTreeMap::new()));
    }

    fn bump(&mut self, tenant: TenantId, f: impl Fn(&mut TenantCounters), g: impl Fn(&TenantObs)) {
        f(self.per.entry(tenant).or_default());
        if let Some((registry, handles)) = &mut self.obs {
            g(handles
                .entry(tenant)
                .or_insert_with(|| TenantObs::new(registry, tenant)));
        }
    }

    /// One app unit accepted onto the egress plane.
    pub fn on_enqueued(&mut self, tenant: TenantId) {
        self.bump(tenant, |c| c.enqueued += 1, |o| o.enqueued.incr());
    }

    /// One app unit flushed toward its destination.
    pub fn on_flushed(&mut self, tenant: TenantId) {
        self.bump(tenant, |c| c.flushed += 1, |o| o.flushed.incr());
    }

    /// One app unit returned to its sender as a failure.
    pub fn on_returned(&mut self, tenant: TenantId) {
        self.bump(tenant, |c| c.returned += 1, |o| o.returned.incr());
    }

    /// One outgoing app unit rejected by the pipeline.
    pub fn on_rejected_outgoing(&mut self, tenant: TenantId) {
        self.bump(
            tenant,
            |c| c.rejected_outgoing += 1,
            |o| o.rejected_outgoing.incr(),
        );
    }

    /// One incoming app unit rejected by the pipeline.
    pub fn on_rejected_incoming(&mut self, tenant: TenantId) {
        self.bump(
            tenant,
            |c| c.rejected_incoming += 1,
            |o| o.rejected_incoming.incr(),
        );
    }

    /// `tenant`'s counters (zeros if it never moved a unit).
    pub fn counters(&self, tenant: TenantId) -> TenantCounters {
        self.per.get(&tenant).copied().unwrap_or_default()
    }

    /// Every tenant that moved at least one unit, with its counters.
    pub fn snapshot(&self) -> Vec<(TenantId, TenantCounters)> {
        self.per.iter().map(|(t, c)| (*t, *c)).collect()
    }

    /// True when every tenant's counters satisfy the conservation law.
    pub fn conserves(&self) -> bool {
        self.per.values().all(TenantCounters::conserves)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unregistered_activities_are_default_tenant() {
        let mut map = TenantMap::new();
        let a = AoId::new(0, 1);
        assert_eq!(map.of(a), TenantId::DEFAULT);
        map.register(a, TenantId(7));
        assert_eq!(map.of(a), TenantId(7));
        map.register(a, TenantId::DEFAULT);
        assert_eq!(map.of(a), TenantId::DEFAULT);
        assert!(map.is_empty());
    }

    #[test]
    fn ledger_conserves_and_mirrors() {
        let registry = Registry::default();
        let mut ledger = TenantLedger::new();
        ledger.set_obs(registry.clone());
        let (a, b) = (TenantId(1), TenantId(2));
        ledger.on_enqueued(a);
        ledger.on_enqueued(a);
        ledger.on_flushed(a);
        ledger.on_returned(a);
        ledger.on_enqueued(b);
        ledger.on_rejected_outgoing(b);
        ledger.on_rejected_incoming(b);
        let ca = ledger.counters(a);
        assert_eq!(ca.enqueued, 2);
        assert_eq!(ca.flushed, 1);
        assert_eq!(ca.returned, 1);
        assert_eq!(ca.pending(), 0);
        assert!(ledger.conserves());
        let cb = ledger.counters(b);
        assert_eq!(cb.pending(), 1);
        let snap = registry.snapshot();
        assert_eq!(snap.counter("tenant.1.app_enqueued"), 2);
        assert_eq!(snap.counter("tenant.1.app_flushed"), 1);
        assert_eq!(snap.counter("tenant.1.app_returned"), 1);
        assert_eq!(snap.counter("tenant.2.app_rejected_out"), 1);
        assert_eq!(snap.counter("tenant.2.app_rejected_in"), 1);
        assert_eq!(ledger.snapshot().len(), 2);
    }

    #[test]
    fn broken_ledger_fails_conservation() {
        let mut ledger = TenantLedger::new();
        ledger.on_flushed(TenantId(3));
        assert!(!ledger.conserves());
        assert_eq!(ledger.counters(TenantId(3)).pending(), 0);
    }
}
