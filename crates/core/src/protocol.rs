//! The DGC protocol state machine (§3 of the paper).
//!
//! One [`DgcState`] lives next to every active object. It is **sans-io**:
//! handlers mutate local state and return [`Action`]s; a runtime performs
//! the sends, reports deliveries, and destroys the object when told to.
//! The same state machine is driven by the deterministic simulator
//! (`dgc-activeobj`) and by the real-thread runtime (`dgc-rt-thread`).
//!
//! The four algorithms of §3.3 map to:
//!
//! * Algorithm 1 (recursive agreement) — [`ReferencerTable::agree`],
//! * Algorithm 2 (every TTB)           — [`DgcState::on_tick`],
//! * Algorithm 3 (message reception)   — [`DgcState::on_message`],
//! * Algorithm 4 (response reception)  — [`DgcState::on_response`].
//!
//! The PDF text of the paper lost the `≠` glyphs in the pseudo-code; the
//! conditions below follow the reconstruction documented in DESIGN.md
//! (they match the prose of §3.2).

use crate::clock::NamedClock;
use crate::config::{DgcConfig, ParentPolicy, TimingMode};
use crate::id::AoId;
use crate::message::{Action, DgcMessage, DgcResponse, TerminateReason};
use crate::referenced::ReferencedTable;
use crate::referencers::ReferencerTable;
use crate::stats::{ClockBumpReason, DgcStats};
use crate::sweep::{ActionSink, SweepScratch};
use crate::telemetry::DgcObs;
use crate::units::{Dur, Time};

/// Life-cycle phase of a DGC endpoint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// Normal operation.
    Active,
    /// Consensus reached (§4.3 optimization): heartbeats stopped,
    /// responses advertise `consensus_reached`, termination after TTA.
    Dying {
        /// When the phase was entered.
        since: Time,
        /// The reason that will be reported at termination.
        reason: TerminateReason,
    },
    /// Terminated; all inputs are ignored.
    Dead,
}

/// The per-active-object DGC endpoint.
#[derive(Debug, Clone)]
pub struct DgcState {
    id: AoId,
    config: DgcConfig,
    clock: NamedClock,
    parent: Option<AoId>,
    /// Depth in the reverse spanning tree (0 = originator), tracked only
    /// under [`ParentPolicy::MinDepth`].
    tree_depth: Option<u32>,
    referencers: ReferencerTable,
    referenced: ReferencedTable,
    /// Arrival time of the last DGC message from anyone; initialised to
    /// the creation time so a never-referenced object still waits TTA.
    last_message_timestamp: Time,
    phase: Phase,
    current_ttb: Dur,
    stats: DgcStats,
    // Telemetry: creation/idle/beat timestamps feeding the collection
    // latency histograms when a registry is attached via `set_obs`.
    created_at: Time,
    last_idle_at: Option<Time>,
    last_tick_at: Option<Time>,
    obs: Option<DgcObs>,
}

impl DgcState {
    /// Creates the endpoint for active object `id` at time `now`.
    pub fn new(id: AoId, now: Time, config: DgcConfig) -> Self {
        let current_ttb = match config.timing {
            TimingMode::Static => config.ttb,
            TimingMode::Adaptive { min_ttb, max_ttb } => config.ttb.clamp(min_ttb, max_ttb),
        };
        DgcState {
            id,
            config,
            clock: NamedClock::initial(id),
            parent: None,
            tree_depth: None,
            referencers: ReferencerTable::new(),
            referenced: ReferencedTable::new(),
            last_message_timestamp: now,
            phase: Phase::Active,
            current_ttb,
            stats: DgcStats::default(),
            created_at: now,
            last_idle_at: None,
            last_tick_at: None,
            obs: None,
        }
    }

    /// Attaches cached telemetry handles (usually
    /// [`DgcObs::new`] against the hosting node's registry). The
    /// legacy [`DgcStats`] counters keep counting regardless; the
    /// handles add latency histograms and fleet-mergeable counters.
    pub fn set_obs(&mut self, obs: DgcObs) {
        self.obs = Some(obs);
    }

    // ------------------------------------------------------------------
    // Inputs from the middleware (reference-graph construction, §2.2)
    // ------------------------------------------------------------------

    /// A stub for `target` was deserialized by this activity: add the
    /// edge and guarantee one DGC message at the next broadcast (§3.1).
    pub fn on_stub_deserialized(&mut self, target: AoId) {
        if self.phase != Phase::Active {
            return;
        }
        self.referenced.on_stub_deserialized(target);
    }

    /// The local collector reports that all stubs for `target` (the
    /// shared tag) died. If the edge disappears, this is a "loss of a
    /// referenced" and bumps the activity clock (§3.2, Fig. 6).
    pub fn on_stubs_collected(&mut self, target: AoId) {
        if self.phase != Phase::Active {
            return;
        }
        if self.referenced.on_stubs_collected(target) {
            self.lose_referenced_edge(target);
        }
    }

    /// Sending to `target` failed (it terminated): drop the edge.
    pub fn on_send_failure(&mut self, target: AoId) {
        if self.phase != Phase::Active {
            return;
        }
        if self.referenced.remove(target) {
            self.lose_referenced_edge(target);
        }
    }

    /// The runtime learned — from the transport's *terminal* send
    /// failure or from a membership layer's "dead" verdict — that the
    /// whole node `node` departed. Every referenced edge toward it is
    /// dropped as if each individual send had failed, and every
    /// referencer hosted there is treated as departed immediately (the
    /// "loss of a referencer" of §3.2, Fig. 5) instead of waiting out
    /// its TTA expiry. A node that later *rejoins* does so under a new
    /// incarnation with fresh activities, so forgetting the old ids here
    /// is final: re-registration happens through new stubs and new
    /// DGC messages, never by resurrecting these entries.
    pub fn on_node_dead(&mut self, node: u32) {
        if self.phase != Phase::Active || node == self.id.node {
            return;
        }
        for target in self.referenced_ids() {
            if target.node == node && self.referenced.remove(target) {
                self.lose_referenced_edge(target);
            }
        }
        let departed: Vec<AoId> = self
            .referencers
            .iter()
            .map(|(id, _)| id)
            .filter(|id| id.node == node)
            .collect();
        for r in departed {
            if self.referencers.remove(r) {
                self.bump_clock(ClockBumpReason::LostReferencer);
            }
        }
    }

    /// The activity transitioned busy → idle: bump the clock (§3.2 — the
    /// primary reason the clock exists; an object that alternates between
    /// idle and busy must invalidate in-progress consensus attempts).
    /// `now` timestamps the transition for the collection-latency
    /// histograms (idle → consensus → collected).
    pub fn on_became_idle(&mut self, now: Time) {
        if self.phase != Phase::Active {
            return;
        }
        self.last_idle_at = Some(now);
        self.bump_clock(ClockBumpReason::BecameIdle);
    }

    // ------------------------------------------------------------------
    // Algorithm 2: every TTB
    // ------------------------------------------------------------------

    /// Periodic broadcast and termination checks. `idle` is the
    /// middleware's idleness verdict (waiting for a request; an object
    /// waiting on a future is *busy*, §4.1). Roots (registered objects,
    /// dummy referencers) must always be reported busy.
    ///
    /// Convenience wrapper over [`Self::on_tick_into`] that allocates
    /// its own buffers — fine for tests and single activities; a sweep
    /// over many activities should use `on_tick_into` with reused
    /// [`SweepScratch`] and sink.
    pub fn on_tick(&mut self, now: Time, idle: bool) -> Vec<Action> {
        let mut actions = Vec::new();
        let mut scratch = SweepScratch::new();
        self.on_tick_into(now, idle, &mut scratch, &mut actions);
        actions
    }

    /// [`Self::on_tick`], emitting into `sink` with caller-owned
    /// scratch buffers — the batched-sweep hot path: one pass over the
    /// tables, zero allocations when the buffers are warm, actions
    /// flowing straight toward the egress plane instead of through a
    /// per-activity `Vec`.
    pub fn on_tick_into(
        &mut self,
        now: Time,
        idle: bool,
        scratch: &mut SweepScratch,
        sink: &mut impl ActionSink,
    ) {
        match self.phase {
            Phase::Dead => return,
            Phase::Dying { since, reason } => {
                // §4.3: wait TTA, then terminate. No heartbeats meanwhile.
                if now.since(since) >= self.config.tta {
                    self.phase = Phase::Dead;
                    self.record_collected(now, reason, Some(since));
                    sink.emit(self.id, Action::Terminate { reason });
                }
                return;
            }
            Phase::Active => {}
        }

        if let Some(obs) = &self.obs {
            if let Some(prev) = self.last_tick_at {
                obs.ttb_round.record(now.since(prev).as_nanos());
            }
        }
        self.last_tick_at = Some(now);

        // Loss of referencers: silent for TTA (or 2·their TTB + MaxComm).
        scratch.expired.clear();
        self.referencers.expire_silent_into(
            now,
            self.config.tta,
            self.config.max_comm,
            &mut scratch.expired,
        );
        for _ in 0..scratch.expired.len() {
            self.bump_clock(ClockBumpReason::LostReferencer);
        }

        if idle {
            // Acyclic garbage (§3.1): no DGC message for TTA.
            let timeout = self
                .referencers
                .max_expiry(self.config.tta, self.config.max_comm);
            if now.since(self.last_message_timestamp) > timeout {
                self.phase = Phase::Dead;
                self.record_collected(now, TerminateReason::Acyclic, None);
                sink.emit(
                    self.id,
                    Action::Terminate {
                        reason: TerminateReason::Acyclic,
                    },
                );
                return;
            }

            // Cyclic garbage (§3.2): we own the final activity clock and
            // every referencer agreed on it. The non-empty guard keeps
            // freshly created objects on the acyclic path, whose TTA
            // covers in-flight first messages (see DESIGN.md).
            if self.clock.is_owned_by(self.id)
                && !self.referencers.is_empty()
                && self.referencers.agree(self.clock)
            {
                self.stats.consensus_detected += 1;
                if let Some(obs) = &self.obs {
                    obs.consensus_detected.incr();
                    if let Some(idle) = self.last_idle_at {
                        obs.idle_to_consensus.record(now.since(idle).as_nanos());
                    }
                }
                if self.config.propagate_consensus {
                    self.phase = Phase::Dying {
                        since: now,
                        reason: TerminateReason::CyclicDetected,
                    };
                    return;
                }
                self.phase = Phase::Dead;
                self.record_collected(now, TerminateReason::CyclicDetected, Some(now));
                sink.emit(
                    self.id,
                    Action::Terminate {
                        reason: TerminateReason::CyclicDetected,
                    },
                );
                return;
            }
        }

        self.adapt_ttb(idle);

        // Broadcast: every reachable referenced target, plus the targets
        // still owed their first message.
        scratch.targets.clear();
        scratch.dropped.clear();
        if self.referenced.has_pending_drops() {
            // Rare two-phase order: edges kept only for a promised
            // first message drop first and bump the clock, then every
            // target hears the post-drop clock.
            self.referenced
                .broadcast_targets_into(&mut scratch.targets, &mut scratch.dropped);
            for i in 0..scratch.dropped.len() {
                self.lose_referenced_edge(scratch.dropped[i]);
            }
            for i in 0..scratch.targets.len() {
                let dest = scratch.targets[i];
                let consensus = self.consensus_bit_for(dest, idle);
                self.stats.messages_sent += 1;
                sink.emit(
                    self.id,
                    Action::SendMessage {
                        to: dest,
                        message: DgcMessage {
                            sender: self.id,
                            clock: self.clock,
                            consensus,
                            sender_ttb: self.current_ttb,
                        },
                    },
                );
            }
            return;
        }
        // Hot path: no drop can occur this tick, so the broadcast is
        // one fused pass — each target's consensus bit reads the
        // edge's last response in place
        // ([`ReferencedTable::for_each_broadcast_target`]) instead of
        // re-searching the table once per destination.
        let id = self.id;
        let clock = self.clock;
        let parent = self.parent;
        let ttb = self.current_ttb;
        let referencers = &self.referencers;
        let stats = &mut self.stats;
        self.referenced
            .for_each_broadcast_target(&mut scratch.dropped, |dest, last| {
                // `consensus_bit_for`, inlined over the walk.
                let consensus = idle
                    && last.is_some_and(|r| r.clock == clock)
                    && (clock.is_owned_by(id) || parent.is_some())
                    && (parent != Some(dest) || referencers.agree(clock));
                stats.messages_sent += 1;
                sink.emit(
                    id,
                    Action::SendMessage {
                        to: dest,
                        message: DgcMessage {
                            sender: id,
                            clock,
                            consensus,
                            sender_ttb: ttb,
                        },
                    },
                );
            });
        debug_assert!(scratch.dropped.is_empty());
    }

    /// The consensus bit sent toward `dest` (Algorithm 2, reconstructed):
    ///
    /// ```text
    /// idle ∧ dest.lastResponse.clock = clock
    ///      ∧ (clock.owner = self ∨ parent ≠ nil)
    ///      ∧ (parent ≠ dest ∨ referencers.agree(clock))
    /// ```
    ///
    /// i.e. the parent receives the conjunction of our local agreement
    /// and our referencers'; everyone else only our local agreement.
    fn consensus_bit_for(&self, dest: AoId, idle: bool) -> bool {
        if !idle {
            return false;
        }
        let candidate_matches = self
            .referenced
            .last_response(dest)
            .is_some_and(|r| r.clock == self.clock);
        if !candidate_matches {
            return false;
        }
        if !(self.clock.is_owned_by(self.id) || self.parent.is_some()) {
            return false;
        }
        self.parent != Some(dest) || self.referencers.agree(self.clock)
    }

    // ------------------------------------------------------------------
    // Algorithm 3: reception of a DGC message
    // ------------------------------------------------------------------

    /// Handles a DGC message; always answers with a DGC response (over
    /// the same FIFO connection).
    pub fn on_message(&mut self, now: Time, message: &DgcMessage) -> Vec<Action> {
        let mut actions = Vec::new();
        self.on_message_into(now, message, &mut actions);
        actions
    }

    /// [`Self::on_message`] emitting into `sink` — the delivery hot
    /// path's allocation-free form (a response is at most one action).
    pub fn on_message_into(&mut self, now: Time, message: &DgcMessage, sink: &mut impl ActionSink) {
        if self.phase == Phase::Dead {
            return;
        }
        self.stats.messages_received += 1;

        if let Phase::Dying { .. } = self.phase {
            // §4.3: a dying object no longer updates its state but keeps
            // answering so the consensus outcome propagates.
            self.stats.responses_sent += 1;
            sink.emit(
                self.id,
                Action::SendResponse {
                    to: message.sender,
                    response: self.build_response(true),
                },
            );
            return;
        }

        if message.clock > self.clock {
            self.clock = message.clock;
            self.parent = None;
            self.tree_depth = None;
        }
        self.referencers.record_message(
            message.sender,
            message.clock,
            message.consensus,
            now,
            message.sender_ttb,
        );
        self.last_message_timestamp = now;

        self.stats.responses_sent += 1;
        sink.emit(
            self.id,
            Action::SendResponse {
                to: message.sender,
                response: self.build_response(false),
            },
        );
    }

    fn build_response(&self, consensus_reached: bool) -> DgcResponse {
        // hasParent ← parent ≠ nil ∨ clock.owner = self  (Algorithm 3).
        let has_parent = self.parent.is_some() || self.clock.is_owned_by(self.id);
        let depth = match self.config.parent_policy {
            ParentPolicy::FirstResponder => None,
            ParentPolicy::MinDepth => {
                if self.clock.is_owned_by(self.id) {
                    Some(0)
                } else {
                    self.tree_depth
                }
            }
        };
        DgcResponse {
            responder: self.id,
            clock: self.clock,
            has_parent,
            consensus_reached,
            depth,
        }
    }

    // ------------------------------------------------------------------
    // Algorithm 4: reception of a DGC response
    // ------------------------------------------------------------------

    /// Handles the DGC response sent by referenced object `from`. `idle`
    /// is the middleware's current idleness verdict, needed by the
    /// consensus-propagation optimization.
    pub fn on_response(
        &mut self,
        now: Time,
        from: AoId,
        response: &DgcResponse,
        idle: bool,
    ) -> Vec<Action> {
        if self.phase != Phase::Active {
            return Vec::new();
        }
        self.stats.responses_received += 1;

        // ref.lastResponse ← response. Late responses for edges we
        // already dropped are ignored.
        if !self.referenced.record_response(from, *response) {
            return Vec::new();
        }

        // §4.3 step 4: a referenced object reports the consensus closed.
        // Clock equality implies we are in the same garbage cycle (clocks
        // only flow along reference edges; see DESIGN.md), so we are part
        // of the agreed set and may terminate without our own consensus.
        if response.consensus_reached
            && idle
            && response.clock == self.clock
            && self.config.propagate_consensus
        {
            self.stats.consensus_propagated += 1;
            if let Some(obs) = &self.obs {
                obs.consensus_propagated.incr();
            }
            self.phase = Phase::Dying {
                since: now,
                reason: TerminateReason::CyclicPropagated,
            };
            return Vec::new();
        }

        // Algorithm 4 (reconstructed): adopt a parent iff
        // response.clock = clock ∧ response.hasParent ∧ parent = nil
        //                        ∧ clock.owner ≠ self.
        let candidate_ok = response.clock == self.clock && response.has_parent;
        if candidate_ok && self.parent.is_none() && !self.clock.is_owned_by(self.id) {
            self.parent = Some(from);
            self.tree_depth = response.depth.map(|d| d.saturating_add(1));
            self.stats.parents_adopted += 1;
            return Vec::new();
        }

        match self.config.parent_policy {
            ParentPolicy::FirstResponder => {}
            ParentPolicy::MinDepth => {
                if self.parent == Some(from) {
                    // Keep our depth in sync with the parent's.
                    self.tree_depth = response.depth.map(|d| d.saturating_add(1));
                } else if candidate_ok && !self.clock.is_owned_by(self.id) {
                    // §7.2 extension: switch to a strictly shallower parent.
                    if let (Some(new_d), Some(cur_d)) = (response.depth, self.tree_depth) {
                        if new_d.saturating_add(1) < cur_d {
                            self.parent = Some(from);
                            self.tree_depth = Some(new_d.saturating_add(1));
                            self.stats.parents_switched += 1;
                        }
                    }
                }
            }
        }
        Vec::new()
    }

    // ------------------------------------------------------------------
    // Internals
    // ------------------------------------------------------------------

    fn lose_referenced_edge(&mut self, target: AoId) {
        if self.parent == Some(target) {
            self.parent = None;
            self.tree_depth = None;
        }
        self.bump_clock(ClockBumpReason::LostReferenced);
    }

    /// The §3.2 increment: `ID:Value` → `self:Value+1`; the owner of the
    /// newest clock is an originator, so the parent is reset.
    fn bump_clock(&mut self, reason: ClockBumpReason) {
        self.clock = self.clock.bumped_by(self.id);
        self.parent = None;
        self.tree_depth = None;
        self.stats.record_bump(reason);
        if let Some(obs) = &self.obs {
            obs.bump_counter(reason).incr();
        }
    }

    /// Feeds the collection-latency histograms at the moment this
    /// endpoint goes `Dead`. `dying_since` is when consensus put it in
    /// the Dying phase (the §4.3 TTA wait), `None` on the acyclic path.
    fn record_collected(&self, now: Time, reason: TerminateReason, dying_since: Option<Time>) {
        let Some(obs) = &self.obs else {
            return;
        };
        match reason {
            TerminateReason::Acyclic => obs.collected_acyclic.incr(),
            _ => obs.collected_cyclic.incr(),
        }
        obs.spawn_to_collected
            .record(now.since(self.created_at).as_nanos());
        if let Some(idle) = self.last_idle_at {
            obs.idle_to_collected.record(now.since(idle).as_nanos());
        }
        if let Some(since) = dying_since {
            obs.consensus_to_collected
                .record(now.since(since).as_nanos());
        }
    }

    /// §7.1 adaptive heartbeat, following the paper's two criteria:
    /// *augment the broadcasting frequency when some garbage is
    /// suspected* — the object is idle with a parent (or ownership) and
    /// some referencer already agrees — and *lower it when the
    /// distributed system is highly loaded* — here, when the object is
    /// busy. An idle object with no suspicion decays back toward the
    /// configured base TTB.
    fn adapt_ttb(&mut self, idle: bool) {
        let TimingMode::Adaptive { min_ttb, max_ttb } = self.config.timing else {
            return;
        };
        let suspects_garbage = idle
            && (self.clock.is_owned_by(self.id) || self.parent.is_some())
            && self
                .referencers
                .iter()
                .any(|(_, r)| r.consensus && r.clock == self.clock);
        let step = self.current_ttb.div(4).max(Dur::from_millis(1));
        if suspects_garbage {
            self.current_ttb = min_ttb.max(self.current_ttb.div(2));
        } else if !idle {
            // Highly loaded: back off.
            self.current_ttb = max_ttb.min(self.current_ttb.saturating_add(step));
        } else {
            // Idle, nothing suspected: drift back to the base period.
            let base = self.config.ttb.clamp(min_ttb, max_ttb);
            if self.current_ttb < base {
                self.current_ttb = base.min(self.current_ttb.saturating_add(step));
            } else if self.current_ttb > base {
                self.current_ttb = base.max(Dur::from_nanos(
                    self.current_ttb.as_nanos().saturating_sub(step.as_nanos()),
                ));
            }
        }
    }

    // ------------------------------------------------------------------
    // Introspection
    // ------------------------------------------------------------------

    /// This endpoint's id.
    pub fn id(&self) -> AoId {
        self.id
    }

    /// Current activity clock.
    pub fn clock(&self) -> NamedClock {
        self.clock
    }

    /// Current parent in the reverse spanning tree.
    pub fn parent(&self) -> Option<AoId> {
        self.parent
    }

    /// Current depth in the reverse spanning tree (MinDepth policy only;
    /// 0 for an originator).
    pub fn tree_depth(&self) -> Option<u32> {
        if self.clock.is_owned_by(self.id) {
            Some(0)
        } else {
            self.tree_depth
        }
    }

    /// Life-cycle phase.
    pub fn phase(&self) -> Phase {
        self.phase
    }

    /// True once terminated.
    pub fn is_dead(&self) -> bool {
        self.phase == Phase::Dead
    }

    /// The heartbeat period the runtime should use for the next tick
    /// (constant unless the adaptive mode is on).
    pub fn current_ttb(&self) -> Dur {
        self.current_ttb
    }

    /// The configuration.
    pub fn config(&self) -> &DgcConfig {
        &self.config
    }

    /// Number of currently known referencers.
    pub fn referencer_count(&self) -> usize {
        self.referencers.len()
    }

    /// Number of currently tracked referenced edges.
    pub fn referenced_count(&self) -> usize {
        self.referenced.len()
    }

    /// Ids of currently tracked referenced edges (for runtimes that need
    /// to tear down connections on termination).
    pub fn referenced_ids(&self) -> Vec<AoId> {
        self.referenced.iter().map(|(id, _)| id).collect()
    }

    /// Protocol counters.
    pub fn stats(&self) -> &DgcStats {
        &self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ao(n: u32) -> AoId {
        AoId::new(n, 0)
    }

    fn cfg() -> DgcConfig {
        DgcConfig::builder()
            .ttb(Dur::from_secs(30))
            .tta(Dur::from_secs(61))
            .max_comm(Dur::from_millis(500))
            .build()
    }

    fn t(s: u64) -> Time {
        Time::from_secs(s)
    }

    #[test]
    fn fresh_state_is_active_self_owned() {
        let s = DgcState::new(ao(1), t(0), cfg());
        assert_eq!(s.phase(), Phase::Active);
        assert_eq!(s.clock(), NamedClock::initial(ao(1)));
        assert_eq!(s.parent(), None);
        assert_eq!(s.referencer_count(), 0);
    }

    #[test]
    fn tick_broadcasts_to_referenced() {
        let mut s = DgcState::new(ao(1), t(0), cfg());
        s.on_stub_deserialized(ao(2));
        s.on_stub_deserialized(ao(3));
        let actions = s.on_tick(t(1), false);
        let sends: Vec<_> = actions
            .iter()
            .filter_map(|a| match a {
                Action::SendMessage { to, message } => Some((*to, *message)),
                _ => None,
            })
            .collect();
        assert_eq!(sends.len(), 2);
        assert!(sends.iter().all(|(_, m)| m.sender == ao(1)));
        assert!(
            sends.iter().all(|(_, m)| !m.consensus),
            "busy sender never consents"
        );
    }

    #[test]
    fn acyclic_timeout_terminates_idle_object() {
        let mut s = DgcState::new(ao(1), t(0), cfg());
        // Just under TTA: alive.
        assert!(s.on_tick(t(61), true).is_empty());
        // Beyond TTA: terminate.
        let actions = s.on_tick(t(62), true);
        assert_eq!(
            actions,
            vec![Action::Terminate {
                reason: TerminateReason::Acyclic
            }]
        );
        assert!(s.is_dead());
        // Dead state ignores further input.
        assert!(s.on_tick(t(100), true).is_empty());
    }

    #[test]
    fn busy_object_never_times_out() {
        let mut s = DgcState::new(ao(1), t(0), cfg());
        assert!(s.on_tick(t(1_000_000), false).is_empty());
        assert_eq!(s.phase(), Phase::Active);
    }

    #[test]
    fn node_dead_drops_referenced_edges_and_referencers() {
        let mut s = DgcState::new(ao(1), t(0), cfg());
        // Referenced: two activities on node 2, one on node 3.
        s.on_stub_deserialized(AoId::new(2, 0));
        s.on_stub_deserialized(AoId::new(2, 7));
        s.on_stub_deserialized(ao(3));
        // Referencers: one on node 2, one on node 4.
        for sender in [AoId::new(2, 3), ao(4)] {
            s.on_message(
                t(1),
                &DgcMessage {
                    sender,
                    clock: NamedClock::initial(sender),
                    consensus: false,
                    sender_ttb: Dur::from_secs(30),
                },
            );
        }
        let clock_before = s.clock();
        s.on_node_dead(2);
        assert_eq!(s.referenced_count(), 1, "edges toward node 2 dropped");
        assert_eq!(s.referenced_ids(), vec![ao(3)]);
        assert_eq!(s.referencer_count(), 1, "node 2's referencer departed");
        assert!(
            s.clock().value > clock_before.value && s.clock().is_owned_by(ao(1)),
            "losing edges and referencers bumps the activity clock"
        );
        // Subsequent broadcasts no longer target the dead node.
        let actions = s.on_tick(t(2), false);
        assert!(actions.iter().all(|a| match a {
            Action::SendMessage { to, .. } => to.node != 2,
            _ => true,
        }));
    }

    #[test]
    fn node_dead_ignores_self_and_unknown_nodes() {
        let mut s = DgcState::new(ao(1), t(0), cfg());
        s.on_stub_deserialized(AoId::new(1, 5)); // co-hosted neighbour
        let clock_before = s.clock();
        s.on_node_dead(1); // own node: nonsense, must be a no-op
        s.on_node_dead(9); // nothing known there
        assert_eq!(s.referenced_count(), 1);
        assert_eq!(s.clock(), clock_before, "no edge lost, no bump");
    }

    #[test]
    fn dgc_message_refreshes_liveness() {
        let mut s = DgcState::new(ao(1), t(0), cfg());
        let m = DgcMessage {
            sender: ao(2),
            clock: NamedClock::initial(ao(2)),
            consensus: false,
            sender_ttb: Dur::from_secs(30),
        };
        s.on_message(t(50), &m);
        assert!(s.on_tick(t(100), true).is_empty(), "heard from ao2 at t=50");
        assert_eq!(s.referencer_count(), 1);
    }

    #[test]
    fn message_reception_returns_response_with_algorithm3_fields() {
        let mut s = DgcState::new(ao(1), t(0), cfg());
        let m = DgcMessage {
            sender: ao(2),
            clock: NamedClock {
                value: 5,
                owner: ao(2),
            },
            consensus: true,
            sender_ttb: Dur::from_secs(30),
        };
        let actions = s.on_message(t(1), &m);
        assert_eq!(actions.len(), 1);
        let Action::SendResponse { to, response } = &actions[0] else {
            panic!("expected a response");
        };
        assert_eq!(*to, ao(2));
        // Greater clock adopted, parent reset; owner is ao2 so we do NOT
        // have a parent and are not the owner => hasParent = false.
        assert_eq!(
            response.clock,
            NamedClock {
                value: 5,
                owner: ao(2)
            }
        );
        assert!(!response.has_parent);
        assert!(!response.consensus_reached);
        assert_eq!(
            s.clock(),
            NamedClock {
                value: 5,
                owner: ao(2)
            }
        );
    }

    #[test]
    fn smaller_clock_is_not_adopted() {
        let mut s = DgcState::new(ao(5), t(0), cfg());
        s.on_became_idle(t(0)); // clock -> ao5:1
        let m = DgcMessage {
            sender: ao(2),
            clock: NamedClock {
                value: 0,
                owner: ao(2),
            },
            consensus: false,
            sender_ttb: Dur::from_secs(30),
        };
        s.on_message(t(1), &m);
        assert_eq!(
            s.clock(),
            NamedClock {
                value: 1,
                owner: ao(5)
            }
        );
    }

    #[test]
    fn becoming_idle_bumps_and_takes_ownership() {
        let mut s = DgcState::new(ao(1), t(0), cfg());
        let m = DgcMessage {
            sender: ao(2),
            clock: NamedClock {
                value: 9,
                owner: ao(2),
            },
            consensus: false,
            sender_ttb: Dur::from_secs(30),
        };
        s.on_message(t(1), &m);
        s.on_became_idle(t(1));
        assert_eq!(
            s.clock(),
            NamedClock {
                value: 10,
                owner: ao(1)
            }
        );
        assert_eq!(s.stats().bumps_became_idle, 1);
    }

    #[test]
    fn parent_adoption_follows_algorithm4() {
        let mut s = DgcState::new(ao(1), t(0), cfg());
        s.on_stub_deserialized(ao(2));
        // Take a foreign clock so we are not the owner.
        s.on_message(
            t(1),
            &DgcMessage {
                sender: ao(9),
                clock: NamedClock {
                    value: 4,
                    owner: ao(9),
                },
                consensus: false,
                sender_ttb: Dur::from_secs(30),
            },
        );
        let resp = DgcResponse {
            responder: ao(2),
            clock: NamedClock {
                value: 4,
                owner: ao(9),
            },
            has_parent: true,
            consensus_reached: false,
            depth: None,
        };
        s.on_response(t(2), ao(2), &resp, true);
        assert_eq!(s.parent(), Some(ao(2)));
        assert_eq!(s.stats().parents_adopted, 1);
    }

    #[test]
    fn owner_never_adopts_a_parent() {
        let mut s = DgcState::new(ao(1), t(0), cfg());
        s.on_stub_deserialized(ao(2));
        let resp = DgcResponse {
            responder: ao(2),
            clock: s.clock(), // matches, and we own it
            has_parent: true,
            consensus_reached: false,
            depth: None,
        };
        s.on_response(t(1), ao(2), &resp, true);
        assert_eq!(s.parent(), None, "clock owner is the tree root");
    }

    #[test]
    fn mismatched_or_parentless_responses_are_not_adopted() {
        let mut s = DgcState::new(ao(1), t(0), cfg());
        s.on_stub_deserialized(ao(2));
        s.on_message(
            t(1),
            &DgcMessage {
                sender: ao(9),
                clock: NamedClock {
                    value: 4,
                    owner: ao(9),
                },
                consensus: false,
                sender_ttb: Dur::from_secs(30),
            },
        );
        // Wrong clock.
        s.on_response(
            t(2),
            ao(2),
            &DgcResponse {
                responder: ao(2),
                clock: NamedClock {
                    value: 3,
                    owner: ao(9),
                },
                has_parent: true,
                consensus_reached: false,
                depth: None,
            },
            true,
        );
        assert_eq!(s.parent(), None);
        // Right clock but cannot lead to the originator.
        s.on_response(
            t(3),
            ao(2),
            &DgcResponse {
                responder: ao(2),
                clock: NamedClock {
                    value: 4,
                    owner: ao(9),
                },
                has_parent: false,
                consensus_reached: false,
                depth: None,
            },
            true,
        );
        assert_eq!(s.parent(), None);
    }

    #[test]
    fn greater_message_clock_resets_parent() {
        let mut s = DgcState::new(ao(1), t(0), cfg());
        s.on_stub_deserialized(ao(2));
        s.on_message(
            t(1),
            &DgcMessage {
                sender: ao(9),
                clock: NamedClock {
                    value: 4,
                    owner: ao(9),
                },
                consensus: false,
                sender_ttb: Dur::from_secs(30),
            },
        );
        s.on_response(
            t(2),
            ao(2),
            &DgcResponse {
                responder: ao(2),
                clock: NamedClock {
                    value: 4,
                    owner: ao(9),
                },
                has_parent: true,
                consensus_reached: false,
                depth: None,
            },
            true,
        );
        assert_eq!(s.parent(), Some(ao(2)));
        s.on_message(
            t(3),
            &DgcMessage {
                sender: ao(9),
                clock: NamedClock {
                    value: 7,
                    owner: ao(9),
                },
                consensus: false,
                sender_ttb: Dur::from_secs(30),
            },
        );
        assert_eq!(s.parent(), None, "Algorithm 3 resets the parent");
    }

    #[test]
    fn loss_of_referencer_bumps_clock() {
        let mut s = DgcState::new(ao(1), t(0), cfg());
        s.on_message(
            t(0),
            &DgcMessage {
                sender: ao(2),
                clock: NamedClock {
                    value: 8,
                    owner: ao(2),
                },
                consensus: false,
                sender_ttb: Dur::from_secs(30),
            },
        );
        assert_eq!(s.referencer_count(), 1);
        // ao2 silent past TTA: lost; Fig. 5 — clock becomes self:9.
        s.on_tick(t(62), false);
        assert_eq!(s.referencer_count(), 0);
        assert_eq!(
            s.clock(),
            NamedClock {
                value: 9,
                owner: ao(1)
            }
        );
        assert_eq!(s.stats().bumps_lost_referencer, 1);
    }

    #[test]
    fn loss_of_referenced_bumps_clock_and_drops_parent() {
        let mut s = DgcState::new(ao(1), t(0), cfg());
        s.on_stub_deserialized(ao(2));
        s.on_tick(t(1), false); // clear must_send
        s.on_message(
            t(2),
            &DgcMessage {
                sender: ao(9),
                clock: NamedClock {
                    value: 4,
                    owner: ao(9),
                },
                consensus: false,
                sender_ttb: Dur::from_secs(30),
            },
        );
        s.on_response(
            t(3),
            ao(2),
            &DgcResponse {
                responder: ao(2),
                clock: NamedClock {
                    value: 4,
                    owner: ao(9),
                },
                has_parent: true,
                consensus_reached: false,
                depth: None,
            },
            true,
        );
        assert_eq!(s.parent(), Some(ao(2)));
        s.on_stubs_collected(ao(2));
        assert_eq!(s.parent(), None);
        assert_eq!(
            s.clock(),
            NamedClock {
                value: 5,
                owner: ao(1)
            }
        );
        assert_eq!(s.stats().bumps_lost_referenced, 1);
        assert_eq!(s.referenced_count(), 0);
    }

    #[test]
    fn send_failure_behaves_like_edge_loss() {
        let mut s = DgcState::new(ao(1), t(0), cfg());
        s.on_stub_deserialized(ao(2));
        s.on_tick(t(1), false);
        let before = s.clock();
        s.on_send_failure(ao(2));
        assert!(s.clock() > before);
        assert_eq!(s.referenced_count(), 0);
        // Unknown target: no bump.
        let c = s.clock();
        s.on_send_failure(ao(7));
        assert_eq!(s.clock(), c);
    }

    #[test]
    fn must_send_once_sends_exactly_one_message_after_drop() {
        let mut s = DgcState::new(ao(1), t(0), cfg());
        s.on_stub_deserialized(ao(2));
        s.on_stubs_collected(ao(2)); // collected before any broadcast
        let first = s.on_tick(t(1), false);
        assert!(
            first
                .iter()
                .any(|a| matches!(a, Action::SendMessage { to, .. } if *to == ao(2))),
            "the promised message must go out"
        );
        let second = s.on_tick(t(31), false);
        assert!(
            !second
                .iter()
                .any(|a| matches!(a, Action::SendMessage { .. })),
            "no further messages after the promise is honoured"
        );
    }

    #[test]
    fn consensus_bit_rules() {
        // Build: self ao1 references ao2 (parent) and ao3 (non-parent),
        // all sharing clock owned by ao9.
        let mut s = DgcState::new(ao(1), t(0), cfg());
        s.on_stub_deserialized(ao(2));
        s.on_stub_deserialized(ao(3));
        let clk = NamedClock {
            value: 4,
            owner: ao(9),
        };
        s.on_message(
            t(1),
            &DgcMessage {
                sender: ao(9),
                clock: clk,
                consensus: false,
                sender_ttb: Dur::from_secs(30),
            },
        );
        let resp = |r: u32| DgcResponse {
            responder: ao(r),
            clock: clk,
            has_parent: true,
            consensus_reached: false,
            depth: None,
        };
        s.on_response(t(2), ao(2), &resp(2), true);
        s.on_response(t(2), ao(3), &resp(3), true);
        assert_eq!(s.parent(), Some(ao(2)));

        // Referencer ao9 does NOT yet agree (consensus=false above).
        let actions = s.on_tick(t(3), true);
        let bit = |to: AoId| {
            actions
                .iter()
                .find_map(|a| match a {
                    Action::SendMessage { to: d, message } if *d == to => Some(message.consensus),
                    _ => None,
                })
                .expect("message sent")
        };
        assert!(
            !bit(ao(2)),
            "toward the parent: needs referencers.agree, ao9 disagrees"
        );
        assert!(bit(ao(3)), "toward non-parent: local agreement only");

        // Now ao9 agrees: full conjunction holds toward the parent too.
        s.on_message(
            t(4),
            &DgcMessage {
                sender: ao(9),
                clock: clk,
                consensus: true,
                sender_ttb: Dur::from_secs(30),
            },
        );
        let actions = s.on_tick(t(5), true);
        let bit = |to: AoId| {
            actions
                .iter()
                .find_map(|a| match a {
                    Action::SendMessage { to: d, message } if *d == to => Some(message.consensus),
                    _ => None,
                })
                .expect("message sent")
        };
        assert!(bit(ao(2)));
        assert!(bit(ao(3)));
    }

    #[test]
    fn consensus_bit_false_without_matching_response() {
        let mut s = DgcState::new(ao(1), t(0), cfg());
        s.on_stub_deserialized(ao(2));
        // No response from ao2 yet: cannot consent.
        let actions = s.on_tick(t(1), true);
        let Action::SendMessage { message, .. } = &actions[0] else {
            panic!()
        };
        assert!(!message.consensus);
    }

    #[test]
    fn cyclic_termination_requires_ownership_agreement_and_referencers() {
        let mut s = DgcState::new(ao(1), t(0), cfg());
        // A referencer that agrees with our own clock.
        let mine = s.clock();
        s.on_message(
            t(1),
            &DgcMessage {
                sender: ao(2),
                clock: mine,
                consensus: true,
                sender_ttb: Dur::from_secs(30),
            },
        );
        // Busy: no termination.
        assert!(s
            .on_tick(t(2), false)
            .iter()
            .all(|a| !matches!(a, Action::Terminate { .. })));
        // Idle: consensus detected -> dying phase (optimization on).
        s.on_tick(t(3), true);
        assert!(matches!(s.phase(), Phase::Dying { .. }));
        // After TTA, terminates with the cyclic reason.
        let actions = s.on_tick(t(3 + 61), true);
        assert_eq!(
            actions,
            vec![Action::Terminate {
                reason: TerminateReason::CyclicDetected
            }]
        );
    }

    #[test]
    fn cyclic_termination_without_optimization_is_immediate() {
        let mut s = DgcState::new(
            ao(1),
            t(0),
            DgcConfig::builder()
                .ttb(Dur::from_secs(30))
                .tta(Dur::from_secs(61))
                .propagate_consensus(false)
                .build(),
        );
        let mine = s.clock();
        s.on_message(
            t(1),
            &DgcMessage {
                sender: ao(2),
                clock: mine,
                consensus: true,
                sender_ttb: Dur::from_secs(30),
            },
        );
        let actions = s.on_tick(t(2), true);
        assert_eq!(
            actions,
            vec![Action::Terminate {
                reason: TerminateReason::CyclicDetected
            }]
        );
    }

    #[test]
    fn no_vacuous_cyclic_termination_without_referencers() {
        let mut s = DgcState::new(ao(1), t(0), cfg());
        // Idle, owner of own clock, zero referencers: must NOT die
        // cyclically at t=1 (acyclic TTA covers it later).
        let actions = s.on_tick(t(1), true);
        assert!(actions
            .iter()
            .all(|a| !matches!(a, Action::Terminate { .. })));
        assert_eq!(s.phase(), Phase::Active);
    }

    #[test]
    fn non_owner_never_detects_consensus() {
        let mut s = DgcState::new(ao(1), t(0), cfg());
        let foreign = NamedClock {
            value: 9,
            owner: ao(9),
        };
        s.on_message(
            t(1),
            &DgcMessage {
                sender: ao(2),
                clock: foreign,
                consensus: true,
                sender_ttb: Dur::from_secs(30),
            },
        );
        s.on_tick(t(2), true);
        assert_eq!(
            s.phase(),
            Phase::Active,
            "only the clock owner may conclude"
        );
    }

    #[test]
    fn dying_object_answers_with_consensus_reached() {
        let mut s = DgcState::new(ao(1), t(0), cfg());
        let mine = s.clock();
        s.on_message(
            t(1),
            &DgcMessage {
                sender: ao(2),
                clock: mine,
                consensus: true,
                sender_ttb: Dur::from_secs(30),
            },
        );
        s.on_tick(t(2), true); // -> Dying
        let actions = s.on_message(
            t(3),
            &DgcMessage {
                sender: ao(2),
                clock: mine,
                consensus: true,
                sender_ttb: Dur::from_secs(30),
            },
        );
        let Action::SendResponse { response, .. } = &actions[0] else {
            panic!()
        };
        assert!(response.consensus_reached);
        // And it no longer broadcasts.
        s.on_stub_deserialized(ao(3));
        assert!(s.on_tick(t(4), true).is_empty());
    }

    #[test]
    fn propagated_consensus_kills_idle_cycle_member() {
        let mut s = DgcState::new(ao(1), t(0), cfg());
        s.on_stub_deserialized(ao(2));
        // Our clock must equal the final clock for the propagation to
        // apply (same-SCC proof in DESIGN.md).
        let fin = s.clock();
        let resp = DgcResponse {
            responder: ao(2),
            clock: fin,
            has_parent: true,
            consensus_reached: true,
            depth: None,
        };
        s.on_response(t(1), ao(2), &resp, true);
        assert!(matches!(s.phase(), Phase::Dying { .. }));
        assert_eq!(s.stats().consensus_propagated, 1);
    }

    #[test]
    fn propagated_consensus_ignored_when_busy_or_clock_differs() {
        let mut s = DgcState::new(ao(1), t(0), cfg());
        s.on_stub_deserialized(ao(2));
        let fin = s.clock();
        let resp = DgcResponse {
            responder: ao(2),
            clock: fin,
            has_parent: true,
            consensus_reached: true,
            depth: None,
        };
        // Busy: survive.
        s.on_response(t(1), ao(2), &resp, false);
        assert_eq!(s.phase(), Phase::Active);
        // Different clock: survive (we are not in that cycle).
        let other = DgcResponse {
            clock: NamedClock {
                value: 99,
                owner: ao(9),
            },
            ..resp
        };
        s.on_response(t(2), ao(2), &other, true);
        assert_eq!(s.phase(), Phase::Active);
    }

    #[test]
    fn response_clock_never_updates_own_clock() {
        // Fig. 4: activity clocks are not propagated in DGC responses.
        let mut s = DgcState::new(ao(1), t(0), cfg());
        s.on_stub_deserialized(ao(2));
        let before = s.clock();
        let resp = DgcResponse {
            responder: ao(2),
            clock: NamedClock {
                value: 50,
                owner: ao(2),
            },
            has_parent: true,
            consensus_reached: false,
            depth: None,
        };
        s.on_response(t(1), ao(2), &resp, true);
        assert_eq!(s.clock(), before);
    }

    #[test]
    fn min_depth_policy_switches_to_shallower_parent() {
        let mut s = DgcState::new(
            ao(1),
            t(0),
            DgcConfig::builder()
                .parent_policy(ParentPolicy::MinDepth)
                .build(),
        );
        s.on_stub_deserialized(ao(2));
        s.on_stub_deserialized(ao(3));
        let clk = NamedClock {
            value: 4,
            owner: ao(9),
        };
        s.on_message(
            t(1),
            &DgcMessage {
                sender: ao(9),
                clock: clk,
                consensus: false,
                sender_ttb: Dur::from_secs(30),
            },
        );
        // Deep parent first.
        s.on_response(
            t(2),
            ao(2),
            &DgcResponse {
                responder: ao(2),
                clock: clk,
                has_parent: true,
                consensus_reached: false,
                depth: Some(5),
            },
            true,
        );
        assert_eq!(s.parent(), Some(ao(2)));
        assert_eq!(s.tree_depth(), Some(6));
        // Shallower candidate appears: switch.
        s.on_response(
            t(3),
            ao(3),
            &DgcResponse {
                responder: ao(3),
                clock: clk,
                has_parent: true,
                consensus_reached: false,
                depth: Some(1),
            },
            true,
        );
        assert_eq!(s.parent(), Some(ao(3)));
        assert_eq!(s.tree_depth(), Some(2));
        assert_eq!(s.stats().parents_switched, 1);
        // Deeper candidate: keep.
        s.on_response(
            t(4),
            ao(2),
            &DgcResponse {
                responder: ao(2),
                clock: clk,
                has_parent: true,
                consensus_reached: false,
                depth: Some(4),
            },
            true,
        );
        assert_eq!(s.parent(), Some(ao(3)));
    }

    #[test]
    fn min_depth_owner_reports_depth_zero() {
        let s = DgcState::new(
            ao(1),
            t(0),
            DgcConfig::builder()
                .parent_policy(ParentPolicy::MinDepth)
                .build(),
        );
        assert_eq!(s.tree_depth(), Some(0));
    }

    #[test]
    fn adaptive_ttb_shrinks_on_suspected_garbage_and_relaxes() {
        let mut s = DgcState::new(
            ao(1),
            t(0),
            DgcConfig::builder()
                .ttb(Dur::from_secs(30))
                .tta(Dur::from_secs(200))
                .timing(TimingMode::Adaptive {
                    min_ttb: Dur::from_secs(5),
                    max_ttb: Dur::from_secs(60),
                })
                .build(),
        );
        assert_eq!(s.current_ttb(), Dur::from_secs(30));
        // A referencer agreeing with our clock while we are idle => suspect.
        let mine = s.clock();
        s.on_message(
            t(1),
            &DgcMessage {
                sender: ao(2),
                clock: mine,
                consensus: true,
                sender_ttb: Dur::from_secs(30),
            },
        );
        // This tick will detect consensus; use a non-owner clock to avoid
        // that and isolate the TTB adaptation.
        s.on_message(
            t(1),
            &DgcMessage {
                sender: ao(3),
                clock: NamedClock {
                    value: 7,
                    owner: ao(3),
                },
                consensus: false,
                sender_ttb: Dur::from_secs(30),
            },
        );
        // Adopt ao3's clock (not owner), with a parent candidate:
        s.on_stub_deserialized(ao(4));
        s.on_response(
            t(2),
            ao(4),
            &DgcResponse {
                responder: ao(4),
                clock: NamedClock {
                    value: 7,
                    owner: ao(3),
                },
                has_parent: true,
                consensus_reached: false,
                depth: None,
            },
            true,
        );
        assert_eq!(s.parent(), Some(ao(4)));
        // ao2 must agree with the *current* clock for suspicion:
        s.on_message(
            t(3),
            &DgcMessage {
                sender: ao(2),
                clock: NamedClock {
                    value: 7,
                    owner: ao(3),
                },
                consensus: true,
                sender_ttb: Dur::from_secs(30),
            },
        );
        s.on_tick(t(4), true);
        assert_eq!(s.current_ttb(), Dur::from_secs(15), "halved on suspicion");
        // Busy tick: relaxes by 25%.
        s.on_tick(t(5), false);
        assert!(s.current_ttb() > Dur::from_secs(15));
    }

    #[test]
    fn dead_state_ignores_everything() {
        let mut s = DgcState::new(ao(1), t(0), cfg());
        s.on_tick(t(100), true); // acyclic death
        assert!(s.is_dead());
        let m = DgcMessage {
            sender: ao(2),
            clock: NamedClock {
                value: 1,
                owner: ao(2),
            },
            consensus: false,
            sender_ttb: Dur::from_secs(30),
        };
        assert!(s.on_message(t(101), &m).is_empty());
        assert!(s
            .on_response(
                t(101),
                ao(2),
                &DgcResponse {
                    responder: ao(2),
                    clock: NamedClock {
                        value: 1,
                        owner: ao(2)
                    },
                    has_parent: false,
                    consensus_reached: false,
                    depth: None,
                },
                true,
            )
            .is_empty());
        s.on_stub_deserialized(ao(3));
        assert_eq!(s.referenced_count(), 0);
    }

    #[test]
    fn late_response_for_dropped_edge_is_ignored() {
        let mut s = DgcState::new(ao(1), t(0), cfg());
        let resp = DgcResponse {
            responder: ao(2),
            clock: NamedClock {
                value: 3,
                owner: ao(2),
            },
            has_parent: true,
            consensus_reached: false,
            depth: None,
        };
        s.on_response(t(1), ao(2), &resp, true);
        assert_eq!(s.parent(), None, "no tracked edge, response dropped");
    }
}
