//! The NAS Parallel Benchmark kernels of §5.2 (CG, EP, FT), scaled to
//! class C traffic/compute and genuinely executing their local numerics.

pub mod cg;
pub mod common;
pub mod ep;
pub mod ft;

pub use common::{run_nas, KernelMath, NasMaster, NasOutcome, NasParams, NasWorker};

use dgc_activeobj::collector::CollectorKind;
use dgc_simnet::topology::Topology;

/// Which kernel to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Kernel {
    /// Conjugate gradient.
    Cg,
    /// Embarrassingly parallel.
    Ep,
    /// 3-D FFT PDE solver.
    Ft,
}

impl Kernel {
    /// All three kernels, in the paper's table order.
    pub const ALL: [Kernel; 3] = [Kernel::Cg, Kernel::Ep, Kernel::Ft];

    /// Class-C-scaled parameters for this kernel.
    pub fn class_c(self) -> NasParams {
        match self {
            Kernel::Cg => cg::class_c(),
            Kernel::Ep => ep::class_c(),
            Kernel::Ft => ft::class_c(),
        }
    }

    /// Builds the per-worker local numerical state (scaled down but
    /// genuinely executed).
    pub fn math(self, index: u32) -> Box<dyn KernelMath> {
        match self {
            Kernel::Cg => Box::new(cg::CgMath::new(256, 6, index)),
            Kernel::Ep => Box::new(ep::EpMath::new(65_536, index)),
            Kernel::Ft => Box::new(ft::FtMath::new(256, index)),
        }
    }
}

/// Runs one kernel at the given scale over `topology`.
pub fn run_kernel(
    kernel: Kernel,
    params: &NasParams,
    topology: Topology,
    collector: CollectorKind,
    seed: u64,
) -> NasOutcome {
    run_nas(params, topology, collector, seed, &|i| kernel.math(i))
}

#[cfg(test)]
mod tests {
    use super::*;
    use dgc_core::config::DgcConfig;
    use dgc_core::units::Dur;
    use dgc_simnet::time::SimDuration;

    fn small(kernel: Kernel) -> NasParams {
        kernel.class_c().scaled_down(8, 25)
    }

    fn topo() -> Topology {
        Topology::single_site(4, SimDuration::from_millis(1))
    }

    fn dgc() -> CollectorKind {
        CollectorKind::Complete(
            DgcConfig::builder()
                .ttb(Dur::from_secs(30))
                .tta(Dur::from_secs(61))
                .max_comm(Dur::from_millis(500))
                .build(),
        )
    }

    #[test]
    fn cg_small_runs_and_collects() {
        let out = run_kernel(Kernel::Cg, &small(Kernel::Cg), topo(), dgc(), 1);
        assert_eq!(out.violations, 0);
        assert!(out.dgc_time.is_some(), "all workers collected");
        assert!(out.app_bytes > 0);
        assert!(out.dgc_bytes > 0);
    }

    #[test]
    fn ep_small_runs_and_collects() {
        let out = run_kernel(Kernel::Ep, &small(Kernel::Ep), topo(), dgc(), 2);
        assert_eq!(out.violations, 0);
        assert!(out.dgc_time.is_some());
        // At full scale the collector dwarfs EP's own exchanges; at this
        // tiny test scale the fixed deployment payload dominates both, so
        // just check the collector is the only other traffic source.
        assert!(out.dgc_bytes > 0);
    }

    #[test]
    fn ft_small_runs_and_collects() {
        let out = run_kernel(Kernel::Ft, &small(Kernel::Ft), topo(), dgc(), 3);
        assert_eq!(out.violations, 0);
        assert!(out.dgc_time.is_some());
    }

    #[test]
    fn no_dgc_control_run_has_zero_collector_traffic() {
        let out = run_kernel(
            Kernel::Cg,
            &small(Kernel::Cg),
            topo(),
            CollectorKind::None,
            4,
        );
        assert_eq!(out.dgc_bytes, 0);
        assert!(out.app_bytes > 0);
        assert!(out.all_gone_at.is_some(), "explicit termination");
    }

    #[test]
    fn dgc_run_costs_more_bandwidth_than_control() {
        let with = run_kernel(Kernel::Cg, &small(Kernel::Cg), topo(), dgc(), 5);
        let without = run_kernel(
            Kernel::Cg,
            &small(Kernel::Cg),
            topo(),
            CollectorKind::None,
            5,
        );
        assert!(with.total_bytes > without.total_bytes);
    }

    #[test]
    fn runs_are_deterministic() {
        let a = run_kernel(Kernel::Ep, &small(Kernel::Ep), topo(), dgc(), 9);
        let b = run_kernel(Kernel::Ep, &small(Kernel::Ep), topo(), dgc(), 9);
        assert_eq!(a.total_bytes, b.total_bytes);
        assert_eq!(a.result_at, b.result_at);
        assert_eq!(a.all_gone_at, b.all_gone_at);
    }
}
