//! The secure multi-tenant plane, conformance-checked on both runtimes.
//!
//! One two-tenant deployment, replayed on the deterministic grid and on
//! a real TCP cluster with link authentication enabled:
//!
//! * tenant 1 hosts a cross-node garbage cycle that must be collected;
//! * tenant 2 hosts a busy root holding a live worker that must stay;
//! * the script *attempts* cross-tenant references and app sends — all
//!   of which both runtimes must reject, or tenant 2's busy root would
//!   pin tenant 1's cycle and its verdict would diverge from the
//!   single-tenant ground truth;
//! * per-tenant app accounting must conserve
//!   (`enqueued = flushed + returned + pending`) on every node;
//! * on sockets, a node without the deployment key cannot join or
//!   inject frames (`net.auth_rejects` says so).
//!
//! Each tenant's verdict is checked with [`evaluate`] against the
//! scenario containing **only that tenant's script** — isolation means
//! a tenant's DGC outcome is exactly what it would have been alone.

use std::collections::BTreeMap;
use std::time::{Duration, Instant};

use dgc_activeobj::activity::Inert;
use dgc_activeobj::collector::CollectorKind;
use dgc_activeobj::runtime::{Grid, GridConfig};
use dgc_activeobj::{AuthKey, Pipeline, TenantCounters, TenantId};
use dgc_conformance::scenarios::conformance_dgc;
use dgc_conformance::{evaluate, Observation, Op, Scenario, ScriptOp, Verdict};
use dgc_core::faults::FaultProfile;
use dgc_core::id::AoId;
use dgc_core::units::{Dur, Time};
use dgc_rt_net::{Cluster, NetConfig};
use dgc_simnet::time::{SimDuration, SimTime};
use dgc_simnet::topology::{ProcId, Topology};

const TENANT_ONE: TenantId = TenantId(1);
const TENANT_TWO: TenantId = TenantId(2);

/// Tags 0, 1 are tenant 1; tags 2, 3 are tenant 2.
fn tenant_of(tag: usize) -> TenantId {
    if tag < 2 {
        TENANT_ONE
    } else {
        TENANT_TWO
    }
}

fn at_ms(ms: u64, op: Op) -> ScriptOp {
    ScriptOp {
        at: Time::from_nanos(ms * 1_000_000),
        op,
    }
}

/// The full two-tenant script, cross-tenant attacks included. Both
/// runtimes replay *this*; the ground truth each tenant is judged
/// against is its [`single_tenant_scenario`] filtration.
fn full_script() -> Vec<ScriptOp> {
    vec![
        // Tenant 1: a cross-node cycle, busy until 300 ms.
        at_ms(
            0,
            Op::Spawn {
                tag: 0,
                node: 0,
                busy: true,
            },
        ),
        at_ms(
            0,
            Op::Spawn {
                tag: 1,
                node: 1,
                busy: true,
            },
        ),
        at_ms(0, Op::AddRef { from: 0, to: 1 }),
        at_ms(0, Op::AddRef { from: 1, to: 0 }),
        // Tenant 2: a busy root on node 0 holding a worker on node 1.
        at_ms(
            0,
            Op::Spawn {
                tag: 2,
                node: 0,
                busy: true,
            },
        ),
        at_ms(
            0,
            Op::Spawn {
                tag: 3,
                node: 1,
                busy: true,
            },
        ),
        at_ms(0, Op::AddRef { from: 2, to: 3 }),
        // The attacks: tenant 2's immortal root grabbing at tenant 1's
        // cycle (would pin it forever), and tenant 1 grabbing back.
        // Both must be refused by the plane.
        at_ms(100, Op::AddRef { from: 2, to: 1 }),
        at_ms(100, Op::AddRef { from: 0, to: 3 }),
        // Tenant 1 finishes its work; tenant 2's worker idles but stays
        // referenced by the busy root.
        at_ms(300, Op::SetIdle { tag: 0, idle: true }),
        at_ms(300, Op::SetIdle { tag: 1, idle: true }),
        at_ms(300, Op::SetIdle { tag: 3, idle: true }),
    ]
}

/// What `tenant`'s deployment would look like **alone**: only its own
/// spawns, idleness flips and intra-tenant references. Cross-tenant
/// references do not exist in any single-tenant world — which is
/// exactly the claim isolation makes about the multi-tenant one.
fn single_tenant_scenario(tenant: TenantId) -> Scenario {
    let script: Vec<ScriptOp> = full_script()
        .into_iter()
        .filter(|s| match s.op {
            Op::Spawn { tag, .. } | Op::SetIdle { tag, .. } => tenant_of(tag) == tenant,
            Op::AddRef { from, to } | Op::DropRef { from, to } => {
                tenant_of(from) == tenant && tenant_of(to) == tenant
            }
            Op::Leave { .. } => true,
        })
        .collect();
    Scenario {
        name: if tenant == TENANT_ONE {
            "two-tenant/tenant-1"
        } else {
            "two-tenant/tenant-2"
        },
        nodes: 2,
        dgc: conformance_dgc(),
        script,
        profile: FaultProfile::none(),
        membership: None,
        horizon: Dur::from_secs(4),
        expect: Verdict::SAFE_AND_COMPLETE,
    }
}

/// Splits observations by tenant and checks each against its
/// single-tenant ground truth. Tenant 1's cycle must fall; tenant 2
/// must lose nothing.
fn check_verdicts(runtime: &str, observations: &[Observation]) {
    for tenant in [TENANT_ONE, TENANT_TWO] {
        let scenario = single_tenant_scenario(tenant);
        let own: Vec<Observation> = observations
            .iter()
            .copied()
            .filter(|o| tenant_of(o.tag) == tenant)
            .collect();
        let verdict = evaluate(&scenario, &own);
        assert_eq!(
            verdict, scenario.expect,
            "{runtime}: tenant {tenant} diverged from its single-tenant \
             ground truth (observations: {own:?})"
        );
    }
    assert!(
        observations.iter().all(|o| tenant_of(o.tag) == TENANT_ONE),
        "{runtime}: tenant 2 lost an activity: {observations:?}"
    );
    assert_eq!(
        observations
            .iter()
            .filter(|o| tenant_of(o.tag) == TENANT_ONE)
            .count(),
        2,
        "{runtime}: tenant 1's cycle was not fully collected: {observations:?}"
    );
}

fn check_conservation(runtime: &str, snapshot: &[(TenantId, TenantCounters)]) {
    for (tenant, c) in snapshot {
        assert!(
            c.enqueued >= c.flushed + c.returned,
            "{runtime}: tenant {tenant} over-accounted: {c:?}"
        );
        assert_eq!(
            c.pending(),
            0,
            "{runtime}: tenant {tenant} still has app units in flight at \
             quiescence: {c:?}"
        );
    }
}

#[test]
fn two_tenants_agree_with_their_single_tenant_ground_truths_on_simnet() {
    let key = AuthKey::from_secret("conformance-deployment");
    let topo = Topology::single_site(2, SimDuration::from_millis(2));
    let mut grid = Grid::new(
        GridConfig::new(topo)
            .collector(CollectorKind::Complete(conformance_dgc()))
            .seed(42)
            .auth(key),
    );
    grid.set_pipeline(Pipeline::standard());
    let mut ids: BTreeMap<usize, AoId> = BTreeMap::new();
    let mut app_sent = false;
    for s in full_script() {
        grid.run_until(SimTime::from_nanos(s.at.as_nanos()));
        if !app_sent && s.at >= Time::from_nanos(150_000_000) {
            send_app_mix(&mut grid, &ids);
            app_sent = true;
        }
        match s.op {
            Op::Spawn { tag, node, busy } => {
                let id = grid.spawn(ProcId(node), Box::new(Inert));
                grid.set_tenant(id, tenant_of(tag));
                if busy {
                    grid.set_busy(id, true);
                }
                ids.insert(tag, id);
            }
            Op::SetIdle { tag, idle } => grid.set_busy(ids[&tag], !idle),
            Op::AddRef { from, to } => grid.make_ref(ids[&from], ids[&to]),
            Op::DropRef { from, to } => grid.drop_ref(ids[&from], ids[&to]),
            Op::Leave { node } => grid.leave_proc(ProcId(node)),
        }
    }
    grid.run_until(SimTime::from_secs(4));

    let by_id: BTreeMap<AoId, usize> = ids.iter().map(|(t, id)| (*id, *t)).collect();
    let observations: Vec<Observation> = grid
        .collected()
        .iter()
        .filter(|c| c.reason.is_some())
        .map(|c| Observation {
            at: Time::from_nanos(c.at.as_nanos()),
            tag: by_id[&c.ao],
        })
        .collect();
    check_verdicts("simnet", &observations);
    assert!(grid.violations().is_empty(), "{:?}", grid.violations());

    // The in-tenant payloads arrived; the cross-tenant one died at the
    // pipeline and is visible as a rejection on tenant 1's ledger.
    let inbox = grid.drain_app_received();
    assert_eq!(inbox.len(), 2, "one payload per tenant: {inbox:?}");
    let t1 = grid.tenant_counters(TENANT_ONE);
    assert_eq!(t1.enqueued, 1);
    assert_eq!(t1.flushed, 1);
    // One rejected app send plus the rejected 0→3 reference.
    assert_eq!(t1.rejected_outgoing, 2);
    let t2 = grid.tenant_counters(TENANT_TWO);
    // The rejected 2→1 reference.
    assert_eq!(t2.rejected_outgoing, 1);
    check_conservation("simnet", &grid.tenant_snapshot());
}

/// At 150 ms both runners fire the same app traffic: one in-tenant
/// payload per tenant (must arrive) and one cross-tenant forgery (must
/// die at the sender's pipeline).
fn send_app_mix(grid: &mut Grid, ids: &BTreeMap<usize, AoId>) {
    grid.send_app(ids[&0], ids[&1], false, b"tenant-1 payload".to_vec());
    grid.send_app(ids[&2], ids[&3], false, b"tenant-2 payload".to_vec());
    grid.send_app(ids[&0], ids[&3], false, b"cross-tenant forgery".to_vec());
}

#[test]
fn two_tenants_agree_with_their_single_tenant_ground_truths_on_rtnet() {
    let key = AuthKey::from_secret("conformance-deployment");
    let cluster = Cluster::listen_local(2, NetConfig::new(conformance_dgc()).auth(key))
        .expect("bind authenticated cluster");
    for node in 0..2 {
        cluster.set_pipeline(node, Pipeline::standard());
    }
    let epoch = cluster.epoch();
    let mut ids: BTreeMap<usize, AoId> = BTreeMap::new();
    let mut app_sent = false;
    for s in full_script() {
        let target = Duration::from_nanos(s.at.as_nanos());
        let elapsed = epoch.elapsed();
        if elapsed < target {
            std::thread::sleep(target - elapsed);
        }
        if !app_sent && s.at >= Time::from_nanos(150_000_000) {
            cluster.send_app(ids[&0], ids[&1], false, b"tenant-1 payload".to_vec());
            cluster.send_app(ids[&2], ids[&3], false, b"tenant-2 payload".to_vec());
            cluster.send_app(ids[&0], ids[&3], false, b"cross-tenant forgery".to_vec());
            app_sent = true;
        }
        match s.op {
            Op::Spawn { tag, node, busy } => {
                let id = cluster.add_activity(node);
                cluster.set_tenant(id, tenant_of(tag));
                if !busy {
                    cluster.set_idle(id, true);
                }
                ids.insert(tag, id);
            }
            Op::SetIdle { tag, idle } => cluster.set_idle(ids[&tag], idle),
            Op::AddRef { from, to } => cluster.add_ref(ids[&from], ids[&to]),
            Op::DropRef { from, to } => cluster.drop_ref(ids[&from], ids[&to]),
            Op::Leave { node } => cluster.leave_node(node),
        }
    }

    // Tenant 1's cycle must fall; give the real clock generous room.
    let by_id: BTreeMap<AoId, usize> = ids.iter().map(|(t, id)| (*id, *t)).collect();
    let mut first_seen: BTreeMap<usize, Time> = BTreeMap::new();
    let deadline = Instant::now() + Duration::from_secs(20);
    while first_seen.len() < 2 && Instant::now() < deadline {
        for t in cluster.terminated() {
            if let Some(tag) = by_id.get(&t.ao) {
                first_seen
                    .entry(*tag)
                    .or_insert_with(|| Time::from_nanos(epoch.elapsed().as_nanos() as u64));
            }
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    // Let any late (wrongful) termination of tenant 2 surface too.
    std::thread::sleep(Duration::from_millis(600));
    for t in cluster.terminated() {
        if let Some(tag) = by_id.get(&t.ao) {
            first_seen
                .entry(*tag)
                .or_insert_with(|| Time::from_nanos(epoch.elapsed().as_nanos() as u64));
        }
    }
    let observations: Vec<Observation> = first_seen
        .iter()
        .map(|(tag, at)| Observation { at: *at, tag: *tag })
        .collect();
    check_verdicts("rt-net", &observations);

    // App plane: each node delivered exactly its in-tenant payload, and
    // nothing crossed the boundary.
    let delivered = cluster.app_received(1);
    assert_eq!(
        delivered.len(),
        2,
        "node 1 hosts both receivers: {delivered:?}"
    );
    assert!(delivered
        .iter()
        .all(|d| d.payload != b"cross-tenant forgery"));
    // Per-tenant conservation on every node, mirrored into dgc-obs.
    for node in 0..2 {
        let snap = cluster
            .tenant_snapshot(node)
            .expect("tenant snapshot answered");
        check_conservation("rt-net", &snap);
    }
    let t1 = cluster.tenant_snapshot(0).unwrap();
    let counters = |snap: &[(TenantId, TenantCounters)], t: TenantId| {
        snap.iter()
            .find(|(id, _)| *id == t)
            .map(|(_, c)| *c)
            .unwrap_or_default()
    };
    assert_eq!(counters(&t1, TENANT_ONE).enqueued, 1);
    assert_eq!(counters(&t1, TENANT_ONE).flushed, 1);
    assert_eq!(counters(&t1, TENANT_ONE).rejected_outgoing, 2);
    assert_eq!(counters(&t1, TENANT_TWO).rejected_outgoing, 1);
    let merged = cluster.obs_merged();
    assert_eq!(merged.counter("tenant.1.app_enqueued"), 1);
    assert_eq!(merged.counter("tenant.1.app_rejected_out"), 2);

    // An outsider without the deployment key cannot join or inject: it
    // introduces itself, skips the handshake, and fires a batch — the
    // node must reject the link before any item is processed.
    {
        use dgc_rt_net::frame::{encode_batch_frame, encode_frame, Frame, Item, PROTOCOL_VERSION};
        use std::io::Write;
        let mut rogue = std::net::TcpStream::connect(cluster.addr(1)).unwrap();
        let hello = encode_frame(&Frame::Hello {
            node: 99,
            version: PROTOCOL_VERSION,
        });
        let batch = encode_batch_frame(&[Item::App {
            from: AoId::new(99, 0),
            to: ids[&3],
            reply: false,
            tenant: TENANT_TWO.0,
            payload: b"injected".to_vec().into(),
        }]);
        rogue.write_all(&[hello, batch].concat()).unwrap();
        rogue.flush().unwrap();
        let deadline = Instant::now() + Duration::from_secs(5);
        while cluster.stats()[1].auth_rejects == 0 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(10));
        }
        assert!(
            cluster.stats()[1].auth_rejects >= 1,
            "the keyless outsider was not rejected: {:?}",
            cluster.stats()[1]
        );
        assert!(
            cluster
                .app_received(1)
                .iter()
                .all(|d| d.payload != b"injected"),
            "an unauthenticated frame reached the app plane"
        );
        assert!(merged.counter("net.auth_ok") >= 1, "peers did authenticate");
    }
    cluster.shutdown();
}
