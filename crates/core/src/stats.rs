//! Per-endpoint protocol counters, for observability and the benchmarks.

/// Why the activity clock was bumped (§3.2 lists exactly these three).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum ClockBumpReason {
    /// The active object transitioned busy → idle.
    BecameIdle,
    /// A referencer stayed silent for TTA (Fig. 5).
    LostReferencer,
    /// A referenced edge disappeared — stubs collected or send failure
    /// (Fig. 6).
    LostReferenced,
}

/// Counters accumulated by one DGC endpoint.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DgcStats {
    /// DGC messages sent (one per referenced target per beat).
    pub messages_sent: u64,
    /// DGC responses sent (one per received message).
    pub responses_sent: u64,
    /// DGC messages received.
    pub messages_received: u64,
    /// DGC responses received.
    pub responses_received: u64,
    /// Clock bumps because this object became idle.
    pub bumps_became_idle: u64,
    /// Clock bumps because a referencer was lost.
    pub bumps_lost_referencer: u64,
    /// Clock bumps because a referenced edge was lost.
    pub bumps_lost_referenced: u64,
    /// Times a parent was adopted in the reverse spanning tree.
    pub parents_adopted: u64,
    /// Times the parent was switched to a shallower one (MinDepth policy).
    pub parents_switched: u64,
    /// Consensus detections (this endpoint was the originator).
    pub consensus_detected: u64,
    /// Entries into the dying phase via a propagated consensus.
    pub consensus_propagated: u64,
}

impl DgcStats {
    /// Records one clock bump.
    pub fn record_bump(&mut self, reason: ClockBumpReason) {
        match reason {
            ClockBumpReason::BecameIdle => self.bumps_became_idle += 1,
            ClockBumpReason::LostReferencer => self.bumps_lost_referencer += 1,
            ClockBumpReason::LostReferenced => self.bumps_lost_referenced += 1,
        }
    }

    /// Total clock bumps across reasons.
    pub fn total_bumps(&self) -> u64 {
        self.bumps_became_idle + self.bumps_lost_referencer + self.bumps_lost_referenced
    }

    /// Merges counters from another endpoint (for fleet-wide reports).
    pub fn merge(&mut self, other: &DgcStats) {
        self.messages_sent += other.messages_sent;
        self.responses_sent += other.responses_sent;
        self.messages_received += other.messages_received;
        self.responses_received += other.responses_received;
        self.bumps_became_idle += other.bumps_became_idle;
        self.bumps_lost_referencer += other.bumps_lost_referencer;
        self.bumps_lost_referenced += other.bumps_lost_referenced;
        self.parents_adopted += other.parents_adopted;
        self.parents_switched += other.parents_switched;
        self.consensus_detected += other.consensus_detected;
        self.consensus_propagated += other.consensus_propagated;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bump_reasons_are_separated() {
        let mut s = DgcStats::default();
        s.record_bump(ClockBumpReason::BecameIdle);
        s.record_bump(ClockBumpReason::BecameIdle);
        s.record_bump(ClockBumpReason::LostReferencer);
        s.record_bump(ClockBumpReason::LostReferenced);
        assert_eq!(s.bumps_became_idle, 2);
        assert_eq!(s.bumps_lost_referencer, 1);
        assert_eq!(s.bumps_lost_referenced, 1);
        assert_eq!(s.total_bumps(), 4);
    }

    #[test]
    fn merge_adds_everything() {
        let mut a = DgcStats {
            messages_sent: 3,
            consensus_detected: 1,
            ..Default::default()
        };
        let b = DgcStats {
            messages_sent: 4,
            responses_sent: 2,
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.messages_sent, 7);
        assert_eq!(a.responses_sent, 2);
        assert_eq!(a.consensus_detected, 1);
    }
}
