//! Shared machinery for the NAS kernels (§5.2).
//!
//! The paper runs ProActive/Java implementations of NPB kernels CG, EP
//! and FT, class C, on 256 active objects over 128 Grid'5000 nodes, with
//! global barriers giving every active object a reference to every other
//! (a complete reference graph — "the worst case in terms of
//! communication overhead for the DGC").
//!
//! Our reproduction keeps that structure: a master (root) hands every
//! worker references to all of its peers and a `RUN` call; workers run a
//! bulk-synchronous loop — broadcast a chunk to every peer, wait for all
//! peers' chunks, compute, repeat — and finally reply to the master's
//! future. Message *sizes* and per-iteration *compute times* are scaled
//! to class C (see EXPERIMENTS.md for the calibration); the local
//! numerical work is genuinely executed on scaled-down data by each
//! kernel's [`KernelMath`].
//!
//! After the master has its result it releases all worker references, so
//! the 256 workers form one big idle garbage clique — exactly what the
//! paper's DGC-time column measures the collection of.

use std::any::Any;

use dgc_activeobj::activity::{AoCtx, Behavior};
use dgc_activeobj::collector::CollectorKind;
use dgc_activeobj::request::{FutureId, Reply, Request};
use dgc_activeobj::runtime::{Grid, GridConfig};
use dgc_core::id::AoId;
use dgc_simnet::time::{SimDuration, SimTime};
use dgc_simnet::topology::{ProcId, Topology};
use dgc_simnet::traffic::TrafficClass;

/// Method selector: master → worker, carries peer refs and the future.
pub const M_RUN: u32 = 1;
/// Method selector base for inter-worker chunk exchanges; the iteration
/// parity is encoded as `M_CHUNK + (iter & 1)` so one-iteration-ahead
/// peers land in the right bucket.
pub const M_CHUNK: u32 = 10;

const T_DONE: u64 = 1;
const T_KICKOFF: u64 = 2;

/// Scaled kernel parameters.
#[derive(Debug, Clone, Copy)]
pub struct NasParams {
    /// Kernel name for reports.
    pub name: &'static str,
    /// Number of worker activities (paper: 256).
    pub workers: u32,
    /// Bulk-synchronous iterations (CG 75, EP 1, FT 20 for class C).
    pub iterations: u32,
    /// True if workers exchange chunks each iteration (CG/FT); EP only
    /// computes and reports.
    pub exchange: bool,
    /// Payload bytes of one worker-to-peer chunk message.
    pub chunk_bytes: u64,
    /// Simulated compute time per worker per iteration.
    pub compute_per_iter: SimDuration,
    /// Payload bytes of the final reply to the master.
    pub reply_bytes: u64,
}

impl NasParams {
    /// A reduced copy for fast tests: `workers` capped, iterations and
    /// compute scaled down by `factor`.
    pub fn scaled_down(mut self, workers: u32, factor: u32) -> Self {
        self.workers = workers;
        self.iterations = (self.iterations / factor).max(1);
        self.compute_per_iter = self.compute_per_iter.div(factor as u64);
        self.chunk_bytes = (self.chunk_bytes / factor as u64).max(64);
        self
    }
}

/// Genuinely executed local numerical work, scaled down from class C.
pub trait KernelMath: Send {
    /// One iteration of local work; the returned scalar feeds the
    /// verification checksum (and keeps the work un-optimizable).
    fn compute(&mut self, iteration: u32) -> f64;
    /// Final verification value.
    fn checksum(&self) -> f64;
}

/// The bulk-synchronous NAS worker.
pub struct NasWorker {
    params: NasParams,
    math: Box<dyn KernelMath>,
    peers: Vec<AoId>,
    reply_to: Option<FutureId>,
    iter: u32,
    /// Chunks received, bucketed by iteration parity (peers run at most
    /// one iteration ahead, see module docs).
    received: [u32; 2],
    checksum: f64,
    done: bool,
}

impl NasWorker {
    /// Creates a worker for `params` with its local numerical state.
    pub fn new(params: NasParams, math: Box<dyn KernelMath>) -> Self {
        NasWorker {
            params,
            math,
            peers: Vec::new(),
            reply_to: None,
            iter: 0,
            received: [0, 0],
            checksum: 0.0,
            done: false,
        }
    }

    fn broadcast_chunk(&self, ctx: &mut AoCtx<'_>) {
        let method = M_CHUNK + (self.iter & 1);
        for p in &self.peers {
            ctx.send(*p, method, self.params.chunk_bytes, vec![]);
        }
    }

    fn barrier_size(&self) -> u32 {
        self.peers.len() as u32
    }

    fn start_compute(&mut self, ctx: &mut AoCtx<'_>) {
        self.checksum += self.math.compute(self.iter);
        ctx.compute(self.params.compute_per_iter);
        ctx.set_timer(self.params.compute_per_iter, T_DONE);
    }

    fn maybe_compute(&mut self, ctx: &mut AoCtx<'_>) {
        let bucket = (self.iter & 1) as usize;
        if self.received[bucket] >= self.barrier_size() {
            self.received[bucket] = 0;
            self.start_compute(ctx);
        }
    }
}

impl Behavior for NasWorker {
    fn on_request(&mut self, ctx: &mut AoCtx<'_>, request: &Request) {
        match request.method {
            M_RUN => {
                self.peers = request
                    .refs
                    .iter()
                    .copied()
                    .filter(|r| *r != ctx.me())
                    .collect();
                self.reply_to = request.future;
                if self.params.exchange && !self.peers.is_empty() {
                    self.broadcast_chunk(ctx);
                    self.maybe_compute(ctx); // 1-worker degenerate case
                } else {
                    self.start_compute(ctx);
                }
            }
            m if m == M_CHUNK || m == M_CHUNK + 1 => {
                let bucket = ((m - M_CHUNK) & 1) as usize;
                self.received[bucket] += 1;
                if !self.done {
                    self.maybe_compute(ctx);
                }
            }
            _ => {}
        }
    }

    fn on_timer(&mut self, ctx: &mut AoCtx<'_>, token: u64) {
        if token != T_DONE || self.done {
            return;
        }
        self.iter += 1;
        if self.iter < self.params.iterations {
            if self.params.exchange {
                self.broadcast_chunk(ctx);
                self.maybe_compute(ctx);
            } else {
                self.start_compute(ctx);
            }
        } else {
            self.done = true;
            if let Some(fut) = self.reply_to.take() {
                ctx.reply(fut, self.params.reply_bytes, vec![]);
            }
            // Peer references stay held: the workers now form an idle
            // garbage clique for the collector to find.
        }
    }

    fn as_any(&self) -> Option<&dyn Any> {
        Some(self)
    }
}

/// The master: a root that starts every worker, awaits all replies,
/// records the benchmark result time, and then drops its references.
pub struct NasMaster {
    workers: Vec<AoId>,
    run_payload: u64,
    pending: usize,
    /// When the last worker reply arrived ("the benchmark has its
    /// result", §5.2).
    pub done_at: Option<SimTime>,
    checksum_replies: u64,
}

impl NasMaster {
    /// Creates a master that will drive `workers`.
    pub fn new(workers: Vec<AoId>, run_payload: u64) -> Self {
        let pending = workers.len();
        NasMaster {
            workers,
            run_payload,
            pending,
            done_at: None,
            checksum_replies: 0,
        }
    }
}

impl Behavior for NasMaster {
    fn on_start(&mut self, ctx: &mut AoCtx<'_>) {
        // Deployment wiring (make_ref) happens right after spawn; the
        // kickoff is delayed one millisecond so every worker exists and
        // is referenced before the RUN calls go out.
        ctx.set_timer(SimDuration::from_millis(1), T_KICKOFF);
    }

    fn on_timer(&mut self, ctx: &mut AoCtx<'_>, token: u64) {
        if token != T_KICKOFF {
            return;
        }
        let all = self.workers.clone();
        for w in &all {
            ctx.call_await(*w, M_RUN, self.run_payload, all.clone());
        }
    }

    fn on_reply(&mut self, ctx: &mut AoCtx<'_>, _future: FutureId, _reply: &Reply) {
        self.checksum_replies += 1;
        self.pending -= 1;
        if self.pending == 0 {
            self.done_at = Some(ctx.now());
            // The "main" drops its references: from here on the worker
            // clique is garbage.
            for w in self.workers.clone() {
                ctx.release_all(w);
            }
        }
    }

    fn as_any(&self) -> Option<&dyn Any> {
        Some(self)
    }
}

/// Outcome of one NAS run.
#[derive(Debug, Clone)]
pub struct NasOutcome {
    /// Kernel name.
    pub kernel: &'static str,
    /// Whether a collector ran and which.
    pub collector: &'static str,
    /// When the master had its result.
    pub result_at: SimTime,
    /// When the last worker disappeared (collected or killed).
    pub all_gone_at: Option<SimTime>,
    /// §5.2 "DGC time": from the result to the last collection.
    pub dgc_time: Option<SimDuration>,
    /// Total cross-process bytes.
    pub total_bytes: u64,
    /// Bytes attributable to the DGC (messages + responses).
    pub dgc_bytes: u64,
    /// Bytes attributable to the application.
    pub app_bytes: u64,
    /// Oracle violations (must be 0).
    pub violations: usize,
}

/// Builds and runs one NAS benchmark to completion.
///
/// `math` builds each worker's local numerical state from its index.
pub fn run_nas(
    params: &NasParams,
    topology: Topology,
    collector: CollectorKind,
    seed: u64,
    math: &dyn Fn(u32) -> Box<dyn KernelMath>,
) -> NasOutcome {
    let procs = topology.procs();
    // The oracle walk is quadratic-ish on the NAS clique; keep it for
    // test-sized runs, skip it at full 256-worker scale.
    let check_safety = params.workers <= 64;
    // ProActive deployment ships the runtime and application classes to
    // every node before the kernel starts; ~0.5 MB per node reproduces
    // the paper's lightly-communicating baselines (EP's 69.75 MB is
    // nearly all deployment).
    let mut grid = Grid::new(
        GridConfig::new(topology)
            .collector(collector)
            .seed(seed)
            .check_safety(check_safety)
            .deployment_bytes(512 * 1024),
    );
    let workers: Vec<AoId> = (0..params.workers)
        .map(|i| {
            grid.spawn(
                ProcId(i % procs),
                Box::new(NasWorker::new(*params, math(i))),
            )
        })
        .collect();
    let master = grid.spawn_root(ProcId(0), Box::new(NasMaster::new(workers.clone(), 256)));
    for w in &workers {
        grid.make_ref(master, *w);
    }

    // Phase 1: run the application to its result.
    let result_at = loop {
        grid.run_for(SimDuration::from_secs(5));
        let done = grid
            .activity(master)
            .and_then(|a| a.behavior.as_any())
            .and_then(|any| any.downcast_ref::<NasMaster>())
            .and_then(|m| m.done_at);
        if let Some(at) = done {
            break at;
        }
        assert!(
            grid.now() < SimTime::from_secs(100_000),
            "NAS kernel failed to converge"
        );
    };

    // Phase 2: collection (or explicit termination for the control run).
    let collector_name = match collector {
        CollectorKind::None => "none",
        CollectorKind::Complete(_) => "complete-dgc",
        CollectorKind::Rmi(_) => "rmi",
        _ => "other",
    };
    let mut all_gone_at = None;
    if matches!(collector, CollectorKind::None) {
        // The paper's implementation terminates explicitly.
        for w in &workers {
            grid.kill(*w);
        }
        all_gone_at = Some(grid.now());
    } else {
        let deadline = grid.now() + SimDuration::from_secs(50_000);
        while grid.now() < deadline {
            grid.run_for(SimDuration::from_secs(10));
            if workers.iter().all(|w| !grid.is_alive(*w)) {
                break;
            }
        }
        if workers.iter().all(|w| !grid.is_alive(*w)) {
            all_gone_at = grid.collected().iter().map(|c| c.at).max();
        }
    }
    // Let the trailing DGC responses/timeouts drain for bandwidth
    // accounting parity with the paper (it measures whole-run traffic).
    grid.run_for(SimDuration::from_secs(5));

    let meter = grid.traffic();
    NasOutcome {
        kernel: params.name,
        collector: collector_name,
        result_at,
        all_gone_at,
        dgc_time: all_gone_at.map(|t| t.saturating_since(result_at)),
        total_bytes: meter.total_bytes(),
        dgc_bytes: meter.dgc_bytes() + meter.bytes(TrafficClass::RmiLease),
        app_bytes: meter.app_bytes(),
        violations: grid.violations().len(),
    }
}
