//! Property-based tests of the protocol core: codec totality and
//! round-tripping, named-clock order laws, referencer-table invariants,
//! and harness-level convergence across timing parameters.

use proptest::prelude::*;

use dgc_core::clock::NamedClock;
use dgc_core::config::DgcConfig;
use dgc_core::harness::Harness;
use dgc_core::id::AoId;
use dgc_core::message::{DgcMessage, DgcResponse};
use dgc_core::referencers::ReferencerTable;
use dgc_core::units::{Dur, Time};
use dgc_core::wire;

fn arb_aoid() -> impl Strategy<Value = AoId> {
    (any::<u32>(), any::<u32>()).prop_map(|(n, i)| AoId::new(n, i))
}

fn arb_clock() -> impl Strategy<Value = NamedClock> {
    (any::<u64>(), arb_aoid()).prop_map(|(value, owner)| NamedClock { value, owner })
}

fn arb_message() -> impl Strategy<Value = DgcMessage> {
    (arb_aoid(), arb_clock(), any::<bool>(), any::<u64>()).prop_map(
        |(sender, clock, consensus, ttb)| DgcMessage {
            sender,
            clock,
            consensus,
            sender_ttb: Dur::from_nanos(ttb),
        },
    )
}

fn arb_response() -> impl Strategy<Value = DgcResponse> {
    (
        arb_aoid(),
        arb_clock(),
        any::<bool>(),
        any::<bool>(),
        proptest::option::of(any::<u32>()),
    )
        .prop_map(
            |(responder, clock, has_parent, consensus_reached, depth)| DgcResponse {
                responder,
                clock,
                has_parent,
                consensus_reached,
                depth,
            },
        )
}

proptest! {
    #[test]
    fn any_message_round_trips(m in arb_message()) {
        let encoded = wire::encode_message(&m);
        prop_assert_eq!(encoded.len() as u64, wire::message_wire_size());
        prop_assert_eq!(wire::decode_message(encoded).unwrap(), m);
    }

    #[test]
    fn any_response_round_trips(r in arb_response()) {
        let encoded = wire::encode_response(&r);
        prop_assert_eq!(
            encoded.len() as u64,
            wire::response_wire_size(r.depth.is_some())
        );
        prop_assert_eq!(wire::decode_response(encoded).unwrap(), r);
    }

    /// Decoding never panics on arbitrary bytes — it returns an error or
    /// a value, totality a network-facing codec must have.
    #[test]
    fn decoding_arbitrary_bytes_is_total(bytes in proptest::collection::vec(any::<u8>(), 0..64)) {
        let b = bytes::Bytes::from(bytes);
        let _ = wire::decode_message(b.clone());
        let _ = wire::decode_response(b);
    }

    /// The named clock order is total and strict-monotone under bumps.
    #[test]
    // The antisymmetry law reads clearer spelled out than as `>=`.
    #[allow(clippy::nonminimal_bool)]
    fn clock_order_laws(a in arb_clock(), b in arb_clock(), who in arb_aoid()) {
        // Totality / antisymmetry via Ord.
        prop_assert_eq!(a == b, !(a < b) && !(b < a));
        // Merge is the max, commutative, idempotent.
        prop_assert_eq!(a.merged_with(b), b.merged_with(a));
        prop_assert_eq!(a.merged_with(a), a);
        prop_assert!(a.merged_with(b) >= a && a.merged_with(b) >= b);
        // Bumping strictly dominates both inputs (Lamport property).
        if a.value < u64::MAX {
            let bumped = a.merged_with(b).max(b.merged_with(a)).bumped_by(who);
            prop_assert!(bumped > a && bumped > b);
            prop_assert!(bumped.is_owned_by(who));
        }
    }

    /// Referencer expiry: after `expire_silent(now)`, every remaining
    /// entry is within its timeout, and the removed ones are not.
    #[test]
    fn referencer_expiry_is_exact(
        entries in proptest::collection::vec((any::<u32>(), 0u64..400), 1..16),
        now in 400u64..1_000,
    ) {
        let tta = Dur::from_secs(61);
        let ttb = Dur::from_secs(30);
        let mut table = ReferencerTable::new();
        for (node, at) in &entries {
            table.record_message(
                AoId::new(*node, 0),
                NamedClock::initial(AoId::new(*node, 0)),
                false,
                Time::from_secs(*at),
                ttb,
            );
        }
        let lost = table.expire_silent(Time::from_secs(now), tta, Dur::ZERO);
        for id in &lost {
            prop_assert!(table.get(*id).is_none());
        }
        for (id, info) in table.iter() {
            let silence = Time::from_secs(now).since(info.last_message);
            prop_assert!(silence <= tta.max(ttb.saturating_mul(2)), "{id} kept but expired");
        }
    }

    /// Harness-level liveness across timing parameters: any idle ring is
    /// collected within the §4.3 bound for its TTB/TTA.
    #[test]
    fn rings_collect_within_bound(
        n in 2usize..10,
        ttb_s in 5u64..60,
        latency_ms in 1u64..200,
    ) {
        let tta = Dur::from_secs(ttb_s * 2 + 2); // > 2·TTB + MaxComm(≤1s)
        let cfg = DgcConfig::builder()
            .ttb(Dur::from_secs(ttb_s))
            .tta(tta)
            .max_comm(Dur::from_secs(1))
            .build();
        cfg.validate().expect("safe");
        let mut h = Harness::new(Dur::from_millis(latency_ms));
        let ids = h.add_many(n, cfg);
        for w in 0..n {
            h.add_ref(ids[w], ids[(w + 1) % n]);
        }
        for id in &ids {
            h.set_idle(*id, true);
        }
        // O(h·TTB) + TTA with slack factor 4.
        let bound = Dur::from_secs(4 * (n as u64 + 3) * ttb_s).saturating_add(tta.saturating_mul(3));
        h.run_for(bound);
        prop_assert_eq!(h.alive_count(), 0, "ring {} ttb {}s not collected", n, ttb_s);
    }

    /// Safety at the harness level: a ring with one permanently busy
    /// member never loses anyone, whatever the parameters.
    #[test]
    fn busy_member_is_never_overrun(
        n in 2usize..10,
        ttb_s in 5u64..60,
        busy_at in 0usize..10,
    ) {
        let cfg = DgcConfig::builder()
            .ttb(Dur::from_secs(ttb_s))
            .tta(Dur::from_secs(ttb_s * 2 + 2))
            .max_comm(Dur::from_secs(1))
            .build();
        let mut h = Harness::new(Dur::from_millis(5));
        let ids = h.add_many(n, cfg);
        for w in 0..n {
            h.add_ref(ids[w], ids[(w + 1) % n]);
        }
        let busy = busy_at % n;
        for (i, id) in ids.iter().enumerate() {
            if i != busy {
                h.set_idle(*id, true);
            }
        }
        h.run_for(Dur::from_secs(20 * (n as u64 + 3) * ttb_s));
        prop_assert_eq!(h.alive_count(), n, "somebody died despite the busy member");
    }
}
