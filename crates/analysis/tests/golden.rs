//! Golden-file tests: every rule demonstrably fires, every escape
//! hatch demonstrably works.
//!
//! Each directory under `tests/golden/` is one case: `.rs` fixtures
//! (whose first line `//! virtual-path: <path>` places them in the
//! rule's scope) analyzed together, with the findings compared against
//! `expected.txt`. Regenerate after an intentional rule change with
//! `BLESS=1 cargo test -p dgc-analysis --test golden`.

use std::fs;
use std::path::Path;

fn run_case(case: &str) {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(case);
    let mut sources = Vec::new();
    let mut entries: Vec<_> = fs::read_dir(&dir)
        .unwrap_or_else(|e| panic!("missing golden case dir {}: {e}", dir.display()))
        .map(|e| e.expect("readable dir entry").path())
        .collect();
    entries.sort();
    for path in &entries {
        if path.extension().and_then(|e| e.to_str()) != Some("rs") {
            continue;
        }
        let text = fs::read_to_string(path).expect("readable fixture");
        let first = text.lines().next().unwrap_or("");
        let virtual_path = first
            .strip_prefix("//! virtual-path: ")
            .unwrap_or_else(|| {
                panic!(
                    "{} must start with `//! virtual-path: <repo-relative path>`",
                    path.display()
                )
            })
            .trim()
            .to_string();
        sources.push((virtual_path, text));
    }
    assert!(!sources.is_empty(), "golden case `{case}` has no fixtures");

    let report = dgc_analysis::analyze_sources(&sources);
    let mut actual = String::new();
    for f in &report.findings {
        actual.push_str(&f.to_string());
        actual.push('\n');
    }

    let expected_path = dir.join("expected.txt");
    if std::env::var_os("BLESS").is_some() {
        fs::write(&expected_path, &actual).expect("write blessed expectations");
        return;
    }
    let expected = fs::read_to_string(&expected_path).unwrap_or_else(|e| {
        panic!(
            "missing {} ({e}); run with BLESS=1 to create it",
            expected_path.display()
        )
    });
    assert_eq!(
        actual, expected,
        "golden mismatch for `{case}` — if the rule change is intentional, \
         re-bless with BLESS=1 cargo test -p dgc-analysis --test golden"
    );
}

#[test]
fn wall_clock() {
    run_case("wall_clock");
}

#[test]
fn unordered_iter() {
    run_case("unordered_iter");
}

#[test]
fn hot_path_panic() {
    run_case("hot_path_panic");
}

#[test]
fn counter_completeness() {
    run_case("counter_completeness");
}

#[test]
fn lock_across_send() {
    run_case("lock_across_send");
}

#[test]
fn bad_allow() {
    run_case("bad_allow");
}
