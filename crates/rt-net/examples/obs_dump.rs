//! End-to-end tour of the telemetry plane: run a small churn cluster,
//! print the merged metrics snapshot as a tree, and export the per-node
//! traces for `chrome://tracing` / Perfetto.
//!
//! ```text
//! cargo run -p dgc-rt-net --example obs_dump
//! DGC_TRACE=debug cargo run -p dgc-rt-net --example obs_dump
//! ```
//!
//! Writes `obs_trace.json` (Chrome `trace_event` document — open it in
//! <https://ui.perfetto.dev>) and `obs_trace.jsonl` (one event per
//! line, grep-friendly) to the current directory.

use std::time::Duration;

use dgc_core::config::DgcConfig;
use dgc_core::units::Dur;
use dgc_membership::{MembershipConfig, NodeStatus};
use dgc_obs::export::{chrome_trace, to_jsonl};
use dgc_obs::{TraceEvent, TraceLevel};
use dgc_rt_net::{Cluster, NetConfig};

const NODES: u32 = 3;

fn main() -> std::io::Result<()> {
    // The example exists to dump a trace, so tracing defaults to info
    // instead of off; DGC_TRACE=debug turns on per-unit detail.
    let level = std::env::var("DGC_TRACE")
        .ok()
        .and_then(|s| TraceLevel::parse(&s))
        .unwrap_or(TraceLevel::Info);

    let dgc = DgcConfig::builder()
        .ttb(Dur::from_millis(25))
        .tta(Dur::from_millis(80))
        .max_comm(Dur::from_millis(20))
        .build();
    let config = NetConfig::new(dgc)
        .membership(MembershipConfig::scaled(Dur::from_millis(50)))
        .trace(level);

    println!("joining a {NODES}-node localhost cluster (trace level {level:?})...");
    let cluster = Cluster::join_local(NODES, config)?;
    for node in 0..NODES {
        assert!(
            cluster.wait_membership_until(node, Duration::from_secs(10), |r| r.len()
                == NODES as usize),
            "membership must converge"
        );
    }

    // Some garbage for the collector: a cross-node cycle a ⇄ b plus an
    // acyclic activity c, all idle — every §3 collection path fires.
    let a = cluster.add_activity(0);
    let b = cluster.add_activity(1);
    let c = cluster.add_activity(2);
    cluster.add_ref(a, b);
    cluster.add_ref(b, a);
    cluster.set_idle(a, true);
    cluster.set_idle(b, true);
    cluster.set_idle(c, true);
    assert!(
        cluster.wait_until(Duration::from_secs(30), |t| t.len() == 3),
        "garbage must be collected"
    );
    println!("collected {} activities; crashing node 2...", 3);

    // A little churn so the membership counters move: node 2 dies and
    // the survivors convict it.
    cluster.crash_node(2);
    for node in 0..2 {
        assert!(
            cluster.wait_membership_until(node, Duration::from_secs(20), |r| {
                r.iter()
                    .any(|rec| rec.node == 2 && rec.status == NodeStatus::Dead)
            }),
            "survivors must convict the crashed node"
        );
    }

    // --- the dump ---------------------------------------------------
    println!("\nmerged metrics snapshot ({NODES} nodes):\n");
    println!("{}", cluster.obs_merged().render_tree());

    let mut tracks: Vec<(String, Vec<TraceEvent>)> = Vec::new();
    for node in 0..NODES {
        if let Some(reg) = cluster.obs(node) {
            tracks.push((format!("node {node}"), reg.tracer().events()));
        }
    }
    let borrowed: Vec<(&str, Vec<TraceEvent>)> = tracks
        .iter()
        .map(|(name, evs)| (name.as_str(), evs.clone()))
        .collect();
    std::fs::write("obs_trace.json", chrome_trace(&borrowed))?;
    let jsonl: String = tracks.iter().map(|(_, evs)| to_jsonl(evs)).collect();
    std::fs::write("obs_trace.jsonl", jsonl)?;
    let events: usize = tracks.iter().map(|(_, evs)| evs.len()).sum();
    println!("wrote obs_trace.json + obs_trace.jsonl ({events} trace events from {NODES} nodes)");

    cluster.shutdown();
    Ok(())
}
