//! Offline stand-in for the [`bytes`](https://crates.io/crates/bytes)
//! crate.
//!
//! The build environment for this repository has no access to crates.io,
//! so the handful of external dependencies the workspace relies on are
//! vendored as minimal, API-compatible subsets under `crates/shims/`.
//! This one covers exactly the surface the wire codecs use: big-endian
//! integer puts/gets, `freeze`, `slice`, and `From<Vec<u8>>`. Swapping in
//! the real crate is a one-line change in the workspace manifest.
//!
//! Unlike the real crate there is no refcounted zero-copy sharing:
//! `Bytes` owns its buffer and `slice`/`clone` copy. All codec users in
//! this workspace operate on tiny (< 1 KiB) protocol units, where the
//! copy is cheaper than the bookkeeping would be.

#![warn(missing_docs)]

use std::ops::Range;

/// Read access to a byte cursor (subset of `bytes::Buf`).
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;
    /// Copies `dst.len()` bytes out, advancing the cursor.
    ///
    /// # Panics
    ///
    /// Panics if fewer than `dst.len()` bytes remain.
    fn copy_to_slice(&mut self, dst: &mut [u8]);

    /// Reads one byte.
    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    /// Reads a big-endian `u16`.
    fn get_u16(&mut self) -> u16 {
        let mut b = [0u8; 2];
        self.copy_to_slice(&mut b);
        u16::from_be_bytes(b)
    }

    /// Reads a big-endian `u32`.
    fn get_u32(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_be_bytes(b)
    }

    /// Reads a big-endian `u64`.
    fn get_u64(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_be_bytes(b)
    }
}

/// Write access to a growable byte buffer (subset of `bytes::BufMut`).
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a big-endian `u16`.
    fn put_u16(&mut self, v: u16) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian `u32`.
    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian `u64`.
    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }
}

/// An owned, cheaply sliceable byte buffer with a read cursor.
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash)]
pub struct Bytes {
    data: Vec<u8>,
    pos: usize,
}

impl Bytes {
    /// The empty buffer.
    pub const fn new() -> Self {
        Bytes {
            data: Vec::new(),
            pos: 0,
        }
    }

    /// Length of the *unread* remainder, matching the real crate (where
    /// `get_*` consumes the front of the buffer).
    pub fn len(&self) -> usize {
        self.data.len() - self.pos
    }

    /// True if fully consumed or empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Copies out the sub-range `range` of the unread remainder.
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds.
    pub fn slice(&self, range: Range<usize>) -> Bytes {
        Bytes {
            data: self.data[self.pos + range.start..self.pos + range.end].to_vec(),
            pos: 0,
        }
    }

    /// The unread remainder as a slice.
    pub fn as_slice(&self) -> &[u8] {
        &self.data[self.pos..]
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Self {
        Bytes { data, pos: 0 }
    }
}

impl From<&[u8]> for Bytes {
    fn from(data: &[u8]) -> Self {
        Bytes {
            data: data.to_vec(),
            pos: 0,
        }
    }
}

impl std::ops::Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(dst.len() <= self.remaining(), "buffer underflow");
        dst.copy_from_slice(&self.data[self.pos..self.pos + dst.len()]);
        self.pos += dst.len();
    }
}

/// A growable byte buffer for encoding.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// Empty buffer.
    pub const fn new() -> Self {
        BytesMut { data: Vec::new() }
    }

    /// Empty buffer with reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            data: Vec::with_capacity(cap),
        }
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True if nothing was written.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Converts into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes {
            data: self.data,
            pos: 0,
        }
    }

    /// The written bytes as a slice.
    pub fn as_slice(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_all_widths() {
        let mut b = BytesMut::with_capacity(15);
        b.put_u8(0xAB);
        b.put_u16(0x1234);
        b.put_u32(0xDEAD_BEEF);
        b.put_u64(0x0102_0304_0506_0708);
        let mut r = b.freeze();
        assert_eq!(r.len(), 15);
        assert_eq!(r.get_u8(), 0xAB);
        assert_eq!(r.get_u16(), 0x1234);
        assert_eq!(r.get_u32(), 0xDEAD_BEEF);
        assert_eq!(r.get_u64(), 0x0102_0304_0506_0708);
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn len_tracks_unread_remainder() {
        let mut b = Bytes::from(vec![1, 2, 3, 4]);
        assert_eq!(b.len(), 4);
        b.get_u8();
        assert_eq!(b.len(), 3);
        assert_eq!(b.slice(0..2).as_slice(), &[2, 3]);
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn underflow_panics() {
        let mut b = Bytes::from(vec![1]);
        b.get_u32();
    }
}
