//! The [`Strategy`] trait and the combinators the workspace's property
//! tests use. Generation only — the shim runner never shrinks.

use std::marker::PhantomData;
use std::ops::Range;

use crate::test_runner::TestRng;

/// A recipe for generating values of `Self::Value`.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value from `rng`.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Builds a dependent strategy from each generated value.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }
}

/// Strategies behind references generate like their referents.
impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// Always generates a clone of the wrapped value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Types with a canonical full-domain strategy (`any::<T>()`).
pub trait Arbitrary: Sized {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_uint {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

arbitrary_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Full-domain strategy for `T` (see [`any`]).
pub struct Any<T>(PhantomData<T>);

/// The strategy generating any `T` whatsoever.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                self.start + rng.below((self.end - self.start) as u64) as $t
            }
        }
    )*};
}

range_strategy!(u8, u16, u32, u64, usize);

macro_rules! tuple_strategy {
    ($(($($s:ident . $idx:tt),+);)*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A.0, B.1);
    (A.0, B.1, C.2);
    (A.0, B.1, C.2, D.3);
    (A.0, B.1, C.2, D.3, E.4);
    (A.0, B.1, C.2, D.3, E.4, F.5);
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6);
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7);
}

/// Length specification for [`crate::collection::vec`]: a fixed size or
/// a half-open range.
#[derive(Debug, Clone)]
pub struct SizeRange {
    lo: usize,
    hi: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n + 1 }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            lo: r.start,
            hi: r.end,
        }
    }
}

/// See [`crate::collection::vec`].
pub struct VecStrategy<S> {
    pub(crate) element: S,
    pub(crate) size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.size.hi - self.size.lo) as u64;
        let len = self.size.lo
            + if span == 0 {
                0
            } else {
                rng.below(span) as usize
            };
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// See [`crate::option::of`].
pub struct OptionStrategy<S> {
    pub(crate) inner: S,
}

impl<S: Strategy> Strategy for OptionStrategy<S> {
    type Value = Option<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
        if rng.below(4) == 0 {
            None
        } else {
            Some(self.inner.generate(rng))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> TestRng {
        TestRng::for_case("strategy-tests", 0)
    }

    #[test]
    fn ranges_and_maps() {
        let s = (0u32..10).prop_map(|x| x * 2);
        let mut r = rng();
        for _ in 0..100 {
            let v = s.generate(&mut r);
            assert!(v < 20 && v % 2 == 0);
        }
    }

    #[test]
    fn flat_map_dependent_lengths() {
        let s = (1usize..5).prop_flat_map(|n| crate::collection::vec(0u8..10, 0..n + 1));
        let mut r = rng();
        for _ in 0..100 {
            let v = s.generate(&mut r);
            assert!(v.len() <= 4);
        }
    }

    #[test]
    fn tuples_and_options() {
        let s = (any::<bool>(), crate::option::of(0u64..5), Just(7u8));
        let mut r = rng();
        let mut saw_none = false;
        let mut saw_some = false;
        for _ in 0..200 {
            let (_b, o, j) = s.generate(&mut r);
            assert_eq!(j, 7);
            match o {
                None => saw_none = true,
                Some(x) => {
                    assert!(x < 5);
                    saw_some = true;
                }
            }
        }
        assert!(saw_none && saw_some);
    }

    #[test]
    fn fixed_size_vec() {
        let s = crate::collection::vec(any::<bool>(), 144usize);
        assert_eq!(s.generate(&mut rng()).len(), 144);
    }
}
