//! Quickstart: five minutes with the complete DGC.
//!
//! Builds a tiny grid, shows the three behaviours that define the
//! collector: acyclic garbage falls to the TTB/TTA heartbeat, cyclic
//! garbage falls to the activity-clock consensus, and anything a busy
//! activity or root can reach survives.
//!
//! Run with: `cargo run --example quickstart`

use grid_dgc::activeobj::activity::Inert;
use grid_dgc::activeobj::collector::CollectorKind;
use grid_dgc::activeobj::runtime::{Grid, GridConfig};
use grid_dgc::dgc::config::DgcConfig;
use grid_dgc::dgc::units::Dur;
use grid_dgc::simnet::time::SimDuration;
use grid_dgc::simnet::topology::{ProcId, Topology};

fn main() {
    // The paper's NAS settings: TTB 30 s, TTA 61 s (§5.2). The builder
    // checks TTA > 2·TTB + MaxComm for you via `validate()`.
    let dgc = DgcConfig::builder()
        .ttb(Dur::from_secs(30))
        .tta(Dur::from_secs(61))
        .max_comm(Dur::from_millis(500))
        .build();
    dgc.validate().expect("safe timing parameters");

    // Four processes on one site, 1 ms links.
    let topology = Topology::single_site(4, SimDuration::from_millis(1));
    let mut grid = Grid::new(
        GridConfig::new(topology)
            .collector(CollectorKind::Complete(dgc))
            .seed(42),
    );

    // A root (registered object / dummy referencer): never collected.
    let root = grid.spawn_root(ProcId(0), Box::new(Inert));

    // Acyclic garbage: an activity nobody references.
    let lonely = grid.spawn(ProcId(1), Box::new(Inert));

    // A protected activity: the root holds a reference to it.
    let kept = grid.spawn(ProcId(2), Box::new(Inert));
    grid.make_ref(root, kept);

    // Cyclic garbage: a ⇄ b across two processes. Reference listing (the
    // RMI DGC) can never reclaim this; the consensus can.
    let a = grid.spawn(ProcId(2), Box::new(Inert));
    let b = grid.spawn(ProcId(3), Box::new(Inert));
    grid.make_ref(a, b);
    grid.make_ref(b, a);

    println!(
        "t=0s        alive={} (root, lonely, kept, a, b)",
        grid.alive_count()
    );

    grid.run_for(SimDuration::from_secs(120));
    println!(
        "t=120s      alive={}  lonely={}  (acyclic garbage fell to the TTA timeout)",
        grid.alive_count(),
        if grid.is_alive(lonely) {
            "alive"
        } else {
            "collected"
        },
    );

    grid.run_for(SimDuration::from_secs(480));
    println!(
        "t=600s      alive={}  cycle a,b={}  (consensus on the final activity clock)",
        grid.alive_count(),
        if grid.is_alive(a) || grid.is_alive(b) {
            "alive"
        } else {
            "collected"
        },
    );
    println!(
        "            kept={} (the root's heartbeats keep it alive)",
        if grid.is_alive(kept) {
            "alive"
        } else {
            "collected"
        },
    );

    // Ground truth: the oracle saw no live activity terminated.
    assert!(grid.violations().is_empty());
    assert!(!grid.is_alive(lonely) && !grid.is_alive(a) && !grid.is_alive(b));
    assert!(grid.is_alive(kept) && grid.is_alive(root));

    println!("\ncollected, in order:");
    for c in grid.collected() {
        println!("  {} at {} ({:?})", c.ao, c.at, c.reason);
    }
    println!(
        "\nDGC traffic: {} bytes over {} messages — zero safety violations.",
        grid.traffic().dgc_bytes(),
        grid.traffic().total_messages(),
    );
}
