//! Sharded-sweep conformance: the `DGC_SWEEP_SHARDS` knob must be
//! verdict-invariant.
//!
//! `dgc_core::sweep_sharded` drains its per-shard unit buffers in
//! shard order — the order a sequential sweep would have produced — so
//! however many threads a node fans its TTB sweep across, the oracle
//! must reach the same verdict on the same scenario and seed. This
//! test pins that end to end through the socket runtime: every
//! canonical scenario, unsharded then 4-way sharded, same verdicts.
//!
//! The knob is an environment variable (process-global), so all runs
//! live in this one serial test in its own test binary — no parallel
//! test can observe a half-set variable.

use dgc_conformance::{run_rtnet, scenarios, seeds};

#[test]
fn sweep_shard_count_never_changes_verdicts() {
    for scenario in scenarios::all() {
        for seed in seeds() {
            std::env::remove_var("DGC_SWEEP_SHARDS");
            let unsharded = run_rtnet(&scenario, seed).expect("bind chaos cluster");
            std::env::set_var("DGC_SWEEP_SHARDS", "4");
            let sharded = run_rtnet(&scenario, seed).expect("bind chaos cluster");
            std::env::remove_var("DGC_SWEEP_SHARDS");
            assert_eq!(
                unsharded, sharded,
                "[{} seed {seed}] 4-way sharded sweep diverged from unsharded",
                scenario.name
            );
        }
    }
}
