//! Per-envelope cost of the secure plane's app-path machinery: the
//! standard middleware pipeline (RequireAuth → TenantTag →
//! TenantIsolation) plus the tenant ledger, with the obs mirror on and
//! off, against the bare un-tenanted baseline.
//!
//! Every app payload in both runtimes now traverses exactly this
//! sequence — `Pipeline::outgoing`, an `on_enqueued`, and (for the
//! delivered ones) `Pipeline::incoming` + `on_flushed` — so its cost is
//! the marginal price of multi-tenancy per message. The traffic mix
//! mirrors the conformance two-tenant scenario: mostly in-tenant sends
//! with a steady trickle of cross-tenant attempts that the isolation
//! stage must reject (rejections are *not* free and belong in the
//! measured mix).
//!
//! Methodology matches `obs_overhead`: interleaved trials, minimum-of-N
//! (the noise-robust statistic for a throughput microbench), identical
//! inputs across modes, checksummed so the comparison cannot drift.
//!
//! Run: `cargo bench -p dgc-bench --bench tenant_isolation`

use std::time::Instant;

use dgc_core::id::AoId;
use dgc_obs::{Registry, TimeSource};
use dgc_plane::{Envelope, MiddlewareCtx, Pipeline, TenantId, TenantLedger, TenantMap};

/// Envelopes per trial — large enough that a trial runs for
/// milliseconds, amortizing timer noise.
const OPS: u64 = 200_000;
const TRIALS: usize = 9;
/// Activities per tenant; two tenants, interleaved across "nodes".
const PER_TENANT: u32 = 8;

fn tenants() -> TenantMap {
    let mut map = TenantMap::new();
    for i in 0..PER_TENANT {
        map.register(AoId::new(i % 2, i), TenantId(1));
        map.register(AoId::new(i % 2, PER_TENANT + i), TenantId(2));
    }
    map
}

/// Picks the `i`-th sender/receiver pair. Every 17th envelope is a
/// cross-tenant attempt; the rest stay in-tenant.
fn pair(i: u64) -> (AoId, AoId) {
    let s = (i % PER_TENANT as u64) as u32;
    let from = AoId::new(s % 2, s);
    let to = if i % 17 == 16 {
        AoId::new((s + 1) % 2, PER_TENANT + (s + 3) % PER_TENANT) // tenant 2
    } else {
        AoId::new((s + 1) % 2, (s + 1) % PER_TENANT) // tenant 1
    };
    (from, to)
}

/// One trial. `Mode::Bare` runs the pre-tenancy app path (envelope
/// construction only); the pipeline modes add the standard stages and
/// the ledger, optionally mirrored into an obs registry.
enum Mode<'a> {
    Bare,
    Pipeline(Option<&'a Registry>),
}

/// Returns `(seconds, delivered, rejected)`.
fn trial(mode: &Mode<'_>) -> (f64, u64, u64) {
    let map = tenants();
    let mut pipeline = Pipeline::standard();
    let mut ledger = TenantLedger::new();
    if let Mode::Pipeline(Some(reg)) = mode {
        ledger.set_obs((*reg).clone());
    }
    let ctx = MiddlewareCtx {
        link_authenticated: true,
        tenants: &map,
    };
    let mut delivered = 0u64;
    let mut rejected = 0u64;
    let payload = vec![0xABu8; 48];
    let start = Instant::now();
    for i in 0..OPS {
        let (from, to) = pair(i);
        let mut env = Envelope {
            from,
            to,
            reply: false,
            tenant: map.of(from),
            payload: payload.clone(),
        };
        match mode {
            Mode::Bare => {
                // The pre-tenancy path: the envelope goes straight to
                // the egress plane. `black_box`-equivalent use below.
                delivered += u64::from(!env.payload.is_empty());
            }
            Mode::Pipeline(_) => {
                if !pipeline.outgoing(&mut env, &ctx).is_continue() {
                    ledger.on_rejected_outgoing(env.tenant);
                    rejected += 1;
                    continue;
                }
                ledger.on_enqueued(env.tenant);
                // Delivery: the receiving end's incoming traversal.
                if pipeline.incoming(&mut env, &ctx).is_continue() {
                    ledger.on_flushed(env.tenant);
                    delivered += 1;
                } else {
                    ledger.on_rejected_incoming(env.tenant);
                    rejected += 1;
                }
            }
        }
    }
    let secs = start.elapsed().as_secs_f64();
    assert!(ledger.conserves(), "ledger must conserve inside the bench");
    (secs, delivered, rejected)
}

fn main() {
    let registry = Registry::new(TimeSource::wall());

    // Warmup + cross-mode checksums: identical inputs, identical
    // accept/reject split between the two pipeline modes.
    let (_, bare_n, _) = trial(&Mode::Bare);
    let (_, p_del, p_rej) = trial(&Mode::Pipeline(None));
    let (_, o_del, o_rej) = trial(&Mode::Pipeline(Some(&registry)));
    assert_eq!(bare_n, OPS);
    assert_eq!(
        (p_del, p_rej),
        (o_del, o_rej),
        "modes must do identical work"
    );
    assert!(p_rej > 0, "the mix must exercise the rejection path");

    let mut bare = f64::INFINITY;
    let mut piped = f64::INFINITY;
    let mut piped_obs = f64::INFINITY;
    for _ in 0..TRIALS {
        bare = bare.min(trial(&Mode::Bare).0);
        piped = piped.min(trial(&Mode::Pipeline(None)).0);
        piped_obs = piped_obs.min(trial(&Mode::Pipeline(Some(&registry))).0);
    }

    let ns = |secs: f64| secs * 1e9 / OPS as f64;
    let overhead = dgc_bench::overhead_pct(bare, piped);
    let obs_extra = dgc_bench::overhead_pct(piped, piped_obs);
    println!("app path, {OPS} envelopes ({p_rej} cross-tenant rejects), min of {TRIALS} trials:");
    println!("  bare envelope:            {:>7.1} ns/op", ns(bare));
    println!(
        "  + standard pipeline+ledger: {:>6.1} ns/op  ({overhead:+.2}% vs bare)",
        ns(piped)
    );
    println!(
        "  + obs mirror:             {:>7.1} ns/op  ({obs_extra:+.2}% vs pipeline)",
        ns(piped_obs)
    );

    // The mirror did run: per-tenant counters reached the registry.
    let snap = registry.snapshot();
    assert!(
        snap.counter("tenant.1.app_enqueued") > 0,
        "obs mode recorded nothing"
    );

    dgc_bench::record(
        "tenant_isolation",
        &[
            ("bare_ns_per_op", ns(bare)),
            ("pipeline_ns_per_op", ns(piped)),
            ("pipeline_obs_ns_per_op", ns(piped_obs)),
            ("pipeline_overhead_pct", overhead),
            ("obs_extra_pct", obs_extra),
            ("rejected_per_trial", p_rej as f64),
        ],
    );
}
