//! The referencer table (§2.2).
//!
//! Referencers are known **only by id** — the DGC never contacts them
//! directly (they reach us, not the other way around, so firewalls and
//! NATs are no obstacle). For each referencer we remember the content of
//! its last DGC message (clock + consensus bit) and when it was received,
//! so that Algorithm 1 can evaluate the recursive agreement and so that
//! silent referencers can be expired after TTA (the "loss of a
//! referencer" event of §3.2, Fig. 5).
//!
//! ## Storage
//!
//! Entries live in a flat `Vec<(AoId, ReferencerInfo)>` kept sorted by
//! id — an arena, not a `BTreeMap`. A TTB sweep over a node hosting
//! hundreds of thousands of activities walks every table once per beat;
//! a contiguous sorted slice makes that walk a linear scan over cache
//! lines instead of a pointer chase over tree nodes, and lookups stay
//! `O(log n)` by binary search. Iteration remains id-ordered — the
//! determinism the simulator's reproducibility and the conformance
//! oracle rely on. The pre-arena `BTreeMap` implementation survives as
//! [`crate::legacy`]: the proptest model and the bench ablation
//! baseline.

use crate::clock::NamedClock;
use crate::id::AoId;
use crate::units::{Dur, Time};

/// What we know about one referencer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReferencerInfo {
    /// Clock carried by its last DGC message.
    pub clock: NamedClock,
    /// Consensus bit of its last DGC message.
    pub consensus: bool,
    /// Arrival time of its last DGC message.
    pub last_message: Time,
    /// The TTB it advertised, used for the per-referencer expiry when
    /// heartbeat periods differ (§7.1 extension).
    pub advertised_ttb: Dur,
}

impl ReferencerInfo {
    /// The expiry window for this referencer:
    /// `max(TTA, 2·advertised_ttb + max_comm)`.
    #[inline]
    pub fn expiry(&self, tta: Dur, max_comm: Dur) -> Dur {
        tta.max(
            self.advertised_ttb
                .saturating_mul(2)
                .saturating_add(max_comm),
        )
    }
}

/// Table of all known referencers: a flat arena sorted by id.
#[derive(Debug, Clone, Default)]
pub struct ReferencerTable {
    entries: Vec<(AoId, ReferencerInfo)>,
}

impl ReferencerTable {
    /// Empty table.
    pub fn new() -> Self {
        ReferencerTable::default()
    }

    #[inline]
    fn position(&self, id: AoId) -> Result<usize, usize> {
        crate::id::position_sorted(&self.entries, id)
    }

    /// Records a DGC message from `sender`; inserts the referencer if it
    /// is new ("sender ID: used to detect new referencers", §3.2).
    /// Returns `true` if the referencer was new.
    pub fn record_message(
        &mut self,
        sender: AoId,
        clock: NamedClock,
        consensus: bool,
        now: Time,
        advertised_ttb: Dur,
    ) -> bool {
        let info = ReferencerInfo {
            clock,
            consensus,
            last_message: now,
            advertised_ttb,
        };
        match self.position(sender) {
            Ok(i) => {
                // dgc-analysis: allow(hot-path-panic): index is a binary-search Ok(i) into the same vec
                self.entries[i].1 = info;
                false
            }
            Err(i) => {
                self.entries.insert(i, (sender, info));
                true
            }
        }
    }

    /// Algorithm 1: do **all** referencers carry `clock` with their
    /// consensus bit set?
    ///
    /// Note: vacuously true when the table is empty; the caller
    /// (Algorithm 2) additionally requires a non-empty table before
    /// terminating cyclically — an object that never had referencers is
    /// the acyclic collector's job, whose TTA delay covers in-flight
    /// first messages.
    pub fn agree(&self, clock: NamedClock) -> bool {
        self.entries
            .iter()
            .all(|(_, r)| r.clock == clock && r.consensus)
    }

    /// Removes referencers whose last message is older than their expiry
    /// (`max(TTA, 2·advertised_ttb + max_comm)`) and returns their ids —
    /// each removal is a "loss of a referencer" that must bump the
    /// activity clock (§3.2, Fig. 5).
    pub fn expire_silent(&mut self, now: Time, tta: Dur, max_comm: Dur) -> Vec<AoId> {
        let mut expired = Vec::new();
        self.expire_silent_into(now, tta, max_comm, &mut expired);
        expired
    }

    /// [`Self::expire_silent`] into a caller-owned scratch buffer
    /// (appended, id order) — the sweep-loop form that allocates
    /// nothing when the buffer's capacity is warm.
    pub fn expire_silent_into(
        &mut self,
        now: Time,
        tta: Dur,
        max_comm: Dur,
        expired: &mut Vec<AoId>,
    ) {
        self.entries.retain(|(id, info)| {
            if now.since(info.last_message) > info.expiry(tta, max_comm) {
                expired.push(*id);
                false
            } else {
                true
            }
        });
    }

    /// Forgets a referencer explicitly (used when the runtime learns the
    /// referencer terminated). Returns `true` if it was present.
    pub fn remove(&mut self, id: AoId) -> bool {
        match self.position(id) {
            Ok(i) => {
                self.entries.remove(i);
                true
            }
            Err(_) => false,
        }
    }

    /// Largest per-referencer expiry among current referencers, used to
    /// widen the acyclic self-timeout when referencers advertise TTBs
    /// larger than ours.
    pub fn max_expiry(&self, tta: Dur, max_comm: Dur) -> Dur {
        self.entries
            .iter()
            .map(|(_, info)| info.expiry(tta, max_comm))
            .max()
            .unwrap_or(tta)
    }

    /// Look up one referencer.
    pub fn get(&self, id: AoId) -> Option<&ReferencerInfo> {
        // dgc-analysis: allow(hot-path-panic): index is a binary-search Ok(i) into the same vec
        self.position(id).ok().map(|i| &self.entries[i].1)
    }

    /// Number of known referencers.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if no referencer is known.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates over `(id, info)` in id order.
    pub fn iter(&self) -> impl Iterator<Item = (AoId, &ReferencerInfo)> {
        self.entries.iter().map(|(k, v)| (*k, v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ao(n: u32) -> AoId {
        AoId::new(n, 0)
    }

    fn clk(v: u64, o: u32) -> NamedClock {
        NamedClock {
            value: v,
            owner: ao(o),
        }
    }

    const TTB: Dur = Dur::from_secs(30);

    #[test]
    fn record_detects_new_referencers() {
        let mut t = ReferencerTable::new();
        assert!(t.record_message(ao(1), clk(0, 1), false, Time::ZERO, TTB));
        assert!(!t.record_message(ao(1), clk(1, 1), true, Time::from_secs(30), TTB));
        assert_eq!(t.len(), 1);
        let info = t.get(ao(1)).unwrap();
        assert_eq!(info.clock, clk(1, 1));
        assert!(info.consensus);
    }

    #[test]
    fn agree_requires_matching_clock_and_consensus() {
        let mut t = ReferencerTable::new();
        t.record_message(ao(1), clk(5, 9), true, Time::ZERO, TTB);
        t.record_message(ao(2), clk(5, 9), true, Time::ZERO, TTB);
        assert!(t.agree(clk(5, 9)));
        // One referencer with a different clock breaks the agreement.
        t.record_message(ao(3), clk(4, 9), true, Time::ZERO, TTB);
        assert!(!t.agree(clk(5, 9)));
        t.remove(ao(3));
        // One referencer that did not consent breaks it too.
        t.record_message(ao(2), clk(5, 9), false, Time::ZERO, TTB);
        assert!(!t.agree(clk(5, 9)));
    }

    #[test]
    fn agree_is_vacuous_on_empty_table() {
        let t = ReferencerTable::new();
        assert!(t.agree(clk(3, 1)));
    }

    #[test]
    fn expire_silent_removes_and_reports() {
        let mut t = ReferencerTable::new();
        let tta = Dur::from_secs(61);
        t.record_message(ao(1), clk(0, 1), false, Time::ZERO, TTB);
        t.record_message(ao(2), clk(0, 2), false, Time::from_secs(50), TTB);
        let lost = t.expire_silent(Time::from_secs(62), tta, Dur::ZERO);
        assert_eq!(lost, vec![ao(1)]);
        assert_eq!(t.len(), 1);
        assert!(t.get(ao(2)).is_some());
    }

    #[test]
    fn expire_silent_into_appends_to_scratch() {
        let mut t = ReferencerTable::new();
        let tta = Dur::from_secs(61);
        t.record_message(ao(2), clk(0, 2), false, Time::ZERO, TTB);
        t.record_message(ao(1), clk(0, 1), false, Time::ZERO, TTB);
        let mut scratch = vec![ao(9)]; // pre-existing content survives
        t.expire_silent_into(Time::from_secs(62), tta, Dur::ZERO, &mut scratch);
        assert_eq!(scratch, vec![ao(9), ao(1), ao(2)]);
        assert!(t.is_empty());
    }

    #[test]
    fn expiry_respects_advertised_ttb() {
        // A referencer beating every 300s must not be expired by a 61s TTA.
        let mut t = ReferencerTable::new();
        let tta = Dur::from_secs(61);
        t.record_message(ao(1), clk(0, 1), false, Time::ZERO, Dur::from_secs(300));
        let lost = t.expire_silent(Time::from_secs(500), tta, Dur::from_secs(1));
        assert!(lost.is_empty(), "2*300+1 = 601s expiry > 500s elapsed");
        let lost = t.expire_silent(Time::from_secs(602), tta, Dur::from_secs(1));
        assert_eq!(lost, vec![ao(1)]);
    }

    #[test]
    fn max_expiry_covers_slowest_referencer() {
        let mut t = ReferencerTable::new();
        let tta = Dur::from_secs(61);
        assert_eq!(t.max_expiry(tta, Dur::ZERO), tta);
        t.record_message(ao(1), clk(0, 1), false, Time::ZERO, Dur::from_secs(300));
        assert_eq!(t.max_expiry(tta, Dur::from_secs(1)), Dur::from_secs(601));
    }

    #[test]
    fn iteration_is_id_ordered() {
        let mut t = ReferencerTable::new();
        t.record_message(ao(3), clk(0, 3), false, Time::ZERO, TTB);
        t.record_message(ao(1), clk(0, 1), false, Time::ZERO, TTB);
        t.record_message(ao(2), clk(0, 2), false, Time::ZERO, TTB);
        let ids: Vec<AoId> = t.iter().map(|(id, _)| id).collect();
        assert_eq!(ids, vec![ao(1), ao(2), ao(3)]);
    }

    #[test]
    fn remove_reports_presence() {
        let mut t = ReferencerTable::new();
        t.record_message(ao(1), clk(0, 1), false, Time::ZERO, TTB);
        assert!(t.remove(ao(1)));
        assert!(!t.remove(ao(1)));
        assert!(t.is_empty());
    }
}
