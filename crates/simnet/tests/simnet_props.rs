//! Property-based tests of the simulator substrate: event-queue
//! ordering/stability, network FIFO and latency monotonicity, meter
//! arithmetic, and RNG determinism.

use proptest::prelude::*;

use dgc_simnet::queue::EventQueue;
use dgc_simnet::rng::SimRng;
use dgc_simnet::time::{SimDuration, SimTime};
use dgc_simnet::topology::{ProcId, Topology};
use dgc_simnet::traffic::{TrafficClass, TrafficMeter};
use dgc_simnet::Network;

proptest! {
    /// Pop order is (time, insertion) lexicographic for any schedule.
    #[test]
    fn event_queue_is_a_stable_priority_queue(
        times in proptest::collection::vec(0u64..1_000, 1..200)
    ) {
        let mut q = EventQueue::new();
        for (i, t) in times.iter().enumerate() {
            q.schedule(SimTime::from_nanos(*t), i);
        }
        let mut popped = Vec::new();
        while let Some((at, idx)) = q.pop() {
            popped.push((at.as_nanos(), idx));
        }
        prop_assert_eq!(popped.len(), times.len());
        for w in popped.windows(2) {
            let ((t1, i1), (t2, i2)) = (w[0], w[1]);
            prop_assert!(t1 < t2 || (t1 == t2 && i1 < i2),
                "order violated: ({t1},{i1}) before ({t2},{i2})");
        }
    }

    /// Cancellation removes exactly the cancelled events.
    #[test]
    fn cancellation_is_precise(
        n in 1usize..100,
        cancel_mask in proptest::collection::vec(any::<bool>(), 100),
    ) {
        let mut q = EventQueue::new();
        let ids: Vec<_> =
            (0..n).map(|i| q.schedule(SimTime::from_nanos(i as u64 % 7), i)).collect();
        let mut kept = Vec::new();
        for (i, id) in ids.iter().enumerate() {
            if cancel_mask[i] {
                prop_assert!(q.cancel(*id));
            } else {
                kept.push(i);
            }
        }
        let mut seen = Vec::new();
        while let Some((_, idx)) = q.pop() {
            seen.push(idx);
        }
        seen.sort_unstable();
        kept.sort_unstable();
        prop_assert_eq!(seen, kept);
    }

    /// FIFO per ordered pair: deliveries never reorder, whatever the
    /// send times.
    #[test]
    fn network_is_fifo_per_pair(
        sends in proptest::collection::vec((0u64..10_000, 0u64..4096), 1..100)
    ) {
        let mut net = Network::new(Topology::grid5000_scaled(2));
        let mut sorted = sends.clone();
        sorted.sort_by_key(|(t, _)| *t);
        let mut last_delivery = SimTime::ZERO;
        for (t, size) in sorted {
            let d = net.send(
                SimTime::from_nanos(t),
                ProcId(0),
                ProcId(3),
                TrafficClass::AppRequest,
                size,
            );
            prop_assert!(d >= last_delivery, "reordered delivery");
            prop_assert!(d >= SimTime::from_nanos(t), "delivery before send");
            last_delivery = d;
        }
        let total: u64 = sends.iter().map(|(_, s)| *s).sum();
        prop_assert_eq!(net.meter().total_bytes(), total);
    }

    /// Meter merge equals element-wise sums.
    #[test]
    fn meter_merge_is_addition(
        a in proptest::collection::vec((0usize..5, 0u64..10_000), 0..50),
        b in proptest::collection::vec((0usize..5, 0u64..10_000), 0..50),
    ) {
        let record = |items: &[(usize, u64)]| {
            let mut m = TrafficMeter::new();
            for (c, s) in items {
                m.record(TrafficClass::ALL[*c], *s);
            }
            m
        };
        let ma = record(&a);
        let mb = record(&b);
        let mut merged = ma.clone();
        merged.merge(&mb);
        for class in TrafficClass::ALL {
            prop_assert_eq!(merged.bytes(class), ma.bytes(class) + mb.bytes(class));
            prop_assert_eq!(merged.messages(class), ma.messages(class) + mb.messages(class));
        }
        prop_assert_eq!(merged.total_bytes(), ma.total_bytes() + mb.total_bytes());
    }

    /// Same seed ⇒ same stream; jitter stays within its bound.
    #[test]
    fn rng_determinism_and_bounds(seed in any::<u64>(), bound_ms in 1u64..100_000) {
        let mut a = SimRng::from_seed(seed);
        let mut b = SimRng::from_seed(seed);
        let d = SimDuration::from_millis(bound_ms);
        for _ in 0..32 {
            let ja = a.jitter(d);
            prop_assert_eq!(ja, b.jitter(d));
            prop_assert!(ja < d);
        }
    }

    /// Latency is symmetric and respects the intra-site < inter-site
    /// hierarchy on the Grid'5000 preset.
    #[test]
    fn grid5000_latency_hierarchy(a in 0u32..128, b in 0u32..128) {
        let t = Topology::grid5000();
        let l = t.latency(ProcId(a), ProcId(b));
        prop_assert_eq!(l, t.latency(ProcId(b), ProcId(a)));
        if a == b {
            prop_assert_eq!(l, SimDuration::ZERO);
        } else if t.site_of(ProcId(a)) == t.site_of(ProcId(b)) {
            prop_assert!(l <= SimDuration::from_micros(100));
        } else {
            prop_assert!(l >= SimDuration::from_micros(4_000));
            prop_assert!(l <= SimDuration::from_micros(10_000));
        }
    }
}
