//! End-to-end tests of the TCP transport runtime: the paper's protocol
//! collecting real garbage over real sockets.
//!
//! The headline case is the acceptance scenario for `dgc-rt-net`: a
//! two-activity cycle `a ⇄ b` split across two nodes that only talk
//! through `127.0.0.1` TCP connections, collected end-to-end with
//! millisecond-scale TTB/TTA.

use std::time::Duration;

use grid_dgc::dgc::config::DgcConfig;
use grid_dgc::dgc::message::TerminateReason;
use grid_dgc::dgc::units::Dur;
use grid_dgc::rt_net::{Cluster, NetConfig};

fn cfg() -> NetConfig {
    NetConfig::new(
        DgcConfig::builder()
            .ttb(Dur::from_millis(25))
            .tta(Dur::from_millis(80))
            .max_comm(Dur::from_millis(20))
            .build(),
    )
}

#[test]
fn cross_node_cycle_is_collected_over_tcp() {
    let cluster = Cluster::listen_local(2, cfg()).expect("bind cluster");
    let a = cluster.add_activity(0);
    let b = cluster.add_activity(1);
    assert_ne!(a.node, b.node, "the cycle must actually cross nodes");
    cluster.add_ref(a, b);
    cluster.add_ref(b, a);
    cluster.set_idle(a, true);
    cluster.set_idle(b, true);

    assert!(
        cluster.wait_until(Duration::from_secs(20), |t| t.len() == 2),
        "a ⇄ b cycle over sockets not collected: {:?}",
        cluster.terminated()
    );
    let t = cluster.terminated();
    assert!(t.iter().any(|x| x.ao == a) && t.iter().any(|x| x.ao == b));
    assert!(
        t.iter().any(|x| x.reason.is_cyclic()),
        "a cycle needs the cyclic path, got {t:?}"
    );
    // All of it went over real TCP: both nodes moved protocol units.
    let stats = cluster.stats();
    assert!(stats[0].items_sent > 0 && stats[1].items_sent > 0);
    assert!(stats[0].bytes_received > 0 && stats[1].bytes_received > 0);
    assert_eq!(cluster.total_stats().decode_errors, 0);
    cluster.shutdown();
}

#[test]
fn three_node_ring_is_collected_over_tcp() {
    let cluster = Cluster::listen_local(3, cfg()).expect("bind cluster");
    let a = cluster.add_activity(0);
    let b = cluster.add_activity(1);
    let c = cluster.add_activity(2);
    cluster.add_ref(a, b);
    cluster.add_ref(b, c);
    cluster.add_ref(c, a);
    for id in [a, b, c] {
        cluster.set_idle(id, true);
    }
    assert!(
        cluster.wait_until(Duration::from_secs(30), |t| t.len() == 3),
        "three-node ring not collected: {:?}",
        cluster.terminated()
    );
    cluster.shutdown();
}

#[test]
fn busy_referencer_on_remote_node_protects_the_cycle() {
    let cluster = Cluster::listen_local(2, cfg()).expect("bind cluster");
    let a = cluster.add_activity(0);
    let b = cluster.add_activity(1);
    cluster.add_ref(a, b);
    cluster.add_ref(b, a);
    cluster.set_idle(a, true);
    // b stays busy: nothing may be collected, however long we wait
    // relative to the timers. `wait_until` polls for the *violation*,
    // so a correct run waits out the window and a buggy run fails fast
    // instead of sleeping blindly.
    assert!(
        !cluster.wait_until(Duration::from_millis(500), |t| !t.is_empty()),
        "busy member overrun: {:?}",
        cluster.terminated()
    );
    cluster.set_idle(b, true);
    assert!(cluster.wait_until(Duration::from_secs(20), |t| t.len() == 2));
    cluster.shutdown();
}

#[test]
fn acyclic_garbage_is_collected_and_roots_survive() {
    let cluster = Cluster::listen_local(2, cfg()).expect("bind cluster");
    let root = cluster.add_activity(0); // never idled: a root
    let kept = cluster.add_activity(1);
    let garbage = cluster.add_activity(1);
    cluster.add_ref(root, kept);
    cluster.set_idle(kept, true);
    cluster.set_idle(garbage, true);
    assert!(
        cluster.wait_until(Duration::from_secs(10), |t| t
            .iter()
            .any(|x| x.ao == garbage)),
        "unreferenced idle activity must fall acyclically"
    );
    assert_eq!(
        cluster
            .terminated()
            .iter()
            .find(|t| t.ao == garbage)
            .unwrap()
            .reason,
        TerminateReason::Acyclic
    );
    assert!(
        !cluster.wait_until(Duration::from_millis(300), |t| t
            .iter()
            .any(|x| x.ao == kept || x.ao == root)),
        "remote heartbeats from the busy root must keep `kept` alive: {:?}",
        cluster.terminated()
    );
    cluster.shutdown();
}

#[test]
fn ttb_and_tta_run_at_millisecond_scale() {
    // The whole point of the transport runtime: wall-clock protocol
    // timers. An isolated idle activity falls after TTA, so its
    // collection latency bounds the real timer period from above.
    let cluster = Cluster::listen_local(1, cfg()).expect("bind cluster");
    let a = cluster.add_activity(0);
    cluster.set_idle(a, true);
    let start = std::time::Instant::now();
    assert!(cluster.wait_until(Duration::from_secs(5), |t| !t.is_empty()));
    let elapsed = start.elapsed();
    assert!(
        elapsed < Duration::from_secs(3),
        "ms-scale TTA should collect in well under 3 s, took {elapsed:?}"
    );
    cluster.shutdown();
}

#[test]
fn shutdown_is_safe_after_a_failed_assertion() {
    // A failing test unwinds while links are live and half the
    // topology may already be dead; the cluster's Drop runs on that
    // unwind path and must neither hang nor double-panic. (Before the
    // Drop impl, an assertion failure leaked every node thread.)
    let cluster = Cluster::listen_local(3, cfg()).expect("bind cluster");
    let a = cluster.add_activity(0);
    let b = cluster.add_activity(1);
    cluster.add_ref(a, b);
    cluster.add_ref(b, a);
    cluster.set_idle(a, true);
    let unwound = std::panic::catch_unwind(std::panic::AssertUnwindSafe(move || {
        let _owned = cluster; // dropped by the unwind below
        panic!("simulated failed assertion");
    }));
    assert!(unwound.is_err(), "the panic must have propagated");
    // Reaching this line is the assertion: the drop completed.
}

#[test]
fn batching_packs_cohosted_heartbeats_into_shared_frames() {
    // 12 referencers on node 0, all pointing at activities on node 1:
    // one TTB sweep queues 12·4 messages for the same peer, which the
    // link must coalesce instead of framing one by one.
    let cluster = Cluster::listen_local(2, cfg()).expect("bind cluster");
    let targets: Vec<_> = (0..4).map(|_| cluster.add_activity(1)).collect();
    for _ in 0..12 {
        let holder = cluster.add_activity(0);
        for t in &targets {
            cluster.add_ref(holder, *t);
        }
    }
    // Poll for the traffic condition instead of guessing how long the
    // sweeps take: the test finishes as soon as enough heartbeats have
    // flowed, and only a genuinely unbatched link exhausts the deadline.
    assert!(
        cluster.wait_stats_until(Duration::from_secs(10), |s| s[0].items_sent >= 48),
        "expected several TTB sweeps, got {:?}",
        cluster.stats()[0]
    );
    let s = cluster.stats()[0];
    assert!(
        s.items_per_frame() > 2.0,
        "co-located heartbeats should batch: {:.2} items/frame",
        s.items_per_frame()
    );
    cluster.shutdown();
}
