//! Bounded structured tracing.
//!
//! A [`Tracer`] is a cheap-to-clone handle on a fixed-capacity ring of
//! [`TraceEvent`]s. It is **off by default** and allocation-free when
//! disabled: the level gate is one relaxed atomic load, and callers
//! that build a detail string should guard with [`Tracer::enabled`] or
//! use [`Tracer::event_with`] so the closure never runs when filtered.
//! Both runtimes speak the same vocabulary through it — the simulator
//! stamps virtual nanoseconds, the socket runtime wall-clock ones —
//! which is what lets one exporter render either as a timeline.

use std::collections::VecDeque;
use std::fmt;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

/// Verbosity of a trace event. Mirrors the simulator's historical
/// levels so the `TraceLog` adapter is a pure re-export.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum TraceLevel {
    /// Nothing is recorded.
    Off,
    /// Life-cycle events: creations, terminations, consensus decisions,
    /// link state changes, membership verdicts.
    Info,
    /// Every protocol step: clock updates, flush decisions, frame
    /// codec activity, chaos interference.
    Debug,
}

impl TraceLevel {
    /// Parses `"off" | "info" | "debug"` (as in the `DGC_TRACE` env
    /// var); anything else is `None`.
    pub fn parse(s: &str) -> Option<TraceLevel> {
        match s.trim().to_ascii_lowercase().as_str() {
            "off" | "0" | "" => Some(TraceLevel::Off),
            "info" | "1" => Some(TraceLevel::Info),
            "debug" | "2" => Some(TraceLevel::Debug),
            _ => None,
        }
    }
}

/// One recorded event; `dur_nanos` turns an instant into a span.
#[derive(Debug, Clone)]
pub struct TraceEvent {
    /// Start timestamp, nanoseconds since the owner's time source epoch.
    pub at_nanos: u64,
    /// For spans, how long the operation ran; `None` for instants.
    pub dur_nanos: Option<u64>,
    /// Level it was recorded at.
    pub level: TraceLevel,
    /// Short category tag, e.g. `"terminate"`, `"flush"`, `"reconnect"`.
    pub tag: &'static str,
    /// Free-form details.
    pub detail: String,
}

impl fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ms = self.at_nanos as f64 / 1e6;
        match self.dur_nanos {
            Some(d) => write!(
                f,
                "[{ms:>12.3}ms +{:.3}ms] {:<14} {}",
                d as f64 / 1e6,
                self.tag,
                self.detail
            ),
            None => write!(f, "[{ms:>12.3}ms] {:<14} {}", self.tag, self.detail),
        }
    }
}

#[derive(Debug)]
struct Buffer {
    events: VecDeque<TraceEvent>,
    dropped: u64,
}

#[derive(Debug)]
struct TracerInner {
    level: AtomicU8,
    capacity: usize,
    buf: Mutex<Buffer>,
}

/// Cloneable handle on one bounded event ring.
#[derive(Debug, Clone)]
pub struct Tracer {
    inner: Arc<TracerInner>,
}

const fn level_to_u8(l: TraceLevel) -> u8 {
    match l {
        TraceLevel::Off => 0,
        TraceLevel::Info => 1,
        TraceLevel::Debug => 2,
    }
}

fn level_from_u8(v: u8) -> TraceLevel {
    match v {
        0 => TraceLevel::Off,
        1 => TraceLevel::Info,
        _ => TraceLevel::Debug,
    }
}

/// Default ring capacity: enough for a conformance scenario tail
/// without letting a soak run grow without bound.
pub const DEFAULT_CAPACITY: usize = 4096;

impl Default for Tracer {
    fn default() -> Tracer {
        Tracer::off()
    }
}

impl Tracer {
    /// A tracer recording at or below `level`, keeping the most recent
    /// `capacity` events.
    pub fn new(level: TraceLevel, capacity: usize) -> Tracer {
        Tracer {
            inner: Arc::new(TracerInner {
                level: AtomicU8::new(level_to_u8(level)),
                capacity: capacity.max(1),
                buf: Mutex::new(Buffer {
                    events: VecDeque::new(),
                    dropped: 0,
                }),
            }),
        }
    }

    /// A disabled tracer (default capacity; enable later with
    /// [`Tracer::set_level`]).
    pub fn off() -> Tracer {
        Tracer::new(TraceLevel::Off, DEFAULT_CAPACITY)
    }

    /// Current filter level.
    pub fn level(&self) -> TraceLevel {
        level_from_u8(self.inner.level.load(Ordering::Relaxed))
    }

    /// Changes the filter level (takes effect immediately on all
    /// clones).
    pub fn set_level(&self, level: TraceLevel) {
        self.inner
            .level
            .store(level_to_u8(level), Ordering::Relaxed);
    }

    /// True if events at `level` would be kept. The disabled path is a
    /// single relaxed load — guard detail-string construction with it.
    #[inline]
    pub fn enabled(&self, level: TraceLevel) -> bool {
        let cur = self.inner.level.load(Ordering::Relaxed);
        cur != 0 && level_to_u8(level) <= cur
    }

    /// Records an instant event if `level` passes the filter.
    #[inline]
    pub fn event(&self, at_nanos: u64, level: TraceLevel, tag: &'static str, detail: String) {
        if self.enabled(level) {
            self.push(TraceEvent {
                at_nanos,
                dur_nanos: None,
                level,
                tag,
                detail,
            });
        }
    }

    /// Records an instant event, building the detail lazily — the
    /// closure does not run when the level is filtered.
    #[inline]
    pub fn event_with<F: FnOnce() -> String>(
        &self,
        at_nanos: u64,
        level: TraceLevel,
        tag: &'static str,
        detail: F,
    ) {
        if self.enabled(level) {
            self.push(TraceEvent {
                at_nanos,
                dur_nanos: None,
                level,
                tag,
                detail: detail(),
            });
        }
    }

    /// Records a completed span `[start_nanos, end_nanos]`.
    #[inline]
    pub fn span(
        &self,
        start_nanos: u64,
        end_nanos: u64,
        level: TraceLevel,
        tag: &'static str,
        detail: String,
    ) {
        if self.enabled(level) {
            self.push(TraceEvent {
                at_nanos: start_nanos,
                dur_nanos: Some(end_nanos.saturating_sub(start_nanos)),
                level,
                tag,
                detail,
            });
        }
    }

    fn push(&self, ev: TraceEvent) {
        let mut buf = self.inner.buf.lock();
        if buf.events.len() >= self.inner.capacity {
            buf.events.pop_front();
            buf.dropped += 1;
        }
        buf.events.push_back(ev);
    }

    /// All retained events, oldest first.
    pub fn events(&self) -> Vec<TraceEvent> {
        let buf = self.inner.buf.lock();
        buf.events.iter().cloned().collect()
    }

    /// The most recent `n` events, oldest first.
    pub fn tail(&self, n: usize) -> Vec<TraceEvent> {
        let buf = self.inner.buf.lock();
        let skip = buf.events.len().saturating_sub(n);
        buf.events.iter().skip(skip).cloned().collect()
    }

    /// Events evicted by the ring bound so far.
    pub fn dropped(&self) -> u64 {
        self.inner.buf.lock().dropped
    }

    /// Retained event count.
    pub fn len(&self) -> usize {
        self.inner.buf.lock().events.len()
    }

    /// True if nothing is retained.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Discards retained events (level and drop counter are kept).
    pub fn clear(&self) {
        self.inner.buf.lock().events.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn off_records_nothing() {
        let t = Tracer::off();
        t.event(0, TraceLevel::Info, "x", "y".into());
        assert!(t.is_empty());
        assert!(!t.enabled(TraceLevel::Info));
    }

    #[test]
    fn info_filters_debug() {
        let t = Tracer::new(TraceLevel::Info, 16);
        t.event(1, TraceLevel::Info, "a", "1".into());
        t.event(2, TraceLevel::Debug, "b", "2".into());
        let evs = t.events();
        assert_eq!(evs.len(), 1);
        assert_eq!(evs[0].tag, "a");
    }

    #[test]
    fn lazy_detail_skipped_when_disabled() {
        let t = Tracer::new(TraceLevel::Info, 16);
        let mut ran = false;
        t.event_with(0, TraceLevel::Debug, "x", || {
            ran = true;
            String::new()
        });
        assert!(!ran);
        t.event_with(0, TraceLevel::Info, "x", || {
            ran = true;
            String::new()
        });
        assert!(ran);
    }

    #[test]
    fn ring_bounds_and_counts_drops() {
        let t = Tracer::new(TraceLevel::Debug, 3);
        for i in 0..5u64 {
            t.event(i, TraceLevel::Info, "e", i.to_string());
        }
        assert_eq!(t.len(), 3);
        assert_eq!(t.dropped(), 2);
        let evs = t.events();
        assert_eq!(evs[0].detail, "2");
        assert_eq!(evs[2].detail, "4");
        assert_eq!(t.tail(2).len(), 2);
        assert_eq!(t.tail(2)[0].detail, "3");
    }

    #[test]
    fn spans_keep_duration() {
        let t = Tracer::new(TraceLevel::Info, 16);
        t.span(100, 250, TraceLevel::Info, "op", "d".into());
        let evs = t.events();
        assert_eq!(evs[0].at_nanos, 100);
        assert_eq!(evs[0].dur_nanos, Some(150));
    }

    #[test]
    fn clones_share_level_and_buffer() {
        let t = Tracer::new(TraceLevel::Info, 16);
        let t2 = t.clone();
        t2.set_level(TraceLevel::Debug);
        assert!(t.enabled(TraceLevel::Debug));
        t2.event(0, TraceLevel::Debug, "shared", String::new());
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn level_parse() {
        assert_eq!(TraceLevel::parse("info"), Some(TraceLevel::Info));
        assert_eq!(TraceLevel::parse("DEBUG"), Some(TraceLevel::Debug));
        assert_eq!(TraceLevel::parse("off"), Some(TraceLevel::Off));
        assert_eq!(TraceLevel::parse("nope"), None);
    }
}
