//! # dgc-workloads — the paper's evaluation workloads
//!
//! Everything §5 of the paper runs, rebuilt on the simulated grid:
//!
//! * [`nas`] — the ProActive NAS kernels CG, EP and FT at class-C scale
//!   (genuine scaled-down local numerics, class-C message sizes and
//!   compute times, complete reference graph from global barriers);
//! * [`torture`] — the master/slave reference-churn torture test of
//!   §5.3 (6401 activities at paper scale, Fig. 10 time series);
//! * [`scenarios`] — the reference-graph shapes of Figs. 3–7 plus
//!   rings, chains, cliques and random graphs for tests and ablations;
//! * [`driver`] — the runtime-neutral [`driver::AppTransport`] seam,
//!   realized by the simulated grid and by a real `dgc-rt-net` TCP
//!   cluster, so one workload script runs over both;
//! * [`bsp`] — the NAS communication skeleton as a sans-io engine
//!   (CG/EP/FT-style request/reply rounds over encoded payloads): the
//!   §5 traffic the egress plane's piggybacking is measured on;
//! * [`lease`] — the Java-RMI lease baseline (`dirty`/`renew`/`clean`
//!   and replies) deployed as application traffic over any transport.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod bsp;
pub mod driver;
pub mod lease;
pub mod nas;
pub mod scenarios;
pub mod torture;

pub use bsp::{run_bsp, BspEngine, BspLayout, BspOutcome};
pub use driver::{
    wait_all_terminated, AppPacket, AppTransport, ClusterTransport, GridTransport, Traced, TracedOp,
};
pub use lease::{run_lease, LeaseOutcome};
pub use nas::{run_kernel, Kernel, NasOutcome, NasParams};
pub use torture::{run_torture, TortureOutcome, TortureParams};
