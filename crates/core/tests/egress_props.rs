//! Property tests of the egress outbox: whatever interleaving of
//! enqueues, polls and forced flushes a runtime drives, the flushed
//! stream per destination preserves enqueue order (hence per-class
//! FIFO, the §3.2 transport assumption), loses nothing, and respects
//! the policy bounds.

use proptest::prelude::*;

use dgc_core::egress::{EgressClass, FlushPolicy, Outbox};
use dgc_core::units::{Dur, Time};

fn class_of(b: u8) -> EgressClass {
    match b % 6 {
        0 => EgressClass::AppRequest,
        1 => EgressClass::AppReply,
        2 => EgressClass::DgcMessage,
        3 => EgressClass::DgcResponse,
        4 => EgressClass::Gossip,
        _ => EgressClass::Control,
    }
}

proptest! {
    /// Runs a random op sequence against an outbox and checks, per
    /// destination: flushed items appear in exact enqueue order (the
    /// global FIFO that implies per-class FIFO), every item flushes by
    /// the final drain, and no flush exceeds the policy's item bound
    /// by more than the one unit that triggered it.
    #[test]
    fn flushes_preserve_per_destination_fifo_and_lose_nothing(
        ops in proptest::collection::vec(
            // (dest, class selector, size, ms advance, poll?)
            (0u32..4, any::<u8>(), 1u64..200, 0u64..4, any::<bool>()),
            1..120,
        ),
        max_delay_ms in 0u64..6,
        max_items in 1usize..12,
    ) {
        let policy = FlushPolicy {
            flush_on_app: true,
            max_delay: Dur::from_millis(max_delay_ms),
            max_bytes: 600,
            max_items,
        };
        let mut ob: Outbox<u64> = Outbox::new(policy);
        let mut now_ms = 0u64;
        let mut seq = 0u64;
        let mut enqueued: Vec<Vec<u64>> = vec![Vec::new(); 4];
        let mut flushed: Vec<Vec<u64>> = vec![Vec::new(); 4];
        let drain = |flushes: Vec<dgc_core::egress::Flush<u64>>,
                         flushed: &mut Vec<Vec<u64>>| {
            for f in flushes {
                prop_assert!(
                    f.items.len() <= max_items.max(1),
                    "flush of {} items exceeds max_items {}",
                    f.items.len(),
                    max_items
                );
                for qi in f.items {
                    flushed[f.dest as usize].push(qi.item);
                }
            }
            Ok(())
        };
        for (dest, class, size, advance, poll) in ops {
            now_ms += advance;
            let now = Time::from_nanos(now_ms * 1_000_000);
            if poll {
                drain(ob.poll(now), &mut flushed)?;
            }
            let item = seq;
            seq += 1;
            enqueued[dest as usize].push(item);
            if let Some(f) = ob.enqueue(now, dest, class_of(class), size, item) {
                drain(vec![f], &mut flushed)?;
            }
        }
        drain(ob.flush_all(), &mut flushed)?;
        prop_assert_eq!(ob.pending_items(), 0, "final drain must empty the outbox");
        for d in 0..4 {
            prop_assert_eq!(
                &flushed[d],
                &enqueued[d],
                "destination {} reordered or lost items",
                d
            );
        }
    }

    /// The deadline contract: while anything is queued, the outbox
    /// names a deadline no later than oldest-enqueue + max_delay, and a
    /// poll at that deadline flushes the oldest item.
    #[test]
    fn oldest_item_never_waits_past_max_delay(
        lead in 0u64..10,
        max_delay_ms in 1u64..8,
    ) {
        let policy = FlushPolicy {
            flush_on_app: false,
            max_delay: Dur::from_millis(max_delay_ms),
            max_bytes: u64::MAX,
            max_items: usize::MAX,
        };
        let mut ob: Outbox<u32> = Outbox::new(policy);
        let t0 = Time::from_nanos(lead * 1_000_000);
        ob.enqueue(t0, 0, EgressClass::DgcMessage, 1, 0);
        // Later company must not push the deadline out.
        ob.enqueue(t0 + Dur::from_millis(max_delay_ms / 2), 0, EgressClass::Gossip, 1, 1);
        let deadline = ob.next_deadline().expect("queued");
        prop_assert!(deadline <= t0 + Dur::from_millis(max_delay_ms));
        let flushes = ob.poll(deadline);
        prop_assert_eq!(flushes.len(), 1);
        prop_assert_eq!(flushes[0].items[0].item, 0, "oldest first");
    }
}
