//! Cached telemetry handles for the protocol engine.
//!
//! [`DgcObs`] is the bundle of `dgc-obs` counters and histograms one
//! [`crate::protocol::DgcState`] records into when a registry is
//! attached ([`crate::protocol::DgcState::set_obs`]). The handles are
//! resolved once at attach time, so the hot path pays one relaxed
//! atomic op per event and exactly nothing when detached — the legacy
//! [`crate::stats::DgcStats`] counters keep counting either way, which
//! is what the conservation tests cross-check.
//!
//! Metric names (under the owning node's registry):
//!
//! | name | kind | meaning |
//! |---|---|---|
//! | `dgc.clock_bumps.became_idle` … | counter | §3.2 clock bumps by reason |
//! | `dgc.consensus.detected` / `.propagated` | counter | cycle consensus events |
//! | `dgc.collected.acyclic` / `.cyclic` | counter | terminations by path |
//! | `dgc.collect.spawn_to_collected_ns` | histogram | whole-life latency |
//! | `dgc.collect.idle_to_collected_ns` | histogram | last busy→idle → collected |
//! | `dgc.collect.idle_to_consensus_ns` | histogram | last busy→idle → consensus |
//! | `dgc.collect.consensus_to_collected_ns` | histogram | TTA wait (§4.3) |
//! | `dgc.ttb_round_ns` | histogram | spacing of Algorithm-2 beats |

use dgc_obs::{Counter, Histogram, Registry};

use crate::stats::ClockBumpReason;

/// Lock-free handles a [`crate::protocol::DgcState`] records into.
#[derive(Debug, Clone)]
pub struct DgcObs {
    /// Clock bumps: busy→idle transitions.
    pub bumps_became_idle: Counter,
    /// Clock bumps: referencer lost (TTA silence / node death).
    pub bumps_lost_referencer: Counter,
    /// Clock bumps: referenced edge lost (stubs collected / send failure).
    pub bumps_lost_referenced: Counter,
    /// Consensus detections (this endpoint originated).
    pub consensus_detected: Counter,
    /// Dying entries via a propagated consensus bit.
    pub consensus_propagated: Counter,
    /// Terminations on the acyclic (silence) path.
    pub collected_acyclic: Counter,
    /// Terminations on the cyclic (consensus) path.
    pub collected_cyclic: Counter,
    /// Creation → collected, nanoseconds.
    pub spawn_to_collected: Histogram,
    /// Last busy→idle transition → collected, nanoseconds.
    pub idle_to_collected: Histogram,
    /// Last busy→idle transition → consensus detection, nanoseconds.
    pub idle_to_consensus: Histogram,
    /// Consensus (Dying entry) → collected: the §4.3 TTA wait.
    pub consensus_to_collected: Histogram,
    /// Observed spacing between consecutive Algorithm-2 beats.
    pub ttb_round: Histogram,
}

impl DgcObs {
    /// Resolves the engine's handles against `registry`.
    pub fn new(registry: &Registry) -> DgcObs {
        DgcObs {
            bumps_became_idle: registry.counter("dgc.clock_bumps.became_idle"),
            bumps_lost_referencer: registry.counter("dgc.clock_bumps.lost_referencer"),
            bumps_lost_referenced: registry.counter("dgc.clock_bumps.lost_referenced"),
            consensus_detected: registry.counter("dgc.consensus.detected"),
            consensus_propagated: registry.counter("dgc.consensus.propagated"),
            collected_acyclic: registry.counter("dgc.collected.acyclic"),
            collected_cyclic: registry.counter("dgc.collected.cyclic"),
            spawn_to_collected: registry.histogram("dgc.collect.spawn_to_collected_ns"),
            idle_to_collected: registry.histogram("dgc.collect.idle_to_collected_ns"),
            idle_to_consensus: registry.histogram("dgc.collect.idle_to_consensus_ns"),
            consensus_to_collected: registry.histogram("dgc.collect.consensus_to_collected_ns"),
            ttb_round: registry.histogram("dgc.ttb_round_ns"),
        }
    }

    /// The bump counter for `reason`.
    pub fn bump_counter(&self, reason: ClockBumpReason) -> &Counter {
        match reason {
            ClockBumpReason::BecameIdle => &self.bumps_became_idle,
            ClockBumpReason::LostReferencer => &self.bumps_lost_referencer,
            ClockBumpReason::LostReferenced => &self.bumps_lost_referenced,
        }
    }
}
