//! Offline stand-in for the
//! [`criterion`](https://crates.io/crates/criterion) crate.
//!
//! The build environment has no crates.io access; this shim provides the
//! `bench_function` / `Bencher::iter` surface plus [`criterion_group!`]
//! and [`criterion_main!`]. Timing is a straightforward
//! median-of-samples measurement printed to stdout — no statistical
//! regression analysis, no HTML reports. Good enough to compare hot
//! paths on one machine, which is all the workspace's micro-benchmarks
//! ask of it.

#![warn(missing_docs)]

use std::time::{Duration, Instant};

/// Re-export so benches can use `criterion::black_box` too.
pub use std::hint::black_box;

/// Top-level benchmark driver.
pub struct Criterion {
    /// Target measurement time per benchmark.
    measurement: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            measurement: Duration::from_millis(400),
        }
    }
}

impl Criterion {
    /// Runs `f` as the benchmark `name`, printing a per-iteration time.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            budget: self.measurement,
            samples: Vec::new(),
        };
        f(&mut b);
        b.samples.sort_unstable();
        let median = b
            .samples
            .get(b.samples.len() / 2)
            .copied()
            .unwrap_or(Duration::ZERO);
        println!(
            "bench {name:<40} median {:>12.1} ns/iter ({} samples)",
            median.as_nanos() as f64,
            b.samples.len()
        );
        self
    }
}

/// Handle the benchmark closure drives its workload through.
pub struct Bencher {
    budget: Duration,
    samples: Vec<Duration>,
}

impl Bencher {
    /// Measures `f` repeatedly until the time budget is spent, recording
    /// per-iteration samples in batches.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Calibrate a batch size aiming at ~1 ms per batch.
        let probe = Instant::now();
        black_box(f());
        let one = probe.elapsed().max(Duration::from_nanos(1));
        let batch = (Duration::from_millis(1).as_nanos() / one.as_nanos()).clamp(1, 100_000) as u32;
        let start = Instant::now();
        while start.elapsed() < self.budget {
            let t = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            self.samples.push(t.elapsed() / batch);
        }
    }
}

/// Bundles benchmark functions into one group runner, as upstream.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emits `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_records_samples() {
        let mut c = Criterion {
            measurement: Duration::from_millis(10),
        };
        let mut ran = false;
        c.bench_function("smoke", |b| {
            b.iter(|| black_box(1 + 1));
            ran = true;
        });
        assert!(ran);
    }
}
